#!/usr/bin/env python
"""La Habra production pipeline walkthrough (Secs. V-C, VI, VII-C).

Demonstrates the full preprocessing pipeline on the synthetic La-Habra-like
basin model -- velocity-aware meshing, constant-Q material sampling, LTS
clustering with lambda optimisation, weighted partitioning, reordering and
per-partition output -- and then models the strong scaling on Frontera-like
nodes (the Fig. 10 analogue) from the partitioning and communication volumes.

Run:  python examples/la_habra_pipeline.py
"""

import tempfile

import numpy as np

from repro.core.clustering import derive_clustering
from repro.kernels.flops import count_flops_per_element_update
from repro.parallel.machine_model import strong_scaling_study
from repro.parallel.partition import element_weights, partition_dual_graph
from repro.preprocessing import PreprocessingPipeline, LaHabraBasinModel, write_partitions
from repro.workloads.la_habra import (
    PAPER_LAMBDA,
    PAPER_SPEEDUP,
    la_habra_setup,
    la_habra_time_step_distribution,
)


def main() -> None:
    print("=== La Habra: preprocessing pipeline + modelled strong scaling ===\n")

    # -- 1. end-to-end preprocessing on the synthetic basin model -----------
    model = LaHabraBasinModel(extent=(0.0, 16000.0, 0.0, 16000.0), min_vs=500.0)
    pipeline = PreprocessingPipeline(
        velocity_model=model,
        extent=(0.0, 16000.0, 0.0, 16000.0, -10000.0, 0.0),
        max_frequency=0.3,
        elements_per_wavelength=1.5,
        order=4,
        n_clusters=4,
        n_partitions=8,
        optimize_lambda_increment=0.01,
    )
    preprocessed = pipeline.run()
    summary = preprocessed.summary()
    print("preprocessing summary:")
    for key, value in summary.items():
        print(f"  {key:<22s} {value:.4g}")
    print(f"  cluster counts         {preprocessed.clustering.counts.tolist()}")

    with tempfile.TemporaryDirectory() as tmp:
        paths = write_partitions(preprocessed, tmp)
        print(f"  wrote {len(paths)} per-partition archives (mesh + annotations)\n")

    # -- 2. clustering of the paper-calibrated 238M-element distribution ----
    dts = la_habra_time_step_distribution(n_elements=200_000)
    clustering = derive_clustering(dts, 5, PAPER_LAMBDA)
    print(f"paper-calibrated distribution: N_c=5, lambda={PAPER_LAMBDA}: "
          f"theoretical speedup {clustering.speedup():.2f}x (paper: {PAPER_SPEEDUP}x)")

    # -- 3. modelled strong scaling (Fig. 10 analogue) -----------------------
    setup = la_habra_setup(extent_m=12000.0, depth_m=8000.0, max_frequency=0.3, order=4)
    weights = element_weights(clustering.cluster_ids[: setup.mesh.n_elements] % 5, 5)
    flops = count_flops_per_element_update(setup.disc).total
    points = strong_scaling_study(
        weights,
        setup.mesh.neighbors,
        clustering.cluster_ids[: setup.mesh.n_elements] % 5,
        5,
        node_counts=[2, 4, 8, 16, 32],
        flops_per_element_update=float(flops),
        order=4,
    )
    print("\nmodelled strong scaling (parallel efficiency, paper sustains >80-95%):")
    for point in points:
        print(f"  {point.n_nodes:>4d} nodes: efficiency {point.parallel_efficiency:5.2f}, "
              f"speedup {point.speedup_vs_smallest:5.2f}x")

    # -- 4. partition imbalance (Fig. 7 analogue) ----------------------------
    partition = partition_dual_graph(setup.mesh.neighbors, np.ones(setup.mesh.n_elements), 8)
    print(f"\nunweighted partitioning element spread: {partition.element_count_spread():.2f}x; "
          "with LTS weights the spread grows (see benchmarks/bench_fig7_partition_imbalance.py)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""LOH.3 accuracy study (the laptop-scale analogue of Fig. 9 / Tab. I).

Runs the scaled LOH.3 scenario with global time stepping and with the
next-generation clustered LTS (lambda = 1.0 and the optimised lambda) through
the scenario runner, compares the seismograms at the receiver-9 analogue, and
reports the measured and theoretical speedups plus the cost of anelasticity.

Run:  python examples/loh3_accuracy.py
"""

import numpy as np

from repro.scenarios import ScenarioRunner, build_setup, get_scenario, measure_update_cost
from repro.source import seismogram_misfit
from repro.source.receivers import resample_seismogram

N_CYCLES = 10  # 10 macro cycles = 40 steps of cluster 0


def run_config(setup, clustering, solver, label):
    spec = setup.spec.with_overrides(solver=solver, n_cycles=N_CYCLES)
    runner = ScenarioRunner(spec, setup=setup, clustering=clustering)
    summary = runner.run()
    print(f"  {label:<22s} wall {summary['wall_s']:8.2f} s   "
          f"element updates {summary['element_updates']:>9d}")
    return runner, summary


def main() -> None:
    print("=== LOH.3 accuracy & algorithmic efficiency (scaled) ===\n")
    spec = get_scenario("loh3", extent_m=8000.0, characteristic_length=2000.0, order=4)
    setup = build_setup(spec)
    print(f"mesh: {setup.mesh.n_elements} tetrahedra (paper: 743,066), order 4, 3 mechanisms\n")

    clustering_1 = setup.clustering(n_clusters=3, lam=1.0)
    clustering_opt = setup.clustering(n_clusters=3, lam=None)
    print(f"clustering lambda=1.00: counts {clustering_1.counts.tolist()}, "
          f"theoretical speedup {clustering_1.speedup():.2f}x (paper: 2.28x)")
    print(f"clustering lambda={clustering_opt.lam:.2f}: counts {clustering_opt.counts.tolist()}, "
          f"theoretical speedup {clustering_opt.speedup():.2f}x (paper: 2.67x at lambda=0.80)\n")

    gts, s_gts = run_config(setup, clustering_1, "gts", "GTS")
    lts1, s_1 = run_config(setup, clustering_1, "lts", "LTS lambda=1.00")
    ltso, s_o = run_config(setup, clustering_opt, "lts", f"LTS lambda={clustering_opt.lam:.2f}")

    t_g, v_g = gts.receivers["receiver_9"].seismogram()
    print("\nseismogram misfits E against the GTS reference (paper: ~1e-3):")
    for label, runner in (("LTS lambda=1.00", lts1), (f"LTS lambda={clustering_opt.lam:.2f}", ltso)):
        t_l, v_l = runner.receivers["receiver_9"].seismogram()
        common = np.linspace(0.0, min(t_g[-1], t_l[-1]), 300)
        misfit = seismogram_misfit(
            resample_seismogram(t_l, v_l, common), resample_seismogram(t_g, v_g, common)
        )
        print(f"  {label:<22s} E = {misfit:.3e}")

    print("\nmeasured time-to-solution speedups over GTS (Tab. I analogue):")
    print(f"  LTS lambda=1.00        {s_gts['wall_s'] / s_1['wall_s']:5.2f}x   (paper: 2.14x)")
    print(f"  LTS lambda={clustering_opt.lam:.2f}        "
          f"{s_gts['wall_s'] / s_o['wall_s']:5.2f}x   (paper: 2.51x)")

    elastic = build_setup(
        get_scenario("loh3", extent_m=8000.0, characteristic_length=2000.0, order=4,
                     anelastic=False)
    )

    cost = measure_update_cost(setup) / measure_update_cost(elastic)
    print(f"\ncost of anelasticity (3 mechanisms): {cost:.2f}x per element update (paper: ~1.8x)")


if __name__ == "__main__":
    main()

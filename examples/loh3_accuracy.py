#!/usr/bin/env python
"""LOH.3 accuracy study (the laptop-scale analogue of Fig. 9 / Tab. I).

Runs the scaled LOH.3 benchmark with global time stepping and with the
next-generation clustered LTS (lambda = 1.0 and the optimised lambda),
compares the seismograms at the receiver-9 analogue, and reports the
measured and theoretical speedups plus the cost of anelasticity.

Run:  python examples/loh3_accuracy.py
"""

import time

import numpy as np

from repro.core import ClusteredLtsSolver, GlobalTimeSteppingSolver
from repro.source import ReceiverSet, seismogram_misfit
from repro.source.receivers import resample_seismogram
from repro.workloads import loh3_setup


def run_config(setup, clustering=None, label=""):
    receivers = ReceiverSet(setup.disc, setup.receiver_locations)
    if clustering is None:
        solver = GlobalTimeSteppingSolver(setup.disc, sources=[setup.source], receivers=receivers)
        t_end = 40 * solver.dt
    else:
        solver = ClusteredLtsSolver(
            setup.disc, clustering, sources=[setup.source], receivers=receivers
        )
        t_end = 40 * clustering.cluster_time_steps[0]
    start = time.perf_counter()
    solver.run(t_end)
    elapsed = time.perf_counter() - start
    print(f"  {label:<22s} wall {elapsed:8.2f} s   element updates {solver.n_element_updates:>9d}")
    return solver, receivers, elapsed


def main() -> None:
    print("=== LOH.3 accuracy & algorithmic efficiency (scaled) ===\n")
    setup = loh3_setup(extent_m=8000.0, characteristic_length=2000.0, order=4)
    print(f"mesh: {setup.mesh.n_elements} tetrahedra (paper: 743,066), order 4, 3 mechanisms\n")

    clustering_1 = setup.clustering(n_clusters=3, lam=1.0)
    clustering_opt = setup.clustering(n_clusters=3, lam=None)
    print(f"clustering lambda=1.00: counts {clustering_1.counts.tolist()}, "
          f"theoretical speedup {clustering_1.speedup():.2f}x (paper: 2.28x)")
    print(f"clustering lambda={clustering_opt.lam:.2f}: counts {clustering_opt.counts.tolist()}, "
          f"theoretical speedup {clustering_opt.speedup():.2f}x (paper: 2.67x at lambda=0.80)\n")

    gts, rec_gts, t_gts = run_config(setup, None, "GTS")
    lts1, rec_1, t_1 = run_config(setup, clustering_1, "LTS lambda=1.00")
    ltso, rec_o, t_o = run_config(setup, clustering_opt, f"LTS lambda={clustering_opt.lam:.2f}")

    t_g, v_g = rec_gts["receiver_9"].seismogram()
    print("\nseismogram misfits E against the GTS reference (paper: ~1e-3):")
    for label, rec in (("LTS lambda=1.00", rec_1), (f"LTS lambda={clustering_opt.lam:.2f}", rec_o)):
        t_l, v_l = rec["receiver_9"].seismogram()
        common = np.linspace(0.0, min(t_g[-1], t_l[-1]), 300)
        misfit = seismogram_misfit(
            resample_seismogram(t_l, v_l, common), resample_seismogram(t_g, v_g, common)
        )
        print(f"  {label:<22s} E = {misfit:.3e}")

    print("\nmeasured time-to-solution speedups over GTS (Tab. I analogue):")
    print(f"  LTS lambda=1.00        {t_gts / t_1:5.2f}x   (paper: 2.14x)")
    print(f"  LTS lambda={clustering_opt.lam:.2f}        {t_gts / t_o:5.2f}x   (paper: 2.51x)")

    elastic = loh3_setup(extent_m=8000.0, characteristic_length=2000.0, order=4, anelastic=False)
    g_e = GlobalTimeSteppingSolver(elastic.disc)
    start = time.perf_counter(); g_e.run(10 * g_e.dt); t_e = time.perf_counter() - start
    g_v = GlobalTimeSteppingSolver(setup.disc)
    start = time.perf_counter(); g_v.run(10 * g_v.dt); t_v = time.perf_counter() - start
    cost = (t_v / g_v.n_element_updates) / (t_e / g_e.n_element_updates)
    print(f"\ncost of anelasticity (3 mechanisms): {cost:.2f}x per element update (paper: ~1.8x)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Walkthrough of the LTS buffer scheme of Fig. 6.

Reproduces, on an actual two-cluster discretization, the sequence of
predictions and corrections of the paper's Fig. 6 and shows which buffer
(B1, B2, B3 or B1 - B2) every face uses, plus the check that a one-cluster
LTS run is bit-identical to global time stepping.

Run:  python examples/lts_buffer_walkthrough.py
"""

import numpy as np

from repro.core import ClusteredLtsSolver, GlobalTimeSteppingSolver, derive_clustering
from repro.core.lts_scheduler import schedule_cycle
from repro.equations.material import ElasticMaterial, MaterialTable
from repro.kernels.discretization import Discretization
from repro.mesh.generation import layered_box_mesh


def main() -> None:
    print("=== Next-generation LTS: buffers and schedule (Fig. 6 analogue) ===\n")

    mesh = layered_box_mesh(
        extent=(0, 4000.0, 0, 4000.0, -4000.0, 0.0),
        edge_length_of_depth=lambda z: 500.0 if z > -1000.0 else 2000.0,
        horizontal_edge_length=2000.0,
        jitter=0.1,
    )
    table = MaterialTable.homogeneous(ElasticMaterial(2700.0, 6000.0, 3464.0), mesh.n_elements)
    disc = Discretization(mesh, table, order=3)
    clustering = derive_clustering(disc.time_steps, 3, 1.0, mesh.neighbors)
    print(f"mesh: {mesh.n_elements} elements, cluster counts {clustering.counts.tolist()}, "
          f"cluster time steps {np.round(clustering.cluster_time_steps, 5).tolist()}")

    print("\nschedule of one macro cycle (predict at micro-step start, correct at its end):")
    for entry in schedule_cycle(clustering.n_clusters):
        print(f"  micro step {entry['micro_step']}: predict clusters {entry['predict']}, "
              f"correct clusters {entry['correct']}")

    print("\nbuffer usage rules (Sec. V-B):")
    print("  same cluster neighbour     -> B1 (full-interval integral)")
    print("  smaller (faster) neighbour -> B3 (pairwise accumulated integrals)")
    print("  larger (slower) neighbour  -> B2 (first half) or B1 - B2 (second half)")

    solver = ClusteredLtsSolver(disc, clustering)
    solver.set_initial_condition(_pulse)
    solver.step_cycle()
    print(f"\none macro cycle advanced {solver.n_element_updates} element updates "
          f"(GTS would need {disc.n_elements * 2 ** (clustering.n_clusters - 1)}); "
          f"speedup {clustering.speedup():.2f}x")

    # single-cluster degenerate case: bit-identical to GTS
    single = derive_clustering(disc.time_steps, 1, 1.0)
    lts = ClusteredLtsSolver(disc, single)
    gts = GlobalTimeSteppingSolver(disc, dt=single.cluster_time_steps[0])
    lts.set_initial_condition(_pulse)
    gts.set_initial_condition(_pulse)
    lts.run(3 * single.cluster_time_steps[0])
    gts.run(3 * single.cluster_time_steps[0])
    identical = np.array_equal(lts.dofs, gts.dofs)
    print(f"single-cluster LTS bit-identical to GTS: {identical}")


def _pulse(points):
    out = np.zeros((len(points), 9))
    center = np.array([2000.0, 2000.0, -500.0])
    out[:, 6] = np.exp(-np.sum((points - center) ** 2, axis=1) / (2 * 600.0**2))
    return out


if __name__ == "__main__":
    main()

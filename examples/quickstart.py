#!/usr/bin/env python
"""Quickstart: a point source in a layered box, solved with clustered LTS.

Builds a small velocity-aware mesh of the LOH.3 layer-over-halfspace model,
derives the local time stepping clusters (with lambda optimisation), runs the
clustered LTS solver with a moment-tensor point source, and prints the
clustering statistics and the peak ground velocity recorded at a station.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ClusteredLtsSolver, GlobalTimeSteppingSolver, optimize_lambda
from repro.source import MomentTensorSource, ReceiverSet, RickerWavelet, seismogram_misfit
from repro.source.receivers import resample_seismogram
from repro.workloads import loh3_setup


def main() -> None:
    print("=== EDGE-style ADER-DG with next-generation LTS: quickstart ===\n")

    # 1. workload: a scaled LOH.3 setting (layer over halfspace, Q attenuation)
    setup = loh3_setup(extent_m=8000.0, characteristic_length=2000.0, order=3)
    print(f"mesh: {setup.mesh.n_elements} tetrahedra, "
          f"time-step spread {setup.time_steps.max() / setup.time_steps.min():.2f}x")

    # 2. clustering: N_c = 3 rate-2 clusters, lambda optimised by grid search
    clustering = optimize_lambda(setup.time_steps, 3, setup.mesh.neighbors)
    print(f"clusters: {clustering.counts.tolist()}, lambda = {clustering.lam:.2f}, "
          f"theoretical speedup over GTS = {clustering.speedup():.2f}x")

    # 3. source + receiver
    receivers = ReceiverSet(setup.disc, setup.receiver_locations)
    solver = ClusteredLtsSolver(
        setup.disc, clustering, sources=[setup.source], receivers=receivers
    )

    # 4. run
    t_end = 4 * clustering.cluster_time_steps[-1]
    print(f"\nrunning clustered LTS to t = {t_end:.3f} s ...")
    solver.run(t_end)
    print(f"element updates performed: {solver.n_element_updates}")

    times, velocity = receivers["receiver_9"].seismogram()
    if len(times):
        print(f"peak |v| at receiver_9: {np.max(np.abs(velocity)):.3e} m/s "
              f"({len(times)} samples)")

    # 5. cross-check against the GTS reference
    receivers_ref = ReceiverSet(setup.disc, setup.receiver_locations)
    reference = GlobalTimeSteppingSolver(
        setup.disc, dt=clustering.cluster_time_steps[0],
        sources=[setup.source], receivers=receivers_ref,
    )
    reference.run(t_end)
    t_r, v_r = receivers_ref["receiver_9"].seismogram()
    common = np.linspace(0.0, min(times[-1], t_r[-1]), 200)
    misfit = seismogram_misfit(
        resample_seismogram(times, velocity, common), resample_seismogram(t_r, v_r, common)
    )
    speedup = reference.n_element_updates / solver.n_element_updates
    print(f"\nLTS vs GTS: seismogram misfit E = {misfit:.2e}, "
          f"algorithmic speedup = {speedup:.2f}x (theoretical {clustering.speedup():.2f}x)")


if __name__ == "__main__":
    main()

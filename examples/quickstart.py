#!/usr/bin/env python
"""Quickstart: a point source in a layered box, solved with clustered LTS.

Fetches the LOH.3 scenario from the registry, lets the scenario runner build
the velocity-aware mesh, derive the local time stepping clusters (with lambda
optimisation) and drive the clustered LTS solver, then cross-checks the
recorded seismogram against a GTS reference run of the same scenario.

Run:  python examples/quickstart.py
(or equivalently: python -m repro run loh3 --order 3)
"""

import numpy as np

from repro.scenarios import ScenarioRunner, get_scenario
from repro.source import seismogram_misfit
from repro.source.receivers import resample_seismogram


def main() -> None:
    print("=== EDGE-style ADER-DG with next-generation LTS: quickstart ===\n")

    # 1. scenario: a scaled LOH.3 setting (layer over halfspace, Q attenuation)
    spec = get_scenario(
        "loh3", extent_m=8000.0, characteristic_length=2000.0, order=3, n_cycles=4
    )
    runner = ScenarioRunner(spec)
    setup, clustering = runner.setup, runner.clustering
    print(f"mesh: {setup.mesh.n_elements} tetrahedra, "
          f"time-step spread {setup.time_steps.max() / setup.time_steps.min():.2f}x")

    # 2. clustering: N_c = 3 rate-2 clusters, lambda optimised by grid search
    print(f"clusters: {clustering.counts.tolist()}, lambda = {clustering.lam:.2f}, "
          f"theoretical speedup over GTS = {clustering.speedup():.2f}x")

    # 3. run (source + receivers come with the scenario)
    t_end = spec.run.n_cycles * runner.macro_dt
    print(f"\nrunning clustered LTS to t = {t_end:.3f} s ...")
    summary = runner.run()
    print(f"element updates performed: {summary['element_updates']}")

    times, velocity = runner.receivers["receiver_9"].seismogram()
    if len(times):
        print(f"peak |v| at receiver_9: {np.max(np.abs(velocity)):.3e} m/s "
              f"({len(times)} samples)")

    # 4. cross-check against the GTS reference (same scenario, solver swapped)
    reference = ScenarioRunner(
        spec.with_overrides(solver="gts"), setup=setup, clustering=clustering
    )
    ref_summary = reference.run()
    t_r, v_r = reference.receivers["receiver_9"].seismogram()
    common = np.linspace(0.0, min(times[-1], t_r[-1]), 200)
    misfit = seismogram_misfit(
        resample_seismogram(times, velocity, common), resample_seismogram(t_r, v_r, common)
    )
    speedup = ref_summary["element_updates"] / summary["element_updates"]
    print(f"\nLTS vs GTS: seismogram misfit E = {misfit:.2e}, "
          f"algorithmic speedup = {speedup:.2f}x (theoretical {clustering.speedup():.2f}x)")


if __name__ == "__main__":
    main()

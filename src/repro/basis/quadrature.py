"""Quadrature rules on the reference triangle and reference tetrahedron.

The reference simplices follow the EDGE / Dumbser--Kaeser convention:

* reference triangle: ``{(x, y) : x, y >= 0, x + y <= 1}`` with area ``1/2``;
* reference tetrahedron: ``{(x, y, z) : x, y, z >= 0, x + y + z <= 1}`` with
  volume ``1/6``.

Rules are built as tensor products of Gauss--Jacobi rules in Duffy-collapsed
coordinates, which places all points strictly inside the simplex (important
for the collapsed-coordinate basis evaluation) and integrates polynomials of
total degree ``2 n - 1`` exactly with ``n`` points per direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .jacobi import gauss_jacobi, gauss_legendre

__all__ = [
    "QuadratureRule",
    "triangle_quadrature",
    "tetrahedron_quadrature",
]


@dataclass(frozen=True)
class QuadratureRule:
    """A quadrature rule: ``integral f ~= sum_i w_i f(points_i)``."""

    points: np.ndarray  #: (n_points, dim) coordinates inside the reference simplex
    weights: np.ndarray  #: (n_points,) positive weights summing to the simplex measure

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def integrate(self, values: np.ndarray) -> np.ndarray:
        """Integrate values sampled at the quadrature points (first axis)."""
        values = np.asarray(values)
        return np.tensordot(self.weights, values, axes=(0, 0))


@lru_cache(maxsize=32)
def triangle_quadrature(n: int) -> QuadratureRule:
    """Tensor-product rule on the reference triangle, exact for degree ``2n - 1``."""
    xa, wa = gauss_legendre(n)
    xb, wb = gauss_jacobi(n, 1.0, 0.0)
    a, b = np.meshgrid(xa, xb, indexing="ij")
    wa2, wb2 = np.meshgrid(wa, wb, indexing="ij")
    # Duffy map: collapsed square -> triangle.
    x = 0.25 * (1.0 + a) * (1.0 - b)
    y = 0.5 * (1.0 + b)
    w = wa2 * wb2 / 8.0
    points = np.column_stack([x.ravel(), y.ravel()])
    weights = w.ravel()
    return QuadratureRule(points=points, weights=weights)


@lru_cache(maxsize=32)
def tetrahedron_quadrature(n: int) -> QuadratureRule:
    """Tensor-product rule on the reference tetrahedron, exact for degree ``2n - 1``."""
    xa, wa = gauss_legendre(n)
    xb, wb = gauss_jacobi(n, 1.0, 0.0)
    xc, wc = gauss_jacobi(n, 2.0, 0.0)
    a, b, c = np.meshgrid(xa, xb, xc, indexing="ij")
    wa3, wb3, wc3 = np.meshgrid(wa, wb, wc, indexing="ij")
    # Duffy map: collapsed cube -> tetrahedron.
    x = 0.125 * (1.0 + a) * (1.0 - b) * (1.0 - c)
    y = 0.25 * (1.0 + b) * (1.0 - c)
    z = 0.5 * (1.0 + c)
    w = wa3 * wb3 * wc3 / 64.0
    points = np.column_stack([x.ravel(), y.ravel(), z.ravel()])
    weights = w.ravel()
    return QuadratureRule(points=points, weights=weights)

"""Jacobi polynomials and Gauss-type quadrature rules.

The modal basis of the ADER-DG reference element (Karniadakis & Sherwin,
"Spectral/hp Element Methods", Ch. 3) is built from Jacobi polynomials
``P_n^{(alpha, beta)}`` evaluated in collapsed coordinates.  This module
provides

* evaluation of Jacobi polynomials via the three-term recurrence,
* their first derivatives via the standard derivative identity, and
* Gauss--Legendre and Gauss--Jacobi quadrature rules on ``[-1, 1]``.

Everything is vectorised over the evaluation points and uses float64
throughout; the recurrences are numerically benign for the small orders
(``n <= 8``) needed by the solver.
"""

from __future__ import annotations

import numpy as np
from scipy.special import roots_jacobi, roots_legendre

__all__ = [
    "jacobi",
    "jacobi_derivative",
    "gauss_legendre",
    "gauss_jacobi",
]


def jacobi(n: int, alpha: float, beta: float, x: np.ndarray) -> np.ndarray:
    """Evaluate the Jacobi polynomial ``P_n^{(alpha, beta)}`` at ``x``.

    Parameters
    ----------
    n:
        Polynomial degree, ``n >= 0``.
    alpha, beta:
        Jacobi weights, ``alpha, beta > -1``.
    x:
        Evaluation points (any shape).

    Returns
    -------
    numpy.ndarray
        Values of ``P_n^{(alpha, beta)}(x)`` with the same shape as ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    if n < 0:
        raise ValueError(f"polynomial degree must be non-negative, got {n}")
    p_prev = np.ones_like(x)
    if n == 0:
        return p_prev
    p_curr = 0.5 * (alpha - beta + (alpha + beta + 2.0) * x)
    if n == 1:
        return p_curr
    for k in range(1, n):
        a = k + alpha
        b = k + beta
        c = 2.0 * k + alpha + beta
        # Three-term recurrence (Abramowitz & Stegun 22.7.1).
        c1 = 2.0 * (k + 1.0) * (k + alpha + beta + 1.0) * c
        c2 = (c + 1.0) * (alpha * alpha - beta * beta)
        c3 = c * (c + 1.0) * (c + 2.0)
        c4 = 2.0 * a * b * (c + 2.0)
        p_next = ((c2 + c3 * x) * p_curr - c4 * p_prev) / c1
        p_prev, p_curr = p_curr, p_next
    return p_curr


def jacobi_derivative(n: int, alpha: float, beta: float, x: np.ndarray) -> np.ndarray:
    """Evaluate ``d/dx P_n^{(alpha, beta)}(x)``.

    Uses the identity ``d/dx P_n^{(a,b)} = (n + a + b + 1)/2 * P_{n-1}^{(a+1, b+1)}``.
    """
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.zeros_like(x)
    return 0.5 * (n + alpha + beta + 1.0) * jacobi(n - 1, alpha + 1.0, beta + 1.0, x)


def gauss_legendre(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss--Legendre nodes and weights on ``[-1, 1]`` (exact for degree ``2n-1``)."""
    if n < 1:
        raise ValueError("quadrature rule needs at least one point")
    x, w = roots_legendre(n)
    return np.asarray(x, dtype=np.float64), np.asarray(w, dtype=np.float64)


def gauss_jacobi(n: int, alpha: float, beta: float) -> tuple[np.ndarray, np.ndarray]:
    """Gauss--Jacobi nodes and weights on ``[-1, 1]``.

    The weights integrate ``f(x) * (1-x)^alpha * (1+x)^beta`` exactly for
    polynomials ``f`` of degree up to ``2n - 1``.
    """
    if n < 1:
        raise ValueError("quadrature rule needs at least one point")
    if alpha == 0.0 and beta == 0.0:
        return gauss_legendre(n)
    x, w = roots_jacobi(n, alpha, beta)
    return np.asarray(x, dtype=np.float64), np.asarray(w, dtype=np.float64)

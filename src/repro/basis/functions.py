"""Orthonormal modal basis functions on the reference triangle and tetrahedron.

The basis is the hierarchical Dubiner / Karniadakis--Sherwin basis obtained
from Jacobi polynomials in Duffy-collapsed coordinates (the tetrahedral
expansion referenced by the paper, [32]).  The raw expansion is orthogonal;
we normalise it numerically so that the mass matrix of the reference simplex
is the identity, which makes all ``M^{-1}`` pre-multiplications of the DG
operators trivial and exact.

Conventions
-----------
* ``order`` is the order of convergence ``O`` of the ADER-DG scheme: the
  basis spans all polynomials of total degree ``<= O - 1``.
* ``basis_size(order) == B(O) = O (O+1) (O+2) / 6`` on the tetrahedron and
  ``face_basis_size(order) == F(O) = O (O+1) / 2`` on the triangle, matching
  the paper (``B(5) = 35``, ``F(5) = 15``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .jacobi import jacobi, jacobi_derivative
from .quadrature import tetrahedron_quadrature, triangle_quadrature

__all__ = [
    "basis_size",
    "face_basis_size",
    "tet_basis_indices",
    "tri_basis_indices",
    "TetBasis",
    "TriBasis",
]

#: Small guard used when converting to collapsed coordinates at the
#: (never-evaluated) singular edges of the Duffy map.
_COLLAPSE_EPS = 1e-14


def basis_size(order: int) -> int:
    """Number of tetrahedral basis functions ``B(O)`` for convergence order ``O``."""
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    return order * (order + 1) * (order + 2) // 6


def face_basis_size(order: int) -> int:
    """Number of triangular (face) basis functions ``F(O)``."""
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    return order * (order + 1) // 2


@lru_cache(maxsize=32)
def tet_basis_indices(order: int) -> tuple[tuple[int, int, int], ...]:
    """Hierarchical ``(p, q, r)`` index triples with ``p + q + r <= order - 1``.

    Ordered by total degree, then lexicographically, so truncating the list
    yields the basis of any lower order.
    """
    indices: list[tuple[int, int, int]] = []
    for degree in range(order):
        for p in range(degree + 1):
            for q in range(degree - p + 1):
                r = degree - p - q
                indices.append((p, q, r))
    assert len(indices) == basis_size(order)
    return tuple(indices)


@lru_cache(maxsize=32)
def tri_basis_indices(order: int) -> tuple[tuple[int, int], ...]:
    """Hierarchical ``(p, q)`` index pairs with ``p + q <= order - 1``."""
    indices: list[tuple[int, int]] = []
    for degree in range(order):
        for p in range(degree + 1):
            indices.append((p, degree - p))
    assert len(indices) == face_basis_size(order)
    return tuple(indices)


def _tet_collapsed(xi: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map reference-tetrahedron coordinates to collapsed coordinates (a, b, c)."""
    x, y, z = xi[..., 0], xi[..., 1], xi[..., 2]
    den_a = np.maximum(1.0 - y - z, _COLLAPSE_EPS)
    den_b = np.maximum(1.0 - z, _COLLAPSE_EPS)
    a = 2.0 * x / den_a - 1.0
    b = 2.0 * y / den_b - 1.0
    c = 2.0 * z - 1.0
    return a, b, c


def _tri_collapsed(xi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map reference-triangle coordinates to collapsed coordinates (a, b)."""
    x, y = xi[..., 0], xi[..., 1]
    den = np.maximum(1.0 - y, _COLLAPSE_EPS)
    a = 2.0 * x / den - 1.0
    b = 2.0 * y - 1.0
    return a, b


class TetBasis:
    """Orthonormal modal basis on the reference tetrahedron.

    Parameters
    ----------
    order:
        Order of convergence ``O`` of the ADER-DG scheme (polynomial degree
        ``O - 1``).
    """

    def __init__(self, order: int):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self.indices = tet_basis_indices(order)
        self.size = basis_size(order)
        self._norms = self._compute_norms()

    # -- evaluation -----------------------------------------------------

    def _eval_raw(self, xi: np.ndarray) -> np.ndarray:
        """Un-normalised basis values, shape ``(n_points, B)``."""
        xi = np.atleast_2d(np.asarray(xi, dtype=np.float64))
        a, b, c = _tet_collapsed(xi)
        values = np.empty((xi.shape[0], self.size), dtype=np.float64)
        half_1mb = 0.5 * (1.0 - b)
        half_1mc = 0.5 * (1.0 - c)
        for idx, (p, q, r) in enumerate(self.indices):
            fa = jacobi(p, 0.0, 0.0, a)
            fb = jacobi(q, 2.0 * p + 1.0, 0.0, b) * half_1mb**p
            fc = jacobi(r, 2.0 * p + 2.0 * q + 2.0, 0.0, c) * half_1mc ** (p + q)
            values[:, idx] = fa * fb * fc
        return values

    def _compute_norms(self) -> np.ndarray:
        order_quad = self.order + 2
        quad = tetrahedron_quadrature(order_quad)
        raw = self._eval_raw(quad.points)
        norms_sq = quad.integrate(raw * raw)
        return np.sqrt(norms_sq)

    def evaluate(self, xi: np.ndarray) -> np.ndarray:
        """Orthonormal basis values at ``xi``; returns ``(n_points, B)``."""
        return self._eval_raw(xi) / self._norms[None, :]

    def evaluate_gradient(self, xi: np.ndarray) -> np.ndarray:
        """Gradients of the orthonormal basis, shape ``(n_points, B, 3)``.

        The collapsed-coordinate chain rule is applied; points must lie in
        the interior of the reference tetrahedron (quadrature points always
        do), where the Duffy map is smooth.
        """
        xi = np.atleast_2d(np.asarray(xi, dtype=np.float64))
        a, b, c = _tet_collapsed(xi)
        y, z = xi[..., 1], xi[..., 2]
        den_a = np.maximum(1.0 - y - z, _COLLAPSE_EPS)
        den_b = np.maximum(1.0 - z, _COLLAPSE_EPS)

        da_dx = 2.0 / den_a
        da_dy = (1.0 + a) / den_a
        da_dz = (1.0 + a) / den_a
        db_dy = 2.0 / den_b
        db_dz = (1.0 + b) / den_b
        dc_dz = 2.0

        grads = np.empty((xi.shape[0], self.size, 3), dtype=np.float64)
        half_1mb = 0.5 * (1.0 - b)
        half_1mc = 0.5 * (1.0 - c)
        for idx, (p, q, r) in enumerate(self.indices):
            fa = jacobi(p, 0.0, 0.0, a)
            dfa = jacobi_derivative(p, 0.0, 0.0, a)

            gb = jacobi(q, 2.0 * p + 1.0, 0.0, b)
            dgb = jacobi_derivative(q, 2.0 * p + 1.0, 0.0, b)
            fb = gb * half_1mb**p
            if p > 0:
                dfb = dgb * half_1mb**p - 0.5 * p * gb * half_1mb ** (p - 1)
            else:
                dfb = dgb

            gc = jacobi(r, 2.0 * p + 2.0 * q + 2.0, 0.0, c)
            dgc = jacobi_derivative(r, 2.0 * p + 2.0 * q + 2.0, 0.0, c)
            fc = gc * half_1mc ** (p + q)
            if p + q > 0:
                dfc = dgc * half_1mc ** (p + q) - 0.5 * (p + q) * gc * half_1mc ** (p + q - 1)
            else:
                dfc = dgc

            d_da = dfa * fb * fc
            d_db = fa * dfb * fc
            d_dc = fa * fb * dfc

            grads[:, idx, 0] = d_da * da_dx
            grads[:, idx, 1] = d_da * da_dy + d_db * db_dy
            grads[:, idx, 2] = d_da * da_dz + d_db * db_dz + d_dc * dc_dz
        return grads / self._norms[None, :, None]


class TriBasis:
    """Orthonormal modal basis on the reference triangle (face basis)."""

    def __init__(self, order: int):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self.indices = tri_basis_indices(order)
        self.size = face_basis_size(order)
        self._norms = self._compute_norms()

    def _eval_raw(self, xi: np.ndarray) -> np.ndarray:
        xi = np.atleast_2d(np.asarray(xi, dtype=np.float64))
        a, b = _tri_collapsed(xi)
        values = np.empty((xi.shape[0], self.size), dtype=np.float64)
        half_1mb = 0.5 * (1.0 - b)
        for idx, (p, q) in enumerate(self.indices):
            fa = jacobi(p, 0.0, 0.0, a)
            fb = jacobi(q, 2.0 * p + 1.0, 0.0, b) * half_1mb**p
            values[:, idx] = fa * fb
        return values

    def _compute_norms(self) -> np.ndarray:
        quad = triangle_quadrature(self.order + 2)
        raw = self._eval_raw(quad.points)
        norms_sq = quad.integrate(raw * raw)
        return np.sqrt(norms_sq)

    def evaluate(self, xi: np.ndarray) -> np.ndarray:
        """Orthonormal face-basis values at ``xi``; returns ``(n_points, F)``."""
        return self._eval_raw(xi) / self._norms[None, :]

"""The ADER-DG reference tetrahedron and its precomputed operator matrices.

This module assembles every matrix of the discrete formulation (Sec. III of
the paper) that only depends on the reference element:

* the (identity) mass matrix ``M`` of the orthonormal basis,
* the stiffness matrices used by the time kernel (Cauchy--Kowalevski
  procedure, eq. 6/7) and by the volume kernel (eq. 8/9),
* the four local flux matrices ``F̃_i`` (B x F) projecting an element's trace
  onto the face basis and their test-side counterparts ``F̂_i`` (F x B),
  pre-multiplied by the inverse mass matrix as in the paper.

The neighbouring flux matrices ``F̄`` depend on how two tetrahedra share a
face and are therefore assembled per mesh in :mod:`repro.kernels.surface`,
where they are deduplicated into the small unique set the paper exploits.

Geometry conventions
--------------------
Reference tetrahedron vertices::

    v0 = (0, 0, 0), v1 = (1, 0, 0), v2 = (0, 1, 0), v3 = (0, 0, 1)

Faces are ordered ``(0,2,1), (0,1,3), (0,3,2), (1,2,3)`` with outward
normals ``-z, -y, -x, (1,1,1)/sqrt(3)``.  Each face is parametrised over the
reference triangle ``{(u, v): u, v >= 0, u + v <= 1}`` by
``X_i(u, v) = a + u (b - a) + v (c - a)`` with ``(a, b, c)`` the face's
vertex triple.  All face matrices use the parametric measure ``du dv``; the
physical area scaling ``2 |S_i| / |J_k|`` is folded into the element-local
flux solvers, exactly as EDGE folds it into ``Ã±``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .functions import TetBasis, TriBasis, basis_size, face_basis_size
from .quadrature import tetrahedron_quadrature, triangle_quadrature

__all__ = ["ReferenceElement", "REFERENCE_VERTICES", "FACE_VERTEX_IDS", "reference_element"]

#: Vertices of the reference tetrahedron, shape (4, 3).
REFERENCE_VERTICES = np.array(
    [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ]
)

#: Local vertex ids of the four reference faces (outward orientation).
FACE_VERTEX_IDS = ((0, 2, 1), (0, 1, 3), (0, 3, 2), (1, 2, 3))

#: Outward unit normals of the reference faces, shape (4, 3).
REFERENCE_FACE_NORMALS = np.array(
    [
        [0.0, 0.0, -1.0],
        [0.0, -1.0, 0.0],
        [-1.0, 0.0, 0.0],
        [1.0, 1.0, 1.0] / np.sqrt(3.0),
    ]
)


class ReferenceElement:
    """Precomputed reference-element operators for a given order ``O``."""

    def __init__(self, order: int):
        self.order = order
        self.n_basis = basis_size(order)
        self.n_face_basis = face_basis_size(order)
        self.basis = TetBasis(order)
        self.face_basis = TriBasis(order)

        # Volume quadrature exact for products of two basis functions and a
        # gradient (degree <= 2 (O-1)); order + 2 points per direction give
        # exactness 2 O + 3 which is comfortably enough.
        self.volume_quadrature = tetrahedron_quadrature(order + 2)
        self.face_quadrature = triangle_quadrature(order + 2)

        self._assemble_volume_operators()
        self._assemble_face_operators()

    # ------------------------------------------------------------------
    # volume operators
    # ------------------------------------------------------------------
    def _assemble_volume_operators(self) -> None:
        quad = self.volume_quadrature
        psi = self.basis.evaluate(quad.points)  # (nq, B)
        dpsi = self.basis.evaluate_gradient(quad.points)  # (nq, B, 3)
        w = quad.weights

        mass = np.einsum("q,qb,qc->bc", w, psi, psi)
        self.mass = mass
        self.inv_mass = np.linalg.inv(mass)

        # Ktilde_c[b, b'] = int dpsi_b/dxi_c * psi_b' dxi
        ktilde = np.einsum("q,qbc,qa->cba", w, dpsi, psi)  # (3, B, B)
        self.ktilde = ktilde
        # Time-kernel (CK) differentiation operators: Q^{(d+1)} = ... Q^{(d)} @ k_time_c
        self.k_time = np.einsum("cba,ad->cbd", ktilde, self.inv_mass)
        # Volume-kernel stiffness operators: V += Astar_c @ (T @ k_vol_c)
        self.k_vol = np.einsum("cab,ad->cbd", ktilde, self.inv_mass)

    # ------------------------------------------------------------------
    # face operators
    # ------------------------------------------------------------------
    def face_parametrization(self, face: int, uv: np.ndarray) -> np.ndarray:
        """Map reference-triangle points ``uv`` onto reference-tet face ``face``."""
        a, b, c = (REFERENCE_VERTICES[i] for i in FACE_VERTEX_IDS[face])
        uv = np.atleast_2d(np.asarray(uv, dtype=np.float64))
        return a[None, :] + uv[:, 0:1] * (b - a)[None, :] + uv[:, 1:2] * (c - a)[None, :]

    def _assemble_face_operators(self) -> None:
        quad = self.face_quadrature
        w = quad.weights
        chi = self.face_basis.evaluate(quad.points)  # (nqf, F)
        self.face_basis_at_quad = chi

        face_points = np.empty((4, quad.n_points, 3))
        psi_at_face = np.empty((4, quad.n_points, self.n_basis))
        ftilde = np.empty((4, self.n_basis, self.n_face_basis))
        fhat = np.empty((4, self.n_face_basis, self.n_basis))
        fsurf = np.empty((4, self.n_basis, self.n_basis))
        for i in range(4):
            pts = self.face_parametrization(i, quad.points)
            face_points[i] = pts
            psi = self.basis.evaluate(pts)
            psi_at_face[i] = psi
            ft = np.einsum("q,qb,qf->bf", w, psi, chi)
            ftilde[i] = ft
            fhat[i] = ft.T @ self.inv_mass
            fsurf[i] = np.einsum("q,qb,qc->bc", w, psi, psi)

        self.face_quad_points = face_points
        self.basis_at_face_quad = psi_at_face
        self.ftilde = ftilde
        self.fhat = fhat
        self.fsurf = fsurf

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def project_function(self, func, n_quad: int | None = None) -> np.ndarray:
        """L2-project ``func(points) -> (n_points, n_vars)`` onto the basis.

        Returns the modal coefficients with shape ``(n_vars, B)`` such that
        ``coeffs @ psi(xi)`` approximates ``func`` on the reference element.
        """
        quad = tetrahedron_quadrature(n_quad or (self.order + 3))
        psi = self.basis.evaluate(quad.points)
        values = np.asarray(func(quad.points), dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        rhs = np.einsum("q,qv,qb->vb", quad.weights, values, psi)
        return rhs @ self.inv_mass.T

    def evaluate_solution(self, coeffs: np.ndarray, xi: np.ndarray) -> np.ndarray:
        """Evaluate modal coefficients ``(..., B)`` at reference points ``xi``."""
        psi = self.basis.evaluate(xi)  # (n_points, B)
        return np.einsum("...b,pb->...p", coeffs, psi)


@lru_cache(maxsize=8)
def reference_element(order: int) -> ReferenceElement:
    """Cached factory for :class:`ReferenceElement` instances."""
    return ReferenceElement(order)

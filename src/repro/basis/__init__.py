"""Reference-element substrate: Jacobi polynomials, quadrature, modal basis, DG operators."""

from .functions import TetBasis, TriBasis, basis_size, face_basis_size
from .jacobi import gauss_jacobi, gauss_legendre, jacobi, jacobi_derivative
from .quadrature import QuadratureRule, tetrahedron_quadrature, triangle_quadrature
from .reference_element import (
    FACE_VERTEX_IDS,
    REFERENCE_VERTICES,
    ReferenceElement,
    reference_element,
)

__all__ = [
    "jacobi",
    "jacobi_derivative",
    "gauss_legendre",
    "gauss_jacobi",
    "QuadratureRule",
    "triangle_quadrature",
    "tetrahedron_quadrature",
    "TetBasis",
    "TriBasis",
    "basis_size",
    "face_basis_size",
    "ReferenceElement",
    "reference_element",
    "REFERENCE_VERTICES",
    "FACE_VERTEX_IDS",
]

"""Distributed execution: multi-rank clustered LTS with real halo exchange.

The subsystem turns the simulated-MPI substrate of :mod:`repro.parallel`
into an actual execution path (Sec. V-C of the paper): per-rank subdomains
with global-to-local element maps, rank-local clustered-LTS steppers, and
face-local compressed ``B1``/``B2``/``B3`` halo payloads exchanged through
the byte-counting communicator -- bit-identical to the single-rank solver.
"""

from .engine import DistributedLtsEngine
from .process_engine import COMM_KINDS, ProcessLtsEngine
from .runner import DistributedRunner
from .stepper import RankSolver
from .subdomain import RankSubdomain, SubdomainDisc

__all__ = [
    "COMM_KINDS",
    "DistributedLtsEngine",
    "ProcessLtsEngine",
    "DistributedRunner",
    "RankSolver",
    "RankSubdomain",
    "SubdomainDisc",
]

"""Scenario orchestration for distributed (multi-rank) runs.

:class:`DistributedRunner` is a :class:`~repro.scenarios.runner.ScenarioRunner`
whose execution engine is multi-rank: the mesh is split with the weighted
dual-graph partitioner (update-frequency element weights, Sec. V-C), one
rank-local clustered-LTS stepper advances each subdomain, and
partition-boundary data travels as face-local compressed payloads.  The
spec's ``solver.backend`` picks the engine: ``"serial"`` steps the ranks
in-process through the simulated communicator
(:class:`~repro.distributed.engine.DistributedLtsEngine`), ``"process"``
runs one worker process per rank with overlapped halo exchange
(:class:`~repro.distributed.process_engine.ProcessLtsEngine`).  DOFs,
seismograms and element-update counts are bit-identical to the single-rank
runner under either backend; the run summary additionally reports the
*measured* communication traffic next to the machine model's prediction for
the same halo.

Checkpoints are written in the single-rank format (per-rank state is
gathered into global arrays), so distributed and single-rank checkpoints
are interchangeable: ``resume`` follows the spec's ``n_ranks``.
"""

from __future__ import annotations

import numpy as np

from ..kernels.discretization import Discretization
from ..parallel.partition import element_weights, partition_dual_graph
from ..scenarios.runner import ScenarioRunner
from .engine import DistributedLtsEngine, per_rank_sent_bytes
from .process_engine import ProcessLtsEngine

__all__ = ["DistributedRunner"]


class DistributedRunner(ScenarioRunner):
    """Drives one scenario through the multi-rank execution engine."""

    def _build_solver(self, disc: Discretization, sources: list):
        spec = self.spec
        n_ranks = spec.solver.n_ranks
        if n_ranks < 2:
            raise ValueError("DistributedRunner needs solver.n_ranks >= 2")
        engine_cls = (
            ProcessLtsEngine if spec.solver.backend == "process" else DistributedLtsEngine
        )
        # the runner's own lane becomes the "driver" lane (preprocessing,
        # checkpoint I/O) next to the engine's per-rank lanes; sharing the
        # epoch puts all lanes on one trace timeline
        self.telemetry.lane = "driver"
        engine_kwargs = {}
        if spec.solver.backend == "process":
            # comm transport and recv timeout only exist on the process
            # engine; the serial engine's simulated communicator has neither
            engine_kwargs["comm"] = spec.solver.comm
            if spec.solver.comm_timeout is not None:
                engine_kwargs["comm_timeout"] = spec.solver.comm_timeout
        self.engine = engine_cls(
            disc,
            self.clustering,
            self._partitions(disc, n_ranks),
            sources=sources,
            receivers=self.receivers,
            n_fused=spec.solver.n_fused,
            kernels=spec.solver.kernels,
            telemetry=self.telemetry_config,
            telemetry_epoch=self.telemetry.epoch,
            **engine_kwargs,
        )
        return self.engine

    def _partitions(self, disc: Discretization, n_ranks: int) -> np.ndarray:
        """One partition per rank, balanced by LTS update-frequency weights.

        A preprocessing pass that already produced a matching partition count
        is reused (its reordering made the partitions contiguous); otherwise
        the weighted partitioner runs on the final mesh.
        """
        if self.preprocessed is not None:
            partitions = np.asarray(self.preprocessed.partitions, dtype=np.int64)
            if int(partitions.max()) + 1 == n_ranks:
                return partitions
        weights = element_weights(
            self.clustering.cluster_ids, self.clustering.n_clusters
        )
        return partition_dual_graph(disc.mesh.neighbors, weights, n_ranks).partitions

    # -- run lifecycle --------------------------------------------------
    def step_cycle(self) -> None:
        # the macro-cycle span lives on the driver lane (the rank lanes are
        # separate objects here), marking cycle boundaries in the timeline
        with self.telemetry.region("cycle"):
            super().step_cycle()

    def run(
        self,
        *,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
    ) -> dict:
        """Run to completion, then release any rank worker processes.

        The process engine caches its state on close, so summaries, output
        writers and checkpoints keep working after the release -- and
        stepping again transparently respawns the workers.
        """
        try:
            return super().run(
                checkpoint_path=checkpoint_path, checkpoint_every=checkpoint_every
            )
        finally:
            close = getattr(self.engine, "close", None)
            if close is not None:
                close()

    # -- accounting -----------------------------------------------------
    def summary(self) -> dict:
        """Single-rank summary plus measured-vs-modelled communication."""
        out = super().summary()
        stats = self.engine.stats
        model = self.engine.modelled_exchange_per_cycle()
        # normalise by the cycles THIS engine stepped: a resumed run's
        # counters do not include the pre-checkpoint traffic
        cycles = self.engine.cycles_stepped
        out["n_ranks"] = self.engine.n_ranks
        out["backend"] = self.spec.solver.backend
        out["comm"] = {
            "transport": getattr(self.engine, "comm_kind", "simulated"),
            "cycles_measured": cycles,
            "n_halo_faces": int(self.engine.halo.n_faces),
            # how much of the mesh sits on partition boundaries -- the work
            # that cannot be hidden behind the overlap
            "n_boundary_elements": int(
                sum(sub.n_boundary_elements for sub in self.engine.subdomains)
            ),
            "n_messages": stats.n_messages,
            "n_bytes": stats.n_bytes,
            "per_pair": {k: dict(v) for k, v in stats.per_pair.items()},
            "measured_bytes_per_cycle": stats.n_bytes / cycles if cycles else 0.0,
            "measured_messages_per_cycle": stats.n_messages / cycles if cycles else 0.0,
            "model": model,
        }
        workers = getattr(self.engine, "rank_peak_rss_mb", None)
        if workers and any(workers):
            # the parent's RUSAGE_CHILDREN misses still-live workers, so the
            # summary carries the workers' self-reported peaks
            out["memory"]["worker_peak_rss_mb"] = list(workers)
        return out

    def _cycle_record(self, cycle_wall_s: float) -> dict:
        record = super()._cycle_record(cycle_wall_s)
        stats = self.engine.stats
        n_bytes = int(stats.n_bytes)
        record["comm_messages"] = int(stats.n_messages)
        record["comm_bytes"] = n_bytes
        record["cycle_comm_bytes"] = n_bytes - getattr(
            self, "_ledger_prev_comm_bytes", 0
        )
        self._ledger_prev_comm_bytes = n_bytes
        record["sent_bytes_per_rank"] = per_rank_sent_bytes(
            stats.per_pair, self.engine.n_ranks
        )
        workers = getattr(self.engine, "rank_peak_rss_mb", None)
        if workers and any(workers):
            record["worker_peak_rss_mb"] = list(workers)
            record["peak_rss_mb"] = max([record["peak_rss_mb"], *workers])
        return record

    # -- telemetry ------------------------------------------------------
    def _telemetry_snapshots(self) -> list[dict]:
        return self.engine.telemetry_snapshots() + [self.telemetry.snapshot()]

    def _trace_lanes(self) -> list[tuple]:
        lanes = self.engine.trace_lanes()
        lanes.append(
            (self.telemetry.lane, self.engine.n_ranks, self.telemetry.drain_events())
        )
        return lanes

    def _concurrent_lanes(self) -> int:
        # process-backend ranks advance in parallel (each lane spans the
        # wall clock); the serial engine interleaves them in one process
        if self.spec.solver.backend == "process":
            return self.engine.n_ranks
        return 1

    def telemetry_block(self) -> dict:
        block = super().telemetry_block()
        stats = self.engine.stats
        block["counters"]["comm/messages"] = int(stats.n_messages)
        block["counters"]["comm/bytes"] = int(stats.n_bytes)
        return block

    # -- checkpoint / restart -------------------------------------------
    def _solver_state_arrays(self) -> dict:
        buffers = self.engine.gather_buffers()
        return {
            "step_index": self.engine.step_indices(),
            "b1": buffers["b1"],
            "b2": buffers["b2"],
            "b3": buffers["b3"],
        }

    def _restore_solver_state(self, data, meta: dict) -> None:
        self.engine.restore(
            dofs=data["dofs"],
            b1=data["b1"],
            b2=data["b2"],
            b3=data["b3"],
            step_index=data["step_index"],
            time=float(meta["time"]),
            n_element_updates=int(meta["n_element_updates"]),
        )

    def _after_restore(self) -> None:
        # the restore replaced the global receivers' recording lists; the
        # per-rank shims must share the new list objects
        self.engine.rebind_receivers()

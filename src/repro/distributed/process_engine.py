"""Process-per-rank clustered-LTS execution with overlapped halo exchange.

:class:`ProcessLtsEngine` presents the same facade as the in-process
:class:`~repro.distributed.engine.DistributedLtsEngine` (``dofs``, ``time``,
``n_element_updates``, ``set_initial_condition``, ``step_cycle``, ``run``,
gather/restore, measured communication stats), but each rank runs in its own
``multiprocessing`` worker: the ranks advance through the rate-2 schedule
concurrently, and the halo payloads cross real process boundaries through
:class:`~repro.parallel.process_comm.ProcessCommunicator`.

Within each micro step a worker predicts its boundary rows, posts the due
sends (non-blocking -- a feeder thread ships them), computes its interior
rows while the messages are in flight, and only then corrects, blocking on
whatever payloads have not arrived yet.  This is the paper's communication
hiding (Sec. V-C) made real: wall-clock now improves with ranks, while the
results stay bit-identical to the single-rank and serial-backend runs.

Orchestration notes:

* the parent holds the global discretization, the partition map and the
  global receiver set; per-cycle each worker reports its time, update count,
  cumulative traffic counters and receiver recordings, which the parent
  mirrors so summaries and checkpoints never need a live worker round-trip
  beyond a state gather,
* :meth:`close` gathers the dynamic state into a parent-side cache and shuts
  the workers down; stepping a closed engine transparently respawns them
  from the cache, so runners can aggressively release the processes, and
* workers are daemons and every blocking receive carries a timeout, so a
  crashed peer surfaces as an error instead of a hang.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import time
import traceback
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from ..core.clustering import Clustering
from ..core.lts_scheduler import schedule_cycle
from ..kernels.backend import make_backend
from ..kernels.discretization import Discretization
from ..observability import TelemetryConfig, merge_snapshots, peak_rss_mb
from ..parallel.communicator import MessageStats, pair_key
from ..parallel.exchange import HaloIndex
from ..parallel.process_comm import ProcessCommunicator
from ..parallel.shm_comm import ShmCommunicator, ShmRing, create_ring_segment, ring_capacity
from ..source.moment_tensor import DiscretePointSource
from ..source.receivers import Receiver, ReceiverSet
from .engine import modelled_exchange_per_cycle, remap_local_sources
from .stepper import RankSolver
from .subdomain import RankSubdomain

__all__ = ["ProcessLtsEngine", "COMM_KINDS"]

#: halo transports of the process backend: ``queue`` ships payloads through
#: multiprocessing queues (pickled), ``shm`` writes them in place into
#: shared-memory ring buffers and ships only tokens
COMM_KINDS = ("queue", "shm")

#: how often an idle worker interrupts its command wait to check whether it
#: has been orphaned (parent SIGKILLed and the worker reparented)
_ORPHAN_POLL_S = 5.0


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _reap_stale_segments() -> list[str]:
    """Unlink ring segments whose creating process no longer exists.

    A SIGKILL delivered to the *whole process group* takes out the parent,
    the workers and the multiprocessing resource tracker in one shot, so no
    process survives to unlink the rings.  Ring names embed the creating
    pid (``repro-<pid>-<token>-<src>to<dst>``), so the next engine start
    reclaims anything whose owner is dead.  Returns the reaped names.
    """
    reaped: list[str] = []
    for path in glob.glob("/dev/shm/repro-*"):
        name = os.path.basename(path)
        try:
            pid = int(name.split("-")[1])
        except (IndexError, ValueError):
            continue  # not a ring name this engine generates
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            segment = SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue  # lost a race with another reaper
        segment.close()
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass
        reaped.append(name)
    return reaped


def _build_communicator(
    comm_kind: str,
    rank: int,
    n_ranks: int,
    inbound,
    outbound: dict,
    ring_names: dict | None,
    timeout: float,
):
    """Worker-side communicator construction for either transport.

    For ``shm`` the worker only *attaches* to the parent-created segments
    (and never unlinks: segment lifetime belongs to the parent, and the
    resource tracker shared across the fork tree keeps the SIGKILL
    safety net armed).
    """
    if comm_kind == "queue":
        return ProcessCommunicator(rank, n_ranks, inbound, outbound, timeout=timeout)
    tx = {
        dst: ShmRing.attach(name)
        for (src, dst), name in ring_names.items()
        if src == rank
    }
    rx = {
        src: ShmRing.attach(name)
        for (src, dst), name in ring_names.items()
        if dst == rank
    }
    return ShmCommunicator(
        rank, n_ranks, inbound, outbound, tx=tx, rx=rx, timeout=timeout
    )


def _shim_receiver_set(shims: list[Receiver]) -> ReceiverSet | None:
    """A minimal ReceiverSet over prebuilt (rank-local) receiver shims."""
    if not shims:
        return None
    shim_set = ReceiverSet.__new__(ReceiverSet)
    shim_set.receivers = list(shims)
    shim_set._by_element = {}
    for shim in shims:
        shim_set._by_element.setdefault(shim.element, []).append(shim)
    return shim_set


def _rank_worker(
    rank: int,
    subdomain: RankSubdomain,
    sources: list,
    shims: list[Receiver],
    n_fused: int,
    kernels: str,
    cluster_time_steps: np.ndarray,
    inbound,
    outbound: dict,
    ctrl,
    comm_kind: str,
    ring_names: dict | None,
    comm_timeout: float,
    telemetry_config: TelemetryConfig,
    telemetry_epoch: float,
) -> None:
    """One rank's event loop: build the local solver, serve parent commands."""
    comm = None
    try:
        comm = _build_communicator(
            comm_kind,
            rank,
            subdomain.n_ranks,
            inbound,
            outbound,
            ring_names,
            comm_timeout,
        )
        receivers = _shim_receiver_set(shims)
        # the lane uses the parent's trace epoch: perf_counter is the
        # system-wide monotonic clock, so all rank lanes share one timeline
        lane = telemetry_config.build(rank=rank, epoch=telemetry_epoch)
        solver = RankSolver(
            subdomain,
            comm,
            sources=sources,
            receivers=receivers,
            n_fused=n_fused,
            kernels=kernels,
            telemetry=lane,
        )
        n_clusters = len(cluster_time_steps)
        dt0 = float(cluster_time_steps[0])
        macro_dt = float(cluster_time_steps[-1])
        #: per-receiver number of samples already shipped to the parent --
        #: replies carry only the increment, so the per-cycle IPC volume
        #: stays constant over the run instead of growing with its length
        reported: dict[str, int] = {}
        parent_pid = os.getppid()
        while True:
            # never block on ctrl.recv() without a timeout: under the fork
            # start method every worker also inherits the parent ends of its
            # *peers'* ctrl pipes, so a SIGKILLed parent produces no EOF and
            # a plain recv() would orphan the workers forever.  Poll, and
            # treat reparenting as the shutdown signal.
            if not ctrl.poll(_ORPHAN_POLL_S):
                if os.getppid() != parent_pid:
                    break
                continue
            command, payload = ctrl.recv()
            if command == "cycles":
                for _ in range(payload):
                    for entry in schedule_cycle(n_clusters):
                        solver.begin_micro_step(entry)
                        solver.advance_interior(entry)
                        solver.finish_micro_step(entry, dt0)
                    solver.time += macro_dt
                # checked once per command, after the last batched cycle: a
                # mid-batch check would race with a faster peer's run-ahead
                # sends for the next cycle
                if not comm.all_delivered():
                    raise RuntimeError(
                        f"rank {rank}: undelivered halo payloads after a macro cycle"
                    )
                reply = {
                    "time": solver.time,
                    "n_element_updates": int(solver.n_element_updates),
                    "stats": comm.stats.as_dict(),
                    "records": _new_records(receivers, reported),
                    # RUSAGE_CHILDREN only counts *terminated* children, so a
                    # live worker must report its own peak RSS for the run
                    # ledger's per-cycle memory column
                    "peak_rss_mb": peak_rss_mb(),
                }
                if lane.enabled:
                    # cumulative metric snapshot plus the trace-event
                    # *increment* (drained), mirroring the records protocol:
                    # per-cycle IPC stays proportional to new work
                    reply["telemetry"] = lane.snapshot()
                    reply["trace_events"] = lane.drain_events()
                ctrl.send(("ok", reply))
            elif command == "dofs":
                ctrl.send(("ok", solver.dofs))
            elif command == "set_dofs":
                solver.dofs = np.asarray(payload).copy()
                ctrl.send(("ok", None))
            elif command == "state":
                ctrl.send(
                    (
                        "ok",
                        {
                            "dofs": solver.dofs,
                            "b1": solver.buffers.b1,
                            "b2": solver.buffers.b2,
                            "b3": solver.buffers.b3,
                            "step_index": np.array(
                                [c.step_index for c in solver.clusters], dtype=np.int64
                            ),
                            "time": solver.time,
                            "n_element_updates": int(solver.n_element_updates),
                        },
                    )
                )
            elif command == "restore":
                solver.dofs = payload["dofs"].copy()
                solver.buffers.b1 = payload["b1"].copy()
                solver.buffers.b2 = payload["b2"].copy()
                solver.buffers.b3 = payload["b3"].copy()
                for cluster, index in zip(solver.clusters, payload["step_index"]):
                    cluster.step_index = int(index)
                solver.time = float(payload["time"])
                solver.n_element_updates = int(payload["n_element_updates"])
                ctrl.send(("ok", None))
            elif command == "set_records":
                if receivers is not None:
                    by_name = {r.name: r for r in receivers.receivers}
                    for name, times, samples in payload:
                        shim = by_name.get(name)
                        if shim is not None:
                            shim.times = [float(t) for t in times]
                            shim.samples = [np.asarray(s) for s in samples]
                            reported[name] = len(shim.times)
                ctrl.send(("ok", None))
            elif command == "exit":
                ctrl.send(("ok", None))
                return
            else:
                raise RuntimeError(f"rank {rank}: unknown command {command!r}")
    except Exception:
        try:
            ctrl.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        # detach from the shm segments (queue transport: no-op); unlinking
        # stays with the parent
        if comm is not None:
            try:
                comm.close()
            except Exception:
                pass


def _new_records(receivers: ReceiverSet | None, reported: dict[str, int]) -> list:
    """Per-receiver recordings made since the last report (and mark them)."""
    if receivers is None:
        return []
    increments = []
    for receiver in receivers.receivers:
        start = reported.get(receiver.name, 0)
        increments.append(
            (
                receiver.name,
                list(receiver.times[start:]),
                [np.asarray(s) for s in receiver.samples[start:]],
            )
        )
        reported[receiver.name] = len(receiver.times)
    return increments


class ProcessLtsEngine:
    """Multi-rank clustered LTS with one worker process per rank."""

    def __init__(
        self,
        disc: Discretization,
        clustering: Clustering,
        partitions: np.ndarray,
        sources: list | None = None,
        receivers: ReceiverSet | None = None,
        n_fused: int = 0,
        kernels=None,
        comm: str = "queue",
        comm_timeout: float | None = None,
        telemetry: TelemetryConfig | None = None,
        telemetry_epoch: float | None = None,
    ):
        partitions = np.asarray(partitions, dtype=np.int64)
        if len(partitions) != disc.n_elements:
            raise ValueError("partitions do not match the discretization")
        self.disc = disc
        self.clustering = clustering
        self.partitions = partitions
        self.n_ranks = int(partitions.max()) + 1
        if self.n_ranks < 2:
            raise ValueError("the process backend needs at least two ranks")
        self.n_fused = n_fused
        # workers rebuild their backend from the kind name (backends hold
        # per-process caches, so the instance itself is never shipped)
        self.kernels = make_backend(kernels).name
        self.receiver_set = receivers
        # a blocked halo receive aborts after this many seconds (a healthy
        # peer on a big mesh can legitimately compute for a while, so the
        # limit is tunable: constructor arg, else REPRO_HALO_TIMEOUT_S)
        if comm_timeout is None:
            comm_timeout = float(os.environ.get("REPRO_HALO_TIMEOUT_S", "120"))
        self.comm_timeout = float(comm_timeout)
        if comm not in COMM_KINDS:
            raise ValueError(f"unknown comm transport {comm!r} (choose from {COMM_KINDS})")
        self.comm_kind = comm

        self._global_sources = [
            s if isinstance(s, DiscretePointSource) else DiscretePointSource(disc, s)
            for s in (sources or [])
        ]
        self.subdomains = [
            RankSubdomain(disc, clustering, partitions, r) for r in range(self.n_ranks)
        ]
        self._rank_sources = [self._local_sources(sub) for sub in self.subdomains]
        self._rank_shims = [self._local_shims(sub) for sub in self.subdomains]

        self.halo = HaloIndex.from_partitions(disc.mesh.neighbors, partitions)
        #: macro cycles stepped by THIS engine instance -- the denominator
        #: for per-cycle traffic (a restored engine's counters start at zero)
        self.cycles_stepped = 0

        self._time = 0.0
        self._n_element_updates = 0
        self._rank_stats = [MessageStats().as_dict() for _ in range(self.n_ranks)]
        self._stats_base = MessageStats()
        #: per-rank worker peak RSS (MiB), max over worker generations
        self._rank_peak_rss = [0.0] * self.n_ranks
        self.telemetry_config = telemetry if telemetry is not None else TelemetryConfig()
        #: one shared trace epoch for every worker generation, so lanes of a
        #: respawned engine continue on the same timeline
        self._telemetry_epoch = (
            telemetry_epoch if telemetry_epoch is not None else time.perf_counter()
        )
        #: per-rank mirrors of the workers' cumulative telemetry snapshots
        #: (current spawn) and the merged history of earlier spawns --
        #: exactly the _rank_stats/_stats_base split used for traffic
        self._rank_telemetry: list[dict] = [{} for _ in range(self.n_ranks)]
        self._telemetry_base: list[dict] = [{} for _ in range(self.n_ranks)]
        self._rank_trace_events: list[list] = [[] for _ in range(self.n_ranks)]
        self._cache: dict | None = None
        self._procs: list = []
        self._ctrls: list = []
        #: parent-owned shm segment handles of the current worker generation
        #: (shm transport only) -- created in ``_spawn``, unlinked in
        #: ``_terminate`` so neither close/respawn cycles nor crash paths
        #: leave segments behind
        self._shm_segments: list = []
        self._alive = False
        self._failed = False
        # fork shares the already-built subdomains with the workers for free;
        # everything shipped is picklable, so spawn-only platforms also work
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        self._spawn()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _local_sources(self, subdomain: RankSubdomain) -> list:
        return remap_local_sources(self._global_sources, self.partitions, subdomain)

    def _local_shims(self, subdomain: RankSubdomain) -> list[Receiver]:
        """Rank-local receiver shims with their *own* recording lists.

        Unlike the serial engine's shims these cannot share list objects with
        the global receivers -- they live in another process; the recordings
        are merged back after every cycle instead.
        """
        if self.receiver_set is None:
            return []
        shims = []
        for receiver in self.receiver_set.receivers:
            if self.partitions[receiver.element] != subdomain.rank:
                continue
            shims.append(
                Receiver(
                    name=receiver.name,
                    location=receiver.location,
                    element=int(subdomain.local_of_global[receiver.element]),
                    basis_values=receiver.basis_values,
                )
            )
        return shims

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _create_rings(self) -> dict[tuple[int, int], str]:
        """Create one ring segment per directed pair the exchange model names.

        Sized from the model (several cycles deep, see ``ring_capacity``) --
        measured traffic must equal the model exactly, so pairs outside it
        never communicate and get no segment.  The parent keeps the handles:
        it is the sole owner of segment lifetime (workers only attach), and
        on a parent SIGKILL the surviving resource tracker unlinks whatever
        is still registered.  Rings orphaned by a whole-group SIGKILL (which
        kills the tracker too) are reclaimed here, at the next engine start.
        """
        _reap_stale_segments()
        per_pair = self.modelled_exchange_per_cycle()["per_pair"]
        token = os.urandom(4).hex()
        names: dict[tuple[int, int], str] = {}
        for src in range(self.n_ranks):
            for dst in range(self.n_ranks):
                pair_bytes = per_pair.get(pair_key(src, dst), 0)
                if src == dst or not pair_bytes:
                    continue
                name = f"repro-{os.getpid()}-{token}-{src}to{dst}"
                self._shm_segments.append(
                    create_ring_segment(name, ring_capacity(pair_bytes))
                )
                names[(src, dst)] = name
        return names

    def _unlink_segments(self) -> None:
        for shm in self._shm_segments:
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover - shutdown safety
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._shm_segments = []

    def _spawn(self) -> None:
        ctx = self._ctx
        inbound = [ctx.Queue() for _ in range(self.n_ranks)]
        ring_names = self._create_rings() if self.comm_kind == "shm" else None
        self._procs, self._ctrls = [], []
        for r in range(self.n_ranks):
            parent_end, child_end = ctx.Pipe()
            outbound = {d: inbound[d] for d in range(self.n_ranks) if d != r}
            process = ctx.Process(
                target=_rank_worker,
                args=(
                    r,
                    self.subdomains[r],
                    self._rank_sources[r],
                    self._rank_shims[r],
                    self.n_fused,
                    self.kernels,
                    np.asarray(self.clustering.cluster_time_steps),
                    inbound[r],
                    outbound,
                    child_end,
                    self.comm_kind,
                    ring_names,
                    self.comm_timeout,
                    self.telemetry_config,
                    self._telemetry_epoch,
                ),
                daemon=True,
            )
            process.start()
            self._procs.append(process)
            self._ctrls.append(parent_end)
        self._alive = True

    def _ensure_alive(self) -> None:
        if self._alive:
            return
        if self._failed:
            # a worker died mid-run: the dynamic state is gone, and quietly
            # respawning zero-state workers would resurrect the run as a
            # blank simulation
            raise RuntimeError(
                "the process engine lost its workers mid-run; the dynamic "
                "state is unrecoverable -- rebuild the runner (or resume "
                "from the last checkpoint)"
            )
        # traffic accounted before the shutdown must survive the respawn
        for stats in self._rank_stats:
            self._stats_base.merge(stats)
        self._rank_stats = [MessageStats().as_dict() for _ in range(self.n_ranks)]
        # ... and so must the telemetry accrued by the previous workers
        for r in range(self.n_ranks):
            if self._rank_telemetry[r]:
                self._telemetry_base[r] = merge_snapshots(
                    [self._telemetry_base[r], self._rank_telemetry[r]]
                )
        self._rank_telemetry = [{} for _ in range(self.n_ranks)]
        self._spawn()
        if self._cache is not None:
            state = self._cache
            for ctrl, sub in zip(self._ctrls, self.subdomains):
                ctrl.send(
                    (
                        "restore",
                        {
                            "dofs": state["dofs"][sub.owned],
                            "b1": state["b1"][sub.owned],
                            "b2": state["b2"][sub.owned],
                            "b3": state["b3"][sub.owned],
                            "step_index": state["step_index"],
                            "time": state["time"],
                            "n_element_updates": state["rank_updates"][sub.rank],
                        },
                    )
                )
            self._collect()
            self.rebind_receivers()
            self._cache = None

    def _collect(self) -> list:
        """One reply from every worker; surfaces worker errors eagerly."""
        replies: list = [None] * len(self._ctrls)
        remaining = set(range(len(self._ctrls)))
        while remaining:
            for index in list(remaining):
                ctrl = self._ctrls[index]
                if not ctrl.poll(0.02):
                    if not self._procs[index].is_alive():
                        self._failed = True
                        self._terminate()
                        raise RuntimeError(
                            f"rank {index} worker died without a reply"
                        )
                    continue
                status, payload = ctrl.recv()
                if status == "error":
                    self._failed = True
                    self._terminate()
                    raise RuntimeError(f"rank {index} worker failed:\n{payload}")
                replies[index] = payload
                remaining.discard(index)
        return replies

    def _command_all(self, command: str, payloads=None) -> list:
        self._ensure_alive()
        for index, ctrl in enumerate(self._ctrls):
            payload = payloads[index] if payloads is not None else None
            try:
                ctrl.send((command, payload))
            except (BrokenPipeError, OSError) as error:
                self._failed = True
                self._terminate()
                raise RuntimeError(f"rank {index} worker is gone") from error
        return self._collect()

    def _terminate(self) -> None:
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=5)
        # workers are gone (or being reaped): safe to unlink the ring
        # segments; a respawn creates a fresh generation
        self._unlink_segments()
        self._alive = False

    def close(self) -> None:
        """Gather the dynamic state into the parent and stop the workers.

        The engine stays fully usable: reads are served from the cache and
        stepping transparently respawns the workers from it.
        """
        if not self._alive:
            return
        # stats and receiver recordings only change inside "cycles" commands,
        # so the per-cycle mirrors are already current here
        states = self._command_all("state")
        self._cache = {
            "dofs": self._gather([s["dofs"] for s in states]),
            "b1": self._gather([s["b1"] for s in states]),
            "b2": self._gather([s["b2"] for s in states]),
            "b3": self._gather([s["b3"] for s in states]),
            "step_index": states[0]["step_index"],
            "time": states[0]["time"],
            "rank_updates": [s["n_element_updates"] for s in states],
        }
        for ctrl in self._ctrls:
            ctrl.send(("exit", None))
        self._collect()
        for process in self._procs:
            process.join(timeout=5)
        self._terminate()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            if getattr(self, "_alive", False):
                self._terminate()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # single-solver facade
    # ------------------------------------------------------------------
    @property
    def macro_dt(self) -> float:
        return float(self.clustering.cluster_time_steps[-1])

    @property
    def time(self) -> float:
        return self._time

    @property
    def n_element_updates(self) -> int:
        return self._n_element_updates

    @property
    def dofs(self) -> np.ndarray:
        if not self._alive and self._cache is not None:
            return self._cache["dofs"]
        return self._gather(self._command_all("dofs"))

    def _gather(self, per_rank: list[np.ndarray]) -> np.ndarray:
        template = per_rank[0]
        out = np.empty(
            (self.disc.n_elements,) + template.shape[1:], dtype=template.dtype
        )
        for array, sub in zip(per_rank, self.subdomains):
            out[sub.owned] = array
        return out

    def set_initial_condition(self, func) -> None:
        """Project the initial condition globally and scatter it to the ranks."""
        global_dofs = self.disc.project_initial_condition(func, n_fused=self.n_fused)
        self._command_all(
            "set_dofs", [global_dofs[sub.owned] for sub in self.subdomains]
        )

    def rebind_receivers(self) -> None:
        """Push the parent-side receiver recordings into the worker shims
        (after a checkpoint restore replaced them).

        Each rank only receives the history of the receivers it owns -- the
        others would be discarded worker-side anyway.
        """
        if self.receiver_set is None or not self._alive:
            return
        payloads = []
        for sub in self.subdomains:
            payloads.append(
                [
                    (r.name, list(r.times), [np.asarray(s) for s in r.samples])
                    for r in self.receiver_set.receivers
                    if self.partitions[r.element] == sub.rank
                ]
            )
        self._command_all("set_records", payloads)

    def _merge_records(self, per_rank_records: list) -> None:
        """Append the workers' newly reported samples to the global receivers
        (replies carry increments, see ``_new_records``)."""
        if self.receiver_set is None:
            return
        for records in per_rank_records:
            for name, times, samples in records:
                receiver = self.receiver_set[name]
                receiver.times.extend(float(t) for t in times)
                receiver.samples.extend(np.asarray(s) for s in samples)

    # ------------------------------------------------------------------
    # time stepping
    # ------------------------------------------------------------------
    def step_cycle(self) -> None:
        """Advance all ranks by one macro cycle, concurrently."""
        replies = self._command_all("cycles", [1] * self.n_ranks)
        self._time = float(replies[0]["time"])
        self._n_element_updates = sum(r["n_element_updates"] for r in replies)
        self._rank_stats = [r["stats"] for r in replies]
        self._rank_peak_rss = [
            max(prev, float(reply.get("peak_rss_mb", 0.0)))
            for prev, reply in zip(self._rank_peak_rss, replies)
        ]
        self._merge_records([r["records"] for r in replies])
        if self.telemetry_config.enabled:
            self._rank_telemetry = [r.get("telemetry", {}) for r in replies]
            for events, reply in zip(self._rank_trace_events, replies):
                events.extend(reply.get("trace_events", []))
        self.cycles_stepped += 1

    def run(self, t_end: float) -> np.ndarray:
        """Advance to at least ``t_end`` (full macro cycles); returns the DOFs."""
        if t_end < self.time:
            raise ValueError("t_end lies in the past")
        n_cycles = int(np.ceil((t_end - self.time) / self.macro_dt - 1e-12))
        for _ in range(n_cycles):
            self.step_cycle()
        return self.dofs

    # ------------------------------------------------------------------
    # checkpoint interchange with the single-rank solver
    # ------------------------------------------------------------------
    def _state_arrays(self) -> dict:
        if not self._alive and self._cache is not None:
            return self._cache
        states = self._command_all("state")
        return {
            "dofs": self._gather([s["dofs"] for s in states]),
            "b1": self._gather([s["b1"] for s in states]),
            "b2": self._gather([s["b2"] for s in states]),
            "b3": self._gather([s["b3"] for s in states]),
            "step_index": states[0]["step_index"],
        }

    def gather_buffers(self) -> dict[str, np.ndarray]:
        state = self._state_arrays()
        return {"b1": state["b1"], "b2": state["b2"], "b3": state["b3"]}

    def step_indices(self) -> np.ndarray:
        """Per-cluster step counters (identical on every rank)."""
        return np.asarray(self._state_arrays()["step_index"], dtype=np.int64)

    def _updates_per_cycle(self, subdomain: RankSubdomain) -> int:
        counts = subdomain.clustering.counts
        n_clusters = subdomain.clustering.n_clusters
        steps = 2 ** (n_clusters - 1 - np.arange(n_clusters))
        return int(np.sum(counts * steps))

    def restore(
        self,
        dofs: np.ndarray,
        b1: np.ndarray,
        b2: np.ndarray,
        b3: np.ndarray,
        step_index: np.ndarray,
        time: float,
        n_element_updates: int,
    ) -> None:
        """Scatter a globally stored dynamic state onto the rank workers.

        The global element-update count is re-distributed deterministically
        (per-rank updates per cycle are fixed by the clustering), exactly as
        the serial engine does.
        """
        per_cycle = [self._updates_per_cycle(sub) for sub in self.subdomains]
        total_per_cycle = int(sum(per_cycle))
        if total_per_cycle and n_element_updates % total_per_cycle != 0:
            raise ValueError("element-update count is not at a macro-cycle boundary")
        cycles = n_element_updates // total_per_cycle if total_per_cycle else 0
        step_index = np.asarray(step_index, dtype=np.int64)
        payloads = [
            {
                "dofs": dofs[sub.owned],
                "b1": b1[sub.owned],
                "b2": b2[sub.owned],
                "b3": b3[sub.owned],
                "step_index": step_index,
                "time": float(time),
                "n_element_updates": int(cycles * updates),
            }
            for sub, updates in zip(self.subdomains, per_cycle)
        ]
        self._command_all("restore", payloads)
        self._time = float(time)
        self._n_element_updates = int(cycles * total_per_cycle)
        self._cache = None

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> MessageStats:
        """Measured communication statistics, aggregated over the workers."""
        total = MessageStats()
        total.merge(self._stats_base)
        for stats in self._rank_stats:
            total.merge(stats)
        return total

    @property
    def rank_peak_rss_mb(self) -> list[float]:
        """Per-rank worker peak RSS in MiB (zeros before the first cycle)."""
        return list(self._rank_peak_rss)

    def telemetry_snapshots(self) -> list[dict]:
        """Cumulative per-rank telemetry, current workers plus prior spawns."""
        snapshots = []
        for r in range(self.n_ranks):
            merged = merge_snapshots(
                [self._telemetry_base[r], self._rank_telemetry[r]]
            )
            merged["rank"] = r
            merged["lane"] = f"rank {r}"
            snapshots.append(merged)
        return snapshots

    def merged_telemetry(self) -> dict:
        """Cross-rank merged regions/counters of the workers' lanes."""
        return merge_snapshots(self.telemetry_snapshots())

    def trace_lanes(self) -> list[tuple]:
        """``(lane_name, tid, events)`` triples for the Chrome-trace export."""
        return [
            (f"rank {r}", r, list(events))
            for r, events in enumerate(self._rank_trace_events)
        ]

    def modelled_exchange_per_cycle(self) -> dict:
        """The Fig-10 machine model's view of the same halo, for validation."""
        return modelled_exchange_per_cycle(
            self.halo,
            self.clustering,
            self.disc.order,
            self.n_fused,
            itemsize=np.dtype(self.disc.dtype).itemsize,
        )

"""Multi-rank clustered-LTS execution engine (Sec. V-C).

Drives one :class:`~repro.distributed.stepper.RankSolver` per partition
through the shared rate-2 schedule: at every micro step all ranks predict
their due clusters, ship the face-local compressed halo payloads through the
:class:`~repro.parallel.communicator.SimulatedCommunicator`, and correct.
Each rank only ever touches its own local arrays plus the communicator, so
the engine is a faithful in-process stand-in for the MPI execution path --
with every message counted.

The engine mirrors enough of the single-solver interface (``dofs``,
``time``, ``n_element_updates``, ``set_initial_condition``, ``step_cycle``)
for the scenario runner to drive it interchangeably; ``gather``/``restore``
convert between the per-rank state and the global arrays the checkpoint
format stores, which keeps single-rank and distributed checkpoints
interchangeable.
"""

from __future__ import annotations

import copy

import numpy as np

from ..core.clustering import Clustering
from ..core.lts_scheduler import schedule_cycle
from ..kernels.discretization import Discretization
from ..observability import TelemetryConfig, merge_snapshots
from ..parallel.communicator import SimulatedCommunicator
from ..parallel.exchange import HaloIndex, exchange_volumes_per_cycle
from ..source.moment_tensor import DiscretePointSource
from ..source.receivers import Receiver, ReceiverSet
from .stepper import RankSolver
from .subdomain import RankSubdomain

__all__ = [
    "DistributedLtsEngine",
    "remap_local_sources",
    "modelled_exchange_per_cycle",
    "per_rank_sent_bytes",
]


def per_rank_sent_bytes(per_pair: dict, n_ranks: int) -> list[int]:
    """Bytes sent by each rank, folded from the ``"src->dst"`` pair stats.

    The per-rank column of the run ledger's traffic record: an imbalanced
    halo shows up here before it shows up as exposed receive-wait time.
    """
    sent = [0] * n_ranks
    for pair, entry in per_pair.items():
        src = int(pair.split("->", 1)[0])
        sent[src] += int(entry["bytes"])
    return sent


def remap_local_sources(
    global_sources: list, partitions: np.ndarray, subdomain: RankSubdomain
) -> list:
    """One rank's point sources, element ids remapped to local order.

    Shared by the serial and the process engines so source localisation can
    never diverge between the backends.
    """
    local = []
    for source in global_sources:
        if partitions[source.element] != subdomain.rank:
            continue
        remapped = copy.copy(source)
        remapped.element = int(subdomain.local_of_global[source.element])
        local.append(remapped)
    return local


def modelled_exchange_per_cycle(
    halo: HaloIndex, clustering: Clustering, order: int, n_fused: int, itemsize: int = 8
) -> dict:
    """The Fig-10 machine model's view of a halo, for validating measured
    traffic (shared by both engine backends).

    Payloads travel in the run precision (``itemsize`` bytes per value,
    times the fused width), so the model is evaluated at that value size;
    a distributed run's measured traffic must match these numbers exactly.
    """
    return exchange_volumes_per_cycle(
        halo,
        clustering.cluster_ids,
        clustering.n_clusters,
        order=order,
        face_local=True,
        bytes_per_value=itemsize * max(1, n_fused),
    )


class DistributedLtsEngine:
    """In-process multi-rank clustered LTS over a partitioned mesh."""

    def __init__(
        self,
        disc: Discretization,
        clustering: Clustering,
        partitions: np.ndarray,
        sources: list | None = None,
        receivers: ReceiverSet | None = None,
        n_fused: int = 0,
        kernels=None,
        telemetry: TelemetryConfig | None = None,
        telemetry_epoch: float | None = None,
    ):
        partitions = np.asarray(partitions, dtype=np.int64)
        if len(partitions) != disc.n_elements:
            raise ValueError("partitions do not match the discretization")
        self.disc = disc
        self.clustering = clustering
        self.partitions = partitions
        self.n_ranks = int(partitions.max()) + 1
        self.n_fused = n_fused
        self.comm = SimulatedCommunicator(self.n_ranks)
        self.receiver_set = receivers

        self._global_sources = [
            s if isinstance(s, DiscretePointSource) else DiscretePointSource(disc, s)
            for s in (sources or [])
        ]

        self.subdomains = [
            RankSubdomain(disc, clustering, partitions, r) for r in range(self.n_ranks)
        ]
        self.telemetry_config = telemetry if telemetry is not None else TelemetryConfig()
        #: one telemetry lane per rank, sharing the engine's trace epoch so
        #: the exported Chrome-trace lanes line up on one timeline
        self._rank_telemetry = [
            self.telemetry_config.build(rank=r, epoch=telemetry_epoch)
            for r in range(self.n_ranks)
        ]
        for lane in self._rank_telemetry[1:]:
            lane.epoch = self._rank_telemetry[0].epoch
        self.ranks = [
            RankSolver(
                sub,
                self.comm,
                sources=self._local_sources(sub),
                receivers=None,
                n_fused=n_fused,
                kernels=kernels,
                telemetry=lane,
            )
            for sub, lane in zip(self.subdomains, self._rank_telemetry)
        ]
        self.rebind_receivers()

        self.halo = HaloIndex.from_partitions(disc.mesh.neighbors, partitions)
        #: macro cycles stepped by THIS engine instance -- the denominator
        #: for per-cycle traffic (a restored engine's counters start at zero)
        self.cycles_stepped = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _local_sources(self, subdomain: RankSubdomain) -> list:
        return remap_local_sources(self._global_sources, self.partitions, subdomain)

    def rebind_receivers(self) -> None:
        """(Re)build the per-rank receiver shims.

        Each shim :class:`Receiver` shares the ``times``/``samples`` list
        objects of its global counterpart, so recordings made by the owning
        rank appear directly in the global :class:`ReceiverSet`.  Called at
        setup and again after a checkpoint restore replaces those lists.
        """
        if self.receiver_set is None:
            return
        for rank, sub in zip(self.ranks, self.subdomains):
            shims = []
            for receiver in self.receiver_set.receivers:
                if self.partitions[receiver.element] != sub.rank:
                    continue
                shims.append(
                    Receiver(
                        name=receiver.name,
                        location=receiver.location,
                        element=int(sub.local_of_global[receiver.element]),
                        basis_values=receiver.basis_values,
                        times=receiver.times,
                        samples=receiver.samples,
                    )
                )
            shim_set = ReceiverSet.__new__(ReceiverSet)
            shim_set.receivers = shims
            shim_set._by_element = {}
            for shim in shims:
                shim_set._by_element.setdefault(shim.element, []).append(shim)
            rank.receivers = shim_set if shims else None

    # ------------------------------------------------------------------
    # single-solver facade
    # ------------------------------------------------------------------
    @property
    def macro_dt(self) -> float:
        return float(self.clustering.cluster_time_steps[-1])

    @property
    def time(self) -> float:
        return self.ranks[0].time

    @property
    def n_element_updates(self) -> int:
        return int(sum(rank.n_element_updates for rank in self.ranks))

    @property
    def dofs(self) -> np.ndarray:
        """The global DOF array, gathered from the ranks."""
        return self._gather(lambda rank: rank.dofs)

    def _gather(self, array_of_rank) -> np.ndarray:
        template = array_of_rank(self.ranks[0])
        out = np.empty((self.disc.n_elements,) + template.shape[1:], dtype=template.dtype)
        for rank, sub in zip(self.ranks, self.subdomains):
            out[sub.owned] = array_of_rank(rank)
        return out

    def set_initial_condition(self, func) -> None:
        """Project the initial condition globally and scatter it to the ranks."""
        global_dofs = self.disc.project_initial_condition(func, n_fused=self.n_fused)
        for rank, sub in zip(self.ranks, self.subdomains):
            rank.dofs = global_dofs[sub.owned].copy()

    # ------------------------------------------------------------------
    # time stepping
    # ------------------------------------------------------------------
    def step_cycle(self) -> None:
        """Advance all ranks by one macro cycle with overlapped halo exchange.

        Per micro step every rank first predicts only its *boundary* rows,
        posts the due sends, and predicts the *interior* rows afterwards --
        the same boundary-first structure the process backend uses to hide
        message latency behind interior work (here the communicator is
        instant, so the ordering only proves the structure is sound).
        """
        n_clusters = self.clustering.n_clusters
        dt0 = float(self.clustering.cluster_time_steps[0])
        for entry in schedule_cycle(n_clusters):
            for rank in self.ranks:
                rank.begin_micro_step(entry)
            for rank in self.ranks:
                rank.advance_interior(entry)
            for rank in self.ranks:
                rank.finish_micro_step(entry, dt0)
        for rank in self.ranks:
            rank.time += self.macro_dt
        self.cycles_stepped += 1
        if not self.comm.all_delivered():
            raise RuntimeError("halo exchange left undelivered messages after a macro cycle")

    def run(self, t_end: float) -> np.ndarray:
        """Advance to at least ``t_end`` (full macro cycles); returns the DOFs."""
        if t_end < self.time:
            raise ValueError("t_end lies in the past")
        n_cycles = int(np.ceil((t_end - self.time) / self.macro_dt - 1e-12))
        for _ in range(n_cycles):
            self.step_cycle()
        return self.dofs

    # ------------------------------------------------------------------
    # checkpoint interchange with the single-rank solver
    # ------------------------------------------------------------------
    def gather_buffers(self) -> dict[str, np.ndarray]:
        return {
            "b1": self._gather(lambda rank: rank.buffers.b1),
            "b2": self._gather(lambda rank: rank.buffers.b2),
            "b3": self._gather(lambda rank: rank.buffers.b3),
        }

    def step_indices(self) -> np.ndarray:
        """Per-cluster step counters (identical on every rank)."""
        return np.array(
            [cluster.step_index for cluster in self.ranks[0].clusters], dtype=np.int64
        )

    def restore(
        self,
        dofs: np.ndarray,
        b1: np.ndarray,
        b2: np.ndarray,
        b3: np.ndarray,
        step_index: np.ndarray,
        time: float,
        n_element_updates: int,
    ) -> None:
        """Scatter a globally stored dynamic state back onto the ranks.

        The global element-update count is re-distributed deterministically
        (per-rank updates per cycle are fixed by the clustering), so a
        restored engine continues with exactly the accounting of an
        uninterrupted run.
        """
        per_cycle = np.array([rank.updates_per_cycle() for rank in self.ranks], dtype=np.int64)
        total_per_cycle = int(per_cycle.sum())
        if total_per_cycle and n_element_updates % total_per_cycle != 0:
            raise ValueError("element-update count is not at a macro-cycle boundary")
        cycles = n_element_updates // total_per_cycle if total_per_cycle else 0
        for rank, sub in zip(self.ranks, self.subdomains):
            rank.dofs = dofs[sub.owned].copy()
            rank.buffers.b1 = b1[sub.owned].copy()
            rank.buffers.b2 = b2[sub.owned].copy()
            rank.buffers.b3 = b3[sub.owned].copy()
            for cluster, index in zip(rank.clusters, step_index):
                cluster.step_index = int(index)
            rank.time = float(time)
            rank.n_element_updates = int(cycles * rank.updates_per_cycle())

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Measured communication statistics (messages/bytes, per pair)."""
        return self.comm.stats

    def telemetry_snapshots(self) -> list[dict]:
        """Cumulative per-rank telemetry snapshots (one lane per rank)."""
        return [lane.snapshot() for lane in self._rank_telemetry]

    def merged_telemetry(self) -> dict:
        """Cross-rank merged regions/counters of this engine's lanes."""
        return merge_snapshots(self.telemetry_snapshots())

    def trace_lanes(self) -> list[tuple]:
        """``(lane_name, tid, events)`` triples for the Chrome-trace export.

        Draining is destructive, so callers export once per run.
        """
        return [
            (lane.lane, lane.rank, lane.drain_events())
            for lane in self._rank_telemetry
        ]

    def modelled_exchange_per_cycle(self) -> dict:
        """The Fig-10 machine model's view of the same halo, for validation."""
        return modelled_exchange_per_cycle(
            self.halo,
            self.clustering,
            self.disc.order,
            self.n_fused,
            itemsize=np.dtype(self.disc.dtype).itemsize,
        )

"""Per-rank subdomains of a global discretization (Sec. V-C, Sec. VI).

A distributed run splits the mesh into one subdomain per rank along the
weighted dual-graph partitioning.  Each rank owns the elements of its
partition: DOFs, LTS buffers and every element-local operator live in
*local* element order (the global-to-local map is part of the subdomain),
and the only remote data a rank ever touches are the face-local compressed
halo payloads received through the communicator.

All halo bookkeeping is precomputed here once at setup:

* the *send schedule* lists, per micro step of a macro cycle, which owned
  boundary faces must ship which buffer (``B1``, ``B3``, ``B2`` or
  ``B1 - B2`` following the sub-step parity rules of Fig. 6) to which rank,
  already grouped into vectorised batches, and
* the *receive plans* list, per cluster, where incoming payloads land in the
  cluster's neighbour-coefficient array (plus how many messages each face
  must wait for, so a receiver can block deterministically), and
* the per-cluster *boundary/interior split*: rows of the cluster batch that
  own at least one halo face versus purely local rows.  The steppers predict
  the boundary rows first, post the halo sends, and only then compute the
  interior rows -- which is what lets a process-backed run hide the message
  latency behind interior work.

This removes every per-exchange Python-level lookup from the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.clustering import Clustering
from ..core.lts_scheduler import micro_steps_per_cycle
from ..kernels.discretization import Discretization

__all__ = ["SubdomainDisc", "RankSubdomain", "SendBatch", "RecvPlan"]


class _LocalMesh:
    """The tiny mesh facade a rank-local solver needs: local face neighbours.

    Cross-rank (ghost) and true boundary faces are both ``-1``; the halo
    receive plans carry the ghost-face information separately.
    """

    def __init__(self, neighbors: np.ndarray):
        self.neighbors = neighbors

    @property
    def n_elements(self) -> int:
        return self.neighbors.shape[0]


class SubdomainDisc:
    """Element-local view of a global :class:`Discretization` for one rank.

    Per-element operator arrays are gathered into local (owned) element order
    once; shared reference-element data and the deduplicated neighbouring
    flux matrices stay references to the global objects.  The ADER-DG kernels
    run unmodified on local element ids and -- since every kernel contraction
    is element-local -- produce bit-identical per-element results.
    """

    def __init__(self, disc: Discretization, owned: np.ndarray, local_neighbors: np.ndarray):
        self.order = disc.order
        self.n_mechanisms = disc.n_mechanisms
        self.omegas = disc.omegas
        self.ref = disc.ref
        self.precision = disc.precision
        self.dtype = disc.dtype
        # precision-cast operator views shared with the global discretization
        self.k_time = disc.k_time
        self.k_vol = disc.k_vol
        self.ftilde = disc.ftilde
        self.fhat = disc.fhat
        self.n_basis = disc.n_basis
        self.n_face_basis = disc.n_face_basis
        self.n_vars = disc.n_vars
        self.time_steps = disc.time_steps[owned]
        self.star_elastic = disc.star_elastic[owned]
        self.star_anelastic = disc.star_anelastic[owned]
        self.coupling = disc.coupling[owned]
        self.flux_local_elastic = disc.flux_local_elastic[owned]
        self.flux_local_anelastic = disc.flux_local_anelastic[owned]
        self.flux_neigh_elastic = disc.flux_neigh_elastic[owned]
        self.flux_neigh_anelastic = disc.flux_neigh_anelastic[owned]
        # shared: the global unique F_bar set; rows are gathered per rank but
        # keep indexing into the global matrix pool
        self.neighbor_flux_matrices = disc.neighbor_flux_matrices
        self.neighbor_flux_index = disc.neighbor_flux_index[owned]
        self.mesh = _LocalMesh(local_neighbors)

    @property
    def n_elements(self) -> int:
        return self.mesh.n_elements

    def allocate_dofs(self, n_fused: int = 0, dtype=None) -> np.ndarray:
        shape: tuple[int, ...] = (self.n_elements, self.n_vars, self.n_basis)
        if n_fused > 0:
            shape = shape + (n_fused,)
        return np.zeros(shape, dtype=self.dtype if dtype is None else dtype)


@dataclass(frozen=True)
class SendBatch:
    """One vectorised batch of halo sends due at a micro step.

    ``kind`` names the buffer representation the receivers need at this
    point of the schedule: ``b1`` (same-step neighbours), ``b3`` (the owner
    is in the smaller cluster; partial then accumulated), ``b2`` /
    ``b1_minus_b2`` (the owner is in the larger cluster; first/second
    sub-step of the receiver).
    """

    kind: str
    local_elements: np.ndarray  #: (n,) local ids of the owning elements
    fbar_indices: np.ndarray  #: (n,) receiver-side F_bar matrix per face
    dst_ranks: np.ndarray  #: (n,)
    tags: np.ndarray  #: (n,) message tag (global element * 4 + face)


@dataclass(frozen=True)
class RecvPlan:
    """Where one cluster's incoming halo payloads land during a correction.

    ``counts`` is the number of messages due on each face's channel per
    correction of this cluster (2 when the sender sits in the smaller /
    faster cluster and refreshes its accumulated ``B3`` twice, 1 otherwise);
    the receiver consumes exactly that many and keeps the freshest, which
    works both with the instant in-process mailboxes and with blocking
    process-backed channels where "pending" cannot be observed race-free.
    """

    rows: np.ndarray  #: (n,) row within the cluster's element batch
    faces: np.ndarray  #: (n,) local face id of the receiving element
    src_ranks: np.ndarray  #: (n,)
    tags: np.ndarray  #: (n,) tag of the matching send
    counts: np.ndarray  #: (n,) messages due per correction on this channel


class RankSubdomain:
    """Everything one rank needs: local operators, maps and halo plans."""

    def __init__(
        self,
        disc: Discretization,
        clustering: Clustering,
        partitions: np.ndarray,
        rank: int,
    ):
        partitions = np.asarray(partitions, dtype=np.int64)
        neighbors = disc.mesh.neighbors
        n_global = disc.n_elements
        self.rank = int(rank)
        self.n_ranks = int(partitions.max()) + 1

        self.owned = np.where(partitions == rank)[0]
        self.local_of_global = np.full(n_global, -1, dtype=np.int64)
        self.local_of_global[self.owned] = np.arange(len(self.owned))

        own_neighbors = neighbors[self.owned]  # (E, 4) global ids
        same_rank = (own_neighbors >= 0) & (
            partitions[np.maximum(own_neighbors, 0)] == rank
        )
        local_neighbors = np.where(
            same_rank, self.local_of_global[np.maximum(own_neighbors, 0)], -1
        )
        self.view = SubdomainDisc(disc, self.owned, local_neighbors)

        self.clustering = Clustering(
            cluster_ids=clustering.cluster_ids[self.owned],
            cluster_time_steps=clustering.cluster_time_steps,
            lam=clustering.lam,
            dt_min=clustering.dt_min,
        )

        ghost = (own_neighbors >= 0) & ~same_rank
        self.n_halo_faces = int(ghost.sum())
        self._build_send_schedule(disc, clustering, partitions, own_neighbors, ghost)
        self._build_recv_plans(disc, clustering, partitions, own_neighbors, ghost)
        self._split_boundary_interior(clustering, ghost)

    # ------------------------------------------------------------------
    def _build_send_schedule(
        self,
        disc: Discretization,
        clustering: Clustering,
        partitions: np.ndarray,
        own_neighbors: np.ndarray,
        ghost: np.ndarray,
    ) -> None:
        """Per-micro-step batches of due halo sends (one macro cycle).

        An owned boundary face sends at the *faster* side's frequency: when
        the owner is in the same or a smaller cluster it ships its freshly
        filled ``B1``/``B3`` after every own prediction; when the owner is in
        the larger cluster it ships ``B2`` or ``B1 - B2`` at every prediction
        of the (faster) receiver, following the receiver's sub-step parity.
        The parity pattern repeats every macro cycle, so the schedule is
        static.
        """
        neighbor_faces = disc.mesh.neighbor_faces[self.owned]
        rows, faces = np.nonzero(ghost)
        local_elements = rows  # row into owned order IS the local element id
        global_neighbors = own_neighbors[rows, faces]
        c_own = clustering.cluster_ids[self.owned[rows]]
        c_neigh = clustering.cluster_ids[global_neighbors]
        fbar_indices = disc.neighbor_flux_index[
            global_neighbors, neighbor_faces[rows, faces]
        ]
        if np.any(fbar_indices < 0):
            raise RuntimeError("halo face without a neighbouring flux matrix")
        dst_ranks = partitions[global_neighbors]
        tags = self.owned[rows] * 4 + faces

        n_clusters = clustering.n_clusters
        schedule: list[list[SendBatch]] = []
        for s in range(micro_steps_per_cycle(n_clusters)):
            owner_predicts = s % (2**c_own) == 0
            receiver_predicts = s % (2**c_neigh) == 0
            receiver_parity = (s // np.maximum(2**c_neigh, 1)) % 2
            masks = (
                ("b1", (c_own == c_neigh) & owner_predicts),
                ("b3", (c_own < c_neigh) & owner_predicts),
                ("b2", (c_own > c_neigh) & receiver_predicts & (receiver_parity == 0)),
                ("b1_minus_b2", (c_own > c_neigh) & receiver_predicts & (receiver_parity == 1)),
            )
            batches = [
                SendBatch(
                    kind=kind,
                    local_elements=local_elements[mask],
                    fbar_indices=fbar_indices[mask],
                    dst_ranks=dst_ranks[mask],
                    tags=tags[mask],
                )
                for kind, mask in masks
                if np.any(mask)
            ]
            schedule.append(batches)
        self.send_schedule = schedule

    def _build_recv_plans(
        self,
        disc: Discretization,
        clustering: Clustering,
        partitions: np.ndarray,
        own_neighbors: np.ndarray,
        ghost: np.ndarray,
    ) -> None:
        """Per-cluster landing sites of incoming halo payloads.

        Rows index into the cluster's element batch in the same (ascending
        local id) order the per-cluster driver uses, so a received payload
        can be written straight into the neighbour-coefficient array.
        """
        neighbor_faces = disc.mesh.neighbor_faces[self.owned]
        local_cluster_ids = self.clustering.cluster_ids
        plans: list[RecvPlan] = []
        for cluster in range(clustering.n_clusters):
            batch = np.where(local_cluster_ids == cluster)[0]
            batch_ghost = ghost[batch]
            rows, faces = np.nonzero(batch_ghost)
            senders = own_neighbors[batch[rows], faces]
            plans.append(
                RecvPlan(
                    rows=rows,
                    faces=faces,
                    src_ranks=partitions[senders],
                    tags=senders * 4 + neighbor_faces[batch[rows], faces],
                    counts=2 ** np.maximum(0, cluster - clustering.cluster_ids[senders]),
                )
            )
        self.recv_plans = plans

    def _split_boundary_interior(self, clustering: Clustering, ghost: np.ndarray) -> None:
        """Per-cluster boundary/interior rows of the cluster element batch.

        A *boundary* row owns at least one halo face: its freshly filled
        buffers feed a send of the current micro step, so it must be
        predicted before the sends are posted.  All remaining rows are
        *interior* and can be predicted while the messages are in flight.
        Rows index the cluster batch in the same ascending-local-id order
        the per-cluster driver uses.
        """
        is_boundary = ghost.any(axis=1)
        local_cluster_ids = self.clustering.cluster_ids
        self.boundary_rows: list[np.ndarray] = []
        self.interior_rows: list[np.ndarray] = []
        for cluster in range(clustering.n_clusters):
            batch = np.where(local_cluster_ids == cluster)[0]
            mask = is_boundary[batch]
            self.boundary_rows.append(np.where(mask)[0])
            self.interior_rows.append(np.where(~mask)[0])

    # ------------------------------------------------------------------
    @property
    def n_owned(self) -> int:
        return len(self.owned)

    @property
    def n_boundary_elements(self) -> int:
        return int(sum(len(rows) for rows in self.boundary_rows))

"""The per-rank clustered-LTS stepper of a distributed run.

A :class:`RankSolver` is a :class:`~repro.core.lts_solver.ClusteredLtsSolver`
running on one rank's :class:`~repro.distributed.subdomain.RankSubdomain`:
local DOFs, local LTS buffers, local element-ids everywhere.  Three things
are added on top of the shared driver logic:

* the prediction of a cluster is split along the subdomain's
  boundary/interior partition: :meth:`predict_boundary` runs the time
  kernel, buffer fill and local update for the halo-adjacent rows only, so
  the due sends can be posted immediately, and :meth:`predict_interior`
  computes the remaining rows afterwards -- with a process-backed
  communicator the interior work overlaps the message transfer,
* :meth:`send_due` ships the face-local compressed halo payloads of the
  current micro step (``9 x F`` values per face -- the buffer data already
  multiplied with the *receiver's* neighbouring flux matrix ``F_bar``), and
* the :meth:`_neighbor_coefficients` hook overlays the coefficients of
  partition-boundary faces with the freshest received payload before the
  neighbouring surface kernel runs.  Each face consumes exactly the
  statically known number of due messages (:attr:`RecvPlan.counts`), so the
  receive is deterministic and blocks correctly on asynchronous channels.

Because every kernel contraction is element-local, splitting a cluster batch
into two sub-batches produces bit-identical per-element results, and because
the sender performs exactly the ``F_bar`` multiplication the receiver would
have performed on the same buffer values, the distributed update is
bit-identical to the single-rank solver.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import Clustering
from ..core.lts_solver import ClusteredLtsSolver, _ClusterData
from .subdomain import RankSubdomain

__all__ = ["RankSolver"]


class RankSolver(ClusteredLtsSolver):
    """Clustered LTS on one rank's subdomain with halo communication."""

    def __init__(
        self,
        subdomain: RankSubdomain,
        communicator,
        sources: list | None = None,
        receivers=None,
        n_fused: int = 0,
        clustering: Clustering | None = None,
        kernels=None,
        telemetry=None,
    ):
        self.subdomain = subdomain
        self.comm = communicator
        self.rank = subdomain.rank
        super().__init__(
            subdomain.view,
            clustering if clustering is not None else subdomain.clustering,
            sources=sources,
            receivers=receivers,
            n_fused=n_fused,
            kernels=kernels,
            telemetry=telemetry,
        )
        #: per-cluster (boundary, interior) element-id arrays, materialised
        #: once: a stable array identity per batch keeps the workspace's
        #: operator-gather/token caches warm (and bounded) across micro steps
        self._split_elements = [
            (
                cluster.elements[subdomain.boundary_rows[cluster.cluster_id]],
                cluster.elements[subdomain.interior_rows[cluster.cluster_id]],
            )
            for cluster in self.clusters
        ]

    # ------------------------------------------------------------------
    # split prediction (overlap structure)
    # ------------------------------------------------------------------
    def predict_boundary(self, cluster: _ClusterData) -> None:
        """Predict the halo-adjacent rows of a cluster and stage the batch.

        Allocates the full-batch pending arrays and fills the boundary rows,
        so the buffers every due send reads from are fresh before
        :meth:`send_due` runs.
        """
        if len(cluster.elements) == 0:
            cluster.pending_local_delta = None
            cluster.pending_te = None
            cluster.pending_traces = None
            return
        cluster.pending_local_delta = np.empty_like(self.dofs[cluster.elements])
        cluster.pending_te = np.empty_like(
            self.buffers.b1[cluster.elements]
        )
        disc = self.disc
        cluster.pending_traces = np.empty(
            (len(cluster.elements), 4, cluster.pending_te.shape[1], disc.n_face_basis)
            + cluster.pending_te.shape[3:],
            dtype=cluster.pending_te.dtype,
        )
        self._predict_rows(
            cluster,
            self.subdomain.boundary_rows[cluster.cluster_id],
            self._split_elements[cluster.cluster_id][0],
        )

    def predict_interior(self, cluster: _ClusterData) -> None:
        """Predict the purely local rows (overlaps in-flight halo messages)."""
        if len(cluster.elements) == 0:
            return
        self._predict_rows(
            cluster,
            self.subdomain.interior_rows[cluster.cluster_id],
            self._split_elements[cluster.cluster_id][1],
        )

    # ------------------------------------------------------------------
    # the shared micro-step walk (used by the serial engine, which
    # interleaves ranks per phase, and by the process workers, which run a
    # whole cycle per rank -- one implementation keeps them in lockstep)
    # ------------------------------------------------------------------
    def begin_micro_step(self, entry: dict) -> None:
        """Boundary predictions of the due clusters plus the due sends."""
        with self.telemetry.region("predict.boundary"):
            for l in entry["predict"]:
                self.predict_boundary(self.clusters[l])
        with self.telemetry.region("send"):
            self.send_due(entry["micro_step"])
            flush = getattr(self.comm, "flush", None)
            if flush is not None:
                flush()

    def advance_interior(self, entry: dict) -> None:
        """Interior predictions (overlap: the sends are already in flight)."""
        with self.telemetry.region("predict.interior"):
            for l in entry["predict"]:
                self.predict_interior(self.clusters[l])

    def finish_micro_step(self, entry: dict, dt0: float) -> None:
        """Corrections of the clusters whose interval ends after this step."""
        for l in entry["correct"]:
            cluster = self.clusters[l]
            start = self.time + (entry["micro_step"] + 1) * dt0 - cluster.dt
            self._correct(cluster, start)

    def _predict_rows(
        self, cluster: _ClusterData, rows: np.ndarray, elements: np.ndarray
    ) -> None:
        """The shared prediction body of ``_predict``, on a batch subset.

        ``elements`` is the precomputed ``cluster.elements[rows]`` array.
        """
        if len(rows) == 0:
            return
        delta, time_integrated_elastic, local_traces = self._predict_elements(
            cluster, elements
        )
        cluster.pending_local_delta[rows] = delta
        cluster.pending_te[rows] = time_integrated_elastic
        cluster.pending_traces[rows] = local_traces

    # ------------------------------------------------------------------
    def send_due(self, micro_step: int) -> None:
        """Send every halo payload due at this micro step of the cycle."""
        for batch in self.subdomain.send_schedule[micro_step]:
            elements = batch.local_elements
            if batch.kind == "b1":
                data = self.buffers.b1[elements]
            elif batch.kind == "b3":
                data = self.buffers.b3[elements]
            elif batch.kind == "b2":
                data = self.buffers.b2[elements]
            else:  # "b1_minus_b2": the second sub-step of a faster receiver
                data = self.buffers.b1[elements] - self.buffers.b2[elements]
            mats = self.disc.neighbor_flux_matrices[batch.fbar_indices]
            payloads = np.einsum("nvb...,nbf->nvf...", data, mats)
            for n in range(len(batch.tags)):
                self.comm.send(
                    payloads[n],
                    src=self.rank,
                    dst=int(batch.dst_ranks[n]),
                    tag=int(batch.tags[n]),
                )

    def _neighbor_coefficients(self, cluster: _ClusterData) -> np.ndarray:
        """Local coefficients plus the received halo payloads."""
        coeffs = super()._neighbor_coefficients(cluster)
        plan = self.subdomain.recv_plans[cluster.cluster_id]
        if len(plan.rows) == 0:
            return coeffs
        with self.telemetry.region("recv_wait"):
            for row, face, src, tag, count in zip(
                plan.rows, plan.faces, plan.src_ranks, plan.tags, plan.counts
            ):
                # consume the statically known number of due messages and keep
                # the freshest payload: a faster sender refreshes its
                # accumulated B3 twice per receiver step.  The count (not a
                # "pending" poll) is what makes the receive correct on
                # blocking channels.
                for _ in range(count):
                    payload = self.comm.recv(int(src), self.rank, int(tag))
                coeffs[row, face] = payload
        return coeffs

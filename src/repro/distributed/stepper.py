"""The per-rank clustered-LTS stepper of a distributed run.

A :class:`RankSolver` is a :class:`~repro.core.lts_solver.ClusteredLtsSolver`
running on one rank's :class:`~repro.distributed.subdomain.RankSubdomain`:
local DOFs, local LTS buffers, local element-ids everywhere.  Two things are
added on top of the shared driver logic:

* :meth:`send_due` ships the face-local compressed halo payloads of the
  current micro step (``9 x F`` values per face -- the buffer data already
  multiplied with the *receiver's* neighbouring flux matrix ``F_bar``), and
* the :meth:`_neighbor_coefficients` hook overlays the coefficients of
  partition-boundary faces with the freshest received payload before the
  neighbouring surface kernel runs.

Because the sender performs exactly the ``F_bar`` multiplication the
receiver would have performed on the same buffer values, the distributed
update is bit-identical to the single-rank solver.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import Clustering
from ..core.lts_solver import ClusteredLtsSolver, _ClusterData
from ..parallel.communicator import SimulatedCommunicator
from .subdomain import RankSubdomain

__all__ = ["RankSolver"]


class RankSolver(ClusteredLtsSolver):
    """Clustered LTS on one rank's subdomain with halo communication."""

    def __init__(
        self,
        subdomain: RankSubdomain,
        communicator: SimulatedCommunicator,
        sources: list | None = None,
        receivers=None,
        n_fused: int = 0,
        clustering: Clustering | None = None,
    ):
        self.subdomain = subdomain
        self.comm = communicator
        self.rank = subdomain.rank
        super().__init__(
            subdomain.view,
            clustering if clustering is not None else subdomain.clustering,
            sources=sources,
            receivers=receivers,
            n_fused=n_fused,
        )

    # ------------------------------------------------------------------
    def send_due(self, micro_step: int) -> None:
        """Send every halo payload due at this micro step of the cycle."""
        for batch in self.subdomain.send_schedule[micro_step]:
            elements = batch.local_elements
            if batch.kind == "b1":
                data = self.buffers.b1[elements]
            elif batch.kind == "b3":
                data = self.buffers.b3[elements]
            elif batch.kind == "b2":
                data = self.buffers.b2[elements]
            else:  # "b1_minus_b2": the second sub-step of a faster receiver
                data = self.buffers.b1[elements] - self.buffers.b2[elements]
            mats = self.disc.neighbor_flux_matrices[batch.fbar_indices]
            payloads = np.einsum("nvb...,nbf->nvf...", data, mats)
            for n in range(len(batch.tags)):
                self.comm.send(
                    payloads[n],
                    src=self.rank,
                    dst=int(batch.dst_ranks[n]),
                    tag=int(batch.tags[n]),
                )

    def _neighbor_coefficients(self, cluster: _ClusterData) -> np.ndarray:
        """Local coefficients plus the received halo payloads."""
        coeffs = super()._neighbor_coefficients(cluster)
        plan = self.subdomain.recv_plans[cluster.cluster_id]
        for row, face, src, tag in zip(plan.rows, plan.faces, plan.src_ranks, plan.tags):
            # drain the channel and keep the freshest payload: a faster
            # sender refreshes its accumulated B3 twice per receiver step
            payload = None
            while self.comm.pending(int(src), self.rank, int(tag)):
                payload = self.comm.recv(int(src), self.rank, int(tag))
            if payload is None:
                raise RuntimeError(
                    f"rank {self.rank}: no halo payload from rank {int(src)} "
                    f"for tag {int(tag)} at correction of cluster {cluster.cluster_id}"
                )
            coeffs[row, face] = payload
        return coeffs

"""Per-field error norms of a DG state against a reference solution.

Errors are integrated with the discretization's own volume quadrature:

.. math::

    \\|e_v\\|_{L^2}^2 = \\sum_k \\det J_k \\sum_q w_q
        \\big(u_h(x_{kq}) - u(x_{kq})\\big)^2

(the quadrature weights sum to the reference-tet measure, so the physical
integral carries ``det J = 6 V``).  Relative norms are normalised per field
by the reference solution's own L2 norm; identically-zero fields report an
absolute norm only.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FIELD_NAMES", "state_error_norms"]

#: the 9 elastic fields, in state-vector order
FIELD_NAMES = ("sxx", "syy", "szz", "sxy", "syz", "sxz", "vx", "vy", "vz")


def state_error_norms(
    disc, dofs: np.ndarray, t: float, solution, interior_margin: float = 0.0
) -> dict:
    """Per-field and aggregate error norms of ``dofs`` vs ``solution`` at ``t``.

    ``solution(points, t)`` must return the 9 elastic fields at physical
    ``points``; anelastic memory variables are not scored.  Fused ensembles
    replicate one physical run, so simulation 0 is scored.  Returns a
    JSON-ready dict (the runner's summary ``accuracy`` block).

    ``interior_margin`` excludes elements whose centroid lies within that
    distance of the mesh bounding box.  The first-order absorbing boundary
    treatment carries an error feedback of its own order at inflow faces;
    convergence studies exclude a *fixed* physical margin (identical across
    ladder levels) so the fit sees the scheme's interior order.
    """
    quad = disc.ref.volume_quadrature
    psi = disc.ref.basis.evaluate(quad.points)  # (nq, B)
    mesh = disc.mesh
    keep = slice(None)
    if interior_margin > 0.0:
        lo = mesh.vertices.min(axis=0) + interior_margin
        hi = mesh.vertices.max(axis=0) - interior_margin
        centroids = mesh.centroids
        keep = np.all((centroids > lo) & (centroids < hi), axis=1)
        if not keep.any():
            raise ValueError("interior_margin excludes every element")
    phys = disc.physical_quadrature_points()[keep]  # (K, nq, 3)

    dofs = np.asarray(dofs, dtype=np.float64)
    if dofs.ndim == 4:
        dofs = dofs[..., 0]
    numeric = np.einsum("kvb,qb->kqv", dofs[keep, : len(FIELD_NAMES)], psi)
    exact = np.asarray(solution(phys.reshape(-1, 3), t), dtype=np.float64)
    exact = exact.reshape(numeric.shape)

    det = mesh.geometry.determinants[keep]
    weights = quad.weights
    diff = numeric - exact
    l2 = np.sqrt(np.einsum("k,q,kqv->v", det, weights, diff**2))
    ref_l2 = np.sqrt(np.einsum("k,q,kqv->v", det, weights, exact**2))
    linf = np.abs(diff).max(axis=(0, 1))

    fields = {}
    for i, name in enumerate(FIELD_NAMES):
        entry = {"l2": float(l2[i]), "linf": float(linf[i])}
        if ref_l2[i] > 0.0:
            entry["rel_l2"] = float(l2[i] / ref_l2[i])
        fields[name] = entry
    total = float(np.sqrt(np.sum(l2**2)))
    total_ref = float(np.sqrt(np.sum(ref_l2**2)))
    return {
        "t": float(t),
        "fields": fields,
        "l2": total,
        "rel_l2": total / total_ref if total_ref > 0.0 else None,
        "linf": float(linf.max()),
    }

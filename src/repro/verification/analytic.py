"""Closed-form reference solutions for accuracy verification.

The workhorse is the travelling plane P wave behind the ``plane_wave``
registry scenario: a homogeneous elastic medium carries

.. math::

    v_x(x, t) = g(x - v_p t), \\qquad
    \\sigma_{xx} = -\\rho v_p\\, g, \\qquad
    \\sigma_{yy} = \\sigma_{zz} = \\sigma_{xx}
        \\frac{\\lambda}{\\lambda + 2\\mu},

with ``g`` the sinusoidal initial profile -- the initial condition of
:func:`repro.scenarios.runner._initial_condition` advected at the P-wave
speed.  The mirrored-trace boundary treatment is consistent with the
free-space travelling wave (the exterior state it implies is exactly the
smooth continuation of the wave), so the numerical solution converges to
this closed form at the full order of the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlaneWaveSolution", "plane_wave_from_params", "analytic_solution_for"]


@dataclass(frozen=True)
class PlaneWaveSolution:
    """The exact elastic plane P wave travelling in ``+x``."""

    amplitude: float
    wavelength: float
    rho: float
    vp: float
    lateral: float  #: lambda / (lambda + 2 mu)

    def __call__(self, points: np.ndarray, t: float) -> np.ndarray:
        """Evaluate the 9 elastic fields at ``points`` (``(n, 3)``), time ``t``."""
        out = np.zeros((len(points), 9))
        k = 2.0 * np.pi / self.wavelength
        g = self.amplitude * np.sin(k * (points[:, 0] - self.vp * t))
        out[:, 6] = g
        out[:, 0] = -self.rho * self.vp * g
        out[:, 1] = out[:, 2] = -self.rho * self.vp * g * self.lateral
        return out


def plane_wave_from_params(params: dict, materials) -> PlaneWaveSolution:
    """Build the travelling wave from ``plane_wave`` IC params + materials.

    The single source of truth shared by the scenario runner's
    initial-condition builder (which evaluates it at ``t = 0``) and the
    accuracy comparisons against it -- the parameter defaults and the
    material averaging cannot drift apart.
    """
    lam_el = float(np.mean(materials.lam))
    mu_el = float(np.mean(materials.mu))
    return PlaneWaveSolution(
        amplitude=float(params.get("amplitude", 1e-3)),
        wavelength=float(params["wavelength"]),
        rho=float(np.mean(materials.rho)),
        vp=float(np.mean(materials.vp)),
        lateral=lam_el / (lam_el + 2.0 * mu_el),
    )


def analytic_solution_for(setup) -> PlaneWaveSolution | None:
    """The closed-form solution of a scenario setup, if one exists.

    Only the purely elastic, homogeneous, free-space plane-wave
    configuration has one: a ``plane_wave`` initial condition, no source,
    no attenuation (the anelastic relaxation would damp the wave), uniform
    material (the wave refracts otherwise -- averaging a layered model
    would compare against a function that solves no PDE), and no free
    surface (a traction-free top reflects the wave's normal stress).
    Anything else returns ``None`` and no accuracy block is reported.
    """
    spec = setup.spec
    ic = spec.initial_condition
    if ic is None or ic.kind != "plane_wave" or spec.source is not None:
        return None
    if setup.disc.n_mechanisms:
        return None
    if spec.domain.free_surface:
        return None
    materials = setup.materials
    if any(np.ptp(getattr(materials, name)) != 0.0 for name in ("rho", "vp", "vs")):
        return None
    return plane_wave_from_params(ic.params, setup.materials)

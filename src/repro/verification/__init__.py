"""Accuracy verification: analytic solutions, error norms, golden traces.

The kernel-backend work made execution strategy pluggable; this package
makes *accuracy* a tested contract instead of an ad-hoc ``allclose``:

* :mod:`~repro.verification.analytic` -- closed-form reference solutions
  (the travelling plane P wave behind the ``plane_wave`` scenario),
* :mod:`~repro.verification.norms` -- per-field L2/Linf error norms of a
  DG state against a reference function,
* :mod:`~repro.verification.convergence` -- convergence-order estimation
  over mesh-refinement ladders,
* :mod:`~repro.verification.golden` -- committed golden seismogram fixtures
  and the per-scenario tolerance ladder that non-bit-exact kernel modes
  (``fast``, f32) are held to,
* :mod:`~repro.verification.harness` -- the end-to-end suite behind the
  ``repro verify`` CLI subcommand.
"""

from .analytic import PlaneWaveSolution, analytic_solution_for
from .convergence import ConvergenceStudy, estimate_order, plane_wave_convergence
from .golden import (
    GOLDEN_SCENARIOS,
    compare_to_golden,
    golden_fixture_path,
    load_golden,
    record_golden,
    seismogram_tolerance,
)
from .harness import verify_scenario, verify_suite
from .norms import FIELD_NAMES, state_error_norms

__all__ = [
    "PlaneWaveSolution",
    "analytic_solution_for",
    "ConvergenceStudy",
    "estimate_order",
    "plane_wave_convergence",
    "GOLDEN_SCENARIOS",
    "golden_fixture_path",
    "load_golden",
    "record_golden",
    "compare_to_golden",
    "seismogram_tolerance",
    "verify_scenario",
    "verify_suite",
    "FIELD_NAMES",
    "state_error_norms",
]

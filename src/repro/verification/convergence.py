"""Convergence-order estimation over mesh-refinement ladders.

The classic verification: run the ``plane_wave`` scenario (exact travelling
P wave, see :mod:`~repro.verification.analytic`) on a ladder of refined
meshes, measure the L2 error at the final time, and fit the convergence
order from the log-log slope.  An ADER-DG scheme of order ``O`` (basis
degree ``O - 1``) converges at :math:`O(h^O)`; the fitted order confirming
that -- under *any* kernel backend -- is what makes non-bit-exact execution
modes shippable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

__all__ = ["ConvergenceStudy", "estimate_order", "plane_wave_convergence"]


@dataclass
class ConvergenceStudy:
    """One refinement ladder and its fitted convergence order."""

    order: int
    kernels: str
    precision: str
    solver: str
    n_ranks: int
    backend: str
    t_end: float
    lengths: list
    n_elements: list
    errors: list  #: aggregate relative L2 error per ladder level
    estimated_order: float
    expected_order: int

    def passes(self, slack: float = 0.75) -> bool:
        """Whether the fitted order reaches the formal order within slack."""
        return self.estimated_order >= self.expected_order - slack

    def to_dict(self) -> dict:
        out = asdict(self)
        out["passed"] = self.passes()
        return out


def estimate_order(lengths, errors) -> float:
    """Least-squares slope of ``log(error)`` against ``log(h)``."""
    lengths = np.asarray(lengths, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    if len(lengths) < 2:
        raise ValueError("order estimation needs at least two ladder levels")
    if np.any(errors <= 0.0):
        raise ValueError("errors must be positive for a log-log fit")
    slope, _ = np.polyfit(np.log(lengths), np.log(errors), 1)
    return float(slope)


def plane_wave_convergence(
    order: int = 3,
    lengths=(500.0, 400.0, 250.0),
    *,
    t_end: float = 0.01,
    kernels: str = "ref",
    precision: str = "f64",
    solver: str = "gts",
    n_ranks: int = 1,
    backend: str = "serial",
    extent_m: float = 2000.0,
    wavelength: float = 2000.0,
    seed: int = 0,
) -> ConvergenceStudy:
    """Run the plane-wave ladder and fit the convergence order.

    Each level runs the registry ``plane_wave`` scenario to (at least)
    ``t_end``; the L2 error against the travelling-wave solution is taken
    over a fixed interior region (one coarse-level edge length inside the
    box at every level) so the first-order absorbing-boundary feedback does
    not cap the fitted order.  The levels stop at slightly different times
    (runs complete whole steps), so errors are each measured against the
    exact solution *at the level's own final time* -- the fit only assumes
    the error constant varies mildly over one coarse step.

    Lengths should divide ``extent_m`` evenly: the structured generator
    otherwise appends a sliver cell layer whose degenerate elements destroy
    the run (not just the fit).

    ``n_ranks > 1`` runs every ladder level through the distributed engine
    (``backend`` selects serial or process workers); the solver switches to
    the clustered driver, which GTS-steps identically here because the
    plane-wave scenario is single-cluster.
    """
    from ..scenarios.registry import plane_wave_scenario
    from ..scenarios.runner import make_runner
    from .analytic import analytic_solution_for
    from .norms import state_error_norms

    if n_ranks > 1:
        solver = "lts"  # the distributed engine requires the clustered driver
    margin = 1.05 * max(lengths)
    errors, counts = [], []
    for h in lengths:
        spec = plane_wave_scenario(
            extent_m=extent_m,
            characteristic_length=float(h),
            order=order,
            wavelength=wavelength,
            seed=seed,
            solver=solver,
        )
        spec = spec.with_overrides(
            t_end=t_end,
            kernels=kernels,
            precision=precision,
            n_ranks=n_ranks if n_ranks > 1 else None,
            backend=backend if backend != "serial" else None,
        )
        runner = make_runner(spec)
        summary = runner.run()
        norms = state_error_norms(
            runner.setup.disc,
            runner.solver.dofs,
            float(runner.solver.time),
            analytic_solution_for(runner.setup),
            interior_margin=margin,
        )
        errors.append(float(norms["rel_l2"]))
        counts.append(int(summary["n_elements"]))
    return ConvergenceStudy(
        order=order,
        kernels=kernels,
        precision=precision,
        solver=solver,
        n_ranks=n_ranks,
        backend=backend,
        t_end=t_end,
        lengths=[float(h) for h in lengths],
        n_elements=counts,
        errors=errors,
        estimated_order=estimate_order(lengths, errors),
        expected_order=order,
    )

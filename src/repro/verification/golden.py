"""Committed golden seismogram fixtures and the tolerance ladder.

A golden fixture freezes the seismograms of one small, fully-pinned
scenario configuration as produced by the bit-exact reference backend at
f64.  Regression tests re-run the *frozen spec* (stored inside the fixture,
so registry-factory drift cannot silently move the goal posts) under every
kernel backend and precision, and diff the new traces against the fixture
under an explicit tolerance ladder:

========== ========= ==================================================
kernels    precision peak-relative tolerance
========== ========= ==================================================
ref        f64       1e-12 (regeneration guard; bit-identity is asserted
                     by the backend test suite, the floor only absorbs
                     numpy-version drift)
opt        f64       1e-12 (bit-identical contract)
fast       f64       1e-9  (BLAS reassociation at double precision)
any        f32       2e-3  (single-precision accumulation)
========== ========= ==================================================

"Peak-relative" compares ``max |v - v_golden|`` against the receiver's peak
golden amplitude, the standard seismological normalisation (absolute
differences in the coda are meaningless compared to machine noise at the
peak).  Per-scenario overrides live in :data:`SCENARIO_TOLERANCES`.

Updating fixtures
-----------------
Run ``repro verify --update-golden`` after a change that *legitimately*
alters the physics (new flux, changed operators) and commit the rewritten
JSON together with the change.  Never update fixtures to quiet a tolerance
failure of a non-bit-exact backend -- that is the regression the fixtures
exist to catch.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = [
    "GOLDEN_FORMAT_VERSION",
    "GOLDEN_SCENARIOS",
    "SCENARIO_TOLERANCES",
    "golden_fixture_path",
    "golden_spec",
    "record_golden",
    "load_golden",
    "seismogram_tolerance",
    "compare_to_golden",
]

GOLDEN_FORMAT_VERSION = 1

FIXTURES_DIR = Path(__file__).parent / "fixtures"

#: the registry scenarios with committed golden traces, pinned to small
#: configurations (a few hundred elements) whose run window is long enough
#: for the source wavefield to actually arrive at the receivers -- a golden
#: trace of pre-arrival noise would compare everything against zero.  The
#: ``time_function`` entries speed the published (long-period) sources up so
#: the arrival fits an affordable window; the traces are a frozen numerical
#: trajectory for regression, not physics-resolved seismograms.
GOLDEN_SCENARIOS = {
    "loh3": dict(
        factory=dict(
            extent_m=6000.0,
            characteristic_length=2000.0,
            order=3,
            n_mechanisms=3,
            jitter=0.2,
            lam=0.7,
            n_clusters=2,
            n_cycles=75,
        ),
        time_function=dict(kind="ricker", params={"f0": 2.5, "t0": 0.35}),
    ),
    "la_habra": dict(
        factory=dict(
            extent_m=8000.0,
            depth_m=6000.0,
            max_frequency=0.3,
            order=3,
            min_vs=800.0,
            n_clusters=2,
            n_cycles=30,
        ),
        time_function=dict(kind="gaussian_derivative", params={"sigma": 0.3, "t0": 0.8}),
    ),
    # a fused width-2 ensemble with *distinct* per-slot sources on the LOH.3
    # golden configuration: slot 0 is the plain golden source, slot 1 scales
    # the moment down and retunes the wavelet -- the regression that the
    # fused axis carries per-slot physics, not F copies of one run
    "loh3_fused2": dict(
        base="loh3",
        factory=dict(
            extent_m=6000.0,
            characteristic_length=2000.0,
            order=3,
            n_mechanisms=3,
            jitter=0.2,
            lam=0.7,
            n_clusters=2,
            n_cycles=75,
        ),
        time_function=dict(kind="ricker", params={"f0": 2.5, "t0": 0.35}),
        fused=[
            dict(moment_scale=1.0),
            dict(
                moment_scale=0.6,
                time_function=dict(kind="ricker", params={"f0": 2.0, "t0": 0.5}),
            ),
        ],
    ),
}

#: peak-relative tolerance ladder, keyed by (kernels, precision)
DEFAULT_TOLERANCES = {
    ("ref", "f64"): 1e-12,
    ("opt", "f64"): 1e-12,
    ("fast", "f64"): 1e-9,
    ("ref", "f32"): 2e-3,
    ("opt", "f32"): 2e-3,
    ("fast", "f32"): 2e-3,
}

#: per-scenario overrides of the default ladder (same key structure)
SCENARIO_TOLERANCES: dict = {
    # the La Habra basin's low-velocity zone accumulates more f32 rounding
    # over a macro cycle than the stiffer LOH.3 layers
    "la_habra": {("ref", "f32"): 5e-3, ("opt", "f32"): 5e-3, ("fast", "f32"): 5e-3},
    # the distinct-source fused golden pins the whole f64 ladder explicitly:
    # ref/opt stay on the bit-identical floor per the slot-wise bit-identity
    # contract (each fused slot IS the scalar run of that slot's source), and
    # fast's folded-GEMM fused contractions are held to the scalar fast tier
    "loh3_fused2": {
        ("ref", "f64"): 1e-12,
        ("opt", "f64"): 1e-12,
        ("fast", "f64"): 1e-9,
    },
}


def seismogram_tolerance(scenario: str, kernels: str, precision: str) -> float:
    """The peak-relative tolerance a run is held to against its golden."""
    key = (kernels, precision)
    override = SCENARIO_TOLERANCES.get(scenario, {})
    if key in override:
        return override[key]
    try:
        return DEFAULT_TOLERANCES[key]
    except KeyError:
        raise ValueError(
            f"no tolerance defined for kernels={kernels!r} precision={precision!r}"
        ) from None


def golden_fixture_path(name: str, directory=None) -> Path:
    directory = FIXTURES_DIR if directory is None else Path(directory)
    return directory / f"golden_{name}.json"


def golden_spec(name: str):
    """The frozen golden configuration of a registry scenario (ref / f64)."""
    from dataclasses import replace

    from ..scenarios.registry import get_scenario
    from ..scenarios.spec import FusedSourceSpec, TimeFunctionSpec

    if name not in GOLDEN_SCENARIOS:
        known = ", ".join(sorted(GOLDEN_SCENARIOS))
        raise KeyError(f"no golden configuration for {name!r} (known: {known})")
    config = GOLDEN_SCENARIOS[name]
    spec = get_scenario(config.get("base", name), **config["factory"])
    time_function = config.get("time_function")
    if time_function is not None:
        spec = replace(
            spec, source=replace(spec.source, time_function=TimeFunctionSpec(**time_function))
        )
    fused = config.get("fused")
    if fused is not None:
        slots = tuple(FusedSourceSpec(**slot) for slot in fused)
        spec = replace(
            spec,
            source=replace(spec.source, fused=slots),
            solver=replace(spec.solver, n_fused=len(slots)),
        )
    if config.get("base"):
        spec = replace(spec, name=name)
    return spec.with_overrides(kernels="ref", precision="f64")


def record_golden(name: str, directory=None) -> Path:
    """Run the golden configuration on the reference backend and freeze it."""
    import numpy

    from ..scenarios.runner import ScenarioRunner

    spec = golden_spec(name)
    runner = ScenarioRunner(spec)
    summary = runner.run()
    receivers = {}
    for receiver in runner.receivers.receivers:
        times, values = receiver.seismogram()
        receivers[receiver.name] = {
            "times": [float(t) for t in times],
            "values": np.asarray(values, dtype=np.float64).tolist(),
        }
    payload = {
        "format_version": GOLDEN_FORMAT_VERSION,
        "scenario": name,
        "spec": spec.to_dict(),
        "generator": {
            "kernels": "ref",
            "precision": "f64",
            "numpy": numpy.__version__,
        },
        "n_elements": int(summary["n_elements"]),
        "cycles": int(summary["cycles"]),
        "receivers": receivers,
    }
    path = golden_fixture_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def load_golden(name: str, directory=None) -> dict:
    path = golden_fixture_path(name, directory)
    if not path.exists():
        raise FileNotFoundError(
            f"golden fixture {path} is missing; regenerate it with "
            f"'repro verify --update-golden' and commit the result"
        )
    data = json.loads(path.read_text())
    if data["format_version"] != GOLDEN_FORMAT_VERSION:
        raise ValueError(f"unsupported golden fixture format {data['format_version']}")
    return data


def compare_to_golden(
    name: str,
    *,
    kernels: str = "ref",
    precision: str = "f64",
    n_ranks: int = 1,
    backend: str = "serial",
    n_fused: int = 0,
    directory=None,
) -> dict:
    """Re-run the frozen golden spec under a kernel mode and diff the traces.

    Returns a JSON-ready report with per-receiver peak-relative errors and
    an overall ``passed`` flag against the tolerance ladder.  Fused runs of
    a *scalar* golden (``n_fused > 0``) replicate one physical simulation,
    so every ensemble member is diffed against the same golden trace; a
    golden whose frozen spec is itself a fused ensemble (distinct per-slot
    sources, e.g. ``loh3_fused2``) stores fused ``(n, 3, F)`` traces and is
    diffed slot against slot.  Raises on structural mismatch (missing
    receivers, diverging sample counts) -- those are never tolerance
    questions.
    """
    from ..scenarios.runner import make_runner
    from ..scenarios.spec import ScenarioSpec

    golden = load_golden(name, directory)
    spec = ScenarioSpec.from_dict(golden["spec"]).with_overrides(
        kernels=kernels,
        precision=precision,
        n_ranks=n_ranks if n_ranks > 1 else None,
        backend=backend if backend != "serial" else None,
        n_fused=n_fused if n_fused else None,
    )
    runner = make_runner(spec)
    runner.run()

    tolerance = seismogram_tolerance(name, kernels, precision)
    receivers = {}
    worst = 0.0
    for rec_name, fixture in golden["receivers"].items():
        receiver = runner.receivers[rec_name]
        times, values = receiver.seismogram()
        ref_times = np.asarray(fixture["times"], dtype=np.float64)
        ref_values = np.asarray(fixture["values"], dtype=np.float64)
        if len(times) != len(ref_times):
            raise ValueError(
                f"receiver {rec_name!r} recorded {len(times)} samples, golden "
                f"has {len(ref_times)}: the run schedule changed (not a "
                "tolerance question)"
            )
        if not np.allclose(times, ref_times, rtol=0.0, atol=1e-12):
            raise ValueError(f"receiver {rec_name!r} sample times diverge from golden")
        peak = float(np.abs(ref_values).max())
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 3 and ref_values.ndim == 2:
            # replicated fused run of a scalar golden: every ensemble
            # member is diffed against the same golden trace (distinct-source
            # goldens store (n, 3, F) values and compare slot against slot)
            ref_values = ref_values[..., None]
        err = float(np.abs(values - ref_values).max())
        rel = err / peak if peak > 0.0 else err
        worst = max(worst, rel)
        receivers[rec_name] = {"peak_rel_err": rel, "peak": peak}
    return {
        "kind": "golden",
        "scenario": name,
        "kernels": kernels,
        "precision": precision,
        "n_ranks": n_ranks,
        "backend": backend,
        "n_elements": int(golden["n_elements"]),
        "tolerance": tolerance,
        "max_peak_rel_err": worst,
        "receivers": receivers,
        "passed": bool(worst <= tolerance),
    }

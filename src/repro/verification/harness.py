"""The end-to-end verification suite behind ``repro verify``.

One entry point per scenario family:

* golden scenarios (``loh3``, ``la_habra``) re-run their frozen spec under
  the requested kernel mode and diff seismograms against the committed
  fixture under the tolerance ladder,
* ``plane_wave`` runs the mesh-refinement ladder and checks the fitted
  convergence order against the scheme's formal order.

``verify_suite`` runs all of them; a kernel mode that passes the suite is
considered accuracy-verified for release (the bar every non-bit-exact
optimisation -- fast-f64, f32, future native kernels -- must clear).
"""

from __future__ import annotations

from .convergence import plane_wave_convergence
from .golden import GOLDEN_SCENARIOS, compare_to_golden

__all__ = ["verify_scenario", "verify_suite"]

#: ladder used by the convergence leg of the suite: order 3, three levels
SUITE_CONVERGENCE = dict(order=3, lengths=(500.0, 400.0, 250.0), t_end=0.01)


def verify_scenario(
    name: str,
    *,
    kernels: str = "ref",
    precision: str = "f64",
    n_ranks: int = 1,
    backend: str = "serial",
) -> dict:
    """One verification check; returns a JSON-ready report with ``passed``."""
    if name in GOLDEN_SCENARIOS:
        return compare_to_golden(
            name,
            kernels=kernels,
            precision=precision,
            n_ranks=n_ranks,
            backend=backend,
        )
    if name == "plane_wave":
        study = plane_wave_convergence(
            kernels=kernels,
            precision=precision,
            n_ranks=n_ranks,
            backend=backend,
            **SUITE_CONVERGENCE,
        )
        report = study.to_dict()
        report["kind"] = "convergence"
        report["scenario"] = name
        return report
    known = ", ".join(sorted(GOLDEN_SCENARIOS) + ["plane_wave"])
    raise KeyError(f"no verification defined for {name!r} (known: {known})")


def verify_suite(
    *,
    kernels: str = "ref",
    precision: str = "f64",
    n_ranks: int = 1,
    backend: str = "serial",
) -> dict:
    """Golden regressions plus the convergence ladder, one report."""
    checks = [
        verify_scenario(
            name, kernels=kernels, precision=precision, n_ranks=n_ranks, backend=backend
        )
        for name in (*sorted(GOLDEN_SCENARIOS), "plane_wave")
    ]
    return {
        "kernels": kernels,
        "precision": precision,
        "n_ranks": n_ranks,
        "backend": backend,
        "checks": checks,
        "passed": all(check["passed"] for check in checks),
    }

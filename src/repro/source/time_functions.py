"""Source time functions for kinematic point sources.

The High-F / LOH.3 style workloads use smooth, band-limited source time
functions; the solver only ever needs the *time integral* of the source time
function over an element's local time interval (the ADER update integrates
the right-hand side over the step), so every source time function exposes
both ``__call__`` and ``integral``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RickerWavelet", "GaussianDerivative", "SmoothedStep"]


@dataclass(frozen=True)
class RickerWavelet:
    """Ricker (Mexican hat) wavelet with centre frequency ``f0`` and delay ``t0``."""

    f0: float
    t0: float
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.f0 <= 0:
            raise ValueError("centre frequency must be positive")

    def __call__(self, t: np.ndarray | float) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        arg = (np.pi * self.f0 * (t - self.t0)) ** 2
        return self.amplitude * (1.0 - 2.0 * arg) * np.exp(-arg)

    def integral(self, t_start: float, t_end: float, n_quad: int = 16) -> float:
        """Integral of the wavelet over ``[t_start, t_end]`` (Gauss-Legendre)."""
        x, w = np.polynomial.legendre.leggauss(n_quad)
        half = 0.5 * (t_end - t_start)
        mid = 0.5 * (t_end + t_start)
        return float(half * np.sum(w * self(mid + half * x)))


@dataclass(frozen=True)
class GaussianDerivative:
    """Derivative-of-Gaussian pulse (dominant frequency ~ ``1 / (2 pi sigma)``)."""

    sigma: float
    t0: float
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def __call__(self, t: np.ndarray | float) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        tau = t - self.t0
        return -self.amplitude * tau / self.sigma**2 * np.exp(-0.5 * (tau / self.sigma) ** 2)

    def integral(self, t_start: float, t_end: float) -> float:
        """Closed-form integral (the Gaussian itself)."""

        def antiderivative(t: float) -> float:
            tau = t - self.t0
            return self.amplitude * np.exp(-0.5 * (tau / self.sigma) ** 2)

        return float(antiderivative(t_end) - antiderivative(t_start))


@dataclass(frozen=True)
class SmoothedStep:
    """Smoothed Heaviside (error-function) moment-rate ramp of rise time ``rise_time``."""

    rise_time: float
    t0: float = 0.0
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.rise_time <= 0:
            raise ValueError("rise time must be positive")

    def __call__(self, t: np.ndarray | float) -> np.ndarray:
        from scipy.special import erf

        t = np.asarray(t, dtype=np.float64)
        tau = (t - self.t0) / self.rise_time
        return self.amplitude * 0.5 * (1.0 + erf(2.0 * (tau - 1.0)))

    def integral(self, t_start: float, t_end: float, n_quad: int = 16) -> float:
        x, w = np.polynomial.legendre.leggauss(n_quad)
        half = 0.5 * (t_end - t_start)
        mid = 0.5 * (t_end + t_start)
        return float(half * np.sum(w * self(mid + half * x)))

"""Kinematic moment-tensor point sources.

The La Habra and LOH.3 setups use kinematic descriptions of the earthquake
rupture: point sources with a moment tensor and a source time function.  A
point source located at ``x_s`` adds

``d sigma / dt += -M_ij * s(t) * delta(x - x_s) / |J_k|``

to the stress equations of the element containing it; in modal DG form the
delta function turns into the basis functions evaluated at the source's
reference coordinates.  The solver applies the time-integrated source at the
end of each local time step of the source element, which keeps the injection
exact for arbitrary local time steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.discretization import Discretization
from ..mesh.geometry import map_physical_to_reference

__all__ = ["MomentTensorSource", "PointForceSource", "DiscretePointSource", "locate_point"]


def locate_point(mesh, point: np.ndarray) -> int:
    """Find the element containing ``point`` (smallest max barycentric excess)."""
    point = np.asarray(point, dtype=np.float64)
    best_element, best_excess = -1, np.inf
    for k in range(mesh.n_elements):
        xi = map_physical_to_reference(mesh.vertices, mesh.elements, k, point)[0]
        excess = max(-xi.min(), xi.sum() - 1.0)
        if excess < best_excess:
            best_excess = excess
            best_element = k
        if excess <= 1e-12:
            break
    return best_element


@dataclass(frozen=True)
class MomentTensorSource:
    """A moment-tensor point source with a source time function.

    ``moment_tensor`` is the symmetric 3x3 seismic moment tensor [N m]; the
    source time function describes the moment *rate* normalised to unit
    moment (i.e. the solver injects ``M_ij * stf(t)``).
    """

    location: np.ndarray
    moment_tensor: np.ndarray
    time_function: object

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", np.asarray(self.location, dtype=np.float64))
        object.__setattr__(self, "moment_tensor", np.asarray(self.moment_tensor, dtype=np.float64))
        if self.moment_tensor.shape != (3, 3):
            raise ValueError("moment tensor must be a 3x3 matrix")
        if not np.allclose(self.moment_tensor, self.moment_tensor.T):
            raise ValueError("moment tensor must be symmetric")

    def variable_vector(self) -> np.ndarray:
        """The 9-component right-hand-side direction (stress rows only)."""
        m = self.moment_tensor
        out = np.zeros(9)
        out[0], out[1], out[2] = -m[0, 0], -m[1, 1], -m[2, 2]
        out[3], out[4], out[5] = -m[0, 1], -m[1, 2], -m[0, 2]
        return out


@dataclass(frozen=True)
class PointForceSource:
    """A single-force point source acting on the momentum equations."""

    location: np.ndarray
    force: np.ndarray
    time_function: object

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", np.asarray(self.location, dtype=np.float64))
        object.__setattr__(self, "force", np.asarray(self.force, dtype=np.float64))
        if self.force.shape != (3,):
            raise ValueError("force must be a 3-vector")

    def variable_vector(self) -> np.ndarray:
        out = np.zeros(9)
        out[6:9] = self.force
        return out


class DiscretePointSource:
    """A point source bound to a discretization (located inside one element).

    The density scaling of force sources (``1/rho``) and the delta-function
    scaling (``1/|J_k|`` and the basis evaluation at the source position) are
    precomputed; :meth:`inject` then only needs the time interval.

    Passing a *sequence* of F sources sharing one location builds a fused
    ensemble source: the per-slot spatial terms are precomputed as a single
    ``(n_vars, B, F)`` injection stack, and :meth:`inject` applies the F
    per-slot time-integral weights as one vectorized multiply-add (no Python
    loop over fused slots).  Each slot's product uses exactly the operands of
    the scalar path, so slot ``f`` of a fused run stays bit-identical to the
    scalar run of source ``f``.
    """

    def __init__(
        self,
        disc: Discretization,
        source: MomentTensorSource | PointForceSource | list | tuple,
    ):
        sources = list(source) if isinstance(source, (list, tuple)) else [source]
        if not sources:
            raise ValueError("fused source list must not be empty")
        self.fused = isinstance(source, (list, tuple))
        self.sources = tuple(sources)
        self.source = sources[0]
        mesh = disc.mesh
        location = sources[0].location
        for other in sources[1:]:
            if not np.array_equal(other.location, location):
                raise ValueError("fused sources must share one location")
        self.element = locate_point(mesh, location)
        if self.element < 0:
            raise ValueError("source location is outside the mesh")
        xi = map_physical_to_reference(
            mesh.vertices, mesh.elements, self.element, location
        )[0]
        if xi.min() < -1e-6 or xi.sum() > 1.0 + 1e-6:
            raise ValueError("source location is outside the mesh")
        psi = disc.ref.basis.evaluate(xi[None, :])[0]  # (B,)
        # delta-function test integral: psi_b(xi_s) / |J_k|, times M^{-1} (identity)
        jac_det = mesh.geometry.determinants[self.element]
        slots = []
        for s in sources:
            variable_vector = s.variable_vector().copy()
            if isinstance(s, PointForceSource):
                variable_vector[6:9] /= disc.materials.rho[self.element]
            spatial = np.outer(variable_vector, psi) / jac_det  # (9, B)
            full = np.zeros((disc.n_vars, disc.n_basis))
            full[:9] = spatial
            slots.append(full)
        if self.fused:
            self._injection = np.stack(slots, axis=-1)  # (n_vars, B, F)
        else:
            self._injection = slots[0]  # (n_vars, B)
        self.time_functions = tuple(s.time_function for s in sources)
        self.time_function = self.time_functions[0]

    @property
    def n_fused(self) -> int:
        """Fused ensemble width (0 for a plain scalar source)."""
        return len(self.sources) if self.fused else 0

    def inject(self, dofs: np.ndarray, t_start: float, t_end: float) -> None:
        """Add the source contribution over ``[t_start, t_end]`` to the DOFs.

        Scalar sources work for single and fused DOF arrays: a ``(..., F)``
        DOF array receives the *same* contribution broadcast into every fused
        slot (a replicated ensemble).  A fused source (built from a sequence
        of per-slot sources) instead applies its ``(n_vars, B, F)`` injection
        stack weighted by the per-slot time integrals, so each fused slot
        receives its own distinct source.
        """
        if self.fused:
            if dofs.ndim != 4 or dofs.shape[-1] != len(self.sources):
                raise ValueError(
                    f"fused source of width {len(self.sources)} needs fused DOFs "
                    f"with a matching trailing axis, got shape {dofs.shape}"
                )
            weights = np.array(
                [tf.integral(t_start, t_end) for tf in self.time_functions]
            )
            dofs[self.element] += self._injection * weights
            return
        weight = self.time_function.integral(t_start, t_end)
        contribution = weight * self._injection
        if dofs.ndim == 4:
            dofs[self.element] += contribution[..., None]
        else:
            dofs[self.element] += contribution

"""Receivers (seismic stations) and synthetic seismograms.

A receiver samples the particle velocities at a fixed physical location every
time the element containing it completes a local time step -- which gives a
seismogram sampled at the element's local time step, exactly as EDGE's
receiver output behaves under local time stepping.  Seismograms can be
resampled to a common time axis and low-pass filtered for comparisons
(Figs. 2 and 9 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.discretization import Discretization
from ..mesh.geometry import map_physical_to_reference
from .moment_tensor import locate_point

__all__ = ["Receiver", "ReceiverSet", "resample_seismogram", "lowpass_filter"]


@dataclass
class Receiver:
    """A single station recording the particle velocity vector."""

    name: str
    location: np.ndarray
    element: int = -1
    basis_values: np.ndarray | None = field(default=None, repr=False)
    times: list[float] = field(default_factory=list, repr=False)
    samples: list[np.ndarray] = field(default_factory=list, repr=False)

    def record(self, time: float, dofs: np.ndarray) -> None:
        """Sample the velocity at the receiver from the global DOF array.

        Sampling runs in the state's own precision: an f32 run records f32
        seismograms instead of silently upcasting through the f64 basis
        values.  The cast is memoized separately so the setup-precision
        basis values are never destructively overwritten (a receiver may be
        reused across runs of different precision).
        """
        coeffs = dofs[self.element, 6:9]  # (3, B[, n_fused])
        basis = self.basis_values
        if basis.dtype != coeffs.dtype:
            cast = getattr(self, "_basis_cast", None)
            if cast is None or cast.dtype != coeffs.dtype:
                cast = basis.astype(coeffs.dtype)
                self._basis_cast = cast
            basis = cast
        if coeffs.ndim == 3:
            # contract each fused slot through the scalar call on a
            # contiguous copy: the strided one-shot einsum accumulates in a
            # different order (a ~1-ulp drift), and demuxed fused seismograms
            # must stay bit-identical to the scalar runs they collapse
            value = np.stack(
                [
                    np.einsum(
                        "vb...,b->v...", np.ascontiguousarray(coeffs[:, :, f]), basis
                    )
                    for f in range(coeffs.shape[-1])
                ],
                axis=-1,
            )
        else:
            value = np.einsum("vb...,b->v...", coeffs, basis)
        self.times.append(time)
        self.samples.append(np.asarray(value))

    def seismogram(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, velocities)`` with velocities of shape ``(n, 3[, n_fused])``."""
        if not self.times:
            return np.zeros(0), np.zeros((0, 3))
        return np.asarray(self.times), np.stack(self.samples)

    def clear(self) -> None:
        self.times.clear()
        self.samples.clear()


class ReceiverSet:
    """A collection of receivers bound to a discretization."""

    def __init__(self, disc: Discretization, locations: dict[str, np.ndarray]):
        self.receivers: list[Receiver] = []
        mesh = disc.mesh
        for name, location in locations.items():
            location = np.asarray(location, dtype=np.float64)
            element = locate_point(mesh, location)
            xi = map_physical_to_reference(mesh.vertices, mesh.elements, element, location)[0]
            xi = np.clip(xi, 0.0, 1.0)
            basis_values = disc.ref.basis.evaluate(xi[None, :])[0]
            self.receivers.append(
                Receiver(name=name, location=location, element=element, basis_values=basis_values)
            )
        self._by_element: dict[int, list[Receiver]] = {}
        for receiver in self.receivers:
            self._by_element.setdefault(receiver.element, []).append(receiver)

    def __len__(self) -> int:
        return len(self.receivers)

    def __getitem__(self, name: str) -> Receiver:
        for receiver in self.receivers:
            if receiver.name == name:
                return receiver
        raise KeyError(name)

    @property
    def elements(self) -> np.ndarray:
        """Element ids containing at least one receiver."""
        return np.array(sorted(self._by_element), dtype=np.int64)

    def record_elements(self, element_ids: np.ndarray, time: float, dofs: np.ndarray) -> None:
        """Record all receivers whose element is in ``element_ids`` at ``time``."""
        for k in np.intersect1d(element_ids, self.elements, assume_unique=False):
            for receiver in self._by_element[int(k)]:
                receiver.record(time, dofs)

    def record_all(self, time: float, dofs: np.ndarray) -> None:
        for receiver in self.receivers:
            receiver.record(time, dofs)

    def clear(self) -> None:
        for receiver in self.receivers:
            receiver.clear()


def resample_seismogram(
    times: np.ndarray, values: np.ndarray, target_times: np.ndarray
) -> np.ndarray:
    """Linearly resample a seismogram onto a common time axis (per component)."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if len(times) < 2:
        raise ValueError("need at least two samples to resample")
    flat = values.reshape(len(times), -1)
    out = np.stack([np.interp(target_times, times, flat[:, c]) for c in range(flat.shape[1])], axis=1)
    return out.reshape((len(target_times),) + values.shape[1:])


def lowpass_filter(values: np.ndarray, dt: float, cutoff_hz: float, order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter along the first axis."""
    from scipy.signal import butter, filtfilt

    nyquist = 0.5 / dt
    if cutoff_hz >= nyquist:
        return values
    b, a = butter(order, cutoff_hz / nyquist)
    return filtfilt(b, a, values, axis=0)

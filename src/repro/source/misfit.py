"""Seismogram misfit measures.

Sec. VII-B of the paper quantifies the agreement between solutions with the
relative energy misfit ``E = sum_j (s_j - s^r_j)^2 / sum_j (s^r_j)^2`` over
the ``n_t`` samples of the seismogram; the same measure is implemented here
(plus a time-shift tolerant envelope variant used by some verification
exercises).
"""

from __future__ import annotations

import numpy as np

__all__ = ["seismogram_misfit", "envelope_misfit"]


def seismogram_misfit(solution: np.ndarray, reference: np.ndarray) -> float:
    """Relative energy misfit ``E`` of the paper (eq. in Sec. VII-B)."""
    solution = np.asarray(solution, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if solution.shape != reference.shape:
        raise ValueError("solution and reference must have the same shape")
    denom = float(np.sum(reference**2))
    if denom == 0.0:
        raise ValueError("reference seismogram is identically zero")
    return float(np.sum((solution - reference) ** 2) / denom)


def envelope_misfit(solution: np.ndarray, reference: np.ndarray) -> float:
    """Misfit of the signal envelopes (tolerant to small phase shifts)."""
    from scipy.signal import hilbert

    solution = np.asarray(solution, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    env_solution = np.abs(hilbert(solution, axis=0))
    env_reference = np.abs(hilbert(reference, axis=0))
    return seismogram_misfit(env_solution, env_reference)

"""Seismic sources, receivers and seismogram utilities."""

from .misfit import envelope_misfit, seismogram_misfit
from .moment_tensor import (
    DiscretePointSource,
    MomentTensorSource,
    PointForceSource,
    locate_point,
)
from .receivers import Receiver, ReceiverSet, lowpass_filter, resample_seismogram
from .time_functions import GaussianDerivative, RickerWavelet, SmoothedStep

__all__ = [
    "RickerWavelet",
    "GaussianDerivative",
    "SmoothedStep",
    "MomentTensorSource",
    "PointForceSource",
    "DiscretePointSource",
    "locate_point",
    "Receiver",
    "ReceiverSet",
    "resample_seismogram",
    "lowpass_filter",
    "seismogram_misfit",
    "envelope_misfit",
]

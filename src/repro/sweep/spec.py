"""Sweep specifications: a base scenario plus parameter axes.

A :class:`SweepSpec` names a base :class:`~repro.scenarios.spec.ScenarioSpec`
and a list of :class:`SweepAxis` entries -- each a dotted path into the
spec's nested-dict form plus the values to sweep it over.  Expansion takes
the cartesian product of the axes, applies each combination to the base
spec's dict and revalidates it through ``ScenarioSpec.from_dict``, so every
member is a first-class spec that could equally be run standalone (and the
sweep's bit-identity claim against standalone runs is meaningful).

Typical axes (the paper's ensemble arguments): ``source.location``,
``source.moment_tensor``, ``velocity_model.params.<k>`` (material contrast),
``clustering.lam``, ``solver.kernels`` / ``solver.precision``,
``mesh.characteristic_length`` (mesh h), ``solver.n_fused``.

Sweep specs round-trip losslessly through ``to_dict``/``from_dict`` and
JSON, the format the ``repro sweep --spec <file>`` CLI reads.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field

from ..scenarios.spec import ScenarioSpec

__all__ = ["SweepAxis", "SweepMember", "SweepSpec", "SWEEP_FORMAT_VERSION"]

SWEEP_FORMAT_VERSION = 1

#: paths may introduce new keys only under free-form parameter dicts
_FREE_FORM_LEAVES = ("params",)


def _jsonable(value):
    """Normalise an axis value to JSON-native form (tuples -> lists, numpy
    scalars/arrays -> python), so a sweep spec compares equal to itself
    after a JSON round-trip."""
    def default(v):
        if hasattr(v, "tolist"):
            return v.tolist()
        raise TypeError(f"{type(v).__name__} is not JSON serialisable")

    return json.loads(json.dumps(value, default=default))


def _apply_path(data: dict, path: str, value) -> None:
    """Set ``path`` (dotted) in the nested dict ``data``, in place."""
    parts = path.split(".")
    node = data
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            raise ValueError(f"axis path {path!r}: no such spec field {part!r}")
        node = node[part]
    if not isinstance(node, dict):
        raise ValueError(
            f"axis path {path!r}: {parts[-2]!r} is not an overridable block "
            "(is it unset in the base spec?)"
        )
    leaf = parts[-1]
    parent = parts[-2] if len(parts) > 1 else None
    if leaf not in node and parent not in _FREE_FORM_LEAVES:
        raise ValueError(f"axis path {path!r}: no such spec field {leaf!r}")
    node[leaf] = value


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a dotted spec path and its values."""

    path: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.path or not all(self.path.split(".")):
            raise ValueError(f"axis path must be a dotted spec path, got {self.path!r}")
        values = tuple(_jsonable(v) for v in self.values)
        if not values:
            raise ValueError(f"axis {self.path!r} needs at least one value")
        object.__setattr__(self, "values", values)


@dataclass(frozen=True)
class SweepMember:
    """One expanded member: its queue identity plus the runnable spec."""

    index: int
    member_id: str
    overrides: dict  # axis path -> value, JSON-native
    spec: ScenarioSpec


@dataclass(frozen=True)
class SweepSpec:
    """A validated, serialisable ensemble-sweep description."""

    base: ScenarioSpec
    axes: tuple[SweepAxis, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.base, dict):
            object.__setattr__(self, "base", ScenarioSpec.from_dict(self.base))
        object.__setattr__(
            self,
            "axes",
            tuple(a if isinstance(a, SweepAxis) else SweepAxis(**a) for a in self.axes),
        )
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        paths = [axis.path for axis in self.axes]
        if len(set(paths)) != len(paths):
            raise ValueError(f"duplicate axis paths: {sorted(paths)}")
        if not self.name:
            object.__setattr__(self, "name", f"{self.base.name}-sweep")
        # expansion doubles as validation: every member must construct (axis
        # paths resolve, every combination passes the spec validators)
        self.expand()

    @property
    def n_members(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def expand(self) -> tuple[SweepMember, ...]:
        """The cartesian product of the axes as runnable members.

        Member ids are zero-padded indices in axis-major order (the last
        axis varies fastest), so the id <-> override mapping is stable
        across processes and resumed sweeps.
        """
        base_dict = self.base.to_dict()
        width = max(4, len(str(self.n_members - 1)))
        members = []
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            data = json.loads(json.dumps(base_dict))  # deep copy
            overrides = {}
            for axis, value in zip(self.axes, combo):
                _apply_path(data, axis.path, value)
                overrides[axis.path] = value
            try:
                spec = ScenarioSpec.from_dict(data)
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"sweep member {index} ({overrides}) is not a valid spec: {error}"
                ) from error
            members.append(
                SweepMember(
                    index=index,
                    member_id=f"{index:0{width}d}",
                    overrides=overrides,
                    spec=spec,
                )
            )
        return tuple(members)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": SWEEP_FORMAT_VERSION,
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [{"path": a.path, "values": list(a.values)} for a in self.axes],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        version = data.get("format_version", SWEEP_FORMAT_VERSION)
        if version != SWEEP_FORMAT_VERSION:
            raise ValueError(f"unsupported sweep format {version}")
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            axes=tuple(SweepAxis(**a) for a in data["axes"]),
            name=data.get("name", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

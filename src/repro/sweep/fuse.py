"""Fused collapse of sweep members: grouping, collapse, per-member demux.

``repro sweep --fuse`` detects members that share every preprocessing
artifact *and* every result-determining spec field except the fusable
source axes -- the time function, the moment tensor, the force vector --
and collapses each such group into one fused ensemble run (one mesh read,
one operator application, one halo message per neighbour, all amortised
over the group width F).  The collapsed run's trailing fused axis carries
one member per slot; afterwards the demux step slices slot ``f`` back out
into member ``f``'s own artefact directory.

The collapse is only sound because of the slot-wise bit-identity contract
(see :mod:`repro.source.moment_tensor`): on the ``ref`` and ``opt``
backends at f64, slot ``f`` of the fused state is bit-identical to the
standalone run of slot ``f``'s source, and the demuxed seismogram CSVs are
routed through the scalar formatting path so they come out *byte*-identical
to the CSVs an unfused sweep would have written.  Manifest rows, resume
decisions and ``repro report`` all stay per-member; the grouping is
recorded on each row (``fused_group`` / ``fused_slot`` / ``fused_width``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path

from ..scenarios.spec import FusedSourceSpec, ScenarioSpec
from .spec import SweepMember

__all__ = [
    "FUSABLE_SOURCE_FIELDS",
    "FusedGroup",
    "can_fuse",
    "fusable_signature",
    "collapse_members",
    "plan_fused_groups",
    "run_fused_group",
]

#: the source fields a fused slot can carry per-member; everything else in
#: the spec -- the location included, since one fused run injects at one
#: shared source element -- must match exactly for members to collapse
FUSABLE_SOURCE_FIELDS = ("time_function", "moment_tensor", "force")


def can_fuse(spec: ScenarioSpec) -> bool:
    """Whether a member spec is eligible for fused collapse.

    Eligible members are scalar (``solver.n_fused == 0``) point-source runs
    without a fused block of their own -- a member that already runs a
    replicated or distinct ensemble keeps its fused axis untouched.
    """
    return (
        spec.source is not None
        and not spec.source.fused
        and spec.solver.n_fused == 0
    )


def fusable_signature(spec: ScenarioSpec) -> str:
    """The grouping key: the spec's dict form minus the fusable source axes.

    Two members share a signature exactly when they differ *only* in fields
    a fused slot can express (:data:`FUSABLE_SOURCE_FIELDS`), so the
    collapsed run shares mesh, operators, clustering, schedule, receiver
    placement and source element with every member it absorbs.  The
    observability ``output`` block stays in the key: members with different
    trace/ledger settings cannot honour them from a single shared run.
    """
    data = spec.to_dict()
    source = data.get("source") or {}
    for field_name in FUSABLE_SOURCE_FIELDS:
        source.pop(field_name, None)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FusedGroup:
    """One collapsed group: the fused spec plus its members in slot order."""

    group_id: str
    members: tuple[SweepMember, ...]  # slot f carries members[f]'s source
    spec: ScenarioSpec  # solver.n_fused == width, one slot per member

    @property
    def width(self) -> int:
        return len(self.members)


def collapse_members(members) -> ScenarioSpec:
    """Collapse members sharing a fusable signature into one fused spec.

    The result is the first member's spec with ``solver.n_fused`` set to
    the group width and one explicit :class:`FusedSourceSpec` slot per
    member carrying that member's time function and moment tensor / force.
    ``SourceSpec.slot(f)`` of the collapsed spec reconstructs member
    ``f``'s source field-for-field, which is what entitles the demuxed
    outputs to the slot-wise bit-identity guarantee.
    """
    members = tuple(members)
    base = members[0].spec
    slots = []
    for member in members:
        source = member.spec.source
        slots.append(
            FusedSourceSpec(
                time_function=source.time_function,
                moment_tensor=(
                    source.moment_tensor if source.kind == "moment_tensor" else None
                ),
                force=source.force if source.kind == "point_force" else None,
            )
        )
    return replace(
        base,
        source=replace(base.source, fused=tuple(slots)),
        solver=replace(base.solver, n_fused=len(slots)),
    )


def plan_fused_groups(members, *, min_width: int = 2):
    """Partition pending members into fused groups and leftover singles.

    Members are bucketed by :func:`fusable_signature`; buckets of at least
    ``min_width`` collapse into a :class:`FusedGroup` (slots in member
    index order, groups ordered by their first member), everything else
    stays standalone.  Re-planning a resumed sweep's *pending* subset is
    safe: slot-wise bit-identity holds at any width, so a member's results
    do not depend on which siblings remain in its group.
    """
    buckets: dict[str, list] = {}
    singles: list[SweepMember] = []
    for member in members:
        if not can_fuse(member.spec):
            singles.append(member)
            continue
        buckets.setdefault(fusable_signature(member.spec), []).append(member)
    groups = []
    for bucket in buckets.values():
        if len(bucket) < min_width:
            singles.extend(bucket)
            continue
        ordered = tuple(sorted(bucket, key=lambda m: m.index))
        groups.append(
            FusedGroup(
                group_id=f"fused-{ordered[0].member_id}",
                members=ordered,
                spec=collapse_members(ordered),
            )
        )
    groups.sort(key=lambda g: g.members[0].index)
    singles.sort(key=lambda m: m.index)
    return tuple(groups), tuple(singles)


def run_fused_group(spec: ScenarioSpec, group_dir, member_dirs, cache) -> dict:
    """Run one collapsed group end-to-end and demux per-member artefacts.

    The fused run's own artefacts (summary, fused multi-column seismograms,
    optional ledger/trace) land under ``group_dir``; every ``(member_id,
    directory)`` pair in ``member_dirs`` (slot order) then gets the demuxed
    scalar seismogram CSVs -- written through the byte-identical scalar
    formatting path -- plus a per-member run summary annotated with its
    slot.  Returns the manifest fields: the shared run figures plus a
    ``members`` map of per-member rows.
    """
    from ..preprocessing.cache import diff_stats
    from ..scenarios.outputs import (
        write_fused_slot_seismograms,
        write_outputs,
        write_run_summary,
    )
    from ..scenarios.runner import make_runner

    group_dir = Path(group_dir)
    member_dirs = [(member_id, Path(directory)) for member_id, directory in member_dirs]
    if spec.solver.n_fused != len(member_dirs):
        raise ValueError(
            f"fused spec has {spec.solver.n_fused} slots but the group maps "
            f"{len(member_dirs)} members"
        )
    before = cache.snapshot()
    start = time.perf_counter()
    runner = make_runner(spec, cache=cache)
    summary = runner.run()
    write_outputs(runner, group_dir, summary=summary)
    if spec.output.trace:
        runner.write_trace(group_dir / "trace.json")
    cache_delta = diff_stats(before, cache.snapshot())
    wall_s = float(summary["wall_s"])
    total_wall_s = time.perf_counter() - start
    slot_labels = summary.get("fused_sources") or [None] * len(member_dirs)

    rows = {}
    for slot, (member_id, member_dir) in enumerate(member_dirs):
        member_summary = dict(summary)
        member_summary.pop("fused_sources", None)
        member_summary["fused_demux"] = {
            "member": member_id,
            "group": group_dir.name,
            "slot": slot,
            "width": len(member_dirs),
            "source": slot_labels[slot],
            "group_summary": str(group_dir / "run_summary.json"),
        }
        write_run_summary(member_dir / "run_summary.json", member_summary)
        if runner.receivers is not None:
            write_fused_slot_seismograms(runner.receivers, member_dir, slot)
        rows[member_id] = {
            "summary_path": str(member_dir / "run_summary.json"),
            "wall_s": wall_s,
            "total_wall_s": total_wall_s,
            "n_elements": summary["n_elements"],
        }
    return {
        "group": group_dir.name,
        "wall_s": wall_s,
        "total_wall_s": total_wall_s,
        "n_elements": summary["n_elements"],
        "cache": cache_delta,
        "members": rows,
    }

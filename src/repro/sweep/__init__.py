"""The ensemble sweep service: parameter-axis expansion of a base
:class:`~repro.scenarios.spec.ScenarioSpec`, a sharded worker pool over the
content-addressed preprocessing cache, a crash-durable JSONL manifest, and
(``--fuse``) collapse of members differing only in fusable source axes into
single fused ensemble runs with per-member demux.
"""

from .fuse import (
    FUSABLE_SOURCE_FIELDS,
    FusedGroup,
    can_fuse,
    collapse_members,
    fusable_signature,
    plan_fused_groups,
)
from .manifest import (
    MANIFEST_FORMAT_VERSION,
    SweepManifest,
    manifest_member_paths,
    manifest_state,
    read_manifest,
    validate_manifest,
)
from .orchestrator import run_sweep
from .spec import SweepAxis, SweepMember, SweepSpec

__all__ = [
    "SweepAxis",
    "SweepMember",
    "SweepSpec",
    "SweepManifest",
    "MANIFEST_FORMAT_VERSION",
    "read_manifest",
    "manifest_state",
    "manifest_member_paths",
    "validate_manifest",
    "run_sweep",
    "FUSABLE_SOURCE_FIELDS",
    "FusedGroup",
    "can_fuse",
    "collapse_members",
    "fusable_signature",
    "plan_fused_groups",
]

"""The crash-durable JSONL sweep manifest.

One line per event, flushed immediately (the same durability contract as
the :class:`~repro.observability.events.RunLedger`): a ``header`` record
identifying the sweep, one ``prewarm`` record per preprocessing signature
built in the parent, ``member`` records tracking each member through
``started`` -> ``done`` / ``requeued`` / ``failed``, and a ``final``
tally.  A sweep killed mid-flight leaves a readable prefix; resuming reads
it back, skips every member whose latest status is ``done`` and re-queues
the rest.

``done`` rows carry the member's summary path, wall time and the per-stage
preprocessing-cache hit/miss delta its run observed -- the counters that
*prove* a shared-mesh ensemble paid mesh/operator/clustering cost once
(prewarm records show the misses; member rows show pure hits).

A ``--fuse`` sweep keeps one row per *member* even when several members ran
as one collapsed fused ensemble; those rows additionally record the
grouping (``fused_group`` / ``fused_slot`` / ``fused_width``), and the
shared run's cache delta is carried once, on the slot-0 row.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "SweepManifest",
    "read_manifest",
    "manifest_state",
    "manifest_member_paths",
    "is_sweep_manifest",
    "validate_manifest",
]

MANIFEST_FORMAT_VERSION = 1

MEMBER_STATUSES = ("started", "done", "failed", "requeued")


class SweepManifest:
    """Append-only JSONL manifest writer (one flushed line per record)."""

    def __init__(self, path, append: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a" if append else "w")

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def header(self, *, sweep_name: str, sweep_sha256: str, n_members: int,
               cache_dir: str, workers: int, resumed: bool = False,
               fuse: bool = False) -> None:
        self._write(
            {
                "record": "header",
                "format_version": MANIFEST_FORMAT_VERSION,
                "sweep": sweep_name,
                "sweep_sha256": sweep_sha256,
                "n_members": int(n_members),
                "cache_dir": str(cache_dir),
                "workers": int(workers),
                "resumed": bool(resumed),
                "fuse": bool(fuse),
                "written_at": time.time(),
            }
        )

    def prewarm(self, *, signature: str, member: str, wall_s: float,
                cache: dict) -> None:
        """Record a parent-side cache prewarm (one per unique signature)."""
        self._write(
            {
                "record": "prewarm",
                "signature": signature,
                "member": member,
                "wall_s": float(wall_s),
                "cache": cache,
            }
        )

    def member(self, member_id: str, status: str, **fields) -> None:
        if status not in MEMBER_STATUSES:
            raise ValueError(f"status must be one of {MEMBER_STATUSES}, got {status!r}")
        self._write({"record": "member", "member": member_id, "status": status, **fields})

    def final(self, tally: dict) -> None:
        self._write({"record": "final", **tally})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_manifest(path) -> list[dict]:
    """Parse a manifest, tolerating a torn final line (killed mid-write)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail: everything before it is intact
    return records


def manifest_state(records: list[dict]) -> dict:
    """Latest member record per member id (the resume decision input)."""
    state: dict[str, dict] = {}
    for record in records:
        if record.get("record") == "member":
            state[record["member"]] = record
    return state


def manifest_member_paths(path) -> list[str]:
    """Summary paths of every completed member, for ``repro report``.

    Relative paths resolve against the manifest's directory, so a sweep
    output tree can be archived and reported from anywhere.
    """
    path = Path(path)
    base = path.parent
    paths = []
    for record in manifest_state(read_manifest(path)).values():
        if record.get("status") == "done" and record.get("summary_path"):
            summary = Path(record["summary_path"])
            if not summary.is_absolute():
                summary = base / summary
            paths.append(str(summary))
    return sorted(paths)


def is_sweep_manifest(records: list[dict]) -> bool:
    """Whether a parsed JSONL file is a sweep manifest (vs a run ledger)."""
    return bool(records) and records[0].get("record") == "header" and "sweep" in records[0]


def validate_manifest(path) -> dict:
    """Structural validation of a (possibly partial) manifest.

    Returns a tally: record counts, member states, and whether a ``final``
    record closed the sweep.  Raises ``ValueError`` on structural problems
    (no header, member rows with unknown status, done rows without a
    summary path).
    """
    records = read_manifest(path)
    if not is_sweep_manifest(records):
        raise ValueError(f"{path} is not a sweep manifest (no header record)")
    header = records[0]
    counts = {"header": 0, "prewarm": 0, "member": 0, "final": 0}
    for record in records:
        kind = record.get("record")
        if kind not in counts:
            raise ValueError(f"unknown manifest record kind {kind!r}")
        counts[kind] += 1
        if kind == "member":
            if record.get("status") not in MEMBER_STATUSES:
                raise ValueError(
                    f"member {record.get('member')!r} has unknown status "
                    f"{record.get('status')!r}"
                )
            if record["status"] == "done" and not record.get("summary_path"):
                raise ValueError(
                    f"member {record['member']!r} is done but has no summary_path"
                )
    state = manifest_state(records)
    by_status: dict[str, int] = {}
    for record in state.values():
        by_status[record["status"]] = by_status.get(record["status"], 0) + 1
    return {
        "sweep": header["sweep"],
        "n_members": header["n_members"],
        "records": counts,
        "members": by_status,
        "complete": counts["final"] > 0,
    }

"""The sweep orchestrator: queue, worker pool, manifest, resume.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into a run
queue and shards it over a pool of persistent worker processes.  The parent
owns the manifest (workers report over a result queue; only the parent
writes, so rows are totally ordered) and the preprocessing cache directory
is shared by everyone:

1. **Prewarm** -- the parent builds every missing stage artifact once per
   unique preprocessing signature *before* the pool starts, so a
   shared-mesh ensemble pays mesh/operator/clustering cost exactly once no
   matter how many workers run.  The prewarm's cache misses and each
   member's pure-hit counters land in the manifest as proof.
2. **Shard** -- workers pull members off a task queue, run them through
   :func:`~repro.scenarios.runner.make_runner` with the shared cache
   (each member possibly itself multi-rank via the process backend), and
   write the member's artefacts under ``members/<id>/``.
3. **Survive** -- every state transition is a flushed manifest line.  A
   member whose worker crashes (or raises) is re-queued once, then marked
   failed.  A sweep killed outright resumes from its manifest: members
   whose latest status is ``done`` are skipped, everything else --
   including in-flight ``started`` members -- is re-queued.

``workers=0`` runs every member inline in the parent (deterministic,
single-process -- the mode the fast tests use).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import signal
import time
import traceback
from pathlib import Path

from ..observability.events import spec_content_hash
from ..preprocessing.cache import (
    PreprocessingCache,
    diff_stats,
    result_content_hash,
    stage_key,
    warm_preprocessing,
)
from ..scenarios.outputs import write_outputs
from ..scenarios.runner import make_runner
from ..scenarios.spec import ScenarioSpec
from .manifest import SweepManifest, is_sweep_manifest, manifest_state, read_manifest
from .spec import SweepSpec

__all__ = ["run_sweep", "preprocessing_signature", "sweep_sha256"]

#: test hook: ``REPRO_SWEEP_KILL=<member_id>[:<flag_path>]`` SIGKILLs the
#: worker right after it claims that member -- once only when a flag path
#: is given (the retry then succeeds), every time otherwise
KILL_ENV = "REPRO_SWEEP_KILL"


def sweep_sha256(sweep: SweepSpec) -> str:
    """Content hash of the sweep definition (manifest <-> sweep pairing)."""
    canonical = json.dumps(sweep.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def preprocessing_signature(spec: ScenarioSpec) -> str:
    """One hash over every stage key a spec needs -- the prewarm dedup unit.

    Two members share a signature exactly when they share *all* cached
    preprocessing artifacts, so warming one representative warms them all.
    """
    keys = [stage_key(spec, stage) for stage in
            ("mesh", "materials", "operators", "clustering")]
    if spec.preprocessing.active:
        keys.append(stage_key(spec, "partition"))
        keys.append(stage_key(spec, "operators", layout="reordered"))
    return hashlib.sha256("".join(keys).encode()).hexdigest()[:16]


def _maybe_kill(member_id: str) -> None:
    target = os.environ.get(KILL_ENV)
    if not target:
        return
    target, _, flag = target.partition(":")
    if target != member_id:
        return
    if flag:
        if os.path.exists(flag):
            return  # already fired once
        open(flag, "w").close()
    # give the queue feeder thread a beat to flush the "claimed" message,
    # so the parent can attribute the corpse to its member deterministically
    time.sleep(0.25)
    os.kill(os.getpid(), signal.SIGKILL)


def _run_member(spec: ScenarioSpec, member_dir: Path, cache: PreprocessingCache) -> dict:
    """Run one member end-to-end; returns its manifest ``done`` fields."""
    before = cache.snapshot()
    start = time.perf_counter()
    runner = make_runner(spec, cache=cache)
    summary = runner.run()
    write_outputs(runner, member_dir, summary=summary)
    if spec.output.trace:
        runner.write_trace(member_dir / "trace.json")
    return {
        "summary_path": str(member_dir / "run_summary.json"),
        "wall_s": float(summary["wall_s"]),
        "total_wall_s": time.perf_counter() - start,
        "n_elements": summary["n_elements"],
        "cache": diff_stats(before, cache.snapshot()),
    }


def _worker_main(task_queue, result_queue, cache_dir: str, parent_pid: int) -> None:
    """Worker loop: pull members until the ``None`` sentinel (or orphaning)."""
    cache = PreprocessingCache(cache_dir)
    while True:
        try:
            task = task_queue.get(timeout=0.5)
        except queue_module.Empty:
            # a SIGKILLed parent can never send sentinels; orphaned workers
            # notice the re-parenting and exit instead of lingering forever
            if os.getppid() != parent_pid:
                return
            continue
        if task is None:
            return
        member_id, spec_dict, member_dir, attempt = task
        result_queue.put(("claimed", member_id, os.getpid(), attempt))
        _maybe_kill(member_id)
        try:
            row = _run_member(
                ScenarioSpec.from_dict(spec_dict), Path(member_dir), cache
            )
        except Exception:
            result_queue.put(
                ("failed", member_id, os.getpid(), attempt,
                 traceback.format_exc(limit=20))
            )
        else:
            result_queue.put(("done", member_id, os.getpid(), attempt, row))


class _MemberTracker:
    """Parent-side bookkeeping: manifest rows, retries, the tally."""

    def __init__(self, manifest: SweepManifest, out_dir: Path, retries: int, log):
        self.manifest = manifest
        self.out_dir = out_dir
        self.retries = retries
        self.log = log
        self.done = 0
        self.failed = 0

    def started(self, member, attempt: int, run_spec: ScenarioSpec) -> None:
        self.manifest.member(
            member.member_id,
            "started",
            attempt=attempt,
            index=member.index,
            overrides=member.overrides,
            spec_sha256=spec_content_hash(run_spec),
            result_sha256=result_content_hash(run_spec),
        )

    def finished(self, member, attempt: int, row: dict, run_spec: ScenarioSpec) -> None:
        row = dict(row)
        # manifest rows stay valid when the output tree is moved/archived
        row["summary_path"] = os.path.relpath(row["summary_path"], self.out_dir)
        self.manifest.member(
            member.member_id,
            "done",
            attempt=attempt,
            index=member.index,
            overrides=member.overrides,
            spec_sha256=spec_content_hash(run_spec),
            result_sha256=result_content_hash(run_spec),
            **row,
        )
        self.done += 1
        self.log(
            f"member {member.member_id} done "
            f"(wall {row['wall_s']:.2f}s, cache {row.get('cache') or 'cold'})"
        )

    def errored(self, member, attempt: int, error: str) -> bool:
        """Handle a failed attempt; returns True when the member should requeue."""
        if attempt <= self.retries:
            self.manifest.member(
                member.member_id, "requeued", attempt=attempt, error=error.strip()
            )
            self.log(f"member {member.member_id} attempt {attempt} failed; requeued")
            return True
        self.manifest.member(
            member.member_id, "failed", attempt=attempt, error=error.strip()
        )
        self.failed += 1
        self.log(f"member {member.member_id} failed after {attempt} attempts")
        return False


def run_sweep(
    sweep: SweepSpec,
    out_dir,
    *,
    workers: int = 2,
    cache_dir=None,
    resume: bool = False,
    events: bool = True,
    retries: int = 1,
    log=None,
) -> dict:
    """Run (or resume) a sweep; returns the final tally.

    Layout under ``out_dir``: ``manifest.jsonl``, the shared ``cache/``
    (override with ``cache_dir``) and one ``members/<id>/`` directory per
    member (run summary, seismograms, run ledger when ``events``).

    ``resume=True`` with an existing manifest skips members already
    ``done`` and re-queues the rest; the manifest must belong to the same
    sweep definition (content-hash checked).  ``events`` gives every member
    a JSONL run ledger (``members/<id>/run.jsonl``).  ``workers=0`` runs
    inline in the parent.
    """
    log = log or (lambda message: None)
    out_dir = Path(out_dir)
    members_root = out_dir / "members"
    cache_dir = Path(cache_dir) if cache_dir is not None else out_dir / "cache"
    manifest_path = out_dir / "manifest.jsonl"
    sweep_sha = sweep_sha256(sweep)
    members = sweep.expand()
    started_at = time.perf_counter()

    previously_done: dict[str, dict] = {}
    append = False
    if resume and manifest_path.exists():
        records = read_manifest(manifest_path)
        if not is_sweep_manifest(records):
            raise ValueError(f"{manifest_path} is not a sweep manifest")
        header = records[0]
        if header.get("sweep_sha256") != sweep_sha:
            raise ValueError(
                f"{manifest_path} belongs to a different sweep "
                f"(manifest {header.get('sweep_sha256', '?')[:12]}, "
                f"requested {sweep_sha[:12]}); refusing to mix results"
            )
        previously_done = {
            member_id: record
            for member_id, record in manifest_state(records).items()
            if record.get("status") == "done"
        }
        append = True

    pending = [m for m in members if m.member_id not in previously_done]
    run_specs = {}
    for member in pending:
        member_dir = members_root / member.member_id
        run_specs[member.member_id] = (
            member.spec.with_overrides(events=str(member_dir / "run.jsonl"))
            if events
            else member.spec
        )

    tally = {
        "sweep": sweep.name,
        "sweep_sha256": sweep_sha,
        "manifest": str(manifest_path),
        "cache_dir": str(cache_dir),
        "n_members": len(members),
        "skipped": len(previously_done),
        "done": 0,
        "failed": 0,
        "prewarmed": 0,
    }

    with SweepManifest(manifest_path, append=append) as manifest:
        manifest.header(
            sweep_name=sweep.name,
            sweep_sha256=sweep_sha,
            n_members=len(members),
            cache_dir=str(cache_dir),
            workers=workers,
            resumed=append,
        )
        if append:
            log(
                f"resuming: {len(previously_done)} member(s) already done, "
                f"{len(pending)} to run"
            )

        # -- prewarm: pay preprocessing once, in the parent ---------------
        cache = PreprocessingCache(cache_dir)
        seen_signatures: set[str] = set()
        for member in pending:
            sig = preprocessing_signature(member.spec)
            if sig in seen_signatures:
                continue
            seen_signatures.add(sig)
            if cache.is_warm(member.spec):
                continue
            warm_start = time.perf_counter()
            stats = warm_preprocessing(member.spec, cache)
            manifest.prewarm(
                signature=sig,
                member=member.member_id,
                wall_s=time.perf_counter() - warm_start,
                cache=stats,
            )
            tally["prewarmed"] += 1
            log(f"prewarmed preprocessing signature {sig} (member {member.member_id})")

        tracker = _MemberTracker(manifest, out_dir, retries, log)
        if not pending:
            log("nothing to run: every member is already done")
        elif workers <= 0:
            _run_inline(pending, run_specs, members_root, cache, tracker)
        else:
            _run_pool(
                pending, run_specs, members_root, cache_dir,
                min(workers, len(pending)), tracker,
            )
        tally["done"] = tracker.done
        tally["failed"] = tracker.failed
        tally["wall_s"] = time.perf_counter() - started_at
        manifest.final(
            {k: tally[k] for k in
             ("sweep", "n_members", "skipped", "done", "failed", "prewarmed", "wall_s")}
        )
    return tally


def _run_inline(pending, run_specs, members_root: Path, cache, tracker) -> None:
    for member in pending:
        run_spec = run_specs[member.member_id]
        member_dir = members_root / member.member_id
        attempt = 1
        while True:
            tracker.started(member, attempt, run_spec)
            _maybe_kill(member.member_id)
            try:
                row = _run_member(run_spec, member_dir, cache)
            except Exception:
                if tracker.errored(member, attempt, traceback.format_exc(limit=20)):
                    attempt += 1
                    continue
                break
            tracker.finished(member, attempt, row, run_spec)
            break


def _run_pool(pending, run_specs, members_root: Path, cache_dir: Path,
              n_workers: int, tracker) -> None:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    parent_pid = os.getpid()

    def spawn():
        worker = ctx.Process(
            target=_worker_main,
            args=(task_queue, result_queue, str(cache_dir), parent_pid),
        )
        worker.start()
        return worker

    by_id = {member.member_id: member for member in pending}
    tasks = {
        member.member_id: (
            member.member_id,
            run_specs[member.member_id].to_dict(),
            str(members_root / member.member_id),
            1,
        )
        for member in pending
    }
    outstanding = set(tasks)
    for task in tasks.values():
        task_queue.put(task)
    pool = [spawn() for _ in range(n_workers)]
    claimed: dict[int, tuple[str, int]] = {}  # worker pid -> (member, attempt)

    def requeue(member_id: str, attempt: int) -> None:
        base = tasks[member_id]
        task_queue.put((base[0], base[1], base[2], attempt + 1))

    try:
        while outstanding:
            try:
                message = result_queue.get(timeout=0.25)
            except queue_module.Empty:
                # liveness sweep: a crashed worker orphans its claimed
                # member -- retry it and keep the pool at full strength
                for i, worker in enumerate(pool):
                    if worker.is_alive():
                        continue
                    pid = worker.pid
                    if pid in claimed:
                        member_id, attempt = claimed.pop(pid)
                        if member_id in outstanding:
                            error = f"worker crashed (exit code {worker.exitcode})"
                            if tracker.errored(by_id[member_id], attempt, error):
                                requeue(member_id, attempt)
                            else:
                                outstanding.discard(member_id)
                    pool[i] = spawn()
                continue
            kind, member_id, pid, attempt = message[:4]
            if kind == "claimed":
                claimed[pid] = (member_id, attempt)
                tracker.started(by_id[member_id], attempt, run_specs[member_id])
            elif kind == "done":
                claimed.pop(pid, None)
                if member_id in outstanding:
                    tracker.finished(
                        by_id[member_id], attempt, message[4], run_specs[member_id]
                    )
                    outstanding.discard(member_id)
            elif kind == "failed":
                claimed.pop(pid, None)
                if member_id in outstanding:
                    if tracker.errored(by_id[member_id], attempt, message[4]):
                        requeue(member_id, attempt)
                    else:
                        outstanding.discard(member_id)
    finally:
        for _ in pool:
            task_queue.put(None)
        deadline = time.monotonic() + 10.0
        for worker in pool:
            worker.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=2.0)
        task_queue.close()
        result_queue.close()

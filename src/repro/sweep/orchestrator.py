"""The sweep orchestrator: queue, worker pool, manifest, resume.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into a run
queue and shards it over a pool of persistent worker processes.  The parent
owns the manifest (workers report over a result queue; only the parent
writes, so rows are totally ordered) and the preprocessing cache directory
is shared by everyone:

1. **Prewarm** -- the parent builds every missing stage artifact once per
   unique preprocessing signature *before* the pool starts, so a
   shared-mesh ensemble pays mesh/operator/clustering cost exactly once no
   matter how many workers run.  The prewarm's cache misses and each
   member's pure-hit counters land in the manifest as proof.
2. **Shard** -- workers pull members off a task queue, run them through
   :func:`~repro.scenarios.runner.make_runner` with the shared cache
   (each member possibly itself multi-rank via the process backend), and
   write the member's artefacts under ``members/<id>/``.
3. **Survive** -- every state transition is a flushed manifest line.  A
   member whose worker crashes (or raises) is re-queued once, then marked
   failed.  A sweep killed outright resumes from its manifest: members
   whose latest status is ``done`` are skipped, everything else --
   including in-flight ``started`` members -- is re-queued.

``workers=0`` runs every member inline in the parent (deterministic,
single-process -- the mode the fast tests use).

``fuse=True`` adds a collapse pass between expansion and sharding: members
that differ only in fusable source axes (time function, moment tensor,
force) run once as a single fused ensemble whose per-member artefacts are
demuxed back out of the fused slots -- see :mod:`repro.sweep.fuse`.  The
schedulable unit is then a *group*; manifest rows, resume decisions and
``repro report`` stay per-member.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import signal
import time
import traceback
from dataclasses import dataclass
from pathlib import Path

from ..observability.events import spec_content_hash
from ..preprocessing.cache import (
    PreprocessingCache,
    diff_stats,
    result_content_hash,
    stage_key,
    warm_preprocessing,
)
from ..scenarios.outputs import write_outputs
from ..scenarios.runner import make_runner
from ..scenarios.spec import ScenarioSpec
from .fuse import plan_fused_groups, run_fused_group
from .manifest import SweepManifest, is_sweep_manifest, manifest_state, read_manifest
from .spec import SweepSpec

__all__ = ["run_sweep", "preprocessing_signature", "sweep_sha256"]

#: test hook: ``REPRO_SWEEP_KILL=<member_id>[:<flag_path>]`` SIGKILLs the
#: worker right after it claims that member -- once only when a flag path
#: is given (the retry then succeeds), every time otherwise
KILL_ENV = "REPRO_SWEEP_KILL"


def sweep_sha256(sweep: SweepSpec) -> str:
    """Content hash of the sweep definition (manifest <-> sweep pairing)."""
    canonical = json.dumps(sweep.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def preprocessing_signature(spec: ScenarioSpec) -> str:
    """One hash over every stage key a spec needs -- the prewarm dedup unit.

    Two members share a signature exactly when they share *all* cached
    preprocessing artifacts, so warming one representative warms them all.
    """
    keys = [stage_key(spec, stage) for stage in
            ("mesh", "materials", "operators", "clustering")]
    if spec.preprocessing.active:
        keys.append(stage_key(spec, "partition"))
        keys.append(stage_key(spec, "operators", layout="reordered"))
    return hashlib.sha256("".join(keys).encode()).hexdigest()[:16]


def _maybe_kill(member_id: str) -> None:
    target = os.environ.get(KILL_ENV)
    if not target:
        return
    target, _, flag = target.partition(":")
    if target != member_id:
        return
    if flag:
        if os.path.exists(flag):
            return  # already fired once
        open(flag, "w").close()
    # give the queue feeder thread a beat to flush the "claimed" message,
    # so the parent can attribute the corpse to its member deterministically
    time.sleep(0.25)
    os.kill(os.getpid(), signal.SIGKILL)


def _run_member(spec: ScenarioSpec, member_dir: Path, cache: PreprocessingCache) -> dict:
    """Run one member end-to-end; returns its manifest ``done`` fields."""
    before = cache.snapshot()
    start = time.perf_counter()
    runner = make_runner(spec, cache=cache)
    summary = runner.run()
    write_outputs(runner, member_dir, summary=summary)
    if spec.output.trace:
        runner.write_trace(member_dir / "trace.json")
    return {
        "summary_path": str(member_dir / "run_summary.json"),
        "wall_s": float(summary["wall_s"]),
        "total_wall_s": time.perf_counter() - start,
        "n_elements": summary["n_elements"],
        "cache": diff_stats(before, cache.snapshot()),
    }


def _worker_main(task_queue, result_queue, cache_dir: str, parent_pid: int) -> None:
    """Worker loop: pull units until the ``None`` sentinel (or orphaning).

    A task payload is either a plain spec dict (one member) or a
    ``{"__fused__": {...}}`` envelope carrying a collapsed group's fused
    spec plus its slot -> (member id, directory) mapping.
    """
    cache = PreprocessingCache(cache_dir)
    while True:
        try:
            task = task_queue.get(timeout=0.5)
        except queue_module.Empty:
            # a SIGKILLed parent can never send sentinels; orphaned workers
            # notice the re-parenting and exit instead of lingering forever
            if os.getppid() != parent_pid:
                return
            continue
        if task is None:
            return
        unit_id, payload, unit_dir, attempt = task
        result_queue.put(("claimed", unit_id, os.getpid(), attempt))
        _maybe_kill(unit_id)
        try:
            if "__fused__" in payload:
                fused = payload["__fused__"]
                row = run_fused_group(
                    ScenarioSpec.from_dict(fused["spec"]),
                    Path(unit_dir),
                    fused["members"],
                    cache,
                )
            else:
                row = _run_member(
                    ScenarioSpec.from_dict(payload), Path(unit_dir), cache
                )
        except Exception:
            result_queue.put(
                ("failed", unit_id, os.getpid(), attempt,
                 traceback.format_exc(limit=20))
            )
        else:
            result_queue.put(("done", unit_id, os.getpid(), attempt, row))


@dataclass(frozen=True)
class _Unit:
    """One schedulable work item: a single member or a collapsed group.

    ``members`` and ``member_dirs`` are parallel, in slot order; singles
    have width 1 and ``fused=False``.  ``spec`` is the spec that actually
    runs (events-instrumented; the fused spec for groups) while per-member
    manifest identity comes from each member's own spec.
    """

    unit_id: str
    spec: ScenarioSpec
    dir: Path
    members: tuple
    member_dirs: tuple
    fused: bool = False

    @property
    def width(self) -> int:
        return len(self.members)


class _MemberTracker:
    """Parent-side bookkeeping: manifest rows, retries, the tally.

    Rows are always per *member*: a fused unit fans every state transition
    out to one row per absorbed member, tagged with its slot in the group
    (``fused_group`` / ``fused_slot`` / ``fused_width``), so resume logic
    and ``repro report`` never need to know about fusion.
    """

    def __init__(self, manifest: SweepManifest, out_dir: Path, retries: int, log):
        self.manifest = manifest
        self.out_dir = out_dir
        self.retries = retries
        self.log = log
        self.done = 0
        self.failed = 0

    def _identity(self, unit: _Unit, slot: int) -> dict:
        member = unit.members[slot]
        # singles are identified by the spec they actually run (with the
        # ledger override); fused members by their own standalone spec --
        # the identity their demuxed results are bit-identical to
        spec = member.spec if unit.fused else unit.spec
        fields = {
            "index": member.index,
            "overrides": member.overrides,
            "spec_sha256": spec_content_hash(spec),
            "result_sha256": result_content_hash(spec),
        }
        if unit.fused:
            fields["fused_group"] = unit.unit_id
            fields["fused_slot"] = slot
            fields["fused_width"] = unit.width
        return fields

    def started(self, unit: _Unit, attempt: int) -> None:
        for slot, member in enumerate(unit.members):
            self.manifest.member(
                member.member_id, "started", attempt=attempt,
                **self._identity(unit, slot),
            )

    def finished(self, unit: _Unit, attempt: int, row: dict) -> None:
        member_rows = row.get("members") if unit.fused else None
        shared = {k: row[k] for k in ("wall_s", "total_wall_s", "n_elements")}
        for slot, member in enumerate(unit.members):
            fields = dict(member_rows[member.member_id]) if unit.fused else dict(row)
            # manifest rows stay valid when the output tree is moved/archived
            fields["summary_path"] = os.path.relpath(
                fields["summary_path"], self.out_dir
            )
            if unit.fused:
                fields.update(shared)
                # the cache delta belongs to the shared run; carried once,
                # on slot 0, so per-member tallies never double-count it
                if slot == 0:
                    fields["cache"] = row.get("cache")
            self.manifest.member(
                member.member_id, "done", attempt=attempt,
                **self._identity(unit, slot), **fields,
            )
            self.done += 1
        if unit.fused:
            self.log(
                f"fused group {unit.unit_id} done ({unit.width} members, "
                f"wall {row['wall_s']:.2f}s, cache {row.get('cache') or 'cold'})"
            )
        else:
            self.log(
                f"member {unit.unit_id} done "
                f"(wall {row['wall_s']:.2f}s, cache {row.get('cache') or 'cold'})"
            )

    def errored(self, unit: _Unit, attempt: int, error: str) -> bool:
        """Handle a failed attempt; returns True when the unit should requeue."""
        label = f"fused group {unit.unit_id}" if unit.fused else f"member {unit.unit_id}"
        if attempt <= self.retries:
            for slot, member in enumerate(unit.members):
                self.manifest.member(
                    member.member_id, "requeued", attempt=attempt,
                    error=error.strip(), **self._identity(unit, slot),
                )
            self.log(f"{label} attempt {attempt} failed; requeued")
            return True
        for slot, member in enumerate(unit.members):
            self.manifest.member(
                member.member_id, "failed", attempt=attempt,
                error=error.strip(), **self._identity(unit, slot),
            )
            self.failed += 1
        self.log(f"{label} failed after {attempt} attempts")
        return False


def run_sweep(
    sweep: SweepSpec,
    out_dir,
    *,
    workers: int = 2,
    cache_dir=None,
    resume: bool = False,
    events: bool = True,
    retries: int = 1,
    fuse: bool = False,
    log=None,
) -> dict:
    """Run (or resume) a sweep; returns the final tally.

    Layout under ``out_dir``: ``manifest.jsonl``, the shared ``cache/``
    (override with ``cache_dir``) and one ``members/<id>/`` directory per
    member (run summary, seismograms, run ledger when ``events``).

    ``resume=True`` with an existing manifest skips members already
    ``done`` and re-queues the rest; the manifest must belong to the same
    sweep definition (content-hash checked).  ``events`` gives every member
    a JSONL run ledger (``members/<id>/run.jsonl``).  ``workers=0`` runs
    inline in the parent.

    ``fuse=True`` collapses members differing only in fusable source axes
    into single fused ensemble runs (see :mod:`repro.sweep.fuse`): the
    fused run's own artefacts land under ``fused/<group>/`` while every
    absorbed member keeps its ``members/<id>/`` directory with demuxed
    seismograms and a slot-annotated summary; fused members share one run
    ledger (the group's), not per-member ledgers.
    """
    log = log or (lambda message: None)
    out_dir = Path(out_dir)
    members_root = out_dir / "members"
    cache_dir = Path(cache_dir) if cache_dir is not None else out_dir / "cache"
    manifest_path = out_dir / "manifest.jsonl"
    sweep_sha = sweep_sha256(sweep)
    members = sweep.expand()
    started_at = time.perf_counter()

    previously_done: dict[str, dict] = {}
    append = False
    if resume and manifest_path.exists():
        records = read_manifest(manifest_path)
        if not is_sweep_manifest(records):
            raise ValueError(f"{manifest_path} is not a sweep manifest")
        header = records[0]
        if header.get("sweep_sha256") != sweep_sha:
            raise ValueError(
                f"{manifest_path} belongs to a different sweep "
                f"(manifest {header.get('sweep_sha256', '?')[:12]}, "
                f"requested {sweep_sha[:12]}); refusing to mix results"
            )
        previously_done = {
            member_id: record
            for member_id, record in manifest_state(records).items()
            if record.get("status") == "done"
        }
        append = True

    pending = [m for m in members if m.member_id not in previously_done]

    # -- plan units: singles, or (with fuse) collapsed groups + singles --
    units: list[_Unit] = []
    fused_groups = ()
    if fuse:
        fused_groups, singles = plan_fused_groups(pending)
        for group in fused_groups:
            group_dir = out_dir / "fused" / group.group_id
            run_spec = (
                group.spec.with_overrides(events=str(group_dir / "run.jsonl"))
                if events
                else group.spec
            )
            units.append(
                _Unit(
                    unit_id=group.group_id,
                    spec=run_spec,
                    dir=group_dir,
                    members=group.members,
                    member_dirs=tuple(
                        members_root / m.member_id for m in group.members
                    ),
                    fused=True,
                )
            )
    else:
        singles = tuple(pending)
    for member in singles:
        member_dir = members_root / member.member_id
        run_spec = (
            member.spec.with_overrides(events=str(member_dir / "run.jsonl"))
            if events
            else member.spec
        )
        units.append(
            _Unit(
                unit_id=member.member_id,
                spec=run_spec,
                dir=member_dir,
                members=(member,),
                member_dirs=(member_dir,),
            )
        )
    units.sort(key=lambda unit: unit.members[0].index)

    tally = {
        "sweep": sweep.name,
        "sweep_sha256": sweep_sha,
        "manifest": str(manifest_path),
        "cache_dir": str(cache_dir),
        "n_members": len(members),
        "skipped": len(previously_done),
        "done": 0,
        "failed": 0,
        "prewarmed": 0,
    }
    if fuse:
        tally["fused_groups"] = len(fused_groups)
        tally["fused_members"] = sum(g.width for g in fused_groups)

    with SweepManifest(manifest_path, append=append) as manifest:
        manifest.header(
            sweep_name=sweep.name,
            sweep_sha256=sweep_sha,
            n_members=len(members),
            cache_dir=str(cache_dir),
            workers=workers,
            resumed=append,
            fuse=fuse,
        )
        if append:
            log(
                f"resuming: {len(previously_done)} member(s) already done, "
                f"{len(pending)} to run"
            )
        if fuse and fused_groups:
            log(
                f"fuse: collapsed {tally['fused_members']} member(s) into "
                f"{len(fused_groups)} fused group(s) "
                f"({len(singles)} standalone)"
            )

        # -- prewarm: pay preprocessing once, in the parent ---------------
        # keyed on the *unit* specs (what actually runs); the fused spec
        # shares every stage key with its members, so the signature set is
        # identical to the unfused sweep's
        cache = PreprocessingCache(cache_dir)
        seen_signatures: set[str] = set()
        for unit in units:
            sig = preprocessing_signature(unit.spec)
            if sig in seen_signatures:
                continue
            seen_signatures.add(sig)
            if cache.is_warm(unit.spec):
                continue
            warm_start = time.perf_counter()
            stats = warm_preprocessing(unit.spec, cache)
            manifest.prewarm(
                signature=sig,
                member=unit.members[0].member_id,
                wall_s=time.perf_counter() - warm_start,
                cache=stats,
            )
            tally["prewarmed"] += 1
            log(
                f"prewarmed preprocessing signature {sig} "
                f"(member {unit.members[0].member_id})"
            )

        tracker = _MemberTracker(manifest, out_dir, retries, log)
        if not units:
            log("nothing to run: every member is already done")
        elif workers <= 0:
            _run_inline(units, cache, tracker)
        else:
            _run_pool(units, cache_dir, min(workers, len(units)), tracker)
        tally["done"] = tracker.done
        tally["failed"] = tracker.failed
        tally["wall_s"] = time.perf_counter() - started_at
        final_keys = [
            "sweep", "n_members", "skipped", "done", "failed", "prewarmed", "wall_s",
        ]
        if fuse:
            final_keys += ["fused_groups", "fused_members"]
        manifest.final({k: tally[k] for k in final_keys})
    return tally


def _run_unit(unit: _Unit, cache) -> dict:
    """Run one unit in-process: a single member, or a fused group + demux."""
    if not unit.fused:
        return _run_member(unit.spec, unit.dir, cache)
    return run_fused_group(
        unit.spec,
        unit.dir,
        [
            (member.member_id, directory)
            for member, directory in zip(unit.members, unit.member_dirs)
        ],
        cache,
    )


def _unit_payload(unit: _Unit) -> dict:
    """The picklable task payload ``_worker_main`` dispatches on."""
    if not unit.fused:
        return unit.spec.to_dict()
    return {
        "__fused__": {
            "spec": unit.spec.to_dict(),
            "members": [
                [member.member_id, str(directory)]
                for member, directory in zip(unit.members, unit.member_dirs)
            ],
        }
    }


def _run_inline(units, cache, tracker) -> None:
    for unit in units:
        attempt = 1
        while True:
            tracker.started(unit, attempt)
            _maybe_kill(unit.unit_id)
            try:
                row = _run_unit(unit, cache)
            except Exception:
                if tracker.errored(unit, attempt, traceback.format_exc(limit=20)):
                    attempt += 1
                    continue
                break
            tracker.finished(unit, attempt, row)
            break


def _run_pool(units, cache_dir: Path, n_workers: int, tracker) -> None:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    parent_pid = os.getpid()

    def spawn():
        worker = ctx.Process(
            target=_worker_main,
            args=(task_queue, result_queue, str(cache_dir), parent_pid),
        )
        worker.start()
        return worker

    by_id = {unit.unit_id: unit for unit in units}
    tasks = {
        unit.unit_id: (unit.unit_id, _unit_payload(unit), str(unit.dir), 1)
        for unit in units
    }
    outstanding = set(tasks)
    for task in tasks.values():
        task_queue.put(task)
    pool = [spawn() for _ in range(n_workers)]
    claimed: dict[int, tuple[str, int]] = {}  # worker pid -> (unit, attempt)

    def requeue(unit_id: str, attempt: int) -> None:
        base = tasks[unit_id]
        task_queue.put((base[0], base[1], base[2], attempt + 1))

    try:
        while outstanding:
            try:
                message = result_queue.get(timeout=0.25)
            except queue_module.Empty:
                # liveness sweep: a crashed worker orphans its claimed
                # unit -- retry it and keep the pool at full strength
                for i, worker in enumerate(pool):
                    if worker.is_alive():
                        continue
                    pid = worker.pid
                    if pid in claimed:
                        unit_id, attempt = claimed.pop(pid)
                        if unit_id in outstanding:
                            error = f"worker crashed (exit code {worker.exitcode})"
                            if tracker.errored(by_id[unit_id], attempt, error):
                                requeue(unit_id, attempt)
                            else:
                                outstanding.discard(unit_id)
                    pool[i] = spawn()
                continue
            kind, unit_id, pid, attempt = message[:4]
            if kind == "claimed":
                claimed[pid] = (unit_id, attempt)
                tracker.started(by_id[unit_id], attempt)
            elif kind == "done":
                claimed.pop(pid, None)
                if unit_id in outstanding:
                    tracker.finished(by_id[unit_id], attempt, message[4])
                    outstanding.discard(unit_id)
            elif kind == "failed":
                claimed.pop(pid, None)
                if unit_id in outstanding:
                    if tracker.errored(by_id[unit_id], attempt, message[4]):
                        requeue(unit_id, attempt)
                    else:
                        outstanding.discard(unit_id)
    finally:
        for _ in pool:
            task_queue.put(None)
        deadline = time.monotonic() + 10.0
        for worker in pool:
            worker.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=2.0)
        task_queue.close()
        result_queue.close()

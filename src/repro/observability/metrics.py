"""Metrics registry: counters, gauges and summary histograms.

The registry is deliberately tiny and JSON-native: every metric snapshots to
plain dicts of ints/floats, snapshots of different ranks merge by summation
(counters, histogram moments) or max (gauges), and the merged result embeds
directly into the run-summary ``telemetry`` block.  The process backend ships
worker snapshots to the parent each cycle exactly like the communication
:class:`~repro.parallel.communicator.MessageStats` mirror.
"""

from __future__ import annotations

import math

__all__ = ["Histogram", "MetricsRegistry", "merge_metrics"]


class Histogram:
    """Summary statistics of an observed stream (count/sum/min/max).

    Enough to derive mean and spread per rank and to merge across ranks
    without shipping raw samples; full distributions belong in the Chrome
    trace, not the registry.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms of one telemetry lane."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- snapshot / merge -----------------------------------------------
    def as_dict(self) -> dict:
        """JSON-native snapshot (plain ints stay ints for exact counters)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: v.as_dict() for k, v in self.histograms.items()},
        }


def merge_metrics(snapshots: list[dict]) -> dict:
    """Merge per-rank metric snapshots into cross-rank totals.

    Counters and histogram count/sum add up (so merged totals of N ranks
    equal the single-rank run's totals -- asserted by the test suite);
    gauges keep the maximum across ranks, and histogram min/max widen.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, -math.inf), value)
        for name, h in snap.get("histograms", {}).items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = dict(h)
                continue
            count = mine["count"] + h["count"]
            total = mine["sum"] + h["sum"]
            # only snapshots that observed anything contribute to min/max --
            # an empty histogram's 0.0 placeholders must not clamp the range
            seen = [x for x in (mine, h) if x["count"] > 0]
            mine.update(
                count=count,
                sum=total,
                min=min(x["min"] for x in seen) if seen else 0.0,
                max=max(x["max"] for x in seen) if seen else 0.0,
                mean=total / count if count else 0.0,
            )
    return {"counters": counters, "gauges": gauges, "histograms": histograms}

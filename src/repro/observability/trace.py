"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

The exporter renders one horizontal lane per rank (plus an optional driver
lane) out of the ``(path, start_us, duration_us)`` event tuples collected by
:class:`~repro.observability.timers.Telemetry` when tracing is on.  Events
use the "X" (complete) phase of the trace-event format with microsecond
timestamps; lane names come from "M" thread-name metadata records, which is
what both viewers use to label rows.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["build_chrome_trace", "write_chrome_trace", "validate_chrome_trace"]

_PID = 1  # single logical process: one timeline, one lane per rank


def build_chrome_trace(lanes: list[tuple[str, int, list[tuple]]]) -> dict:
    """Build the trace payload from ``(lane_name, tid, events)`` triples."""
    trace_events = []
    for lane_name, tid, events in lanes:
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": lane_name},
        })
        for path, start_us, dur_us in events:
            trace_events.append({
                # display the leaf name; keep the full nested path in args
                "name": path.rsplit("/", 1)[-1],
                "cat": path.split("/", 1)[0].split(".", 1)[0],
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "ts": start_us,
                "dur": dur_us,
                "args": {"path": path},
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, lanes) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(build_chrome_trace(lanes)) + "\n")
    return path


def validate_chrome_trace(payload: dict, expect_lanes: int | None = None) -> dict:
    """Structural sanity check shared by the test suite and the CI smoke.

    Verifies the payload is a trace-event container whose "X" events carry
    finite, non-negative microsecond timestamps/durations and whose lanes
    are properly named; returns ``{lane_name: n_events}``.  Raises
    ``ValueError`` on the first violation.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")
    lane_names: dict[int, str] = {}
    counts: dict[int, int] = {}
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                lane_names[event["tid"]] = event["args"]["name"]
            continue
        if ph != "X":
            raise ValueError(f"unexpected event phase {ph!r}")
        ts, dur = event.get("ts"), event.get("dur")
        for key, value in (("ts", ts), ("dur", dur)):
            if not isinstance(value, (int, float)) or value != value:
                raise ValueError(f"non-numeric {key} in event {event.get('name')!r}")
            if value < 0:
                raise ValueError(f"negative {key}={value} in event {event.get('name')!r}")
        if not event.get("name"):
            raise ValueError("unnamed slice event")
        counts[event["tid"]] = counts.get(event["tid"], 0) + 1
    unnamed = set(counts) - set(lane_names)
    if unnamed:
        raise ValueError(f"lanes without thread_name metadata: {sorted(unnamed)}")
    by_lane = {lane_names[tid]: n for tid, n in counts.items()}
    if expect_lanes is not None and len(by_lane) < expect_lanes:
        raise ValueError(
            f"expected at least {expect_lanes} populated lanes, got {sorted(by_lane)}"
        )
    return by_lane

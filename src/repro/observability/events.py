"""Structured JSONL run ledger and the live progress heartbeat.

A *run ledger* is the crash-durable, incrementally written record of one
run's progress: a provenance header (spec content hash, git SHA, repro
version, host metadata), one flushed record per macro cycle (simulated
time, wall clock, updates/s, per-rank recv-wait, communication bytes, peak
RSS) and a final record when the run completes.  Every record is one JSON
line flushed to disk as soon as the cycle ends, so a run killed at any
point leaves a readable partial ledger -- the property the ensemble/sweep
service's resumable manifests build on.  :func:`read_ledger` tolerates a
truncated last line (the one a SIGKILL can interrupt mid-write) and
:func:`validate_run_ledger` is the schema lint shared by the test suite
and the CI smoke, mirroring ``validate_chrome_trace``.

The :class:`Heartbeat` renders the same per-cycle records as a live
progress line on stderr (cycle counter, updates/s, ETA from the remaining
simulated time), for the serial and process backends alike: both emit from
the parent's macro-cycle loop.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import sys
import time
from functools import lru_cache
from pathlib import Path

__all__ = [
    "LEDGER_FORMAT_VERSION",
    "RunLedger",
    "Heartbeat",
    "git_revision",
    "spec_content_hash",
    "provenance_block",
    "host_block",
    "peak_rss_mb",
    "read_ledger",
    "validate_run_ledger",
]

LEDGER_FORMAT_VERSION = 1

#: keys every cycle record must carry (validated by the schema lint)
CYCLE_RECORD_KEYS = (
    "cycle",
    "t",
    "wall_s",
    "cycle_wall_s",
    "element_updates",
    "updates_per_s",
    "peak_rss_mb",
)


# ---------------------------------------------------------------------------
# provenance
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def git_revision() -> str | None:
    """The git SHA of the source tree this process runs from, if known.

    Resolved by walking up from the package directory (not the CWD) and
    reading ``.git`` directly -- no subprocess, since forking from a large
    process pollutes ``RUSAGE_CHILDREN`` peak-RSS accounting and the stamp
    must work without a ``git`` binary.  Installed checkouts report their
    repository; plain sdist installs report None.
    """
    for parent in Path(__file__).resolve().parents:
        git_dir = parent / ".git"
        if git_dir.is_file():  # linked worktree: "gitdir: <path>"
            try:
                pointer = git_dir.read_text().strip()
            except OSError:
                return None
            if not pointer.startswith("gitdir: "):
                return None
            git_dir = (parent / pointer[len("gitdir: "):]).resolve()
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text().strip()
            if not head.startswith("ref: "):
                return head or None  # detached HEAD holds the SHA itself
            ref = head[len("ref: "):]
            ref_path = git_dir / ref
            if ref_path.exists():
                return ref_path.read_text().strip() or None
            # common dir for worktree refs, then the packed-refs fallback
            common = git_dir / "commondir"
            if common.exists():
                git_dir = (git_dir / common.read_text().strip()).resolve()
                ref_path = git_dir / ref
                if ref_path.exists():
                    return ref_path.read_text().strip() or None
            packed = git_dir / "packed-refs"
            if packed.exists():
                for line in packed.read_text().splitlines():
                    if line.endswith(" " + ref):
                        return line.split(" ", 1)[0]
        except OSError:
            pass
        return None
    return None


def spec_content_hash(spec) -> str:
    """SHA-256 of the spec's canonical JSON form.

    Key-sorted and whitespace-free, so the hash identifies the scenario
    *content* independently of dict ordering or formatting -- the key the
    future sweep service's preprocessing cache and manifests use.
    """
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def provenance_block(spec) -> dict:
    """The self-description stamped into ledgers and run summaries."""
    from .. import __version__

    return {
        "git_sha": git_revision(),
        "repro_version": __version__,
        "spec_sha256": spec_content_hash(spec),
    }


def peak_rss_mb() -> float:
    """Peak resident-set size of *this* process in MiB.

    Cheap enough for once-per-cycle ledger records; process-backend workers
    call it themselves, since ``RUSAGE_CHILDREN`` only counts terminated
    children and the workers are still alive mid-run.
    """
    import resource

    scale = 1.0 if sys.platform == "darwin" else 1024.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale / 1024.0**2


def _platform_stamp() -> str:
    """``platform.platform()``-style stamp from fork-free primitives.

    ``platform.platform()`` can shell out (``platform.architecture`` runs
    ``file``), and any fork from a large process pollutes the
    ``RUSAGE_CHILDREN`` peak-RSS accounting the memory block reports.
    """
    stamp = "-".join(
        part for part in (platform.system(), platform.release(), platform.machine())
        if part
    )
    libc = "-".join(part for part in platform.libc_ver() if part)
    return f"{stamp}-with-{libc}" if libc else stamp


def host_block() -> dict:
    """Host facts that make wall-clock records comparable across machines."""
    import numpy as np

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": _platform_stamp(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "pid": os.getpid(),
    }


# ---------------------------------------------------------------------------
# the ledger writer
# ---------------------------------------------------------------------------


class RunLedger:
    """Append-only JSONL writer of one run's progress records.

    Opened in append mode: a resumed run continues the same file with a new
    header record (one *segment* per runner invocation), exactly like the
    checkpoint machinery keeps one state file per run.  Every record is
    flushed as soon as it is written -- crash durability is the point.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a")

    # -- records --------------------------------------------------------
    def write(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def header(self, spec, *, total_cycles: int, macro_dt: float,
               resumed_at_cycle: int = 0) -> None:
        """The provenance header opening one segment of the ledger."""
        self.write(
            {
                "kind": "header",
                "format_version": LEDGER_FORMAT_VERSION,
                "provenance": provenance_block(spec),
                "host": host_block(),
                "run": {
                    "scenario": spec.name,
                    "solver": spec.solver.kind,
                    "kernels": spec.solver.kernels,
                    "precision": spec.solver.precision,
                    "n_ranks": spec.solver.n_ranks,
                    "backend": spec.solver.backend,
                    "order": spec.order,
                    "total_cycles": int(total_cycles),
                    "macro_dt": float(macro_dt),
                    "resumed_at_cycle": int(resumed_at_cycle),
                },
            }
        )

    def cycle(self, record: dict) -> None:
        self.write({"kind": "cycle", **record})

    def final(self, record: dict) -> None:
        self.write({"kind": "final", **record})

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# reading and validation
# ---------------------------------------------------------------------------


def read_ledger(path) -> list[dict]:
    """Parse a JSONL ledger, tolerating a truncated final line.

    Records are flushed whole, so the only line a kill can corrupt is the
    last one (interrupted mid-write); a malformed line anywhere *else*
    means real corruption and raises ``ValueError``.
    """
    records: list[dict] = []
    lines = Path(path).read_text().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            if index == len(lines) - 1:
                break  # the torn tail of a killed run
            raise ValueError(
                f"{path}: corrupt ledger line {index + 1}: {error}"
            ) from error
    return records


def _require_finite(record: dict, keys, context: str) -> None:
    for key in keys:
        value = record.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{context}: {key!r} missing or non-numeric: {value!r}")
        if not math.isfinite(value):
            raise ValueError(f"{context}: {key!r} is not finite: {value!r}")


def validate_run_ledger(records: list[dict], expect_complete: bool = False) -> dict:
    """Structural sanity check of a parsed ledger (tests + CI share it).

    Verifies the segment structure (each segment opens with a provenance
    header), the per-cycle record schema (finite numbers, monotone cycle
    index / simulated time / update counts) and -- with ``expect_complete``
    -- the closing ``final`` record.  Returns a summary
    ``{"segments", "cycles", "complete", "last_cycle"}``; raises
    ``ValueError`` on the first violation.
    """
    if not records:
        raise ValueError("empty ledger")
    if records[0].get("kind") != "header":
        raise ValueError("ledger does not start with a header record")
    segments = 0
    cycles = 0
    complete = False
    last_cycle: dict | None = None
    prev_cycle_index = None
    prev_updates = None
    for record in records:
        kind = record.get("kind")
        if kind == "header":
            segments += 1
            if record.get("format_version") != LEDGER_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported ledger format {record.get('format_version')!r}"
                )
            provenance = record.get("provenance")
            if not isinstance(provenance, dict) or not {
                "repro_version",
                "spec_sha256",
            } <= set(provenance):
                raise ValueError("header lacks a provenance block")
            if not isinstance(record.get("host"), dict):
                raise ValueError("header lacks the host block")
            run = record.get("run")
            if not isinstance(run, dict) or "scenario" not in run:
                raise ValueError("header lacks the run block")
            # a resumed segment restarts the monotonicity baseline
            prev_cycle_index = run.get("resumed_at_cycle", 0)
            prev_updates = None
            complete = False
        elif kind == "cycle":
            cycles += 1
            context = f"cycle record {cycles}"
            _require_finite(record, CYCLE_RECORD_KEYS, context)
            if prev_cycle_index is not None and record["cycle"] <= prev_cycle_index:
                raise ValueError(
                    f"{context}: cycle index {record['cycle']} did not advance "
                    f"past {prev_cycle_index}"
                )
            if prev_updates is not None and record["element_updates"] < prev_updates:
                raise ValueError(f"{context}: element_updates decreased")
            prev_cycle_index = record["cycle"]
            prev_updates = record["element_updates"]
            last_cycle = record
        elif kind == "final":
            _require_finite(record, ("cycles", "wall_s", "element_updates"), "final record")
            complete = True
        else:
            raise ValueError(f"unknown ledger record kind {kind!r}")
    if expect_complete and not complete:
        raise ValueError("ledger has no final record (the run did not complete)")
    return {
        "segments": segments,
        "cycles": cycles,
        "complete": complete,
        "last_cycle": last_cycle,
    }


# ---------------------------------------------------------------------------
# the heartbeat
# ---------------------------------------------------------------------------


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class Heartbeat:
    """Live progress line driven by the runner's per-cycle records.

    On a TTY the line redraws in place (carriage return); on a pipe -- CI
    logs -- each emission is a full line, throttled to ``min_interval_s``
    so long runs do not flood the log.  The final cycle always emits.
    """

    def __init__(self, label: str, total_cycles: int, *, stream=None,
                 min_interval_s: float = 0.5):
        self.label = label
        self.total_cycles = int(total_cycles)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = float(min_interval_s)
        self._last_emit = -math.inf
        self._segment_cycles = 0
        self._segment_wall = 0.0
        self._sticky = bool(getattr(self.stream, "isatty", lambda: False)())
        self._dirty = False

    def emit(self, record: dict) -> None:
        """Render one cycle record (throttled)."""
        self._segment_cycles += 1
        self._segment_wall += float(record.get("cycle_wall_s", 0.0))
        now = time.perf_counter()
        final = record["cycle"] >= self.total_cycles
        if not final and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        remaining = max(0, self.total_cycles - int(record["cycle"]))
        eta = remaining * self._segment_wall / self._segment_cycles
        line = (
            f"[{self.label}] cycle {record['cycle']}/{self.total_cycles}"
            f"  t {record['t']:.3g} s"
            f"  {record['updates_per_s']:.3g} updates/s"
            f"  ETA {_format_eta(eta)}"
        )
        if self._sticky:
            self.stream.write("\r\x1b[2K" + line)
            if final:
                self.stream.write("\n")
            self._dirty = not final
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Terminate a sticky line that a non-final exit left open."""
        if self._sticky and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False

"""Hierarchical region timers with a true no-op path when disabled.

A :class:`Telemetry` object is one *lane*: one rank's (or the driver's)
stream of timed regions plus its metrics registry.  Regions nest -- entering
``correct`` and then ``recv_wait`` aggregates under the slash-joined path
``correct/recv_wait`` -- and every region uses ``time.perf_counter()``, which
on Linux is CLOCK_MONOTONIC and therefore shares an epoch across forked
worker processes (what makes per-rank Chrome-trace lanes line up).

The disabled path costs one attribute check per ``region()`` call and
returns a shared no-op context manager: instrumented-but-disabled code must
stay within the benchmarked overhead budget (see
``benchmarks/bench_observability.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .metrics import MetricsRegistry, merge_metrics

__all__ = ["Telemetry", "TelemetryConfig", "NULL_TELEMETRY", "merge_snapshots"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable on/off switches shipped to engines and worker processes."""

    enabled: bool = False
    trace: bool = False

    def build(self, rank: int = 0, lane: str | None = None, epoch: float | None = None):
        return Telemetry(
            enabled=self.enabled,
            trace=self.trace,
            rank=rank,
            lane=lane,
            epoch=epoch,
        )


class _NullRegion:
    """Shared do-nothing context manager handed out when telemetry is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_REGION = _NullRegion()


class _Region:
    """One live timed region; created only when telemetry is enabled."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry, name):
        self._telemetry = telemetry
        self._name = name

    def __enter__(self):
        telemetry = self._telemetry
        telemetry._stack.append(
            self._name if not telemetry._stack
            else f"{telemetry._stack[-1]}/{self._name}"
        )
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        end = time.perf_counter()
        telemetry = self._telemetry
        path = telemetry._stack.pop()
        elapsed = end - self._start
        entry = telemetry._regions.get(path)
        if entry is None:
            telemetry._regions[path] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed
        if telemetry.trace_enabled:
            telemetry._events.append(
                (path, (self._start - telemetry.epoch) * 1e6, elapsed * 1e6)
            )
        return False


class Telemetry:
    """One lane of region timings + metrics.

    All recording methods are guarded on ``enabled`` so call sites never
    branch themselves; the module-level :data:`NULL_TELEMETRY` is the
    canonical disabled instance used as a default everywhere.
    """

    def __init__(self, enabled: bool = True, trace: bool = False,
                 rank: int = 0, lane: str | None = None,
                 epoch: float | None = None):
        self.enabled = enabled
        self.trace_enabled = enabled and trace
        self.rank = rank
        self.lane = lane if lane is not None else f"rank {rank}"
        # shared trace epoch: perf_counter is system-wide monotonic on Linux,
        # so a parent-chosen epoch keeps forked workers on the same timeline
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.metrics = MetricsRegistry()
        self._stack: list[str] = []
        self._regions: dict[str, list] = {}
        self._events: list[tuple] = []

    # -- regions --------------------------------------------------------
    def region(self, name: str):
        """Timed context manager; a shared no-op when disabled."""
        if not self.enabled:
            return _NULL_REGION
        return _Region(self, name)

    # -- guarded metric shorthands --------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        if self.enabled:
            self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)

    # -- snapshots ------------------------------------------------------
    def regions(self) -> dict:
        """``{path: {"count", "total_s"}}`` of aggregated region timings."""
        return {
            path: {"count": entry[0], "total_s": entry[1]}
            for path, entry in self._regions.items()
        }

    def snapshot(self) -> dict:
        """Cumulative JSON-native state of this lane (regions + metrics)."""
        snap = {"rank": self.rank, "lane": self.lane, "regions": self.regions()}
        snap.update(self.metrics.as_dict())
        return snap

    def drain_events(self) -> list[tuple]:
        """Hand over trace events accumulated since the last drain.

        The process backend drains each cycle so the per-cycle IPC payload
        stays proportional to new work, not run length.
        """
        events, self._events = self._events, []
        return events


NULL_TELEMETRY = Telemetry(enabled=False)


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-lane snapshots: region counts/totals and counters sum."""
    snapshots = [s for s in snapshots if s]
    regions: dict[str, dict] = {}
    for snap in snapshots:
        for path, entry in snap.get("regions", {}).items():
            mine = regions.get(path)
            if mine is None:
                regions[path] = dict(entry)
            else:
                mine["count"] += entry["count"]
                mine["total_s"] += entry["total_s"]
    merged = {"regions": regions}
    merged.update(merge_metrics(snapshots))
    return merged

"""Derived analytics over the telemetry layer: the ``repro report`` engine.

PR 6's instrumentation records *raw* quantities -- per-rank region timings,
counters, Chrome traces, and (with this layer) the per-cycle run ledger.
The numbers the paper actually argues about are *derived* from those:

* **overlap efficiency** (Sec. V-C): how much of each rank's communication
  wait is hidden behind interior compute.  The exposed wait is the measured
  ``correct/recv_wait`` region; the hiding capacity is the
  ``predict.interior`` span that runs while sends are in flight, so
  ``efficiency = interior / (interior + exposed_wait)`` -- 1.0 means every
  receive completed behind interior work, 0.0 means every receive blocked.
* **load imbalance** (Fig. 7): ``max / mean`` of the per-rank busy time
  (the stepped phase regions) and of the per-rank element updates.
* **measured vs theoretical LTS speedup** (Figs. 4/5, Table 1): the
  cluster-weighted model from the run summary next to the realized
  update ratio, and -- when a GTS reference run is supplied -- the actual
  wall-clock speedup, normalised per simulated second.
* **per-kernel-stage GFLOP/s**: the existing FLOP model's per-stage counts
  against the measured kernel region times.
* **multi-run comparison**: wall-clock speedups of N runs of the same
  scenario (e.g. ref vs opt vs fast), normalised per simulated second.

Everything consumes the JSON artefacts a finished (or killed) run leaves
behind -- ``run_summary.json``, the ``--events`` JSONL ledger, optionally a
Chrome trace -- so reports are post-hoc and need no live solver.
"""

from __future__ import annotations

import json
from pathlib import Path

from .events import read_ledger, validate_run_ledger

__all__ = [
    "expand_report_paths",
    "load_run",
    "overlap_block",
    "imbalance_block",
    "speedup_block",
    "kernel_stage_block",
    "ledger_block",
    "comparison_block",
    "analyze_run",
    "build_report",
    "render_report",
]

#: region paths that make up a lane's stepped busy time
BUSY_REGIONS = ("predict", "predict.boundary", "send", "predict.interior",
                "correct", "update")

#: kernel stage -> (FLOP-model field, region leaf names that implement it)
KERNEL_STAGES = {
    "time": ("time_kernel", ("kernel.ck", "kernel.integrate")),
    "volume": ("volume_kernel", ("kernel.volume",)),
    "surface_local": ("surface_local", ("kernel.trace", "kernel.surface_local")),
    "surface_neighbor": ("surface_neighbor", ("kernel.surface_neighbor",)),
}


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def expand_report_paths(paths: list) -> list:
    """Expand sweep manifests and summary trees into individual run paths.

    Three indirections resolve, in input order (each expansion sorted):

    * a sweep ``manifest.jsonl`` (or a directory containing one) -> the
      summary path of every completed member recorded in it;
    * a directory without a ``run_summary.json`` of its own -> every
      ``run_summary.json`` found beneath it (e.g. a sweep's ``members/``
      tree, or any folder of archived runs);
    * anything else (run directory, summary file, run ledger) passes
      through to :func:`load_run` unchanged.
    """
    from ..sweep.manifest import is_sweep_manifest, manifest_member_paths, read_manifest

    expanded = []
    for path in paths:
        path = Path(path)
        if path.is_dir() and not (path / "run_summary.json").exists():
            if (path / "manifest.jsonl").exists():
                expanded.extend(manifest_member_paths(path / "manifest.jsonl"))
                continue
            summaries = sorted(path.rglob("run_summary.json"))
            if not summaries:
                raise FileNotFoundError(
                    f"{path} has no run_summary.json, sweep manifest.jsonl or "
                    "member summaries beneath it"
                )
            expanded.extend(str(p) for p in summaries)
            continue
        if path.suffix == ".jsonl" and path.is_file() and is_sweep_manifest(
            read_manifest(path)
        ):
            expanded.extend(manifest_member_paths(path))
            continue
        expanded.append(str(path))
    return expanded


def load_run(path) -> dict:
    """Load one run's artefacts from a directory, summary file or ledger.

    Accepts a run output directory (containing ``run_summary.json``), the
    summary JSON itself, or a ``.jsonl`` ledger.  The ledger is discovered
    from the summary's recorded ``events`` path or as a sibling of the
    summary; a bare ledger yields a summary-less run (ledger analytics
    only).
    """
    path = Path(path)
    run = {"label": str(path), "path": str(path), "summary": None, "ledger": None}
    if path.is_dir():
        summary_path = path / "run_summary.json"
        if not summary_path.exists():
            raise FileNotFoundError(f"{path} has no run_summary.json")
        run["summary"] = json.loads(summary_path.read_text())
        run["label"] = path.name or str(path)
    elif path.suffix == ".jsonl":
        run["ledger"] = read_ledger(path)
        run["label"] = path.stem
        return run
    else:
        run["summary"] = json.loads(path.read_text())
        run["label"] = path.parent.name or path.stem
    events = run["summary"].get("events")
    candidates = [Path(events)] if events else []
    base = path if path.is_dir() else path.parent
    candidates += sorted(base.glob("*.jsonl"))
    for candidate in candidates:
        if candidate.exists():
            run["ledger"] = read_ledger(candidate)
            break
    return run


def _rank_lanes(summary: dict) -> list[dict]:
    telemetry = summary.get("telemetry") or {}
    return [
        lane for lane in telemetry.get("lanes", [])
        if str(lane.get("lane", "")).startswith("rank")
    ]


def _region_s(regions: dict, path: str) -> float:
    entry = regions.get(path)
    return float(entry["total_s"]) if entry else 0.0


# ---------------------------------------------------------------------------
# the derived blocks
# ---------------------------------------------------------------------------


def overlap_block(summary: dict) -> dict | None:
    """Per-rank communication-hiding efficiency (None without rank lanes).

    ``exposed_wait_s`` is the time a rank measurably blocked in
    ``correct/recv_wait``; ``interior_s`` is the compute span available to
    hide in-flight messages.  The efficiency is the fraction of the
    post-send window spent computing instead of waiting.
    """
    ranks = []
    for lane in _rank_lanes(summary):
        regions = lane.get("regions", {})
        interior = _region_s(regions, "predict.interior")
        exposed = sum(
            float(entry["total_s"])
            for name, entry in regions.items()
            if name.endswith("/recv_wait") or name == "recv_wait"
        )
        if interior == 0.0 and exposed == 0.0:
            continue
        window = interior + exposed
        ranks.append(
            {
                "lane": lane.get("lane"),
                "interior_s": interior,
                "exposed_wait_s": exposed,
                "efficiency": interior / window if window > 0 else 1.0,
            }
        )
    if not ranks:
        return None
    interior = sum(r["interior_s"] for r in ranks)
    exposed = sum(r["exposed_wait_s"] for r in ranks)
    return {
        "ranks": ranks,
        "interior_s": interior,
        "exposed_wait_s": exposed,
        "efficiency": interior / (interior + exposed) if interior + exposed > 0 else 1.0,
    }


def imbalance_block(summary: dict) -> dict | None:
    """Max/mean load-imbalance ratios across the rank lanes (Fig. 7)."""
    ranks = []
    for lane in _rank_lanes(summary):
        regions = lane.get("regions", {})
        busy = sum(_region_s(regions, name) for name in BUSY_REGIONS)
        updates = sum(
            value
            for name, value in lane.get("counters", {}).items()
            if name.startswith("updates/")
        )
        ranks.append({"lane": lane.get("lane"), "busy_s": busy, "element_updates": updates})
    ranks = [r for r in ranks if r["busy_s"] > 0 or r["element_updates"] > 0]
    if len(ranks) < 2:  # imbalance of a single lane is vacuous
        return None
    busy = [r["busy_s"] for r in ranks]
    updates = [r["element_updates"] for r in ranks]
    mean_busy = sum(busy) / len(busy)
    mean_updates = sum(updates) / len(updates)
    return {
        "ranks": ranks,
        "busy_imbalance": max(busy) / mean_busy if mean_busy > 0 else 1.0,
        "update_imbalance": max(updates) / mean_updates if mean_updates > 0 else 1.0,
        "busiest": ranks[busy.index(max(busy))]["lane"],
    }


def speedup_block(summary: dict, gts_summary: dict | None = None) -> dict | None:
    """Measured LTS speedup against the cluster-weighted theoretical model.

    The *model* is the summary's ``theoretical_speedup`` (update cost vs
    GTS at ``dt_min``).  The *realized update ratio* compares the run's
    actual element updates against the GTS run the runner would execute
    (every element at the cluster-0 step ``lambda * dt_min``), so the
    model's prediction for that comparison is ``model / lambda``.  With a
    GTS reference summary of the same scenario, ``measured`` is the actual
    wall-clock ratio, normalised per simulated second.
    """
    if summary.get("solver") == "gts" or "theoretical_speedup" not in summary:
        return None
    n_clusters = int(summary["n_clusters"])
    cycles = int(summary["cycles"])
    updates = int(summary["element_updates"])
    if cycles <= 0 or updates <= 0:
        return None
    gts_updates_per_cycle = int(summary["n_elements"]) * 2 ** (n_clusters - 1)
    lts_updates_per_cycle = updates / cycles
    model = float(summary["theoretical_speedup"])
    lam = float(summary["lambda"])
    block = {
        "theoretical_model": model,
        "lambda": lam,
        "update_ratio": gts_updates_per_cycle / lts_updates_per_cycle,
        "model_vs_gts_at_lambda_dt": model / lam,
        "measured": None,
    }
    if gts_summary is not None and _comparable(summary, gts_summary):
        lts_rate = _wall_per_sim_second(summary)
        gts_rate = _wall_per_sim_second(gts_summary)
        if lts_rate and gts_rate:
            measured = gts_rate / lts_rate
            block["measured"] = measured
            block["gts_reference"] = gts_summary.get("scenario")
            block["attained_vs_model"] = measured / block["model_vs_gts_at_lambda_dt"]
    return block


def _wall_per_sim_second(summary: dict) -> float | None:
    t = float(summary.get("t_end") or 0.0)
    wall = float(summary.get("wall_s") or 0.0)
    return wall / t if t > 0 and wall > 0 else None


def _comparable(a: dict, b: dict) -> bool:
    keys = ("scenario", "n_elements", "order")
    return all(a.get(k) == b.get(k) for k in keys)


def kernel_stage_block(summary: dict) -> dict | None:
    """Per-kernel-stage GFLOP/s from the FLOP model and region timings.

    Seconds are summed across all lanes (and nesting paths), so on the
    process backend the rate is per lane-second -- a per-core figure.
    Needs the ``flops_per_stage`` stamp PR 7 added to the derived block.
    """
    telemetry = summary.get("telemetry") or {}
    per_stage = (telemetry.get("derived") or {}).get("flops_per_stage")
    regions = telemetry.get("regions") or {}
    if not per_stage:
        return None
    updates = int(summary.get("element_updates", 0))
    stages = {}
    for stage, (flop_key, leaves) in KERNEL_STAGES.items():
        seconds = sum(
            float(entry["total_s"])
            for name, entry in regions.items()
            if name.rsplit("/", 1)[-1] in leaves
        )
        flops = updates * int(per_stage.get(flop_key, 0))
        if seconds <= 0.0 or flops <= 0:
            continue
        stages[stage] = {
            "seconds": seconds,
            "gflop": flops / 1e9,
            "gflop_per_s": flops / 1e9 / seconds,
        }
    return stages or None


def ledger_block(records: list[dict]) -> dict | None:
    """Progress analytics of the per-cycle ledger records."""
    if not records:
        return None
    summary = validate_run_ledger(records)
    cycles = [r for r in records if r.get("kind") == "cycle"]
    if not cycles:
        return {**summary, "updates_per_s": None}
    walls = [float(r["cycle_wall_s"]) for r in cycles]
    rates = [float(r["updates_per_s"]) for r in cycles]
    wait_totals: dict[str, float] = {}
    for record in cycles:
        for lane, wait in (record.get("recv_wait_s") or {}).items():
            wait_totals[lane] = wait_totals.get(lane, 0.0) + float(wait)
    last = cycles[-1]
    return {
        **summary,
        "t": float(last["t"]),
        "wall_s": float(last["wall_s"]),
        "element_updates": int(last["element_updates"]),
        "cycle_wall_s": {
            "mean": sum(walls) / len(walls),
            "min": min(walls),
            "max": max(walls),
        },
        "updates_per_s": {
            "mean": sum(rates) / len(rates),
            "min": min(rates),
            "max": max(rates),
            "last": rates[-1],
        },
        "recv_wait_s": wait_totals or None,
        "comm_bytes": int(last["comm_bytes"]) if "comm_bytes" in last else None,
        "peak_rss_mb": max(float(r["peak_rss_mb"]) for r in cycles),
    }


def comparison_block(runs: list[dict]) -> dict | None:
    """Wall-clock speedup table of N runs, first run as the baseline."""
    rows = []
    baseline_rate = None
    baseline = None
    for run in runs:
        summary = run.get("summary")
        if summary is None:
            continue
        rate = _wall_per_sim_second(summary)
        row = {
            "label": run["label"],
            "scenario": summary.get("scenario"),
            "solver": summary.get("solver"),
            "kernels": summary.get("kernels"),
            "precision": summary.get("precision"),
            "n_ranks": summary.get("n_ranks", 1),
            "backend": summary.get("backend", "serial"),
            "wall_s": summary.get("wall_s"),
            "element_updates_per_s": summary.get("element_updates_per_s"),
            "wall_per_sim_s": rate,
            "speedup_vs_first": None,
            "comparable": True,
        }
        if baseline is None:
            baseline, baseline_rate = summary, rate
        else:
            row["comparable"] = _comparable(summary, baseline)
            if row["comparable"] and baseline_rate and rate:
                row["speedup_vs_first"] = baseline_rate / rate
        rows.append(row)
    return {"baseline": rows[0]["label"], "rows": rows} if len(rows) > 1 else None


# ---------------------------------------------------------------------------
# report assembly
# ---------------------------------------------------------------------------


def analyze_run(run: dict, gts_summary: dict | None = None) -> dict:
    """All derived blocks of one loaded run (absent blocks are None)."""
    summary = run.get("summary")
    blocks = {
        "overlap": overlap_block(summary) if summary else None,
        "imbalance": imbalance_block(summary) if summary else None,
        "lts_speedup": speedup_block(summary, gts_summary) if summary else None,
        "kernel_stages": kernel_stage_block(summary) if summary else None,
        "ledger": ledger_block(run.get("ledger") or []),
    }
    info = {"label": run["label"], "path": run["path"]}
    if summary is not None:
        info.update(
            scenario=summary.get("scenario"),
            solver=summary.get("solver"),
            kernels=summary.get("kernels"),
            precision=summary.get("precision"),
            n_ranks=summary.get("n_ranks", 1),
            backend=summary.get("backend", "serial"),
            wall_s=summary.get("wall_s"),
            provenance=summary.get("provenance"),
        )
    return {**info, "blocks": blocks}


def build_report(paths: list) -> dict:
    """Load every run and assemble the full report payload.

    Paths may be run directories, summary files or ledgers -- or sweep
    manifests / summary trees, which expand to their members first (see
    :func:`expand_report_paths`).
    """
    runs = [load_run(path) for path in expand_report_paths(paths)]
    # the first GTS run among the inputs serves as the measured-speedup
    # reference for every comparable LTS run
    gts_summary = next(
        (
            run["summary"]
            for run in runs
            if run.get("summary") and run["summary"].get("solver") == "gts"
        ),
        None,
    )
    return {
        "runs": [analyze_run(run, gts_summary) for run in runs],
        "comparison": comparison_block(runs),
    }


# ---------------------------------------------------------------------------
# text rendering
# ---------------------------------------------------------------------------


def _fmt(value, pattern="{:.3g}") -> str:
    return pattern.format(value) if isinstance(value, (int, float)) else "-"


def _render_run(entry: dict) -> list[str]:
    parts = [entry["label"]]
    if entry.get("scenario"):
        ranks = f", {entry['n_ranks']} ranks {entry['backend']}" if entry.get(
            "n_ranks", 1
        ) > 1 else ""
        parts.append(
            f"({entry['scenario']}, {entry.get('solver')}, "
            f"kernels {entry.get('kernels')}/{entry.get('precision')}{ranks})"
        )
    lines = ["== run " + " ".join(parts) + " =="]
    blocks = entry["blocks"]

    speedup = blocks.get("lts_speedup")
    if speedup:
        lines.append("LTS speedup:")
        lines.append(
            f"  theoretical model (vs GTS @ dt_min)   {speedup['theoretical_model']:.2f}x"
        )
        lines.append(
            f"  realized update ratio (vs GTS run)    {speedup['update_ratio']:.2f}x"
            f"  [model predicts {speedup['model_vs_gts_at_lambda_dt']:.2f}x at "
            f"lambda={speedup['lambda']:.2f}]"
        )
        if speedup.get("measured") is not None:
            lines.append(
                f"  measured wall-clock speedup           {speedup['measured']:.2f}x"
                f"  ({speedup['attained_vs_model']:.0%} of the model)"
            )
        else:
            lines.append(
                "  measured wall-clock speedup           - (add a GTS run of the "
                "same scenario to the report)"
            )

    overlap = blocks.get("overlap")
    if overlap:
        lines.append("Overlap efficiency (recv-wait hidden behind interior compute):")
        for rank in overlap["ranks"]:
            lines.append(
                f"  {rank['lane']}: interior {rank['interior_s']:.3g} s, "
                f"exposed wait {rank['exposed_wait_s']:.3g} s"
                f" -> efficiency {rank['efficiency']:.0%}"
            )
        lines.append(f"  all ranks: efficiency {overlap['efficiency']:.0%}")

    imbalance = blocks.get("imbalance")
    if imbalance:
        lines.append("Load imbalance across ranks:")
        for rank in imbalance["ranks"]:
            lines.append(
                f"  {rank['lane']}: busy {rank['busy_s']:.3g} s, "
                f"{rank['element_updates']:.0f} updates"
            )
        lines.append(
            f"  busy max/mean {imbalance['busy_imbalance']:.2f}, "
            f"updates max/mean {imbalance['update_imbalance']:.2f}"
            f" (busiest: {imbalance['busiest']})"
        )

    stages = blocks.get("kernel_stages")
    if stages:
        lines.append("Kernel stages (FLOP model vs measured region time):")
        for stage, row in stages.items():
            lines.append(
                f"  {stage:<17} {row['seconds']:8.3g} s  "
                f"{row['gflop']:8.3g} GFLOP  {row['gflop_per_s']:8.3g} GFLOP/s"
            )

    ledger = blocks.get("ledger")
    if ledger:
        status = "complete" if ledger["complete"] else "PARTIAL (run did not finish)"
        lines.append(
            f"Ledger: {ledger['cycles']} cycle records in {ledger['segments']} "
            f"segment(s), {status}"
        )
        if ledger.get("updates_per_s"):
            rates = ledger["updates_per_s"]
            lines.append(
                f"  t {_fmt(ledger.get('t'))} s, wall {_fmt(ledger.get('wall_s'))} s, "
                f"updates/s mean {rates['mean']:.3g} "
                f"(min {rates['min']:.3g}, max {rates['max']:.3g}), "
                f"peak RSS {_fmt(ledger.get('peak_rss_mb'), '{:.0f}')} MiB"
            )
    return lines


def render_report(report: dict) -> str:
    """Human-readable rendering of :func:`build_report`'s payload."""
    lines: list[str] = []
    for entry in report["runs"]:
        lines.extend(_render_run(entry))
        lines.append("")
    comparison = report.get("comparison")
    if comparison:
        lines.append(f"== comparison (baseline: {comparison['baseline']}) ==")
        header = (
            f"{'run':<24} {'solver':<10} {'kernels':<12} {'wall_s':>9} "
            f"{'updates/s':>11} {'speedup':>8}"
        )
        lines.append(header)
        for row in comparison["rows"]:
            kernels = f"{row['kernels']}/{row['precision']}"
            speedup = (
                f"{row['speedup_vs_first']:.2f}x"
                if row.get("speedup_vs_first")
                else ("base" if row["label"] == comparison["baseline"] else "-")
            )
            note = "" if row["comparable"] else "  (different scenario!)"
            lines.append(
                f"{row['label']:<24} {str(row['solver']):<10} {kernels:<12} "
                f"{_fmt(row['wall_s'], '{:9.3g}')} "
                f"{_fmt(row['element_updates_per_s'], '{:11.3g}')} {speedup:>8}{note}"
            )
    return "\n".join(lines).rstrip() + "\n"

"""Observability: hierarchical phase timers, metrics and Chrome traces.

The measurement substrate for the paper's performance decomposition --
per-phase/per-cluster/per-rank timings of the clustered-LTS micro-step
schedule, counters for updates/FLOPs/halo traffic, and ``chrome://tracing``
timelines showing how well communication hides behind interior work.
Disabled by default with a near-zero no-op path; enabled per run via
``output.telemetry`` in the scenario spec or ``--metrics``/``--trace`` on
the CLI.
"""

from .metrics import Histogram, MetricsRegistry, merge_metrics
from .timers import NULL_TELEMETRY, Telemetry, TelemetryConfig, merge_snapshots
from .trace import build_chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "merge_metrics",
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryConfig",
    "merge_snapshots",
    "build_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

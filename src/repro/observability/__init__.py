"""Observability: hierarchical phase timers, metrics and Chrome traces.

The measurement substrate for the paper's performance decomposition --
per-phase/per-cluster/per-rank timings of the clustered-LTS micro-step
schedule, counters for updates/FLOPs/halo traffic, and ``chrome://tracing``
timelines showing how well communication hides behind interior work.
Disabled by default with a near-zero no-op path; enabled per run via
``output.telemetry`` in the scenario spec or ``--metrics``/``--trace`` on
the CLI.
"""

from .analysis import (
    analyze_run,
    build_report,
    expand_report_paths,
    load_run,
    render_report,
)
from .events import (
    Heartbeat,
    RunLedger,
    git_revision,
    host_block,
    peak_rss_mb,
    provenance_block,
    read_ledger,
    spec_content_hash,
    validate_run_ledger,
)
from .metrics import Histogram, MetricsRegistry, merge_metrics
from .timers import NULL_TELEMETRY, Telemetry, TelemetryConfig, merge_snapshots
from .trace import build_chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "merge_metrics",
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryConfig",
    "merge_snapshots",
    "build_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "Heartbeat",
    "RunLedger",
    "git_revision",
    "host_block",
    "peak_rss_mb",
    "provenance_block",
    "read_ledger",
    "spec_content_hash",
    "validate_run_ledger",
    "analyze_run",
    "build_report",
    "expand_report_paths",
    "load_run",
    "render_report",
]

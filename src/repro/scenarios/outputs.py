"""Run artefacts: seismogram CSVs and the run-summary JSON.

One CSV per receiver (``seismogram_<name>.csv`` with a ``time`` column and
one velocity column per component -- per fused simulation for ensemble runs)
plus a single ``run_summary.json`` carrying the runner's accounting.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = [
    "seismogram_header",
    "write_seismograms",
    "write_fused_slot_seismograms",
    "write_run_summary",
    "write_outputs",
]


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def seismogram_header(n_columns: int) -> str:
    """The CSV header for a seismogram with ``n_columns`` value columns.

    Scalar runs (and fused runs of width 1, whose flattened table is
    indistinguishable from a scalar run's) use the plain ``vx,vy,vz``
    columns; wider fused runs get one column per (component, simulation) in
    the flattened ``(component, simulation)`` order of the sample arrays.
    An empty recording still names the three scalar columns.
    """
    if n_columns % 3 != 0:
        raise ValueError(f"seismogram tables have 3 x n_fused columns, got {n_columns}")
    if n_columns in (0, 3):
        return "time,vx,vy,vz"
    n_fused = n_columns // 3
    return "time," + ",".join(f"v{axis}_{f}" for axis in "xyz" for f in range(n_fused))


def write_seismograms(receivers, directory) -> list[Path]:
    """Write one ``seismogram_<name>.csv`` per receiver; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for receiver in receivers.receivers:
        times, values = receiver.seismogram()
        values = np.asarray(values, dtype=np.float64)
        # reshape(0, -1) is ambiguous for empty recordings; emit an empty CSV.
        # Receiver.seismogram() returns (0, 3) for empty recordings regardless
        # of the fused width, so an unrecorded station gets the scalar header;
        # the prod() keeps receiver-likes that do report (0, 3, n) consistent
        if len(times):
            flat = values.reshape(len(times), -1)
        else:
            flat = values.reshape(0, int(np.prod(values.shape[1:])) if values.ndim > 1 else 3)
        header = seismogram_header(flat.shape[1])
        path = directory / f"seismogram_{receiver.name}.csv"
        table = np.column_stack([np.asarray(times, dtype=np.float64), flat])
        np.savetxt(path, table, delimiter=",", header=header, comments="")
        paths.append(path)
    return paths


def write_fused_slot_seismograms(receivers, directory, slot: int) -> list[Path]:
    """Demux one fused slot into scalar ``seismogram_<name>.csv`` files.

    Slices slot ``slot`` out of each receiver's ``(n, 3, F)`` recording and
    routes the resulting ``(n, 3)`` table through exactly the scalar
    formatting path, so a demuxed ref/f64 CSV is byte-identical to the CSV a
    standalone run of that slot's source would write.  Unrecorded stations
    keep the scalar-header empty-CSV form, like the scalar writer.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for receiver in receivers.receivers:
        times, values = receiver.seismogram()
        values = np.asarray(values, dtype=np.float64)
        if len(times):
            if values.ndim != 3:
                raise ValueError(
                    f"receiver {receiver.name!r} recorded a non-fused table "
                    f"of shape {values.shape}; nothing to demux"
                )
            flat = values[:, :, slot].reshape(len(times), -1)
        else:
            flat = values.reshape(0, 3)
        header = seismogram_header(flat.shape[1])
        path = directory / f"seismogram_{receiver.name}.csv"
        table = np.column_stack([np.asarray(times, dtype=np.float64), flat])
        np.savetxt(path, table, delimiter=",", header=header, comments="")
        paths.append(path)
    return paths


def write_run_summary(path, summary: dict) -> Path:
    """Write the run summary as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(summary), indent=2) + "\n")
    return path


def write_outputs(runner, directory, summary: dict | None = None) -> dict:
    """Write all artefacts of a finished run into ``directory``.

    ``summary`` reuses an already-computed run summary (``run()`` returns
    one); recomputing it is not just wasted work -- the accuracy block
    integrates error norms over the full state, and on the process backend
    every summary gathers the distributed DOFs.
    """
    directory = Path(directory)
    if summary is None:
        summary = runner.summary()
    written = {"run_summary": write_run_summary(directory / "run_summary.json", summary)}
    if runner.receivers is not None:
        written["seismograms"] = write_seismograms(runner.receivers, directory)
    if summary.get("telemetry"):
        # instrumented runs also get their derived analytics precomputed
        # (the same payload `repro report <directory>` would produce)
        from ..observability import analyze_run

        report_path = directory / "report.json"
        report = analyze_run(
            {
                "label": directory.name or str(directory),
                "path": str(directory),
                "summary": _jsonable(summary),
                "ledger": None,
            }
        )
        report_path.write_text(json.dumps(report, indent=2) + "\n")
        written["report"] = report_path
    return written

"""Declarative scenario specifications.

The paper's preprocessing pipeline (Sec. VI, Fig. 8) turns "a velocity model
and a handful of user rules" into a ready-to-run clustered-LTS simulation.
:class:`ScenarioSpec` is exactly that handful of user rules, written down as
a validated, serialisable value object:

* the domain (box extent, optional topography),
* the meshing rule (characteristic edge lengths with per-layer refinement,
  or the elements-per-wavelength rule),
* the velocity model (named kinds with free parameters),
* material options (anelasticity, relaxation mechanisms, constant-Q band),
* the seismic source and its source time function, the receivers, and an
  optional analytic initial condition,
* the LTS clustering policy (number of clusters, lambda or grid search),
* the solver configuration (GTS / clustered LTS / legacy-LTS accounting,
  number of fused simulations, flux, CFL factor), and
* the run duration and checkpoint cadence.

Specs round-trip losslessly through ``to_dict``/``from_dict`` and JSON,
which is what the registry, the CLI and the checkpoint files rely on.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace

__all__ = [
    "DomainSpec",
    "RefinementSpec",
    "MeshSpec",
    "VelocityModelSpec",
    "MaterialSpec",
    "TimeFunctionSpec",
    "FusedSourceSpec",
    "SourceSpec",
    "InitialConditionSpec",
    "ClusteringSpec",
    "SolverSpec",
    "PreprocessingSpec",
    "RunSpec",
    "OutputSpec",
    "ScenarioSpec",
    "SOLVER_KINDS",
    "SOLVER_BACKENDS",
    "SOLVER_COMMS",
    "SOLVER_KERNELS",
    "SOLVER_PRECISIONS",
    "VELOCITY_MODEL_KINDS",
    "TIME_FUNCTION_KINDS",
    "SOURCE_KINDS",
    "INITIAL_CONDITION_KINDS",
    "MESH_MODES",
    "TOPOGRAPHY_KINDS",
]

SOLVER_KINDS = ("gts", "lts", "legacy-lts")
SOLVER_BACKENDS = ("serial", "process")
# kept in sync with repro.distributed.process_engine.COMM_KINDS
SOLVER_COMMS = ("queue", "shm")
# kept in sync with repro.kernels.backend.KERNEL_KINDS and
# repro.kernels.discretization.PRECISIONS (spec stays import-light)
SOLVER_KERNELS = ("ref", "opt", "fast")
SOLVER_PRECISIONS = ("f64", "f32")
VELOCITY_MODEL_KINDS = ("loh3", "la_habra_basin", "homogeneous", "layered")
TIME_FUNCTION_KINDS = ("ricker", "gaussian_derivative", "smoothed_step")
SOURCE_KINDS = ("moment_tensor", "point_force")
INITIAL_CONDITION_KINDS = ("gaussian_pulse", "plane_wave")
MESH_MODES = ("characteristic", "wavelength")
TOPOGRAPHY_KINDS = ("none", "sinusoidal")


def _floats(values) -> tuple[float, ...]:
    return tuple(float(v) for v in values)


def _json_default(value):
    # numpy scalars and arrays expose tolist(); anything else is a real error
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not JSON serialisable")


def _normalized_params(params: dict) -> dict:
    """Normalise a free-form parameter dict to JSON-native values.

    Guarantees that a spec compares equal to itself after a JSON round-trip
    (tuples become lists, numpy scalars become floats/ints).
    """
    return json.loads(json.dumps(params, default=_json_default))


@dataclass(frozen=True)
class DomainSpec:
    """The (box) simulation domain ``x0 < x1, y0 < y1, z0 < z1`` (z up).

    ``free_surface`` keeps the usual seismic setup (traction-free top
    z-plane, absorbing sides); ``False`` makes every boundary absorbing --
    the configuration convergence studies against free-space analytic
    solutions need, since a travelling wave violates the traction-free
    condition.
    """

    extent: tuple[float, float, float, float, float, float]
    topography: str = "none"
    topography_amplitude: float = 0.0
    free_surface: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "extent", _floats(self.extent))
        if len(self.extent) != 6:
            raise ValueError("extent must be (x0, x1, y0, y1, z0, z1)")
        x0, x1, y0, y1, z0, z1 = self.extent
        if x1 <= x0 or y1 <= y0 or z1 <= z0:
            raise ValueError("domain extent must have positive volume")
        if self.topography not in TOPOGRAPHY_KINDS:
            raise ValueError(f"topography must be one of {TOPOGRAPHY_KINDS}")


@dataclass(frozen=True)
class RefinementSpec:
    """Refine the vertical edge length by ``divide_by`` for ``z > z_above``."""

    z_above: float
    divide_by: float

    def __post_init__(self) -> None:
        if self.divide_by <= 0:
            raise ValueError("refinement factor must be positive")


@dataclass(frozen=True)
class MeshSpec:
    """Velocity-aware meshing rules (step 1 of the pipeline, Fig. 8).

    ``characteristic`` mode prescribes a base vertical edge length plus
    per-layer refinements; ``wavelength`` mode derives edge lengths from the
    velocity model via the elements-per-wavelength rule.
    """

    mode: str = "characteristic"
    characteristic_length: float = 2000.0
    refinements: tuple[RefinementSpec, ...] = ()
    max_frequency: float = 1.0
    elements_per_wavelength: float = 2.0
    horizontal_factor: float = 1.0
    jitter: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "refinements",
            tuple(
                r if isinstance(r, RefinementSpec) else RefinementSpec(**r)
                for r in self.refinements
            ),
        )
        if self.mode not in MESH_MODES:
            raise ValueError(f"mesh mode must be one of {MESH_MODES}")
        if self.characteristic_length <= 0:
            raise ValueError("characteristic length must be positive")
        if self.max_frequency <= 0:
            raise ValueError("max frequency must be positive")
        if self.elements_per_wavelength <= 0:
            raise ValueError("elements per wavelength must be positive")
        if self.horizontal_factor <= 0:
            raise ValueError("horizontal factor must be positive")
        if not 0.0 <= self.jitter < 0.5:
            raise ValueError("jitter must lie in [0, 0.5)")


@dataclass(frozen=True)
class VelocityModelSpec:
    """A named velocity model kind plus its free parameters.

    Kinds: ``loh3`` (the published layer-over-halfspace model),
    ``la_habra_basin`` (synthetic CVM stand-in; params ``min_vs``,
    ``basin_vs``, ``basin_max_depth``, ...), ``homogeneous`` (params ``rho``,
    ``vp``, ``vs`` and optional ``qp``/``qs``), ``layered`` (param
    ``layers``: a list of layer dicts).
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in VELOCITY_MODEL_KINDS:
            raise ValueError(f"velocity model kind must be one of {VELOCITY_MODEL_KINDS}")
        object.__setattr__(self, "params", _normalized_params(self.params))
        if self.kind == "homogeneous":
            for key in ("rho", "vp", "vs"):
                if key not in self.params:
                    raise ValueError(f"homogeneous model needs parameter {key!r}")
        if self.kind == "layered" and not self.params.get("layers"):
            raise ValueError("layered model needs a non-empty 'layers' parameter")


@dataclass(frozen=True)
class MaterialSpec:
    """Material options: anelasticity and the constant-Q fit."""

    anelastic: bool = True
    n_mechanisms: int = 3
    frequency_band: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.frequency_band is not None:
            object.__setattr__(self, "frequency_band", _floats(self.frequency_band))
            lo, hi = self.frequency_band
            if lo <= 0 or hi <= lo:
                raise ValueError("frequency band must be 0 < lo < hi")
        if self.n_mechanisms < 0:
            raise ValueError("n_mechanisms must be non-negative")


@dataclass(frozen=True)
class TimeFunctionSpec:
    """A named source time function (``ricker``, ``gaussian_derivative``,
    ``smoothed_step``) with its parameters."""

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TIME_FUNCTION_KINDS:
            raise ValueError(f"time function kind must be one of {TIME_FUNCTION_KINDS}")
        object.__setattr__(self, "params", _normalized_params(self.params))

    def build(self):
        from ..source.time_functions import GaussianDerivative, RickerWavelet, SmoothedStep

        cls = {
            "ricker": RickerWavelet,
            "gaussian_derivative": GaussianDerivative,
            "smoothed_step": SmoothedStep,
        }[self.kind]
        return cls(**self.params)


@dataclass(frozen=True)
class FusedSourceSpec:
    """Per-slot source overrides for one slot of a fused ensemble.

    Every field defaults to "inherit from the base source": ``moment_scale``
    multiplies the base moment tensor (or force), ``time_function`` replaces
    the base source time function (onset delays, centre frequencies, ...),
    and ``moment_tensor``/``force`` replace the base mechanism outright.  The
    slot's *location* is always the base location -- fused simulations share
    one mesh and one source element.
    """

    moment_scale: float = 1.0
    time_function: TimeFunctionSpec | None = None
    moment_tensor: tuple[tuple[float, float, float], ...] | None = None
    force: tuple[float, float, float] | None = None

    def __post_init__(self) -> None:
        import math

        object.__setattr__(self, "moment_scale", float(self.moment_scale))
        if not math.isfinite(self.moment_scale):
            raise ValueError("fused slot moment_scale must be finite")
        if isinstance(self.time_function, dict):
            object.__setattr__(self, "time_function", TimeFunctionSpec(**self.time_function))
        if self.moment_tensor is not None:
            object.__setattr__(
                self, "moment_tensor", tuple(_floats(row) for row in self.moment_tensor)
            )
            if len(self.moment_tensor) != 3 or any(len(r) != 3 for r in self.moment_tensor):
                raise ValueError("fused slot moment tensor must be 3x3")
        if self.force is not None:
            object.__setattr__(self, "force", _floats(self.force))
            if len(self.force) != 3:
                raise ValueError("fused slot force must be a 3-vector")


@dataclass(frozen=True)
class SourceSpec:
    """A kinematic point source: moment tensor or single force.

    A non-empty ``fused`` block turns the source into a fused ensemble: slot
    ``f`` of the fused run uses the base source with the per-slot overrides
    of ``fused[f]`` applied (see :class:`FusedSourceSpec`).  The block length
    must equal ``solver.n_fused`` (validated at the :class:`ScenarioSpec`
    level).
    """

    kind: str
    location: tuple[float, float, float]
    time_function: TimeFunctionSpec
    moment_tensor: tuple[tuple[float, float, float], ...] | None = None
    force: tuple[float, float, float] | None = None
    fused: tuple[FusedSourceSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", _floats(self.location))
        if isinstance(self.time_function, dict):
            object.__setattr__(self, "time_function", TimeFunctionSpec(**self.time_function))
        if self.kind not in SOURCE_KINDS:
            raise ValueError(f"source kind must be one of {SOURCE_KINDS}")
        if len(self.location) != 3:
            raise ValueError("source location must be a 3-vector")
        if self.kind == "moment_tensor":
            if self.moment_tensor is None:
                raise ValueError("moment_tensor source needs a moment tensor")
            object.__setattr__(
                self, "moment_tensor", tuple(_floats(row) for row in self.moment_tensor)
            )
            if len(self.moment_tensor) != 3 or any(len(r) != 3 for r in self.moment_tensor):
                raise ValueError("moment tensor must be 3x3")
        if self.kind == "point_force":
            if self.force is None:
                raise ValueError("point_force source needs a force vector")
            object.__setattr__(self, "force", _floats(self.force))
            if len(self.force) != 3:
                raise ValueError("force must be a 3-vector")
        object.__setattr__(
            self,
            "fused",
            tuple(
                s if isinstance(s, FusedSourceSpec) else FusedSourceSpec(**s)
                for s in self.fused
            ),
        )
        for slot in self.fused:
            if self.kind == "moment_tensor" and slot.force is not None:
                raise ValueError("fused slot of a moment_tensor source cannot override force")
            if self.kind == "point_force" and slot.moment_tensor is not None:
                raise ValueError(
                    "fused slot of a point_force source cannot override moment_tensor"
                )

    def slot(self, index: int) -> "SourceSpec":
        """The effective *scalar* source spec of fused slot ``index``.

        This is the spec a standalone run of that slot's source would use;
        slot-wise bit-identity tests compare against exactly this spec.
        """
        entry = self.fused[index]
        time_function = (
            entry.time_function if entry.time_function is not None else self.time_function
        )
        moment_tensor, force = self.moment_tensor, self.force
        if self.kind == "moment_tensor":
            if entry.moment_tensor is not None:
                moment_tensor = entry.moment_tensor
            if entry.moment_scale != 1.0:
                moment_tensor = tuple(
                    tuple(entry.moment_scale * v for v in row) for row in moment_tensor
                )
        else:
            if entry.force is not None:
                force = entry.force
            if entry.moment_scale != 1.0:
                force = tuple(entry.moment_scale * v for v in force)
        return SourceSpec(
            kind=self.kind,
            location=self.location,
            time_function=time_function,
            moment_tensor=moment_tensor,
            force=force,
        )

    def slot_labels(self) -> list[dict]:
        """JSON-ready per-slot descriptors for run summaries and writers."""
        labels = []
        for f in range(len(self.fused)):
            slot = self.slot(f)
            label = {
                "slot": f,
                "kind": slot.kind,
                "moment_scale": self.fused[f].moment_scale,
                "time_function": {
                    "kind": slot.time_function.kind,
                    "params": slot.time_function.params,
                },
            }
            if slot.kind == "moment_tensor":
                label["moment_tensor"] = [list(row) for row in slot.moment_tensor]
            else:
                label["force"] = list(slot.force)
            labels.append(label)
        return labels

    def build(self):
        import numpy as np

        from ..source.moment_tensor import MomentTensorSource, PointForceSource

        if self.fused:
            # a fused ensemble builds one per-slot source list; the solver
            # binds it as a single stacked DiscretePointSource
            return [self.slot(f).build() for f in range(len(self.fused))]
        stf = self.time_function.build()
        if self.kind == "moment_tensor":
            return MomentTensorSource(
                location=np.asarray(self.location),
                moment_tensor=np.asarray(self.moment_tensor),
                time_function=stf,
            )
        return PointForceSource(
            location=np.asarray(self.location),
            force=np.asarray(self.force),
            time_function=stf,
        )


@dataclass(frozen=True)
class InitialConditionSpec:
    """An analytic initial condition projected onto the DG basis.

    ``gaussian_pulse``: params ``component`` (0-8), ``width``, ``amplitude``
    and optional ``center`` (defaults to the domain centre).
    ``plane_wave``: an exact elastic plane P wave along x; params
    ``amplitude``, ``wavelength``.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in INITIAL_CONDITION_KINDS:
            raise ValueError(f"initial condition kind must be one of {INITIAL_CONDITION_KINDS}")
        object.__setattr__(self, "params", _normalized_params(self.params))


@dataclass(frozen=True)
class ClusteringSpec:
    """LTS clustering policy: ``lam = None`` runs the lambda grid search."""

    n_clusters: int = 3
    lam: float | None = None
    increment: float = 0.01

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("need at least one cluster")
        if self.lam is not None and not 0.5 < self.lam <= 1.0:
            raise ValueError("lambda must lie in (0.5, 1]")
        if not 0.0 < self.increment <= 0.5:
            raise ValueError("lambda increment must lie in (0, 0.5]")


@dataclass(frozen=True)
class SolverSpec:
    """Solver kind and kernel options.

    ``legacy-lts`` runs the same clustered driver but reports the legacy
    (derivative-communicating) scheme's communication volume in the run
    summary, for the Sec. IV comparison.  ``n_ranks > 1`` executes the run
    through the distributed multi-rank engine (weighted partitioning plus
    face-local compressed halo exchange, Sec. V-C); the result is
    bit-identical to the single-rank run.  ``backend`` selects how the ranks
    execute: ``"serial"`` steps them in-process through the simulated
    communicator, ``"process"`` runs one worker process per rank with real
    overlapped halo exchange -- results are bit-identical either way.
    ``comm`` picks the process backend's halo transport: ``"queue"`` ships
    pickled payload batches through multiprocessing queues, ``"shm"`` writes
    payloads in place into per-rank-pair shared-memory ring buffers (the
    queues carry only tokens) -- bit-identical results and identical byte
    accounting; ``"shm"`` is only valid with ``backend="process"``.
    ``comm_timeout`` bounds a blocked halo receive in seconds (``None``
    defers to the engine default / ``REPRO_HALO_TIMEOUT_S``).
    ``kernels`` selects the kernel-execution backend: ``"ref"`` (the plain
    reference kernels), ``"opt"`` (precompiled contraction plans, batched
    structure-exploiting einsums and reusable scratch workspaces; at f64
    bit-identical to ``"ref"``) or ``"fast"`` (the optimized structure with
    the bit-identity pin dropped -- BLAS-reassociated contractions and fused
    accumulations, *tolerance-equal* under the :mod:`repro.verification`
    contract).  The default follows the ``REPRO_KERNELS`` environment
    variable (falling back to ``"ref"``) and is resolved at construction
    time, so one CI leg can soak every spec-driven test under a non-default
    kernel backend while serialised specs stay explicit.
    ``precision`` runs the solver state and operators in ``"f64"`` or
    ``"f32"`` end to end (halo payloads included).
    """

    kind: str = "lts"
    n_fused: int = 0
    flux: str = "rusanov"
    cfl: float = 0.5
    n_ranks: int = 1
    backend: str = "serial"
    comm: str = "queue"
    comm_timeout: float | None = None
    kernels: str | None = None
    precision: str = "f64"

    def __post_init__(self) -> None:
        if self.kernels is None:
            object.__setattr__(
                self, "kernels", os.environ.get("REPRO_KERNELS") or "ref"
            )
        if self.kind not in SOLVER_KINDS:
            raise ValueError(f"solver kind must be one of {SOLVER_KINDS}")
        if self.n_fused < 0:
            raise ValueError("n_fused must be non-negative")
        if self.flux not in ("rusanov", "godunov"):
            raise ValueError("flux must be 'rusanov' or 'godunov'")
        if not 0.0 < self.cfl <= 1.0:
            raise ValueError("cfl must lie in (0, 1]")
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        if self.n_ranks > 1 and self.kind == "gts":
            raise ValueError("distributed execution requires a clustered solver (lts/legacy-lts)")
        if self.backend not in SOLVER_BACKENDS:
            raise ValueError(f"solver backend must be one of {SOLVER_BACKENDS}")
        if self.backend == "process" and self.n_ranks < 2:
            raise ValueError("the process backend requires n_ranks >= 2 (pass --ranks)")
        if self.comm not in SOLVER_COMMS:
            raise ValueError(f"solver comm must be one of {SOLVER_COMMS}")
        if self.comm != "queue" and self.backend != "process":
            raise ValueError(
                f"comm={self.comm!r} requires backend='process' (shared-memory "
                "rings only exist between rank worker processes)"
            )
        if self.comm_timeout is not None:
            object.__setattr__(self, "comm_timeout", float(self.comm_timeout))
            if self.comm_timeout <= 0:
                raise ValueError("comm_timeout must be positive (seconds)")
        if self.kernels not in SOLVER_KERNELS:
            raise ValueError(f"solver kernels must be one of {SOLVER_KERNELS}")
        if self.precision not in SOLVER_PRECISIONS:
            raise ValueError(f"solver precision must be one of {SOLVER_PRECISIONS}")


@dataclass(frozen=True)
class PreprocessingSpec:
    """Optional pipeline postprocessing: weighted partitioning + reordering."""

    reorder: bool = False
    n_partitions: int = 1

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("need at least one partition")

    @property
    def active(self) -> bool:
        return self.reorder or self.n_partitions > 1


@dataclass(frozen=True)
class RunSpec:
    """Run duration: either ``n_cycles`` macro cycles or a target time.

    ``checkpoint_every = 0`` explicitly disables cadence checkpointing (it
    normalises to ``None``), so a CLI override of ``--checkpoint-every 0``
    can switch a spec's cadence off.
    """

    n_cycles: int | None = 4
    t_end: float | None = None
    checkpoint_every: int | None = None

    def __post_init__(self) -> None:
        if (self.n_cycles is None) == (self.t_end is None):
            raise ValueError("specify exactly one of n_cycles and t_end")
        if self.n_cycles is not None and self.n_cycles < 1:
            raise ValueError("n_cycles must be positive")
        if self.t_end is not None and self.t_end <= 0:
            raise ValueError("t_end must be positive")
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 0:
                raise ValueError("checkpoint_every must be non-negative")
            if self.checkpoint_every == 0:
                object.__setattr__(self, "checkpoint_every", None)


@dataclass(frozen=True)
class OutputSpec:
    """Observability knobs of a run.

    ``telemetry`` turns on the phase timers and the metrics registry (the
    run summary gains a ``telemetry`` block); ``trace`` additionally records
    per-region events for the Chrome-trace export and implies ``telemetry``.
    ``events`` names a JSONL run-ledger path (one flushed record per macro
    cycle plus a provenance header); the per-rank recv-wait column needs the
    phase timers, so it implies ``telemetry`` too.  ``progress`` turns on
    the live stderr heartbeat (cycle counter, updates/s, ETA) and needs no
    telemetry.  All default off, so unconfigured runs keep the no-op path.
    """

    telemetry: bool = False
    trace: bool = False
    events: str | None = None
    progress: bool = False

    def __post_init__(self) -> None:
        if (self.trace or self.events) and not self.telemetry:
            object.__setattr__(self, "telemetry", True)
        if self.events is not None:
            object.__setattr__(self, "events", str(self.events))

    @property
    def active(self) -> bool:
        return self.telemetry or self.trace


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, validated description of one runnable scenario."""

    name: str
    description: str
    domain: DomainSpec
    mesh: MeshSpec
    velocity_model: VelocityModelSpec
    material: MaterialSpec = MaterialSpec()
    order: int = 4
    source: SourceSpec | None = None
    receivers: tuple[tuple[str, tuple[float, float, float]], ...] = ()
    initial_condition: InitialConditionSpec | None = None
    clustering: ClusteringSpec = ClusteringSpec()
    solver: SolverSpec = SolverSpec()
    preprocessing: PreprocessingSpec = PreprocessingSpec()
    run: RunSpec = RunSpec()
    output: OutputSpec = OutputSpec()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.order < 2:
            raise ValueError("order must be >= 2")
        object.__setattr__(
            self,
            "receivers",
            tuple((str(name), _floats(loc)) for name, loc in self.receivers),
        )
        for name, loc in self.receivers:
            if len(loc) != 3:
                raise ValueError(f"receiver {name!r} location must be a 3-vector")
        if self.source is None and self.initial_condition is None:
            raise ValueError("scenario needs a source or an initial condition")
        if self.source is not None and self.source.fused:
            if len(self.source.fused) != self.solver.n_fused:
                raise ValueError(
                    f"fused source block has {len(self.source.fused)} slot(s) "
                    f"but solver.n_fused is {self.solver.n_fused}"
                )

    # -- convenience accessors -----------------------------------------
    @property
    def receiver_locations(self) -> dict:
        import numpy as np

        return {name: np.asarray(loc, dtype=np.float64) for name, loc in self.receivers}

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-native nested-dict form (tuples become lists)."""
        return json.loads(self.to_json())

    def to_json(self, indent: int | None = None) -> str:
        data = asdict(self)
        source = data.get("source")
        if source is not None and not source.get("fused"):
            # scalar specs serialised before fused ensembles carry no
            # 'fused' key; omit the empty block so old and new scalar
            # serialisations stay identical (golden fixtures, ledgers)
            source.pop("fused", None)
        return json.dumps(data, indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(data)
        data["domain"] = DomainSpec(**data["domain"])
        data["mesh"] = MeshSpec(**data["mesh"])
        data["velocity_model"] = VelocityModelSpec(**data["velocity_model"])
        data["material"] = MaterialSpec(**data["material"])
        if data.get("source") is not None:
            data["source"] = SourceSpec(**data["source"])
        if data.get("initial_condition") is not None:
            data["initial_condition"] = InitialConditionSpec(**data["initial_condition"])
        data["receivers"] = tuple((name, tuple(loc)) for name, loc in data.get("receivers", ()))
        data["clustering"] = ClusteringSpec(**data["clustering"])
        data["solver"] = SolverSpec(**data["solver"])
        data["preprocessing"] = PreprocessingSpec(**data.get("preprocessing", {}))
        data["run"] = RunSpec(**data["run"])
        # absent in specs serialised before the observability subsystem
        data["output"] = OutputSpec(**data.get("output", {}))
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- derived specs -------------------------------------------------
    def with_overrides(
        self,
        *,
        order: int | None = None,
        n_clusters: int | None = None,
        lam: float | None | str = "keep",
        solver: str | None = None,
        n_fused: int | None = None,
        flux: str | None = None,
        n_ranks: int | None = None,
        backend: str | None = None,
        comm: str | None = None,
        comm_timeout: float | None | str = "keep",
        kernels: str | None = None,
        precision: str | None = None,
        n_cycles: int | None = None,
        t_end: float | None = None,
        checkpoint_every: int | None | str = "keep",
        n_partitions: int | None = None,
        reorder: bool | None = None,
        seed: int | None = None,
        telemetry: bool | None = None,
        trace: bool | None = None,
        events: str | None = None,
        progress: bool | None = None,
    ) -> "ScenarioSpec":
        """A copy of this spec with common knobs changed (CLI flags)."""
        spec = self
        if order is not None:
            spec = replace(spec, order=order)
        clustering_updates = {}
        if n_clusters is not None:
            clustering_updates["n_clusters"] = n_clusters
        if lam != "keep":
            clustering_updates["lam"] = lam
        if clustering_updates:
            spec = replace(spec, clustering=replace(spec.clustering, **clustering_updates))
        solver_updates = {}
        if solver is not None:
            solver_updates["kind"] = solver
        if n_fused is not None:
            solver_updates["n_fused"] = n_fused
        if flux is not None:
            solver_updates["flux"] = flux
        if n_ranks is not None:
            solver_updates["n_ranks"] = n_ranks
        if backend is not None:
            solver_updates["backend"] = backend
        if comm is not None:
            solver_updates["comm"] = comm
        if comm_timeout != "keep":
            solver_updates["comm_timeout"] = comm_timeout
        if kernels is not None:
            solver_updates["kernels"] = kernels
        if precision is not None:
            solver_updates["precision"] = precision
        if solver_updates:
            spec = replace(spec, solver=replace(spec.solver, **solver_updates))
        run_updates = {}
        if n_cycles is not None:
            run_updates["n_cycles"] = n_cycles
            run_updates["t_end"] = None
        if t_end is not None:
            run_updates["t_end"] = t_end
            run_updates["n_cycles"] = None
        if checkpoint_every != "keep":
            run_updates["checkpoint_every"] = checkpoint_every
        if run_updates:
            spec = replace(spec, run=replace(spec.run, **run_updates))
        pre_updates = {}
        if n_partitions is not None:
            pre_updates["n_partitions"] = n_partitions
        if reorder is not None:
            pre_updates["reorder"] = reorder
        if pre_updates:
            spec = replace(spec, preprocessing=replace(spec.preprocessing, **pre_updates))
        if seed is not None:
            spec = replace(spec, mesh=replace(spec.mesh, seed=seed))
        output_updates = {}
        if telemetry is not None:
            output_updates["telemetry"] = telemetry
        if trace is not None:
            output_updates["trace"] = trace
        if events is not None:
            output_updates["events"] = events
        if progress is not None:
            output_updates["progress"] = progress
        if output_updates:
            spec = replace(spec, output=replace(spec.output, **output_updates))
        return spec

    def smoke(self) -> "ScenarioSpec":
        """A coarsened, two-cycle variant for smoke tests and CI."""
        mesh = self.mesh
        if mesh.mode == "characteristic":
            mesh = replace(mesh, characteristic_length=1.5 * mesh.characteristic_length)
        else:
            mesh = replace(mesh, max_frequency=0.75 * mesh.max_frequency)
        clustering = replace(self.clustering, increment=max(self.clustering.increment, 0.05))
        return replace(
            self,
            order=min(self.order, 3),
            mesh=mesh,
            clustering=clustering,
            run=RunSpec(n_cycles=2, t_end=None, checkpoint_every=None),
        )

"""The scenario engine: declarative specs, a named registry, run
orchestration with checkpoint/restart, output writers and a CLI.

Typical use::

    from repro.scenarios import get_scenario, ScenarioRunner

    spec = get_scenario("loh3", order=3, n_clusters=3)
    runner = ScenarioRunner(spec)
    summary = runner.run()

or from the command line: ``python -m repro run loh3 --order 3``.
"""

from .outputs import (
    write_fused_slot_seismograms,
    write_outputs,
    write_run_summary,
    write_seismograms,
)
from .registry import (
    describe_scenario,
    get_scenario,
    register,
    scenario_names,
)
from .runner import (
    ScenarioRunner,
    ScenarioSetup,
    build_setup,
    make_runner,
    measure_update_cost,
    runner_class_for,
)
from .spec import (
    ClusteringSpec,
    DomainSpec,
    FusedSourceSpec,
    InitialConditionSpec,
    MaterialSpec,
    MeshSpec,
    PreprocessingSpec,
    RefinementSpec,
    RunSpec,
    ScenarioSpec,
    SolverSpec,
    SourceSpec,
    TimeFunctionSpec,
    VelocityModelSpec,
)

__all__ = [
    "ScenarioSpec",
    "DomainSpec",
    "MeshSpec",
    "RefinementSpec",
    "VelocityModelSpec",
    "MaterialSpec",
    "TimeFunctionSpec",
    "FusedSourceSpec",
    "SourceSpec",
    "InitialConditionSpec",
    "ClusteringSpec",
    "SolverSpec",
    "PreprocessingSpec",
    "RunSpec",
    "register",
    "get_scenario",
    "scenario_names",
    "describe_scenario",
    "build_setup",
    "ScenarioSetup",
    "ScenarioRunner",
    "make_runner",
    "runner_class_for",
    "measure_update_cost",
    "write_seismograms",
    "write_fused_slot_seismograms",
    "write_run_summary",
    "write_outputs",
]

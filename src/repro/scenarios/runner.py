"""Scenario orchestration: spec -> mesh -> solver -> cycle loop.

:func:`build_setup` materialises a :class:`~repro.scenarios.spec.ScenarioSpec`
into the executable objects (mesh, material table, discretization, source,
initial condition).  :class:`ScenarioRunner` then drives the run the way the
paper's pipeline does (Fig. 8): optional weighted partitioning + reordering
through :class:`~repro.preprocessing.pipeline.PreprocessingPipeline`, solver
construction (GTS or clustered LTS), and a macro-cycle loop with wall-clock
and element-update accounting.

Checkpoint/restart serialises the complete dynamic state of a run -- DOFs,
simulation time, per-cluster ``step_index``, the three LTS time buffers and
the receiver recordings -- at macro-cycle boundaries (where no prediction is
pending), so a resumed run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass

import numpy as np

from ..core.clustering import Clustering, derive_clustering, optimize_lambda
from ..core.gts_solver import GlobalTimeSteppingSolver
from ..core.legacy_lts import communication_volumes
from ..core.lts_solver import ClusteredLtsSolver
from ..equations.material import MaterialTable
from ..kernels.discretization import Discretization
from ..mesh.generation import layered_box_mesh
from ..mesh.refinement import elements_per_wavelength_rule
from ..mesh.tet_mesh import TetMesh
from ..observability import (
    Heartbeat,
    RunLedger,
    TelemetryConfig,
    merge_snapshots,
    provenance_block,
    write_chrome_trace,
)
from ..preprocessing.velocity_model import LaHabraBasinModel, Layer, LayeredVelocityModel, loh3_model
from ..source.receivers import ReceiverSet
from .spec import ScenarioSpec

__all__ = [
    "ScenarioSetup",
    "ScenarioRunner",
    "build_setup",
    "preprocess_setup",
    "make_runner",
    "runner_class_for",
    "measure_update_cost",
    "CHECKPOINT_FORMAT_VERSION",
]

CHECKPOINT_FORMAT_VERSION = 1

#: top-level region names that make up the stepping phase breakdown of the
#: ``telemetry`` summary block (preprocessing/checkpoint regions run outside
#: the timed cycle loop and are reported separately)
PHASE_REGIONS = (
    "predict",
    "predict.boundary",
    "predict.interior",
    "send",
    "correct",
    "update",
)


def peak_memory() -> dict:
    """Peak resident-set size (and tracemalloc peak, when tracing) in MiB.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalised here so the
    summary block is platform-independent.  ``tracemalloc`` only reports when
    the caller started it (e.g. via ``REPRO_TRACEMALLOC=1``) -- tracing
    slows allocation-heavy code down far too much to be on by default.
    """
    import resource
    import sys
    import tracemalloc

    scale = 1.0 if sys.platform == "darwin" else 1024.0
    block = {
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * scale
        / (1024.0**2)
    }
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if children > 0:  # worker processes of the process backend
        block["peak_rss_children_mb"] = children * scale / (1024.0**2)
    if tracemalloc.is_tracing():
        block["tracemalloc_peak_mb"] = tracemalloc.get_traced_memory()[1] / (1024.0**2)
    return block


# ---------------------------------------------------------------------------
# spec -> executable objects
# ---------------------------------------------------------------------------


def build_velocity_model(spec: ScenarioSpec):
    """Construct the velocity model named by the spec."""
    vm = spec.velocity_model
    if vm.kind == "loh3":
        return loh3_model()
    if vm.kind == "la_habra_basin":
        x0, x1, y0, y1, _, _ = spec.domain.extent
        return LaHabraBasinModel(extent=(x0, x1, y0, y1), **vm.params)
    if vm.kind == "homogeneous":
        params = dict(vm.params)
        return LayeredVelocityModel(
            [
                Layer(
                    z_top=1e9,
                    z_bottom=-1e9,
                    rho=params["rho"],
                    vp=params["vp"],
                    vs=params["vs"],
                    qp=params.get("qp", np.inf),
                    qs=params.get("qs", np.inf),
                )
            ]
        )
    if vm.kind == "layered":
        return LayeredVelocityModel([Layer(**layer) for layer in vm.params["layers"]])
    raise ValueError(f"unknown velocity model kind {vm.kind!r}")


def _edge_rules(spec: ScenarioSpec, model):
    """The vertical edge-length rule ``h(z)`` and the horizontal edge length."""
    mesh = spec.mesh
    if mesh.mode == "characteristic":
        base = mesh.characteristic_length
        refinements = sorted(mesh.refinements, key=lambda r: -r.z_above)

        def rule(z: float) -> float:
            for refinement in refinements:
                if z > refinement.z_above:
                    return base / refinement.divide_by
            return base

        return rule, base * mesh.horizontal_factor
    rule = elements_per_wavelength_rule(
        model.min_shear_velocity, mesh.max_frequency, mesh.elements_per_wavelength, spec.order
    )
    z_top = spec.domain.extent[5]
    return rule, rule(z_top) * mesh.horizontal_factor


def _topography(spec: ScenarioSpec):
    domain = spec.domain
    if domain.topography == "none":
        return None
    x0, x1, y0, y1, _, _ = domain.extent
    amplitude = domain.topography_amplitude

    def topography(x, y):
        return amplitude * np.sin(2 * np.pi * (x - x0) / (x1 - x0)) * np.cos(
            2 * np.pi * (y - y0) / (y1 - y0)
        )

    return topography


def _initial_condition(spec: ScenarioSpec, materials: MaterialTable):
    ic = spec.initial_condition
    if ic is None:
        return None
    params = ic.params
    if ic.kind == "gaussian_pulse":
        x0, x1, y0, y1, z0, z1 = spec.domain.extent
        center = np.asarray(
            params.get("center", (0.5 * (x0 + x1), 0.5 * (y0 + y1), 0.5 * (z0 + z1))),
            dtype=np.float64,
        )
        width = float(params.get("width", 0.1 * (x1 - x0)))
        amplitude = float(params.get("amplitude", 1.0))
        component = int(params.get("component", 8))

        def gaussian(points):
            out = np.zeros((len(points), 9))
            r2 = np.sum((points - center) ** 2, axis=1)
            out[:, component] = amplitude * np.exp(-r2 / (2.0 * width**2))
            return out

        return gaussian
    if ic.kind == "plane_wave":
        # exact elastic plane P wave travelling in +x; the closed form lives
        # in repro.verification.analytic (one source of truth for the
        # initial condition AND the accuracy comparisons against it)
        from ..verification.analytic import plane_wave_from_params

        solution = plane_wave_from_params(params, materials)
        return lambda points: solution(points, 0.0)
    raise ValueError(f"unknown initial condition kind {ic.kind!r}")


@dataclass
class ScenarioSetup:
    """Executable objects materialised from a :class:`ScenarioSpec`."""

    spec: ScenarioSpec
    velocity_model: object
    mesh: TetMesh
    materials: MaterialTable
    disc: Discretization
    time_steps: np.ndarray
    source: object | None
    receiver_locations: dict
    initial_condition: object | None

    def clustering(
        self, n_clusters: int | None = None, lam: float | None | str = "spec"
    ) -> Clustering:
        """Clustering per the spec's policy (or explicit overrides)."""
        policy = self.spec.clustering
        n_clusters = policy.n_clusters if n_clusters is None else n_clusters
        lam = policy.lam if lam == "spec" else lam
        if lam is None:
            return optimize_lambda(
                self.time_steps, n_clusters, self.mesh.neighbors, policy.increment
            )
        return derive_clustering(self.time_steps, n_clusters, lam, self.mesh.neighbors)


def _build_discretization(
    spec: ScenarioSpec,
    mesh: TetMesh,
    materials: MaterialTable,
    *,
    cache=None,
    layout: str = "original",
):
    """Discretization per the spec's material/solver options (shared between
    the plain build and the reordered preprocessing path).

    With a :class:`~repro.preprocessing.cache.PreprocessingCache`, the
    expensive assembled operator arrays are loaded from (or stored to) the
    cache's ``operators`` stage; ``layout`` names the element order of
    ``mesh``/``materials`` so original-order and reordered entries never
    collide.
    """
    n_mechanisms = (
        spec.material.n_mechanisms
        if (spec.material.anelastic and materials.is_attenuating())
        else 0
    )
    band = spec.material.frequency_band or (
        spec.mesh.max_frequency / 20.0,
        2.0 * spec.mesh.max_frequency,
    )
    kwargs = dict(
        order=spec.order,
        n_mechanisms=n_mechanisms,
        frequency_band=band,
        flux=spec.solver.flux,
        cfl=spec.solver.cfl,
        precision=spec.solver.precision,
    )
    if cache is not None:
        return cache.discretization(spec, mesh, materials, kwargs, layout=layout)
    return Discretization(mesh, materials, **kwargs)


def build_setup(spec: ScenarioSpec, *, cache=None) -> ScenarioSetup:
    """Materialise a spec: velocity model, mesh, materials, discretization,
    source, receivers and initial condition (no partitioning/reordering).

    With ``cache`` set, the mesh, material table and assembled operators are
    loaded from the content-addressed preprocessing cache when present (and
    stored after building otherwise); the returned setup is bit-identical
    either way.
    """
    model = build_velocity_model(spec)
    rule, horizontal = _edge_rules(spec, model)

    def _build_mesh() -> TetMesh:
        return layered_box_mesh(
            extent=spec.domain.extent,
            edge_length_of_depth=rule,
            horizontal_edge_length=horizontal,
            jitter=spec.mesh.jitter,
            seed=spec.mesh.seed,
            topography=_topography(spec),
            free_surface_top=spec.domain.free_surface,
        )

    mesh = cache.mesh(spec, _build_mesh) if cache is not None else _build_mesh()

    def _build_materials() -> MaterialTable:
        materials = MaterialTable.from_velocity_model(model, mesh.centroids)
        if not spec.material.anelastic:
            materials = MaterialTable(
                rho=materials.rho, vp=materials.vp, vs=materials.vs
            )
        return materials

    materials = (
        cache.materials(spec, _build_materials) if cache is not None else _build_materials()
    )
    disc = _build_discretization(spec, mesh, materials, cache=cache)
    return ScenarioSetup(
        spec=spec,
        velocity_model=model,
        mesh=mesh,
        materials=materials,
        disc=disc,
        time_steps=disc.time_steps,
        source=spec.source.build() if spec.source is not None else None,
        receiver_locations=spec.receiver_locations,
        initial_condition=_initial_condition(spec, materials),
    )


def preprocess_setup(spec: ScenarioSpec, setup: ScenarioSetup, *, cache=None,
                     telemetry=None):
    """Route a setup's mesh + materials through the weighted-partitioning /
    reordering stages (Fig. 8, steps 3-5); returns the
    :class:`~repro.preprocessing.pipeline.PreprocessedModel`.

    With ``cache`` set, the clustering stage and the partition/reordering
    stage (stored as the permutation plus the post-permutation clustering,
    partitions and time steps -- the cheap :meth:`assemble` replay applies
    the permutation) are loaded from the preprocessing cache when present.
    """
    from ..preprocessing.pipeline import PreprocessedModel, PreprocessingPipeline

    pipeline = PreprocessingPipeline(
        velocity_model=setup.velocity_model,
        extent=spec.domain.extent,
        max_frequency=spec.mesh.max_frequency,
        elements_per_wavelength=spec.mesh.elements_per_wavelength,
        order=spec.order,
        n_mechanisms=spec.material.n_mechanisms,
        n_clusters=spec.clustering.n_clusters,
        n_partitions=spec.preprocessing.n_partitions,
        cfl=spec.solver.cfl,
        jitter=spec.mesh.jitter,
        optimize_lambda_increment=spec.clustering.increment,
        lam=spec.clustering.lam,
        seed=spec.mesh.seed,
        telemetry=telemetry,
    )
    mesh, materials = setup.mesh, setup.materials
    if cache is None:
        return pipeline.preprocess(mesh, materials)
    stored = cache.partition(spec)
    if stored is not None:
        permutation = stored["permutation"]
        return PreprocessedModel(
            mesh=mesh.permuted(permutation),
            materials=materials.subset(permutation),
            time_steps=stored["time_steps"],
            clustering=stored["clustering"],
            partitions=stored["partitions"],
            order=spec.order,
            n_mechanisms=spec.material.n_mechanisms,
            frequency_band=(spec.mesh.max_frequency / 50.0, spec.mesh.max_frequency),
        )
    time_steps = pipeline.derive_time_steps(mesh, materials)
    clustering = cache.clustering(
        spec, lambda: pipeline.derive_clustering(mesh, time_steps)
    )
    partition = pipeline.derive_partition(mesh, clustering)
    permutation = pipeline.derive_permutation(mesh, clustering, partition.partitions)
    model = pipeline.assemble(
        mesh, materials, time_steps, clustering, partition.partitions, permutation
    )
    cache.store_partition(
        spec,
        permutation=permutation,
        partitions=model.partitions,
        time_steps=model.time_steps,
        clustering=model.clustering,
    )
    return model


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


class ScenarioRunner:
    """Drives one scenario end-to-end with accounting and checkpointing."""

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        setup: ScenarioSetup | None = None,
        clustering: Clustering | None = None,
        cache=None,
    ):
        self.spec = spec
        #: optional content-addressed preprocessing cache
        #: (:class:`~repro.preprocessing.cache.PreprocessingCache`); every
        #: expensive preprocessing stage -- mesh, materials, operator
        #: assembly, clustering, partition/reordering -- is loaded from it
        #: when present, with bit-identical results either way
        self.cache = cache
        self.telemetry_config = TelemetryConfig(
            enabled=spec.output.telemetry, trace=spec.output.trace
        )
        #: the runner's own telemetry lane: the single-rank solver shares it
        #: directly; distributed runs keep it as the "driver" lane (engine
        #: construction, checkpoint I/O) beside the per-rank lanes
        self.telemetry = self.telemetry_config.build(rank=0)
        if os.environ.get("REPRO_TRACEMALLOC"):
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
        self.setup = setup if setup is not None else build_setup(spec, cache=cache)
        self.preprocessed = None
        if spec.preprocessing.active:
            if clustering is not None:
                raise ValueError(
                    "an explicit clustering cannot be combined with "
                    "preprocessing reordering: the permutation would invalidate "
                    "its element indices (let the pipeline derive the clustering)"
                )
            clustering = self._apply_preprocessing()
        if clustering is None:
            clustering = (
                self.cache.clustering(spec, self.setup.clustering)
                if self.cache is not None
                else self.setup.clustering()
            )
        self.clustering = clustering

        disc = self.setup.disc
        self.receivers = (
            ReceiverSet(disc, self.setup.receiver_locations)
            if self.setup.receiver_locations
            else None
        )
        sources = [self.setup.source] if self.setup.source is not None else []
        self.solver = self._build_solver(disc, sources)
        if self.setup.initial_condition is not None:
            self.solver.set_initial_condition(self.setup.initial_condition)
        self.cycles_done = 0
        self.wall_s = 0.0

    def _build_solver(self, disc: Discretization, sources: list):
        """Construct the execution engine (overridden by the distributed runner)."""
        spec = self.spec
        if spec.solver.kind == "gts":
            return GlobalTimeSteppingSolver(
                disc,
                dt=float(self.clustering.cluster_time_steps[0]),
                sources=sources,
                receivers=self.receivers,
                n_fused=spec.solver.n_fused,
                kernels=spec.solver.kernels,
                telemetry=self.telemetry,
            )
        # "lts" and "legacy-lts" share the clustered driver
        return ClusteredLtsSolver(
            disc,
            self.clustering,
            sources=sources,
            receivers=self.receivers,
            n_fused=spec.solver.n_fused,
            kernels=spec.solver.kernels,
            telemetry=self.telemetry,
        )

    # -- preprocessing --------------------------------------------------
    def _apply_preprocessing(self) -> Clustering:
        """Route mesh + materials through the weighted-partitioning /
        reordering stages of the preprocessing pipeline (Fig. 8, steps 3-5)
        and rebuild the discretization in solver element order."""
        spec = self.spec
        model = preprocess_setup(
            spec, self.setup, cache=self.cache, telemetry=self.telemetry
        )
        disc = _build_discretization(
            spec, model.mesh, model.materials, cache=self.cache, layout="reordered"
        )
        self.preprocessed = model
        self.setup = ScenarioSetup(
            spec=spec,
            velocity_model=self.setup.velocity_model,
            mesh=model.mesh,
            materials=model.materials,
            disc=disc,
            time_steps=disc.time_steps,
            source=self.setup.source,
            receiver_locations=self.setup.receiver_locations,
            initial_condition=self.setup.initial_condition,
        )
        return model.clustering

    # -- cycle loop -----------------------------------------------------
    @property
    def macro_dt(self) -> float:
        """Duration of one macro cycle (one step of the largest cluster)."""
        return float(self.clustering.cluster_time_steps[-1])

    @property
    def total_cycles(self) -> int:
        run = self.spec.run
        if run.n_cycles is not None:
            return run.n_cycles
        return int(np.ceil(run.t_end / self.macro_dt - 1e-12))

    def step_cycle(self) -> None:
        """Advance the simulation by one macro cycle."""
        if isinstance(self.solver, GlobalTimeSteppingSolver):
            # one macro cycle = 2^(N_c - 1) GTS steps at the cluster-0 step
            for _ in range(2 ** (self.clustering.n_clusters - 1)):
                self.solver.step()
        else:  # clustered LTS and the distributed engine step whole cycles
            self.solver.step_cycle()
        self.cycles_done += 1

    def run(
        self,
        *,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
    ) -> dict:
        """Run the remaining macro cycles; returns the run summary.

        With ``checkpoint_path`` set, a checkpoint is written every
        ``checkpoint_every`` cycles (default: the spec's cadence; 0 disables
        the cadence) and after the final cycle -- unless the cadence already
        wrote it, so the same state is never serialised twice back-to-back.
        """
        if checkpoint_every is None:
            checkpoint_every = self.spec.run.checkpoint_every
        output = self.spec.output
        ledger = heartbeat = None
        if output.events:
            ledger = RunLedger(output.events)
            ledger.header(
                self.spec,
                total_cycles=self.total_cycles,
                macro_dt=self.macro_dt,
                resumed_at_cycle=self.cycles_done,
            )
        if output.progress:
            heartbeat = Heartbeat(self.spec.name, self.total_cycles)
        self._ledger_prev_updates = int(self.solver.n_element_updates)
        self._ledger_prev_recv_wait: dict = {}
        last_saved_at = None
        try:
            while self.cycles_done < self.total_cycles:
                # checkpoint and ledger I/O stay outside the timed region so
                # wall_s and element_updates_per_s are comparable to
                # uninstrumented runs
                start = _time.perf_counter()
                self.step_cycle()
                cycle_wall_s = _time.perf_counter() - start
                self.wall_s += cycle_wall_s
                if ledger is not None or heartbeat is not None:
                    record = self._cycle_record(cycle_wall_s)
                    if ledger is not None:
                        ledger.cycle(record)
                    if heartbeat is not None:
                        heartbeat.emit(record)
                if (
                    checkpoint_path is not None
                    and checkpoint_every
                    and self.cycles_done % checkpoint_every == 0
                ):
                    self.save_checkpoint(checkpoint_path)
                    last_saved_at = self.cycles_done
            if checkpoint_path is not None and last_saved_at != self.cycles_done:
                self.save_checkpoint(checkpoint_path)
            if ledger is not None:
                ledger.final(
                    {
                        "cycles": int(self.cycles_done),
                        "t": float(self.solver.time),
                        "wall_s": float(self.wall_s),
                        "element_updates": int(self.solver.n_element_updates),
                    }
                )
        finally:
            if heartbeat is not None:
                heartbeat.close()
            if ledger is not None:
                ledger.close()
        return self.summary()

    # -- run ledger ------------------------------------------------------
    def _recv_wait_by_lane(self) -> dict:
        """Cumulative exposed receive-wait seconds per telemetry lane."""
        if not self.telemetry_config.enabled:
            return {}
        waits = {}
        for snap in self._telemetry_snapshots():
            total = sum(
                entry["total_s"]
                for name, entry in snap.get("regions", {}).items()
                if name.endswith("/recv_wait") or name == "recv_wait"
            )
            if total > 0.0:
                waits[snap.get("lane")] = total
        return waits

    def _cycle_record(self, cycle_wall_s: float) -> dict:
        """One ledger/heartbeat record of the cycle that just finished.

        The distributed runner extends this with communication traffic and
        worker memory; the recv-wait column is per cycle (deltas of the
        cumulative region totals), like every other rate here.
        """
        updates = int(self.solver.n_element_updates)
        cycle_updates = updates - self._ledger_prev_updates
        self._ledger_prev_updates = updates
        record = {
            "cycle": int(self.cycles_done),
            "t": float(self.solver.time),
            "wall_s": float(self.wall_s),
            "cycle_wall_s": float(cycle_wall_s),
            "element_updates": updates,
            "cycle_element_updates": cycle_updates,
            "updates_per_s": (
                cycle_updates / cycle_wall_s if cycle_wall_s > 0 else 0.0
            ),
            "peak_rss_mb": peak_memory()["peak_rss_mb"],
        }
        waits = self._recv_wait_by_lane()
        if waits:
            record["recv_wait_s"] = {
                lane: total - self._ledger_prev_recv_wait.get(lane, 0.0)
                for lane, total in waits.items()
            }
            self._ledger_prev_recv_wait = waits
        return record

    def summary(self) -> dict:
        """Key figures of the run (JSON-ready)."""
        spec = self.spec
        clustering = self.clustering
        updates = int(self.solver.n_element_updates)
        out = {
            "scenario": spec.name,
            "solver": spec.solver.kind,
            "kernels": spec.solver.kernels,
            "precision": spec.solver.precision,
            "order": spec.order,
            "n_fused": spec.solver.n_fused,
            "n_elements": int(self.setup.mesh.n_elements),
            "n_clusters": int(clustering.n_clusters),
            "lambda": float(clustering.lam),
            "cluster_counts": clustering.counts.tolist(),
            "theoretical_speedup": float(clustering.speedup()),
            "cycles": int(self.cycles_done),
            "macro_dt": self.macro_dt,
            "t_end": float(self.solver.time),
            "element_updates": updates,
            "wall_s": float(self.wall_s),
            "element_updates_per_s": updates / self.wall_s if self.wall_s > 0 else 0.0,
            "n_receivers": len(self.receivers) if self.receivers is not None else 0,
        }
        if spec.source is not None and spec.source.fused:
            # label the fused ensemble: slot f of every (..., F) output below
            # belongs to this per-slot source
            out["fused_sources"] = spec.source.slot_labels()
        if self.preprocessed is not None:
            out["n_partitions"] = int(self.preprocessed.partitions.max() + 1)
        # self-describing summaries: the sweep-manifest key set (git SHA,
        # repro version, spec content hash), same block as the ledger header
        out["provenance"] = provenance_block(spec)
        if spec.output.events:
            out["events"] = spec.output.events
        out["memory"] = peak_memory()
        if self.telemetry_config.enabled:
            out["telemetry"] = self.telemetry_block()
        accuracy = self.accuracy()
        if accuracy is not None:
            out["accuracy"] = accuracy
        if spec.solver.kind == "legacy-lts":
            volumes = communication_volumes(spec.order, spec.material.n_mechanisms)
            out["legacy_comm"] = {
                "derivative_scheme_anelastic": volumes.derivative_scheme_anelastic,
                "buffer_scheme": volumes.buffer_scheme,
                "reduction_vs_derivatives": volumes.reduction_vs_derivatives(),
                "reduction_face_local": volumes.reduction_face_local(),
            }
        return out

    # -- telemetry ------------------------------------------------------
    def _telemetry_snapshots(self) -> list[dict]:
        """Per-lane cumulative snapshots (the distributed runner overrides
        this with the engine's per-rank lanes plus its driver lane)."""
        return [self.telemetry.snapshot()]

    def _trace_lanes(self) -> list[tuple]:
        """``(lane_name, tid, events)`` triples for the Chrome-trace export."""
        return [(self.telemetry.lane, self.telemetry.rank, self.telemetry.drain_events())]

    def _concurrent_lanes(self) -> int:
        """How many lanes record wall time *concurrently*.

        Phase totals are normalised by this so their sum is comparable to
        ``wall_s``: process-backend ranks overlap in time (each lane spans
        the whole wall clock), while a single solver -- or the serial
        engine's interleaved ranks -- accounts every second exactly once.
        """
        return 1

    def telemetry_block(self) -> dict:
        """The ``telemetry`` block of the run summary: phase breakdown,
        merged regions/counters and derived rates."""
        from ..kernels.flops import count_flops_per_element_update

        snapshots = self._telemetry_snapshots()
        merged = merge_snapshots(snapshots)
        concurrency = max(1, self._concurrent_lanes())
        phases = {
            name: entry["total_s"] / concurrency
            for name, entry in merged["regions"].items()
            if name in PHASE_REGIONS
        }
        phase_sum = float(sum(phases.values()))
        recv_wait = sum(
            entry["total_s"]
            for name, entry in merged["regions"].items()
            if name.endswith("/recv_wait")
        )
        updates = int(self.solver.n_element_updates)
        per_stage = count_flops_per_element_update(self.setup.disc)
        flops = per_stage.total
        block = {
            "phases": phases,
            "phase_sum_s": phase_sum,
            "wall_s": float(self.wall_s),
            "coverage": phase_sum / self.wall_s if self.wall_s > 0 else 0.0,
            "recv_wait_s": float(recv_wait),
            "regions": merged["regions"],
            "counters": merged["counters"],
            "histograms": merged["histograms"],
            "lanes": [
                {
                    "lane": snap.get("lane"),
                    "regions": snap.get("regions", {}),
                    "counters": snap.get("counters", {}),
                }
                for snap in snapshots
            ],
            "derived": {
                "element_updates_per_s": (
                    updates / self.wall_s if self.wall_s > 0 else 0.0
                ),
                "flops_per_element_update": int(flops),
                "flops_per_stage": {
                    "time_kernel": int(per_stage.time_kernel),
                    "volume_kernel": int(per_stage.volume_kernel),
                    "surface_local": int(per_stage.surface_local),
                    "surface_neighbor": int(per_stage.surface_neighbor),
                },
                "gflop": updates * flops / 1e9,
                "gflop_per_s": (
                    updates * flops / 1e9 / self.wall_s if self.wall_s > 0 else 0.0
                ),
            },
        }
        return block

    def write_trace(self, path):
        """Export the collected trace events as Chrome-trace JSON.

        Draining is destructive: the trace is written once, after the run.
        """
        return write_chrome_trace(path, self._trace_lanes())

    def accuracy(self) -> dict | None:
        """Error norms against the scenario's analytic solution, if any.

        Scenarios with a closed-form reference (the elastic plane wave)
        report per-field L2/Linf errors of the current state; everything
        else returns ``None`` and the summary carries no accuracy block.
        Works unchanged for distributed runs: the engine's ``dofs`` property
        gathers the per-rank state.
        """
        from ..verification.analytic import analytic_solution_for
        from ..verification.norms import state_error_norms

        solution = analytic_solution_for(self.setup)
        if solution is None:
            return None
        return state_error_norms(
            self.setup.disc, self.solver.dofs, float(self.solver.time), solution
        )

    # -- checkpoint / restart -------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Serialise the complete dynamic state at a macro-cycle boundary."""
        solver = self.solver
        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "solver_kind": self.spec.solver.kind,
            "cycles_done": self.cycles_done,
            "time": solver.time,
            "wall_s": self.wall_s,
            "n_element_updates": int(solver.n_element_updates),
            "receiver_names": (
                [r.name for r in self.receivers.receivers] if self.receivers else []
            ),
        }
        meta["clustering"] = {
            "lam": self.clustering.lam,
            "dt_min": self.clustering.dt_min,
        }
        arrays = {
            "dofs": solver.dofs,
            "cluster_ids": self.clustering.cluster_ids,
            "cluster_time_steps": self.clustering.cluster_time_steps,
        }
        arrays.update(self._solver_state_arrays())
        if self.receivers is not None:
            for i, receiver in enumerate(self.receivers.receivers):
                times, samples = receiver.seismogram()
                arrays[f"rec{i}_times"] = times
                arrays[f"rec{i}_samples"] = samples
        # write through an explicit handle: savez would otherwise append
        # '.npz' to suffix-less paths, breaking `repro resume <given path>`;
        # write-then-rename keeps the previous checkpoint intact if the run
        # is killed mid-write
        tmp_path = f"{path}.tmp"
        with self.telemetry.region("checkpoint.write"):
            with open(tmp_path, "wb") as handle:
                np.savez_compressed(handle, meta=json.dumps(meta), **arrays)
            os.replace(tmp_path, path)
        if self.telemetry.enabled:
            self.telemetry.inc("checkpoint/writes")
            self.telemetry.inc("checkpoint/bytes", os.path.getsize(path))

    def _solver_state_arrays(self) -> dict:
        """The solver-kind-specific dynamic arrays of the checkpoint.

        Overridden by the distributed runner, which gathers the per-rank
        state into the same global-array layout -- single-rank and
        distributed checkpoints stay interchangeable.
        """
        solver = self.solver
        if not isinstance(solver, ClusteredLtsSolver):
            return {}
        return {
            "step_index": np.array(
                [cluster.step_index for cluster in solver.clusters], dtype=np.int64
            ),
            "b1": solver.buffers.b1,
            "b2": solver.buffers.b2,
            "b3": solver.buffers.b3,
        }

    @classmethod
    def resume(
        cls,
        path,
        *,
        backend: str | None = None,
        comm: str | None = None,
        kernels: str | None = None,
        telemetry: bool | None = None,
        trace: bool | None = None,
        events: str | None = None,
        progress: bool | None = None,
    ) -> "ScenarioRunner":
        """Rebuild a runner from a checkpoint; continuation is bit-identical
        to the uninterrupted run.

        The runner class follows the checkpointed spec: a spec with
        ``solver.n_ranks > 1`` resumes as a distributed run (and vice versa),
        regardless of which class this is called on.  ``backend`` overrides
        the checkpointed execution backend (``"serial"``/``"process"``) and
        ``kernels`` the kernel-execution backend -- but only between
        backends that are bit-identical to each other, i.e. the f64
        ``"ref"``/``"opt"`` pair.  The checkpointed *precision* is part of
        the serialised state and cannot be overridden; at f32 the kernel
        backends are only tolerance-equal (the optimized backend's planned
        contractions reassociate), and the ``"fast"`` backend reassociates
        at every precision, so those overrides are rejected to keep the
        continuation guarantee honest.  A checkpoint written under
        ``"fast"`` resumes under ``"fast"`` without any override.
        """
        with np.load(path) as data:
            meta = json.loads(str(data["meta"]))
            if meta["format_version"] != CHECKPOINT_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint format {meta['format_version']}"
                )
            spec = ScenarioSpec.from_dict(meta["spec"])
            if backend is not None:
                # a shm-transport checkpoint resumed onto the serial backend
                # drops back to the (backend-agnostic) queue default rather
                # than tripping the shm-requires-process validation
                if backend != "process" and comm is None and spec.solver.comm != "queue":
                    spec = spec.with_overrides(backend=backend, comm="queue")
                else:
                    spec = spec.with_overrides(backend=backend)
            if comm is not None:
                # the halo transport is bit-identical either way, so it can
                # change freely across a resume (like the backend)
                spec = spec.with_overrides(comm=comm)
            if kernels is not None and kernels != spec.solver.kernels:
                if spec.solver.precision == "f32":
                    raise ValueError(
                        "the kernel backend cannot change when resuming an "
                        "f32 checkpoint: f32 kernel backends are not "
                        "bit-identical, so the continuation would diverge "
                        "from the uninterrupted run"
                    )
                if "fast" in (kernels, spec.solver.kernels):
                    raise ValueError(
                        "the kernel backend cannot change between 'fast' and "
                        "a bit-exact backend on resume: 'fast' reassociates "
                        "contractions, so the continuation would diverge from "
                        "the uninterrupted run (resume a 'fast' checkpoint "
                        "without --kernels to continue in fast mode)"
                    )
                spec = spec.with_overrides(kernels=kernels)
            if any(v is not None for v in (telemetry, trace, events, progress)):
                # observability is orthogonal to the numerical state, so the
                # resumed segment can be instrumented (or not) freely; a
                # resumed --events ledger appends a new segment header
                spec = spec.with_overrides(
                    telemetry=telemetry,
                    trace=trace,
                    events=events,
                    progress=progress,
                )
            runner_cls = runner_class_for(spec)
            restored = Clustering(
                cluster_ids=data["cluster_ids"].copy(),
                cluster_time_steps=data["cluster_time_steps"].copy(),
                lam=float(meta["clustering"]["lam"]),
                dt_min=float(meta["clustering"]["dt_min"]),
            )
            # preprocessing-active specs must re-derive the clustering through
            # the pipeline (the constructor rejects an explicit one); plain
            # specs restore the exact checkpointed clustering so runners built
            # with a non-spec clustering also resume bit-identically
            if spec.preprocessing.active:
                runner = runner_cls(spec)
            else:
                runner = runner_cls(spec, clustering=restored)
            runner._load_state(data, meta)
        return runner

    def _load_state(self, data, meta: dict) -> None:
        solver = self.solver
        dofs = data["dofs"]
        if dofs.shape != solver.dofs.shape:
            raise ValueError(
                f"checkpoint DOF shape {dofs.shape} does not match the rebuilt "
                f"scenario {solver.dofs.shape}; was the spec edited?"
            )
        if not (
            np.array_equal(self.clustering.cluster_ids, data["cluster_ids"])
            and np.array_equal(
                self.clustering.cluster_time_steps, data["cluster_time_steps"]
            )
        ):
            raise ValueError(
                "checkpoint clustering does not match the rebuilt scenario; "
                "was the spec edited?"
            )
        self._restore_solver_state(data, meta)
        self.cycles_done = int(meta["cycles_done"])
        self.wall_s = float(meta.get("wall_s", 0.0))
        if self.receivers is not None:
            names = [r.name for r in self.receivers.receivers]
            if names != meta["receiver_names"]:
                raise ValueError("checkpoint receivers do not match the scenario")
            for i, receiver in enumerate(self.receivers.receivers):
                times = data[f"rec{i}_times"]
                samples = data[f"rec{i}_samples"]
                receiver.times = [float(t) for t in times]
                receiver.samples = [np.asarray(row) for row in samples]
        self._after_restore()

    def _restore_solver_state(self, data, meta: dict) -> None:
        """Restore the solver-kind-specific dynamic state (see
        :meth:`_solver_state_arrays`)."""
        solver = self.solver
        solver.dofs = data["dofs"].copy()
        solver.time = float(meta["time"])
        solver.n_element_updates = int(meta["n_element_updates"])
        if isinstance(solver, ClusteredLtsSolver):
            for cluster, step_index in zip(solver.clusters, data["step_index"]):
                cluster.step_index = int(step_index)
            solver.buffers.b1 = data["b1"].copy()
            solver.buffers.b2 = data["b2"].copy()
            solver.buffers.b3 = data["b3"].copy()

    def _after_restore(self) -> None:
        """Hook for subclasses that derive state from the restored arrays."""


def runner_class_for(spec: ScenarioSpec) -> type:
    """The runner class a spec asks for (distributed when ``n_ranks > 1``)."""
    if spec.solver.n_ranks > 1:
        from ..distributed.runner import DistributedRunner

        return DistributedRunner
    return ScenarioRunner


def make_runner(spec: ScenarioSpec, **kwargs) -> "ScenarioRunner":
    """Build the right runner for a spec (single-rank or distributed)."""
    return runner_class_for(spec)(spec, **kwargs)


def measure_update_cost(setup: ScenarioSetup, n_cycles: int = 10) -> float:
    """Wall-clock seconds per element update of a single-cluster GTS run.

    The probe behind per-kernel cost comparisons (e.g. the Fig. 9 "cost of
    anelasticity"): every element advances at the mesh's dt_min for
    ``n_cycles`` steps, so the ratio of two probes isolates the kernel cost.
    """
    spec = setup.spec.with_overrides(solver="gts", n_clusters=1, lam=1.0, n_cycles=n_cycles)
    runner = ScenarioRunner(spec, setup=setup, clustering=setup.clustering(1, lam=1.0))
    summary = runner.run()
    return summary["wall_s"] / summary["element_updates"]

"""Named scenario registry.

Scenario factories are plain functions returning a :class:`ScenarioSpec`;
the :func:`register` decorator makes them addressable by name from the CLI
(``python -m repro run <name>``), from checkpoints and from user code.  Every
factory accepts keyword overrides so a registered scenario doubles as a
parameterised family (e.g. ``get_scenario("bimaterial_slab", contrast=3.0)``).

The LOH.3 and La Habra built-ins are the declarative form of the setups that
used to be hand-wired in :mod:`repro.workloads`; those modules now delegate
here.  Four further canned scenarios grow the workload diversity: a
homogeneous halfspace, a bimaterial slab with tunable contrast, a
graded-velocity basin and a plane-wave convergence case.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import (
    ClusteringSpec,
    DomainSpec,
    InitialConditionSpec,
    MaterialSpec,
    MeshSpec,
    PreprocessingSpec,
    RefinementSpec,
    RunSpec,
    ScenarioSpec,
    SolverSpec,
    SourceSpec,
    TimeFunctionSpec,
    VelocityModelSpec,
)

__all__ = [
    "register",
    "get_scenario",
    "scenario_names",
    "describe_scenario",
    "loh3_scenario",
    "la_habra_scenario",
    "homogeneous_halfspace_scenario",
    "bimaterial_slab_scenario",
    "graded_basin_scenario",
    "plane_wave_scenario",
]


@dataclass(frozen=True)
class _Entry:
    factory: object
    summary: str


_REGISTRY: dict[str, _Entry] = {}


def register(name: str, summary: str | None = None):
    """Register a scenario factory under ``name``.

    ``summary`` defaults to the first line of the factory's docstring.
    """

    def decorator(factory):
        text = summary or (factory.__doc__ or name).strip().splitlines()[0]
        _REGISTRY[name] = _Entry(factory=factory, summary=text)
        return factory

    return decorator


def scenario_names() -> list[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def get_scenario(name: str, **overrides) -> ScenarioSpec:
    """Build the named scenario's spec, passing ``overrides`` to its factory."""
    try:
        entry = _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
    return entry.factory(**overrides)


def describe_scenario(name: str) -> str:
    """The registered summary plus the factory's full docstring."""
    entry = _REGISTRY[name] if name in _REGISTRY else None
    if entry is None:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r} (known: {known})")
    doc = (entry.factory.__doc__ or "").strip()
    return f"{name}: {entry.summary}\n\n{doc}" if doc else f"{name}: {entry.summary}"


# ---------------------------------------------------------------------------
# built-in scenarios
# ---------------------------------------------------------------------------


@register("loh3")
def loh3_scenario(
    extent_m: float = 8000.0,
    characteristic_length: float = 2000.0,
    order: int = 4,
    n_mechanisms: int = 3,
    jitter: float = 0.2,
    flux: str = "rusanov",
    anelastic: bool = True,
    source_frequency: float = 1.0,
    seed: int = 0,
    n_clusters: int = 3,
    lam: float | None = None,
    n_fused: int = 0,
    solver: str = "lts",
    n_cycles: int = 4,
) -> ScenarioSpec:
    """Scaled LOH.3 layer-over-halfspace benchmark (Sec. VII-B).

    The published material contrast (and therefore the 1.732x refinement of
    the 1000 m layer), the bimodal time-step distribution, the strike-slip
    double couple below the layer and the free-surface receivers are kept;
    the *extent_m* / *characteristic_length* parameters scale the domain to
    laptop size.
    """
    source_depth = min(2000.0, 0.5 * extent_m)
    offset = min(0.3 * extent_m, 3000.0)
    return ScenarioSpec(
        name="loh3",
        description="Scaled LOH.3 layer over halfspace (strike-slip double couple)",
        domain=DomainSpec(extent=(0.0, extent_m, 0.0, extent_m, -extent_m, 0.0)),
        mesh=MeshSpec(
            mode="characteristic",
            characteristic_length=characteristic_length,
            refinements=(RefinementSpec(z_above=-1000.0, divide_by=1.732),),
            jitter=jitter,
            seed=seed,
        ),
        velocity_model=VelocityModelSpec(kind="loh3"),
        material=MaterialSpec(
            anelastic=anelastic,
            n_mechanisms=n_mechanisms,
            frequency_band=(0.1 * source_frequency, 10.0 * source_frequency),
        ),
        order=order,
        source=SourceSpec(
            kind="moment_tensor",
            location=(0.5 * extent_m, 0.5 * extent_m, -source_depth),
            moment_tensor=((0.0, 1e16, 0.0), (1e16, 0.0, 0.0), (0.0, 0.0, 0.0)),
            time_function=TimeFunctionSpec(
                kind="ricker", params={"f0": source_frequency, "t0": 1.2 / source_frequency}
            ),
        ),
        receivers=(
            ("receiver_9", (0.5 * extent_m + offset, 0.5 * extent_m + 0.66 * offset, -1.0)),
            ("epicentre", (0.5 * extent_m, 0.5 * extent_m, -1.0)),
        ),
        clustering=ClusteringSpec(n_clusters=n_clusters, lam=lam),
        solver=SolverSpec(kind=solver, n_fused=n_fused, flux=flux),
        run=RunSpec(n_cycles=n_cycles),
    )


@register("la_habra")
def la_habra_scenario(
    extent_m: float = 12000.0,
    depth_m: float = 8000.0,
    max_frequency: float = 0.5,
    order: int = 4,
    n_mechanisms: int = 3,
    with_topography: bool = True,
    min_vs: float = 500.0,
    seed: int = 0,
    n_clusters: int = 5,
    lam: float | None = None,
    n_fused: int = 0,
    solver: str = "lts",
    n_cycles: int = 2,
) -> ScenarioSpec:
    """Scaled 2014 Mw 5.1 La Habra basin setting (Sec. VII-C).

    A synthetic CVM stand-in (shallow low-velocity basin, velocity gradient,
    fast halfspace) with optional sinusoidal topography, meshed with the
    elements-per-wavelength rule, driven by an oblique-thrust-like double
    couple at mid depth and recorded at three station analogues.
    """
    return ScenarioSpec(
        name="la_habra",
        description="Scaled La-Habra-like basin (synthetic CVM + topography)",
        domain=DomainSpec(
            extent=(0.0, extent_m, 0.0, extent_m, -depth_m, 0.0),
            topography="sinusoidal" if with_topography else "none",
            topography_amplitude=300.0 if with_topography else 0.0,
        ),
        mesh=MeshSpec(
            mode="wavelength",
            max_frequency=max_frequency,
            elements_per_wavelength=2.0,
            horizontal_factor=2.0,
            jitter=0.15,
            seed=seed,
        ),
        velocity_model=VelocityModelSpec(
            kind="la_habra_basin",
            params={"min_vs": min_vs, "basin_max_depth": 0.3 * depth_m},
        ),
        material=MaterialSpec(
            anelastic=True,
            n_mechanisms=n_mechanisms,
            frequency_band=(max_frequency / 20.0, 2.0 * max_frequency),
        ),
        order=order,
        source=SourceSpec(
            kind="moment_tensor",
            location=(0.5 * extent_m, 0.5 * extent_m, -0.6 * depth_m),
            moment_tensor=((0.0, 0.0, 7.1e16), (0.0, 0.0, 0.0), (7.1e16, 0.0, 0.0)),
            time_function=TimeFunctionSpec(
                kind="gaussian_derivative",
                params={"sigma": 0.4 / max_frequency, "t0": 1.0 / max_frequency},
            ),
        ),
        receivers=(
            ("CE_14026", (0.62 * extent_m, 0.55 * extent_m, -1.0)),
            ("CI_Q0035", (0.35 * extent_m, 0.70 * extent_m, -1.0)),
            ("CI_Q0057", (0.75 * extent_m, 0.30 * extent_m, -1.0)),
        ),
        clustering=ClusteringSpec(n_clusters=n_clusters, lam=lam),
        solver=SolverSpec(kind=solver, n_fused=n_fused),
        run=RunSpec(n_cycles=n_cycles),
    )


@register("homogeneous_halfspace")
def homogeneous_halfspace_scenario(
    extent_m: float = 4000.0,
    characteristic_length: float = 1000.0,
    order: int = 3,
    rho: float = 2700.0,
    vp: float = 6000.0,
    vs: float = 3464.0,
    source_frequency: float = 2.0,
    seed: int = 0,
    n_clusters: int = 2,
    lam: float | None = None,
    n_fused: int = 0,
    solver: str = "lts",
    n_cycles: int = 4,
) -> ScenarioSpec:
    """Homogeneous elastic halfspace with an explosive point source.

    The simplest full-physics scenario: uniform material, free surface on
    top, an isotropic (explosion) moment tensor at mid depth and receivers at
    the epicentre and at an offset.  With vertex jitter the CFL time steps
    still spread, so small LTS configurations remain exercised.
    """
    return ScenarioSpec(
        name="homogeneous_halfspace",
        description="Homogeneous elastic halfspace, explosive point source",
        domain=DomainSpec(extent=(0.0, extent_m, 0.0, extent_m, -extent_m, 0.0)),
        mesh=MeshSpec(
            mode="characteristic",
            characteristic_length=characteristic_length,
            jitter=0.2,
            seed=seed,
        ),
        velocity_model=VelocityModelSpec(
            kind="homogeneous", params={"rho": rho, "vp": vp, "vs": vs}
        ),
        material=MaterialSpec(anelastic=False, n_mechanisms=0),
        order=order,
        source=SourceSpec(
            kind="moment_tensor",
            location=(0.5 * extent_m, 0.5 * extent_m, -0.5 * extent_m),
            moment_tensor=((1e15, 0.0, 0.0), (0.0, 1e15, 0.0), (0.0, 0.0, 1e15)),
            time_function=TimeFunctionSpec(
                kind="ricker", params={"f0": source_frequency, "t0": 1.2 / source_frequency}
            ),
        ),
        receivers=(
            ("epicentre", (0.5 * extent_m, 0.5 * extent_m, -1.0)),
            ("offset", (0.75 * extent_m, 0.6 * extent_m, -1.0)),
        ),
        clustering=ClusteringSpec(n_clusters=n_clusters, lam=lam),
        solver=SolverSpec(kind=solver, n_fused=n_fused),
        run=RunSpec(n_cycles=n_cycles),
    )


@register("bimaterial_slab")
def bimaterial_slab_scenario(
    extent_m: float = 6000.0,
    characteristic_length: float = 1500.0,
    slab_thickness_m: float = 1500.0,
    contrast: float = 2.0,
    order: int = 3,
    source_frequency: float = 1.5,
    seed: int = 0,
    n_clusters: int = 3,
    lam: float | None = None,
    n_fused: int = 0,
    solver: str = "lts",
    n_cycles: int = 3,
) -> ScenarioSpec:
    """Bimaterial slab: a slow surface slab over a fast halfspace.

    The velocity *contrast* is tunable; the slab is refined by exactly that
    factor, so the per-element time steps are bimodal like LOH.3's but with a
    configurable spread -- the knob to dial LTS speedups up or down.
    """
    if contrast <= 1.0:
        raise ValueError("contrast must exceed 1")
    vs_fast, vp_fast, rho_fast = 3200.0, 5500.0, 2700.0
    vs_slow = vs_fast / contrast
    vp_slow = vp_fast / contrast
    return ScenarioSpec(
        name="bimaterial_slab",
        description=f"Slow slab over fast halfspace (contrast {contrast:g}x)",
        domain=DomainSpec(extent=(0.0, extent_m, 0.0, extent_m, -extent_m, 0.0)),
        mesh=MeshSpec(
            mode="characteristic",
            characteristic_length=characteristic_length,
            refinements=(RefinementSpec(z_above=-slab_thickness_m, divide_by=contrast),),
            jitter=0.15,
            seed=seed,
        ),
        velocity_model=VelocityModelSpec(
            kind="layered",
            params={
                "layers": [
                    {
                        "z_top": 0.0,
                        "z_bottom": -slab_thickness_m,
                        "rho": 2400.0,
                        "vp": vp_slow,
                        "vs": vs_slow,
                    },
                    {
                        "z_top": -slab_thickness_m,
                        "z_bottom": -1e9,
                        "rho": rho_fast,
                        "vp": vp_fast,
                        "vs": vs_fast,
                    },
                ]
            },
        ),
        material=MaterialSpec(anelastic=False, n_mechanisms=0),
        order=order,
        source=SourceSpec(
            kind="moment_tensor",
            location=(0.5 * extent_m, 0.5 * extent_m, -0.5 * extent_m),
            moment_tensor=((0.0, 1e15, 0.0), (1e15, 0.0, 0.0), (0.0, 0.0, 0.0)),
            time_function=TimeFunctionSpec(
                kind="ricker", params={"f0": source_frequency, "t0": 1.2 / source_frequency}
            ),
        ),
        receivers=(("surface", (0.6 * extent_m, 0.6 * extent_m, -1.0)),),
        clustering=ClusteringSpec(n_clusters=n_clusters, lam=lam),
        solver=SolverSpec(kind=solver, n_fused=n_fused),
        run=RunSpec(n_cycles=n_cycles),
    )


@register("graded_basin")
def graded_basin_scenario(
    extent_m: float = 9000.0,
    depth_m: float = 6000.0,
    max_frequency: float = 0.4,
    min_vs: float = 600.0,
    order: int = 3,
    seed: int = 0,
    n_clusters: int = 4,
    lam: float | None = None,
    n_fused: int = 0,
    solver: str = "lts",
    n_cycles: int = 2,
) -> ScenarioSpec:
    """Graded-velocity sedimentary basin without topography.

    The synthetic basin model's continuous velocity gradient produces a broad
    (rather than bimodal) time-step distribution -- the regime where the
    lambda grid search of Sec. V-A pays off most.
    """
    return ScenarioSpec(
        name="graded_basin",
        description="Graded-velocity basin, thrust source, wavelength-ruled mesh",
        domain=DomainSpec(extent=(0.0, extent_m, 0.0, extent_m, -depth_m, 0.0)),
        mesh=MeshSpec(
            mode="wavelength",
            max_frequency=max_frequency,
            elements_per_wavelength=1.5,
            horizontal_factor=2.0,
            jitter=0.15,
            seed=seed,
        ),
        velocity_model=VelocityModelSpec(
            kind="la_habra_basin",
            params={"min_vs": min_vs, "basin_max_depth": 0.4 * depth_m, "basin_vs": 1100.0},
        ),
        material=MaterialSpec(
            anelastic=True,
            n_mechanisms=2,
            frequency_band=(max_frequency / 20.0, 2.0 * max_frequency),
        ),
        order=order,
        source=SourceSpec(
            kind="moment_tensor",
            location=(0.5 * extent_m, 0.5 * extent_m, -0.5 * depth_m),
            moment_tensor=((0.0, 0.0, 5e15), (0.0, 0.0, 0.0), (5e15, 0.0, 0.0)),
            time_function=TimeFunctionSpec(
                kind="gaussian_derivative",
                params={"sigma": 0.4 / max_frequency, "t0": 1.0 / max_frequency},
            ),
        ),
        receivers=(
            ("basin_centre", (0.5 * extent_m, 0.5 * extent_m, -1.0)),
            ("basin_edge", (0.15 * extent_m, 0.15 * extent_m, -1.0)),
        ),
        clustering=ClusteringSpec(n_clusters=n_clusters, lam=lam),
        solver=SolverSpec(kind=solver, n_fused=n_fused),
        run=RunSpec(n_cycles=n_cycles),
    )


@register("plane_wave")
def plane_wave_scenario(
    extent_m: float = 2000.0,
    characteristic_length: float = 500.0,
    order: int = 3,
    wavelength: float = 1000.0,
    amplitude: float = 1e-3,
    seed: int = 0,
    n_fused: int = 0,
    solver: str = "lts",
    n_cycles: int = 4,
) -> ScenarioSpec:
    """Plane-wave convergence case: an exact elastic P wave along x.

    A homogeneous cube is initialised with a sinusoidal plane P wave (exact
    velocity/stress relation), no source.  Sweeping *order* and
    *characteristic_length* via overrides turns this into the classic
    convergence study (the Fig. 2 analogue), and a single-cluster run is the
    canonical LTS == GTS bit-identity check.  All boundaries are absorbing
    (no free surface): the travelling wave carries non-zero normal stress,
    so a traction-free top would reflect it and break the comparison
    against the free-space analytic solution.
    """
    return ScenarioSpec(
        name="plane_wave",
        description="Homogeneous cube with an exact plane-P-wave initial condition",
        domain=DomainSpec(
            extent=(0.0, extent_m, 0.0, extent_m, -extent_m, 0.0), free_surface=False
        ),
        mesh=MeshSpec(
            mode="characteristic",
            characteristic_length=characteristic_length,
            jitter=0.1,
            seed=seed,
        ),
        velocity_model=VelocityModelSpec(
            kind="homogeneous", params={"rho": 2700.0, "vp": 6000.0, "vs": 3464.0}
        ),
        material=MaterialSpec(anelastic=False, n_mechanisms=0),
        order=order,
        initial_condition=InitialConditionSpec(
            kind="plane_wave", params={"amplitude": amplitude, "wavelength": wavelength}
        ),
        receivers=(("centre", (0.5 * extent_m, 0.5 * extent_m, -0.5 * extent_m)),),
        clustering=ClusteringSpec(n_clusters=1, lam=1.0),
        solver=SolverSpec(kind=solver, n_fused=n_fused),
        run=RunSpec(n_cycles=n_cycles),
    )

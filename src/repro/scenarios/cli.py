"""Command line interface of the scenario engine.

::

    python -m repro list
    python -m repro describe loh3
    python -m repro run loh3 --clusters 3 --order 3
    python -m repro run bimaterial_slab --set contrast=3.0 --output-dir out/
    python -m repro run la_habra --smoke
    python -m repro run loh3 --smoke --ranks 2
    python -m repro run loh3 --smoke --ranks 2 --backend process
    python -m repro run loh3 --smoke --ranks 2 --backend process --comm shm
    python -m repro run loh3 --checkpoint run.ckpt.npz --checkpoint-every 1
    python -m repro run loh3 --metrics --events out/run.jsonl --progress
    python -m repro resume run.ckpt.npz
    python -m repro resume run.ckpt.npz --backend process --checkpoint-every 2
    python -m repro sweep loh3 --smoke --out sweeps/loh3 \
        --axis 'source.location=[[0,0,-1000],[500,0,-1000],[0,500,-1000],[250,250,-500]]'
    python -m repro sweep loh3 --smoke --out sweeps/lam --axis clustering.lam=0.7,0.8,0.9
    python -m repro sweep --spec sweep.json --out sweeps/x --workers 4
    python -m repro sweep --spec sweep.json --out sweeps/x --resume
    python -m repro sweep loh3 --smoke --out sweeps/fused --fuse \
        --axis 'source.time_function.params.t0=[0.3,0.4,0.5,0.6]'
    python -m repro report out/ gts_out/
    python -m repro report ref_out/ opt_out/ fast_out/ --json
    python -m repro report sweeps/loh3/manifest.jsonl
    python -m repro report sweeps/loh3/members/
    python -m repro verify --kernels fast
    python -m repro verify loh3 --kernels fast --ranks 2 --backend process
    python -m repro verify plane_wave --kernels fast
    python -m repro verify --update-golden

(also installed as the ``repro`` console script).
"""

from __future__ import annotations

import argparse
import json
import sys

from .outputs import write_outputs
from .registry import describe_scenario, get_scenario, scenario_names
from .runner import ScenarioRunner, make_runner
from .spec import ScenarioSpec

__all__ = ["main", "build_parser"]


def _parse_value(text: str):
    """Best-effort literal for ``--set key=value`` overrides."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_axis(text: str) -> dict:
    """Parse one ``--axis PATH=VALUES`` argument into a SweepAxis dict.

    ``VALUES`` is either a JSON array (required for structured values like
    source locations) or a comma-separated list of scalars run through the
    ``--set`` literal parser.
    """
    if "=" not in text:
        raise SystemExit(f"--axis expects PATH=VALUES, got {text!r}")
    path, _, values_text = text.partition("=")
    values_text = values_text.strip()
    if values_text.startswith("["):
        try:
            values = json.loads(values_text)
        except json.JSONDecodeError as error:
            raise SystemExit(f"--axis {path}: invalid JSON values: {error}")
        if not isinstance(values, list):
            raise SystemExit(f"--axis {path}: JSON values must be an array")
    else:
        values = [_parse_value(item.strip()) for item in values_text.split(",") if item.strip()]
    return {"path": path.strip(), "values": values}


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        overrides[key.strip()] = _parse_value(value.strip())
    return overrides


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run clustered-LTS ADER-DG scenarios from declarative specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios")

    describe = sub.add_parser("describe", help="show a scenario's documentation and spec")
    describe.add_argument("name", help="registered scenario name")

    run = sub.add_parser("run", help="run a scenario end-to-end")
    run.add_argument("name", nargs="?", help="registered scenario name")
    run.add_argument("--spec", help="path to a ScenarioSpec JSON file (instead of a name)")
    run.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                     help="factory override (repeatable), e.g. --set contrast=3.0")
    run.add_argument("--clusters", type=int, help="number of LTS clusters")
    run.add_argument("--lambda", dest="lam", type=float,
                     help="fixed lambda in (0.5, 1]; omit for the grid-search optimum")
    run.add_argument("--order", type=int, help="order of convergence")
    run.add_argument("--fused", type=int, help="number of fused simulations")
    run.add_argument("--solver", choices=("gts", "lts", "legacy-lts"), help="solver kind")
    run.add_argument("--cycles", type=int, help="number of macro cycles to run")
    run.add_argument("--t-end", type=float, help="target simulated time [s]")
    run.add_argument("--seed", type=int, help="mesh jitter seed")
    run.add_argument("--ranks", type=int,
                     help="number of ranks of the distributed engine (default 1)")
    run.add_argument("--backend", choices=("serial", "process"),
                     help="distributed execution backend: 'serial' steps the ranks "
                          "in-process, 'process' runs one worker process per rank "
                          "with overlapped halo exchange (default serial)")
    run.add_argument("--comm", choices=("queue", "shm"),
                     help="process-backend halo transport: 'queue' pickles "
                          "payload batches through multiprocessing queues, "
                          "'shm' writes payloads in place into shared-memory "
                          "ring buffers (queues carry only tokens; "
                          "bit-identical results, default queue)")
    run.add_argument("--comm-timeout", type=float, metavar="S",
                     help="abort a blocked halo receive after S seconds "
                          "(default 120, or REPRO_HALO_TIMEOUT_S)")
    run.add_argument("--kernels", choices=("ref", "opt", "fast"),
                     help="kernel-execution backend: 'ref' runs the plain reference "
                          "kernels, 'opt' runs the batched/planned kernels with "
                          "reusable scratch workspaces (bit-identical at f64), "
                          "'fast' additionally reassociates contractions through "
                          "BLAS (tolerance-equal; see 'repro verify')")
    run.add_argument("--precision", choices=("f64", "f32"),
                     help="state/operator precision of the run (default f64)")
    run.add_argument("--partitions", type=int, help="partition count (enables reordering)")
    run.add_argument("--reorder", action="store_true",
                     help="reorder elements by (partition, cluster, role)")
    run.add_argument("--smoke", action="store_true",
                     help="coarsened two-cycle variant (CI smoke test)")
    run.add_argument("--checkpoint", metavar="PATH", help="checkpoint file to write")
    run.add_argument("--checkpoint-every", type=int, metavar="N",
                     help="checkpoint cadence in macro cycles")
    run.add_argument("--metrics", action="store_true",
                     help="enable phase timers and the metrics registry: the "
                          "run summary gains a 'telemetry' block (phase "
                          "breakdown, counters, updates/s and GFLOP/s)")
    run.add_argument("--trace", metavar="PATH",
                     help="write a Chrome-trace JSON timeline (one lane per "
                          "rank) to PATH; open in Perfetto or chrome://tracing; "
                          "implies --metrics")
    run.add_argument("--events", metavar="PATH",
                     help="append a JSONL run ledger to PATH: a provenance "
                          "header plus one flushed record per macro cycle "
                          "(sim time, wall, updates/s, per-rank recv-wait, "
                          "comm bytes, peak RSS) -- a killed run leaves a "
                          "readable partial ledger; implies --metrics")
    run.add_argument("--progress", action="store_true",
                     help="live progress heartbeat on stderr "
                          "(cycle counter, updates/s, ETA)")
    run.add_argument("--output-dir", metavar="DIR",
                     help="write seismogram CSVs and run_summary.json here")
    run.add_argument("--quiet", action="store_true", help="suppress the summary printout")

    verify = sub.add_parser(
        "verify",
        help="run the accuracy-verification harness (golden traces + convergence)",
    )
    verify.add_argument("name", nargs="?",
                        help="scenario to verify: a golden scenario (loh3, la_habra) "
                             "or 'plane_wave' for the convergence ladder; "
                             "default: the full suite")
    verify.add_argument("--kernels", choices=("ref", "opt", "fast"), default="ref",
                        help="kernel-execution backend to verify (default ref)")
    verify.add_argument("--precision", choices=("f64", "f32"), default="f64",
                        help="precision to verify (default f64)")
    verify.add_argument("--ranks", type=int, default=1,
                        help="verify a distributed run with this many ranks")
    verify.add_argument("--backend", choices=("serial", "process"), default="serial",
                        help="distributed execution backend for --ranks > 1")
    verify.add_argument("--update-golden", action="store_true",
                        help="regenerate the committed golden fixtures from the "
                             "reference backend at f64 (commit the result; only "
                             "legitimate after a deliberate physics change)")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress the JSON report (exit code still reflects "
                             "pass/fail)")

    sweep = sub.add_parser(
        "sweep",
        help="expand a base scenario over parameter axes and shard the "
             "members over a worker pool with a shared preprocessing cache",
    )
    sweep.add_argument("name", nargs="?", help="registered scenario name (the base spec)")
    sweep.add_argument("--spec", metavar="FILE",
                       help="path to a SweepSpec JSON file (instead of a "
                            "name plus --axis flags)")
    sweep.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                       help="base-spec factory override (repeatable)")
    sweep.add_argument("--smoke", action="store_true",
                       help="coarsen the base spec (see 'run --smoke')")
    sweep.add_argument("--axis", action="append", default=[], metavar="PATH=VALUES",
                       help="swept parameter (repeatable): a dotted spec path "
                            "plus comma-separated scalars or a JSON array, "
                            "e.g. --axis clustering.lam=0.7,0.8 or "
                            "--axis 'source.location=[[0,0,-1000],[500,0,-1000]]'; "
                            "members are the cartesian product of all axes")
    sweep.add_argument("--sweep-name", metavar="NAME",
                       help="sweep name recorded in the manifest "
                            "(default: <base>-sweep)")
    sweep.add_argument("--out", required=True, metavar="DIR",
                       help="sweep output tree: manifest.jsonl, cache/, "
                            "members/<id>/")
    sweep.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker processes (default 2; 0 runs every "
                            "member inline in this process)")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help="shared preprocessing cache directory "
                            "(default: <out>/cache; point several sweeps at "
                            "one directory to share artifacts across sweeps)")
    sweep.add_argument("--fuse", action="store_true",
                       help="collapse members that differ only in fusable "
                            "source axes (time function, moment tensor, "
                            "force vector) into single fused ensemble runs; "
                            "per-member seismograms and summaries are "
                            "demuxed back out of the fused slots, so the "
                            "manifest, resume and 'repro report' stay "
                            "per-member")
    sweep.add_argument("--resume", action="store_true",
                       help="resume from <out>/manifest.jsonl: members "
                            "already done are skipped, in-flight and failed "
                            "ones re-run")
    sweep.add_argument("--retries", type=int, default=1, metavar="N",
                       help="re-queue a crashed/failed member this many "
                            "times before marking it failed (default 1)")
    sweep.add_argument("--no-events", dest="events", action="store_false",
                       help="skip the per-member JSONL run ledgers")
    sweep.add_argument("--json", action="store_true",
                       help="emit the final tally as JSON")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-member progress on stderr")

    resume = sub.add_parser("resume", help="resume a checkpointed run")
    resume.add_argument("checkpoint", help="checkpoint file written by 'run --checkpoint'")
    resume.add_argument("--backend", choices=("serial", "process"),
                        help="override the checkpointed execution backend "
                             "(backends are bit-identical)")
    resume.add_argument("--comm", choices=("queue", "shm"),
                        help="override the checkpointed process-backend halo "
                             "transport (transports are bit-identical)")
    resume.add_argument("--kernels", choices=("ref", "opt", "fast"),
                        help="override the checkpointed kernel-execution backend "
                             "(only between the bit-identical f64 pair ref/opt; "
                             "rejected for f32 checkpoints and for any override "
                             "involving 'fast', whose continuation would diverge "
                             "from the uninterrupted run; the checkpointed "
                             "precision itself cannot change)")
    resume.add_argument("--checkpoint-every", type=int, metavar="N",
                        help="new checkpoint cadence in macro cycles "
                             "(0 disables; default: the checkpointed spec's cadence)")
    resume.add_argument("--metrics", action="store_true",
                        help="enable telemetry for the resumed segment "
                             "(see 'run --metrics')")
    resume.add_argument("--trace", metavar="PATH",
                        help="write a Chrome-trace timeline of the resumed "
                             "segment to PATH; implies --metrics")
    resume.add_argument("--events", metavar="PATH",
                        help="append the resumed segment's ledger records to "
                             "PATH (a new segment header marks the resume); "
                             "implies --metrics")
    resume.add_argument("--progress", action="store_true",
                        help="live progress heartbeat on stderr")
    resume.add_argument("--output-dir", metavar="DIR")
    resume.add_argument("--quiet", action="store_true")

    report = sub.add_parser(
        "report",
        help="derived analytics over finished runs: overlap efficiency, "
             "load imbalance, measured-vs-theoretical LTS speedup, kernel "
             "GFLOP/s, multi-run comparison",
    )
    report.add_argument("runs", nargs="+", metavar="RUN",
                        help="run artefacts to analyse: an --output-dir "
                             "directory, a run_summary.json, an --events "
                             "JSONL ledger, a sweep manifest.jsonl (expands "
                             "to every completed member), or a directory of "
                             "summaries (e.g. a sweep's members/ tree); pass "
                             "several runs (e.g. ref/opt/fast, or an LTS run "
                             "plus a GTS reference of the same scenario) for "
                             "the comparison table")
    report.add_argument("--json", action="store_true",
                        help="emit the full report payload as JSON instead "
                             "of the text rendering")

    return parser


def _cmd_list() -> int:
    from .registry import _REGISTRY  # summaries live next to the factories

    width = max(len(name) for name in scenario_names())
    for name in scenario_names():
        print(f"{name:<{width}}  {_REGISTRY[name].summary}")
    return 0


def _cmd_describe(name: str) -> int:
    print(describe_scenario(name))
    print("\ndefault spec:")
    print(get_scenario(name).to_json(indent=2))
    return 0


def _resolve_spec(args) -> ScenarioSpec:
    if args.spec:
        if args.name:
            raise SystemExit("run takes a scenario name or --spec FILE, not both")
        if args.set:
            raise SystemExit(
                "--set passes factory overrides and has no effect with --spec; "
                "edit the spec file (or use flags like --order) instead"
            )
        with open(args.spec) as handle:
            spec = ScenarioSpec.from_json(handle.read())
    elif args.name:
        spec = get_scenario(args.name, **_parse_overrides(args.set))
    else:
        raise SystemExit("run needs a scenario name or --spec FILE")
    spec = spec.with_overrides(
        order=args.order,
        n_clusters=args.clusters,
        lam=args.lam if args.lam is not None else "keep",
        solver=args.solver,
        n_fused=args.fused,
        n_ranks=args.ranks,
        backend=args.backend,
        comm=args.comm,
        comm_timeout=args.comm_timeout if args.comm_timeout is not None else "keep",
        kernels=args.kernels,
        precision=args.precision,
        n_cycles=args.cycles,
        t_end=args.t_end,
        # explicit None test: --checkpoint-every 0 means "disable cadence
        # checkpointing", which a falsy check would silently coerce to "keep"
        checkpoint_every=args.checkpoint_every if args.checkpoint_every is not None else "keep",
        n_partitions=args.partitions,
        reorder=True if (args.reorder or args.partitions) else None,
        seed=args.seed,
        telemetry=True if (args.metrics or args.trace or args.events) else None,
        trace=True if args.trace else None,
        events=args.events,
        progress=True if args.progress else None,
    )
    if args.smoke:
        spec = spec.smoke()
    return spec


def _finish(
    runner: ScenarioRunner,
    summary: dict,
    output_dir,
    quiet: bool,
    trace_path=None,
) -> int:
    if trace_path:
        runner.write_trace(trace_path)
    if output_dir:
        written = write_outputs(runner, output_dir, summary=summary)
        summary = dict(summary)
        summary["outputs"] = str(written["run_summary"].parent)
    if not quiet:
        print(json.dumps(summary, indent=2))
        memory = summary.get("memory", {})
        rss = memory.get("peak_rss_mb")
        banner = f"[{summary['scenario']}] wall {summary['wall_s']:.2f} s"
        if rss is not None:
            banner += f", peak RSS {rss:.0f} MiB"
            children = memory.get("peak_rss_children_mb")
            if children is not None:
                banner += f" (+{children:.0f} MiB workers)"
        if trace_path:
            banner += f", trace -> {trace_path}"
        print(banner, file=sys.stderr)
    return 0


def _input_error(error) -> int:
    # user-input errors (unknown scenario, invalid spec value, bad factory
    # override, unreadable file) exit cleanly instead of with a traceback
    message = error.args[0] if (isinstance(error, KeyError) and error.args) else error
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _cmd_run(args) -> int:
    # only spec resolution and runner construction are guarded: a failure
    # during the run itself is a solver bug and keeps its traceback
    try:
        spec = _resolve_spec(args)
        runner = make_runner(spec)
    except (KeyError, ValueError, TypeError, OSError) as error:
        return _input_error(error)
    if not args.quiet:
        clustering = runner.clustering
        ranks = f", {spec.solver.n_ranks} ranks" if spec.solver.n_ranks > 1 else ""
        extras = "" if spec.solver.kernels == "ref" else f", kernels {spec.solver.kernels}"
        if spec.solver.precision != "f64":
            extras += f", {spec.solver.precision}"
        print(
            f"[{spec.name}] {runner.setup.mesh.n_elements} elements, "
            f"order {spec.order}, {clustering.n_clusters} clusters "
            f"(lambda {clustering.lam:.2f}, theoretical speedup "
            f"{clustering.speedup():.2f}x), solver {spec.solver.kind}{ranks}{extras}",
            file=sys.stderr,
        )
    summary = runner.run(
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    return _finish(runner, summary, args.output_dir, args.quiet, trace_path=args.trace)


def _cmd_verify(args) -> int:
    from ..verification import GOLDEN_SCENARIOS, record_golden, verify_scenario, verify_suite

    if args.update_golden:
        names = [args.name] if args.name else sorted(GOLDEN_SCENARIOS)
        try:
            for name in names:
                path = record_golden(name)
                if not args.quiet:
                    print(f"rewrote {path}", file=sys.stderr)
        except (KeyError, ValueError, TypeError, OSError) as error:
            return _input_error(error)
        return 0
    options = dict(
        kernels=args.kernels,
        precision=args.precision,
        n_ranks=args.ranks,
        backend=args.backend,
    )
    try:
        if args.name:
            report = verify_scenario(args.name, **options)
            passed = report["passed"]
        else:
            report = verify_suite(**options)
            passed = report["passed"]
    except (KeyError, ValueError, TypeError, OSError) as error:
        return _input_error(error)
    if not args.quiet:
        print(json.dumps(report, indent=2))
    if not passed:
        print("repro verify: FAILED", file=sys.stderr)
    return 0 if passed else 1


def _resolve_sweep(args):
    from ..sweep import SweepAxis, SweepSpec

    if args.spec:
        if args.name or args.axis or args.set or args.smoke:
            raise SystemExit(
                "sweep takes a SweepSpec --spec FILE *or* a scenario name "
                "plus --axis flags, not both"
            )
        with open(args.spec) as handle:
            return SweepSpec.from_json(handle.read())
    if not args.name:
        raise SystemExit("sweep needs a scenario name or --spec FILE")
    if not args.axis:
        raise SystemExit("sweep needs at least one --axis PATH=VALUES")
    base = get_scenario(args.name, **_parse_overrides(args.set))
    if args.smoke:
        base = base.smoke()
    return SweepSpec(
        base=base,
        axes=tuple(SweepAxis(**_parse_axis(axis)) for axis in args.axis),
        name=args.sweep_name or "",
    )


def _cmd_sweep(args) -> int:
    from ..sweep import run_sweep

    try:
        sweep = _resolve_sweep(args)
    except (KeyError, ValueError, TypeError, OSError) as error:
        return _input_error(error)
    log = (lambda message: None) if args.quiet else (
        lambda message: print(f"[{sweep.name}] {message}", file=sys.stderr)
    )
    if not args.quiet:
        axes = ", ".join(f"{a.path} x{len(a.values)}" for a in sweep.axes)
        print(
            f"[{sweep.name}] {sweep.n_members} members ({axes}), "
            f"{args.workers} worker(s) -> {args.out}",
            file=sys.stderr,
        )
    try:
        tally = run_sweep(
            sweep,
            args.out,
            workers=args.workers,
            cache_dir=args.cache_dir,
            resume=args.resume,
            events=args.events,
            retries=args.retries,
            fuse=args.fuse,
            log=log,
        )
    except (ValueError, OSError) as error:
        return _input_error(error)
    if args.json:
        print(json.dumps(tally, indent=2))
    elif not args.quiet:
        fused = (
            f" ({tally['fused_members']} member(s) in "
            f"{tally['fused_groups']} fused group(s))"
            if tally.get("fused_groups") else ""
        )
        print(
            f"[{sweep.name}] {tally['done']} done, {tally['skipped']} skipped, "
            f"{tally['failed']} failed in {tally['wall_s']:.1f} s{fused}; "
            f"manifest -> {tally['manifest']}",
            file=sys.stderr,
        )
    return 0 if tally["failed"] == 0 else 1


def _cmd_resume(args) -> int:
    try:
        runner = ScenarioRunner.resume(
            args.checkpoint,
            backend=args.backend,
            comm=args.comm,
            kernels=args.kernels,
            telemetry=True if (args.metrics or args.trace or args.events) else None,
            trace=True if args.trace else None,
            events=args.events,
            progress=True if args.progress else None,
        )
    except (KeyError, ValueError, TypeError, OSError) as error:
        return _input_error(error)
    if not args.quiet:
        print(
            f"[{runner.spec.name}] resumed at cycle {runner.cycles_done}/"
            f"{runner.total_cycles} (t = {runner.solver.time:.4f} s)",
            file=sys.stderr,
        )
    summary = runner.run(
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    return _finish(runner, summary, args.output_dir, args.quiet, trace_path=args.trace)


def _cmd_report(args) -> int:
    from ..observability import build_report, render_report

    try:
        report = build_report(args.runs)
    except (KeyError, ValueError, TypeError, OSError) as error:
        return _input_error(error)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report), end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        try:
            return _cmd_describe(args.name)
        except KeyError as error:
            return _input_error(error)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "report":
        return _cmd_report(args)
    raise SystemExit(2)


if __name__ == "__main__":
    raise SystemExit(main())

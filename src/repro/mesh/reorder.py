"""Mesh reordering by partition, time cluster and communication role.

The preprocessing pipeline (Sec. VI) reorders the mesh "based on the
elements' partitions, time clusters, and finally by their role with respect
to communication in the distributed memory parallelization".  The reordering
turns the per-cluster loops of the core solver into iterations over
contiguous blocks and greatly simplifies the bookkeeping of the LTS scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReorderResult", "reorder_elements", "cluster_ranges"]


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of a mesh reordering.

    Attributes
    ----------
    permutation:
        ``permutation[new_id] = old_id``.
    inverse:
        ``inverse[old_id] = new_id``.
    """

    permutation: np.ndarray
    inverse: np.ndarray

    def apply_to_element_array(self, values: np.ndarray) -> np.ndarray:
        """Reorder a per-element array from old ordering to new ordering."""
        return np.asarray(values)[self.permutation]

    def remap_element_ids(self, ids: np.ndarray) -> np.ndarray:
        """Translate old element ids to new ones (negative ids pass through)."""
        ids = np.asarray(ids, dtype=np.int64)
        out = ids.copy()
        mask = ids >= 0
        out[mask] = self.inverse[ids[mask]]
        return out


def reorder_elements(
    partitions: np.ndarray,
    clusters: np.ndarray,
    communication_role: np.ndarray | None = None,
) -> ReorderResult:
    """Compute the element permutation (partition, cluster, comm-role, id).

    Parameters
    ----------
    partitions:
        Per-element partition (rank) id.
    clusters:
        Per-element time-cluster id (0-based, cluster 0 has the smallest step).
    communication_role:
        Optional per-element integer where elements that send data to other
        partitions get a higher value so they are grouped at the end of each
        (partition, cluster) block; this lets the solver issue their sends
        first and overlap communication with the interior elements' work.
    """
    partitions = np.asarray(partitions, dtype=np.int64)
    clusters = np.asarray(clusters, dtype=np.int64)
    if partitions.shape != clusters.shape:
        raise ValueError("partitions and clusters must have the same shape")
    if communication_role is None:
        communication_role = np.zeros_like(partitions)
    communication_role = np.asarray(communication_role, dtype=np.int64)

    element_ids = np.arange(len(partitions))
    order = np.lexsort((element_ids, communication_role, clusters, partitions))
    inverse = np.empty_like(order)
    inverse[order] = element_ids
    return ReorderResult(permutation=order, inverse=inverse)


def cluster_ranges(sorted_clusters: np.ndarray, n_clusters: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` index ranges per cluster in a reordered mesh.

    Raises if the cluster array is not sorted (i.e. the mesh was not
    reordered first).
    """
    sorted_clusters = np.asarray(sorted_clusters, dtype=np.int64)
    if np.any(np.diff(sorted_clusters) < 0):
        raise ValueError("clusters must be sorted; reorder the mesh first")
    ranges = []
    for cluster in range(n_clusters):
        start = int(np.searchsorted(sorted_clusters, cluster, side="left"))
        end = int(np.searchsorted(sorted_clusters, cluster, side="right"))
        ranges.append((start, end))
    return ranges

"""Unstructured conforming tetrahedral mesh container.

The mesh is the central spatial data structure of the solver: EDGE operates
on conforming unstructured tetrahedral meshes (Sec. III-A).  The container
stores vertices and element connectivity and computes, on demand and cached,

* face-neighbour connectivity (which element is adjacent across each of the
  four faces, and which local face of the neighbour it is),
* affine element geometry (Jacobians, volumes, face areas/normals, insphere
  radii), and
* boundary tags per element face.

Boundary tags
-------------
Faces without a neighbour carry an integer tag.  The solver interprets

* ``BOUNDARY_FREE_SURFACE`` - traction-free surface (top of the model),
* ``BOUNDARY_ABSORBING``    - first-order outflow/absorbing face,
* ``BOUNDARY_ANALYTIC``     - ghost state supplied by a user callback
  (used by the convergence studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .connectivity import build_face_connectivity
from .geometry import GeometryCache, compute_geometry

__all__ = [
    "TetMesh",
    "BOUNDARY_NONE",
    "BOUNDARY_FREE_SURFACE",
    "BOUNDARY_ABSORBING",
    "BOUNDARY_ANALYTIC",
]

BOUNDARY_NONE = 0
BOUNDARY_FREE_SURFACE = 1
BOUNDARY_ABSORBING = 2
BOUNDARY_ANALYTIC = 3


@dataclass
class TetMesh:
    """A conforming unstructured tetrahedral mesh.

    Parameters
    ----------
    vertices:
        Array of shape ``(n_vertices, 3)`` with vertex coordinates.
    elements:
        Integer array of shape ``(n_elements, 4)`` with vertex ids per
        tetrahedron.  Elements are re-oriented on construction so that all
        signed volumes are positive.
    boundary_tags:
        Optional ``(n_elements, 4)`` integer array of boundary condition tags
        for boundary faces (ignored for interior faces).  Defaults to
        ``BOUNDARY_ABSORBING`` everywhere.
    """

    vertices: np.ndarray
    elements: np.ndarray
    boundary_tags: np.ndarray | None = None
    _connectivity: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False
    )
    _geometry: GeometryCache | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        self.elements = np.asarray(self.elements, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must have shape (n_vertices, 3)")
        if self.elements.ndim != 2 or self.elements.shape[1] != 4:
            raise ValueError("elements must have shape (n_elements, 4)")
        if self.elements.size and self.elements.max() >= len(self.vertices):
            raise ValueError("element refers to a vertex that does not exist")
        self._fix_orientation()
        if self.boundary_tags is None:
            self.boundary_tags = np.full(self.elements.shape, BOUNDARY_ABSORBING, dtype=np.int32)
        else:
            self.boundary_tags = np.asarray(self.boundary_tags, dtype=np.int32)
            if self.boundary_tags.shape != self.elements.shape:
                raise ValueError("boundary_tags must have shape (n_elements, 4)")

    def _fix_orientation(self) -> None:
        verts = self.vertices[self.elements]  # (K, 4, 3)
        e1 = verts[:, 1] - verts[:, 0]
        e2 = verts[:, 2] - verts[:, 0]
        e3 = verts[:, 3] - verts[:, 0]
        signed = np.einsum("kd,kd->k", np.cross(e1, e2), e3)
        flipped = signed < 0
        if np.any(flipped):
            self.elements = self.elements.copy()
            self.elements[flipped, 2], self.elements[flipped, 3] = (
                self.elements[flipped, 3],
                self.elements[flipped, 2],
            )
        if np.any(np.isclose(signed, 0.0)):
            raise ValueError("mesh contains degenerate (zero-volume) tetrahedra")

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        return self.elements.shape[0]

    @property
    def n_vertices(self) -> int:
        return self.vertices.shape[0]

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def _ensure_connectivity(self) -> None:
        if self._connectivity is None:
            self._connectivity = build_face_connectivity(self.elements)

    @property
    def neighbors(self) -> np.ndarray:
        """``(K, 4)`` neighbour element id per face, or ``-1`` on the boundary."""
        self._ensure_connectivity()
        return self._connectivity[0]

    @property
    def neighbor_faces(self) -> np.ndarray:
        """``(K, 4)`` local face id of the neighbour across each face (or -1)."""
        self._ensure_connectivity()
        return self._connectivity[1]

    @property
    def is_boundary_face(self) -> np.ndarray:
        """Boolean ``(K, 4)`` mask of boundary faces."""
        return self.neighbors < 0

    def dual_graph_edges(self) -> np.ndarray:
        """Unique interior face adjacencies as an ``(n_edges, 2)`` array of element ids."""
        k = np.repeat(np.arange(self.n_elements), 4)
        n = self.neighbors.ravel()
        mask = (n >= 0) & (k < n)
        return np.column_stack([k[mask], n[mask]])

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def geometry(self) -> GeometryCache:
        if self._geometry is None:
            self._geometry = compute_geometry(self.vertices, self.elements)
        return self._geometry

    @property
    def volumes(self) -> np.ndarray:
        return self.geometry.volumes

    @property
    def insphere_radii(self) -> np.ndarray:
        return self.geometry.insphere_radii

    @property
    def centroids(self) -> np.ndarray:
        return self.geometry.centroids

    def element_vertices(self, k: int) -> np.ndarray:
        """Return the ``(4, 3)`` vertex coordinates of element ``k``."""
        return self.vertices[self.elements[k]]

    # ------------------------------------------------------------------
    # derived meshes
    # ------------------------------------------------------------------
    def permuted(self, permutation: np.ndarray) -> "TetMesh":
        """Return a new mesh with elements re-ordered by ``permutation``.

        ``permutation[i]`` is the old element id that becomes new element ``i``.
        """
        permutation = np.asarray(permutation, dtype=np.int64)
        if sorted(permutation.tolist()) != list(range(self.n_elements)):
            raise ValueError("permutation must be a bijection over the elements")
        return TetMesh(
            vertices=self.vertices.copy(),
            elements=self.elements[permutation].copy(),
            boundary_tags=self.boundary_tags[permutation].copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TetMesh(n_vertices={self.n_vertices}, n_elements={self.n_elements})"

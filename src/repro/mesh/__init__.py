"""Unstructured tetrahedral mesh substrate."""

from .connectivity import build_face_connectivity, element_face_vertices
from .generation import (
    box_mesh,
    graded_axis,
    layered_box_mesh,
    single_tet_mesh,
    two_tet_mesh,
)
from .geometry import (
    GeometryCache,
    cfl_time_steps,
    compute_geometry,
    map_physical_to_reference,
    map_reference_to_physical,
)
from .refinement import (
    characteristic_lengths,
    edge_length_profile_from_velocity,
    elements_per_wavelength_rule,
)
from .reorder import ReorderResult, cluster_ranges, reorder_elements
from .tet_mesh import (
    BOUNDARY_ABSORBING,
    BOUNDARY_ANALYTIC,
    BOUNDARY_FREE_SURFACE,
    BOUNDARY_NONE,
    TetMesh,
)

__all__ = [
    "TetMesh",
    "BOUNDARY_NONE",
    "BOUNDARY_FREE_SURFACE",
    "BOUNDARY_ABSORBING",
    "BOUNDARY_ANALYTIC",
    "build_face_connectivity",
    "element_face_vertices",
    "box_mesh",
    "graded_axis",
    "layered_box_mesh",
    "single_tet_mesh",
    "two_tet_mesh",
    "GeometryCache",
    "compute_geometry",
    "cfl_time_steps",
    "map_reference_to_physical",
    "map_physical_to_reference",
    "elements_per_wavelength_rule",
    "edge_length_profile_from_velocity",
    "characteristic_lengths",
    "ReorderResult",
    "reorder_elements",
    "cluster_ranges",
]

"""Affine geometry of tetrahedral elements.

Every tetrahedron ``k`` is the image of the reference tetrahedron under the
affine map ``x = v0_k + J_k xi`` where the columns of ``J_k`` are the edge
vectors ``v1 - v0``, ``v2 - v0`` and ``v3 - v0``.  The ADER-DG kernels only
need a handful of per-element quantities derived from that map; they are
computed once, vectorised over all elements, and cached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..basis.reference_element import FACE_VERTEX_IDS

__all__ = [
    "GeometryCache",
    "compute_geometry",
    "cfl_time_steps",
    "map_reference_to_physical",
    "map_physical_to_reference",
]


@dataclass(frozen=True)
class GeometryCache:
    """Per-element affine geometry, vectorised over the mesh."""

    jacobians: np.ndarray  #: (K, 3, 3) affine map matrices J_k
    inverse_jacobians: np.ndarray  #: (K, 3, 3) J_k^{-1}
    determinants: np.ndarray  #: (K,) det(J_k) = 6 * volume
    volumes: np.ndarray  #: (K,) element volumes
    centroids: np.ndarray  #: (K, 3) element centroids
    face_areas: np.ndarray  #: (K, 4) physical face areas
    face_normals: np.ndarray  #: (K, 4, 3) outward unit normals
    face_centroids: np.ndarray  #: (K, 4, 3) face centroids
    insphere_radii: np.ndarray  #: (K,) insphere radii 3 V / sum(face areas)
    min_edge_lengths: np.ndarray  #: (K,) shortest edge per element

    @property
    def n_elements(self) -> int:
        return self.volumes.shape[0]


def compute_geometry(vertices: np.ndarray, elements: np.ndarray) -> GeometryCache:
    """Compute :class:`GeometryCache` for all elements of a mesh."""
    verts = vertices[elements]  # (K, 4, 3)
    v0 = verts[:, 0]
    jac = np.stack([verts[:, 1] - v0, verts[:, 2] - v0, verts[:, 3] - v0], axis=2)  # (K,3,3)
    det = np.linalg.det(jac)
    if np.any(det <= 0):
        raise ValueError("all elements must be positively oriented")
    inv_jac = np.linalg.inv(jac)
    volumes = det / 6.0
    centroids = verts.mean(axis=1)

    n_elements = elements.shape[0]
    face_areas = np.empty((n_elements, 4))
    face_normals = np.empty((n_elements, 4, 3))
    face_centroids = np.empty((n_elements, 4, 3))
    for i, (a, b, c) in enumerate(FACE_VERTEX_IDS):
        pa, pb, pc = verts[:, a], verts[:, b], verts[:, c]
        cross = np.cross(pb - pa, pc - pa)
        norm = np.linalg.norm(cross, axis=1)
        face_areas[:, i] = 0.5 * norm
        normal = cross / norm[:, None]
        # orient outward: the normal must point away from the opposite vertex
        opposite_local = ({0, 1, 2, 3} - {a, b, c}).pop()
        to_opposite = verts[:, opposite_local] - pa
        flip = np.einsum("kd,kd->k", normal, to_opposite) > 0
        normal[flip] *= -1.0
        face_normals[:, i] = normal
        face_centroids[:, i] = (pa + pb + pc) / 3.0

    insphere = 3.0 * volumes / face_areas.sum(axis=1)

    edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    edge_lengths = np.stack(
        [np.linalg.norm(verts[:, b] - verts[:, a], axis=1) for a, b in edges], axis=1
    )
    min_edges = edge_lengths.min(axis=1)

    return GeometryCache(
        jacobians=jac,
        inverse_jacobians=inv_jac,
        determinants=det,
        volumes=volumes,
        centroids=centroids,
        face_areas=face_areas,
        face_normals=face_normals,
        face_centroids=face_centroids,
        insphere_radii=insphere,
        min_edge_lengths=min_edges,
    )


def cfl_time_steps(
    insphere_radii: np.ndarray,
    max_wave_speeds: np.ndarray,
    order: int,
    cfl: float = 0.5,
) -> np.ndarray:
    """Per-element CFL time steps ``dt_k`` of the ADER-DG scheme.

    Follows the standard ADER-DG stability estimate
    ``dt_k = cfl * 2 r_k / ((2 O - 1) v_max_k)`` with ``r_k`` the insphere
    radius, ``O`` the order of convergence and ``v_max_k`` the fastest wave
    speed inside the element (the p-wave speed).
    """
    insphere_radii = np.asarray(insphere_radii, dtype=np.float64)
    max_wave_speeds = np.asarray(max_wave_speeds, dtype=np.float64)
    if np.any(max_wave_speeds <= 0):
        raise ValueError("wave speeds must be positive")
    if order < 1:
        raise ValueError("order must be >= 1")
    return cfl * 2.0 * insphere_radii / ((2.0 * order - 1.0) * max_wave_speeds)


def map_reference_to_physical(
    vertices: np.ndarray, elements: np.ndarray, element_ids: np.ndarray, xi: np.ndarray
) -> np.ndarray:
    """Map reference points ``xi`` (n, 3) into physical space for each element id.

    Returns ``(len(element_ids), n, 3)``.
    """
    verts = vertices[elements[element_ids]]  # (E, 4, 3)
    v0 = verts[:, 0]
    jac = np.stack([verts[:, 1] - v0, verts[:, 2] - v0, verts[:, 3] - v0], axis=2)
    return v0[:, None, :] + np.einsum("edr,nr->end", jac, np.atleast_2d(xi))


def map_physical_to_reference(
    vertices: np.ndarray, elements: np.ndarray, element_id: int, points: np.ndarray
) -> np.ndarray:
    """Map physical ``points`` (n, 3) into the reference coordinates of one element."""
    verts = vertices[elements[element_id]]
    v0 = verts[0]
    jac = np.stack([verts[1] - v0, verts[2] - v0, verts[3] - v0], axis=1)
    return np.linalg.solve(jac, (np.atleast_2d(points) - v0).T).T

"""Face-neighbour connectivity of conforming tetrahedral meshes.

The ADER-DG surface kernel (eqs. 10-13 of the paper) couples each element to
its four face neighbours; the local time stepping scheme additionally needs
to know, for every face, which local face of the neighbour is shared so that
the correct neighbouring flux matrix can be selected.  This module builds
that connectivity from raw element->vertex connectivity.
"""

from __future__ import annotations

import numpy as np

from ..basis.reference_element import FACE_VERTEX_IDS

__all__ = ["build_face_connectivity", "element_face_vertices"]


def element_face_vertices(elements: np.ndarray) -> np.ndarray:
    """Vertex ids of all element faces, shape ``(K, 4, 3)``.

    Face ``i`` of element ``k`` uses the local vertex triple
    ``FACE_VERTEX_IDS[i]`` of the reference element, which fixes the
    correspondence between mesh faces and reference-element faces.
    """
    elements = np.asarray(elements, dtype=np.int64)
    face_local = np.array(FACE_VERTEX_IDS, dtype=np.int64)  # (4, 3)
    return elements[:, face_local]


def build_face_connectivity(elements: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Compute face neighbours for a conforming tetrahedral mesh.

    Parameters
    ----------
    elements:
        ``(K, 4)`` vertex ids per element.

    Returns
    -------
    neighbors:
        ``(K, 4)`` neighbour element id across each local face, ``-1`` for
        boundary faces.
    neighbor_faces:
        ``(K, 4)`` local face id of the neighbour sharing the face, ``-1``
        for boundary faces.

    Raises
    ------
    ValueError
        If more than two elements share a face (non-manifold mesh).
    """
    elements = np.asarray(elements, dtype=np.int64)
    n_elements = elements.shape[0]
    faces = element_face_vertices(elements).reshape(-1, 3)
    keys = np.sort(faces, axis=1)

    order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))
    sorted_keys = keys[order]

    neighbors = np.full((n_elements * 4,), -1, dtype=np.int64)
    neighbor_faces = np.full((n_elements * 4,), -1, dtype=np.int64)

    same_as_next = np.all(sorted_keys[:-1] == sorted_keys[1:], axis=1)
    # Reject non-manifold configurations: three consecutive equal keys.
    triple = same_as_next[:-1] & same_as_next[1:]
    if np.any(triple):
        raise ValueError("non-manifold mesh: a face is shared by more than two elements")

    first = order[:-1][same_as_next]
    second = order[1:][same_as_next]
    elem_first, face_first = first // 4, first % 4
    elem_second, face_second = second // 4, second % 4

    neighbors[first] = elem_second
    neighbor_faces[first] = face_second
    neighbors[second] = elem_first
    neighbor_faces[second] = face_first

    return neighbors.reshape(n_elements, 4), neighbor_faces.reshape(n_elements, 4)

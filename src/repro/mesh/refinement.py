"""Velocity-aware mesh resolution targets.

The preprocessing pipeline (Fig. 8 of the paper) queries the seismic velocity
model at mesh nodes and evaluates user rules for the elements' target edge
lengths, typically "n elements per shortest wavelength".  This module
implements those rules; :mod:`repro.mesh.generation` consumes the resulting
target-edge-length functions.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = [
    "elements_per_wavelength_rule",
    "edge_length_profile_from_velocity",
    "characteristic_lengths",
]


def elements_per_wavelength_rule(
    min_shear_velocity: Callable[[float], float] | float,
    max_frequency: float,
    elements_per_wavelength: float,
    order: int,
    min_edge_length: float = 0.0,
) -> Callable[[float], float]:
    """Build a target-edge-length rule ``h(z)`` from a velocity profile.

    The shortest resolved wavelength is ``vs_min / f_max``; with ``order``-th
    order elements the rule distributes ``elements_per_wavelength`` *degrees
    of freedom per wavelength*, i.e. the characteristic edge length is

    ``h = vs_min / f_max / elements_per_wavelength * (order - 1)``.

    ``min_shear_velocity`` may be a constant or a function of depth ``z``.
    """
    if max_frequency <= 0 or elements_per_wavelength <= 0:
        raise ValueError("frequency and elements per wavelength must be positive")
    if order < 2:
        raise ValueError("the wavelength rule needs order >= 2")

    def rule(z: float) -> float:
        vs = min_shear_velocity(z) if callable(min_shear_velocity) else min_shear_velocity
        if vs <= 0:
            raise ValueError("shear velocity must be positive")
        wavelength = vs / max_frequency
        h = wavelength / elements_per_wavelength * (order - 1)
        return max(h, min_edge_length)

    return rule


def edge_length_profile_from_velocity(
    depths: np.ndarray, shear_velocities: np.ndarray, max_frequency: float,
    elements_per_wavelength: float, order: int,
) -> Callable[[float], float]:
    """Piecewise-constant edge-length rule from a sampled velocity profile."""
    depths = np.asarray(depths, dtype=np.float64)
    shear_velocities = np.asarray(shear_velocities, dtype=np.float64)
    if depths.shape != shear_velocities.shape or depths.ndim != 1:
        raise ValueError("depths and shear_velocities must be 1-D arrays of equal length")
    order_idx = np.argsort(depths)
    depths = depths[order_idx]
    shear_velocities = shear_velocities[order_idx]

    def vs_of_depth(z: float) -> float:
        idx = np.searchsorted(depths, z, side="right") - 1
        idx = int(np.clip(idx, 0, len(depths) - 1))
        return float(shear_velocities[idx])

    return elements_per_wavelength_rule(
        vs_of_depth, max_frequency, elements_per_wavelength, order
    )


def characteristic_lengths(mesh_volumes: np.ndarray) -> np.ndarray:
    """Characteristic edge length per element: edge of the regular tet of equal volume."""
    mesh_volumes = np.asarray(mesh_volumes, dtype=np.float64)
    return (mesh_volumes * 6.0 * np.sqrt(2.0)) ** (1.0 / 3.0)

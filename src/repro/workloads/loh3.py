"""The LOH.3 (Layer Over Halfspace, benchmark 3) workload (Sec. VII-B).

The paper uses LOH.3 with its published material parameters to study the
LTS accuracy and the single-socket performance (Tab. I, Fig. 4, Fig. 9).
The original setup spans a multi-ten-kilometre domain meshed with 743,066 /
1,513,969 tetrahedra -- far beyond what a pure-Python kernel sustains -- so
:func:`loh3_setup` exposes a *scale* parameter that shrinks the domain and
coarsens the mesh while keeping everything that matters for the LTS
evaluation: the exact material contrast (and therefore the 1.732x refinement
of the layer), the bimodal time-step distribution, the point source below
the layer and receivers at the free surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.clustering import Clustering, derive_clustering, optimize_lambda
from ..equations.material import MaterialTable
from ..kernels.discretization import Discretization
from ..mesh.generation import layered_box_mesh
from ..mesh.geometry import cfl_time_steps
from ..mesh.tet_mesh import TetMesh
from ..preprocessing.velocity_model import loh3_model
from ..source.moment_tensor import MomentTensorSource
from ..source.time_functions import RickerWavelet

__all__ = ["Loh3Setup", "loh3_setup"]

#: the paper's element count of the coarser performance mesh
PAPER_ELEMENT_COUNT = 743_066
#: theoretical speedups the paper reports for N_c = 3 (Fig. 4)
PAPER_SPEEDUP_LAMBDA_1 = 2.28
PAPER_SPEEDUP_LAMBDA_08 = 2.67
#: published per-cluster element counts of Fig. 4: (a) lambda = 1.00, (b) lambda = 0.80
PAPER_CLUSTER_COUNTS_LAMBDA_1 = np.array([16_894, 512_520, 213_652])
PAPER_CLUSTER_COUNTS_LAMBDA_08 = np.array([4_523, 132_376, 606_167])


@dataclass
class Loh3Setup:
    """A (scaled) LOH.3 configuration ready to be handed to the solvers."""

    mesh: TetMesh
    materials: MaterialTable
    disc: Discretization
    source: MomentTensorSource
    receiver_locations: dict[str, np.ndarray]
    time_steps: np.ndarray

    def clustering(self, n_clusters: int = 3, lam: float | None = None) -> Clustering:
        """Clustering of this setup; ``lam = None`` runs the lambda optimisation."""
        if lam is None:
            return optimize_lambda(self.time_steps, n_clusters, self.mesh.neighbors)
        return derive_clustering(self.time_steps, n_clusters, lam, self.mesh.neighbors)


def loh3_setup(
    extent_m: float = 8000.0,
    characteristic_length: float = 2000.0,
    order: int = 4,
    n_mechanisms: int = 3,
    jitter: float = 0.2,
    flux: str = "rusanov",
    anelastic: bool = True,
    source_frequency: float = 1.0,
    seed: int = 0,
) -> Loh3Setup:
    """Build a scaled LOH.3 setup.

    Parameters
    ----------
    extent_m:
        Horizontal extent of the (cubic) domain; the original benchmark uses
        a much larger box, the scaled default keeps the 1000 m layer.
    characteristic_length:
        Target edge length in the halfspace; the layer is refined by the
        velocity ratio 3464/2000 = 1.732, as in the paper.
    anelastic:
        ``False`` drops the quality factors (used for the "cost of
        anelasticity" comparison of Sec. VII-B).
    """
    model = loh3_model()
    layer_length = characteristic_length / 1.732

    mesh = layered_box_mesh(
        extent=(0.0, extent_m, 0.0, extent_m, -extent_m, 0.0),
        edge_length_of_depth=lambda z: layer_length if z > -1000.0 else characteristic_length,
        horizontal_edge_length=characteristic_length,
        jitter=jitter,
        seed=seed,
    )
    materials = MaterialTable.from_velocity_model(model, mesh.centroids)
    if not anelastic:
        materials = MaterialTable(
            rho=materials.rho, vp=materials.vp, vs=materials.vs
        )
    disc = Discretization(
        mesh,
        materials,
        order=order,
        n_mechanisms=n_mechanisms if (anelastic and materials.is_attenuating()) else 0,
        frequency_band=(0.1 * source_frequency, 10.0 * source_frequency),
        flux=flux,
    )
    time_steps = cfl_time_steps(mesh.insphere_radii, materials.max_wave_speed, order)

    # LOH.3 point source: strike-slip double couple at 2000 m depth (scaled
    # to stay inside the shrunken domain if necessary)
    source_depth = min(2000.0, 0.5 * extent_m)
    moment = np.zeros((3, 3))
    moment[0, 1] = moment[1, 0] = 1e16
    source = MomentTensorSource(
        location=np.array([0.5 * extent_m, 0.5 * extent_m, -source_depth]),
        moment_tensor=moment,
        time_function=RickerWavelet(f0=source_frequency, t0=1.2 / source_frequency),
    )

    # receiver 9 analogue: on the free surface, diagonal offset from the epicentre
    offset = min(0.3 * extent_m, 3000.0)
    receivers = {
        "receiver_9": np.array([0.5 * extent_m + offset, 0.5 * extent_m + 0.66 * offset, -1.0]),
        "epicentre": np.array([0.5 * extent_m, 0.5 * extent_m, -1.0]),
    }
    return Loh3Setup(
        mesh=mesh,
        materials=materials,
        disc=disc,
        source=source,
        receiver_locations=receivers,
        time_steps=time_steps,
    )

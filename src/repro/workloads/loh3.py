"""The LOH.3 (Layer Over Halfspace, benchmark 3) workload (Sec. VII-B).

The paper uses LOH.3 with its published material parameters to study the
LTS accuracy and the single-socket performance (Tab. I, Fig. 4, Fig. 9).
The original setup spans a multi-ten-kilometre domain meshed with 743,066 /
1,513,969 tetrahedra -- far beyond what a pure-Python kernel sustains -- so
:func:`loh3_setup` exposes a *scale* parameter that shrinks the domain and
coarsens the mesh while keeping everything that matters for the LTS
evaluation: the exact material contrast (and therefore the 1.732x refinement
of the layer), the bimodal time-step distribution, the point source below
the layer and receivers at the free surface.

The declarative definition of this workload lives in the scenario registry
(:func:`repro.scenarios.registry.loh3_scenario`); this module is the
backwards-compatible imperative wrapper around it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.clustering import Clustering, derive_clustering, optimize_lambda
from ..equations.material import MaterialTable
from ..kernels.discretization import Discretization
from ..mesh.tet_mesh import TetMesh
from ..scenarios.registry import loh3_scenario
from ..scenarios.runner import build_setup
from ..source.moment_tensor import MomentTensorSource

__all__ = ["Loh3Setup", "loh3_setup"]

#: the paper's element count of the coarser performance mesh
PAPER_ELEMENT_COUNT = 743_066
#: theoretical speedups the paper reports for N_c = 3 (Fig. 4)
PAPER_SPEEDUP_LAMBDA_1 = 2.28
PAPER_SPEEDUP_LAMBDA_08 = 2.67
#: published per-cluster element counts of Fig. 4: (a) lambda = 1.00, (b) lambda = 0.80
PAPER_CLUSTER_COUNTS_LAMBDA_1 = np.array([16_894, 512_520, 213_652])
PAPER_CLUSTER_COUNTS_LAMBDA_08 = np.array([4_523, 132_376, 606_167])


@dataclass
class Loh3Setup:
    """A (scaled) LOH.3 configuration ready to be handed to the solvers."""

    mesh: TetMesh
    materials: MaterialTable
    disc: Discretization
    source: MomentTensorSource
    receiver_locations: dict[str, np.ndarray]
    time_steps: np.ndarray

    def clustering(self, n_clusters: int = 3, lam: float | None = None) -> Clustering:
        """Clustering of this setup; ``lam = None`` runs the lambda optimisation."""
        if lam is None:
            return optimize_lambda(self.time_steps, n_clusters, self.mesh.neighbors)
        return derive_clustering(self.time_steps, n_clusters, lam, self.mesh.neighbors)


def loh3_setup(
    extent_m: float = 8000.0,
    characteristic_length: float = 2000.0,
    order: int = 4,
    n_mechanisms: int = 3,
    jitter: float = 0.2,
    flux: str = "rusanov",
    anelastic: bool = True,
    source_frequency: float = 1.0,
    seed: int = 0,
) -> Loh3Setup:
    """Build a scaled LOH.3 setup (see :func:`loh3_scenario` for the spec).

    Parameters
    ----------
    extent_m:
        Horizontal extent of the (cubic) domain; the original benchmark uses
        a much larger box, the scaled default keeps the 1000 m layer.
    characteristic_length:
        Target edge length in the halfspace; the layer is refined by the
        velocity ratio 3464/2000 = 1.732, as in the paper.
    anelastic:
        ``False`` drops the quality factors (used for the "cost of
        anelasticity" comparison of Sec. VII-B).
    """
    spec = loh3_scenario(
        extent_m=extent_m,
        characteristic_length=characteristic_length,
        order=order,
        n_mechanisms=n_mechanisms,
        jitter=jitter,
        flux=flux,
        anelastic=anelastic,
        source_frequency=source_frequency,
        seed=seed,
    )
    setup = build_setup(spec)
    return Loh3Setup(
        mesh=setup.mesh,
        materials=setup.materials,
        disc=setup.disc,
        source=setup.source,
        receiver_locations=setup.receiver_locations,
        time_steps=setup.time_steps,
    )

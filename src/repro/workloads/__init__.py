"""Workload definitions: LOH.3 and the (scaled / synthetic) La Habra setting."""

from .la_habra import (
    PAPER_CLUSTER_COUNTS,
    PAPER_LAMBDA,
    PAPER_SPEEDUP,
    LaHabraSetup,
    la_habra_setup,
    la_habra_time_step_distribution,
)
from .loh3 import Loh3Setup, loh3_setup

__all__ = [
    "Loh3Setup",
    "loh3_setup",
    "LaHabraSetup",
    "la_habra_setup",
    "la_habra_time_step_distribution",
    "PAPER_CLUSTER_COUNTS",
    "PAPER_LAMBDA",
    "PAPER_SPEEDUP",
]

"""The 2014 Mw 5.1 La Habra workload (Sec. VII-C).

The paper's production setting uses a 237,861,634-element velocity-adapted
mesh with topography, N_c = 5 clusters and lambda = 0.81, giving a 5.38x
theoretical LTS speedup; the mesh itself cannot be rebuilt offline (the CVM
and the DEM are external data and the size is out of reach for Python).

Two complementary stand-ins are provided:

* :func:`la_habra_time_step_distribution` draws a synthetic per-element
  CFL-time-step sample whose *density* is calibrated to the published
  Fig. 5 clustering (counts per cluster for N_c = 5, lambda = 0.81).  The
  clustering, lambda optimisation and partitioning studies (Figs. 5, 7, 10)
  operate on exactly this information -- per-element time steps and the dual
  graph -- so their behaviour is preserved at full fidelity.
* :func:`la_habra_setup` builds a small executable basin model (synthetic
  CVM + optional topography) for end-to-end runs of the solver.

The declarative definition of the executable setup lives in the scenario
registry (:func:`repro.scenarios.registry.la_habra_scenario`); this module
is the backwards-compatible imperative wrapper around it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.clustering import Clustering, derive_clustering, optimize_lambda
from ..equations.material import MaterialTable
from ..kernels.discretization import Discretization
from ..mesh.tet_mesh import TetMesh
from ..scenarios.registry import la_habra_scenario
from ..scenarios.runner import build_setup
from ..source.moment_tensor import MomentTensorSource

__all__ = [
    "PAPER_CLUSTER_COUNTS",
    "PAPER_LAMBDA",
    "PAPER_SPEEDUP",
    "la_habra_time_step_distribution",
    "LaHabraSetup",
    "la_habra_setup",
]

#: element counts per cluster (C1..C5) of the published Fig. 5 (N_c = 5,
#: lambda = 0.81).  This ascending-cluster assignment of the five published
#: numbers is the one that reproduces the published 5.38x theoretical speedup.
PAPER_CLUSTER_COUNTS = np.array([22_206, 2_364_450, 51_392_298, 163_627_668, 20_455_012])
PAPER_ELEMENT_COUNT = 237_861_634
PAPER_LAMBDA = 0.81
PAPER_N_CLUSTERS = 5
PAPER_SPEEDUP = 5.38


def la_habra_time_step_distribution(
    n_elements: int = 200_000, seed: int = 0, dt_min: float = 1.0
) -> np.ndarray:
    """Synthetic per-element CFL time steps calibrated to the paper's Fig. 5.

    Elements are drawn cluster by cluster in proportion to the published
    counts; within a cluster the relative time step follows a triangular
    density that rises towards the upper cluster boundary (matching the
    published density's shape, which peaks inside cluster C3).  ``dt_min``
    rescales the distribution; the minimum is guaranteed to be attained.
    """
    if n_elements < 10:
        raise ValueError("need a reasonable number of elements")
    rng = np.random.default_rng(seed)
    fractions = PAPER_CLUSTER_COUNTS / PAPER_CLUSTER_COUNTS.sum()
    counts = np.maximum(np.round(fractions * n_elements).astype(int), 1)
    counts[0] += n_elements - counts.sum()

    samples = []
    for cluster, count in enumerate(counts):
        # cluster boundaries in units of dt_min; no element is faster than dt_min,
        # so the first cluster effectively starts at 1
        low = max(PAPER_LAMBDA * 2.0**cluster, 1.0)
        high = PAPER_LAMBDA * 2.0 ** (cluster + 1)
        if cluster == len(counts) - 1:
            high = 1.2 * low  # the open-ended cluster's tail is thin
        mode = 0.25 * low + 0.75 * high if cluster <= 2 else low
        samples.append(rng.triangular(low, mode, high * (1.0 - 1e-9), size=count))
    dts = np.concatenate(samples)
    rng.shuffle(dts)
    # pin the minimum so that cluster boundaries land where the paper puts them
    dts[np.argmin(dts)] = 1.0
    return dts * dt_min


@dataclass
class LaHabraSetup:
    """A small executable La-Habra-like basin configuration."""

    mesh: TetMesh
    materials: MaterialTable
    disc: Discretization
    source: MomentTensorSource
    receiver_locations: dict[str, np.ndarray]
    time_steps: np.ndarray

    def clustering(self, n_clusters: int = 5, lam: float | None = None) -> Clustering:
        if lam is None:
            return optimize_lambda(self.time_steps, n_clusters, self.mesh.neighbors)
        return derive_clustering(self.time_steps, n_clusters, lam, self.mesh.neighbors)


def la_habra_setup(
    extent_m: float = 12000.0,
    depth_m: float = 8000.0,
    max_frequency: float = 0.5,
    order: int = 4,
    n_mechanisms: int = 3,
    with_topography: bool = True,
    min_vs: float = 500.0,
    seed: int = 0,
) -> LaHabraSetup:
    """Build a scaled, executable La-Habra-like setup (basin + topography)."""
    spec = la_habra_scenario(
        extent_m=extent_m,
        depth_m=depth_m,
        max_frequency=max_frequency,
        order=order,
        n_mechanisms=n_mechanisms,
        with_topography=with_topography,
        min_vs=min_vs,
        seed=seed,
    )
    setup = build_setup(spec)
    return LaHabraSetup(
        mesh=setup.mesh,
        materials=setup.materials,
        disc=setup.disc,
        source=setup.source,
        receiver_locations=setup.receiver_locations,
        time_steps=setup.time_steps,
    )

"""The paper's core contribution: next-generation clustered local time stepping."""

from .buffers import LtsBuffers
from .clustering import (
    Clustering,
    assign_clusters,
    derive_clustering,
    normalize_clusters,
    optimize_lambda,
)
from .gts_solver import GlobalTimeSteppingSolver
from .legacy_lts import CommunicationVolume, communication_volumes
from .lts_scheduler import (
    clusters_correcting_after,
    clusters_predicting_at,
    micro_steps_per_cycle,
    schedule_cycle,
    updates_per_cycle,
)
from .lts_solver import ClusteredLtsSolver
from .speedup import (
    ideal_speedup,
    load_fractions,
    normalization_loss,
    theoretical_speedup,
    update_cost_per_unit_time,
)

__all__ = [
    "Clustering",
    "assign_clusters",
    "normalize_clusters",
    "derive_clustering",
    "optimize_lambda",
    "theoretical_speedup",
    "ideal_speedup",
    "load_fractions",
    "normalization_loss",
    "update_cost_per_unit_time",
    "LtsBuffers",
    "micro_steps_per_cycle",
    "clusters_predicting_at",
    "clusters_correcting_after",
    "schedule_cycle",
    "updates_per_cycle",
    "GlobalTimeSteppingSolver",
    "ClusteredLtsSolver",
    "CommunicationVolume",
    "communication_volumes",
]

"""The three time buffers of the next-generation LTS scheme (Sec. V-B).

For every element ``k`` three additional ``9 x B`` data structures hold the
elastic time-integrated information face-neighbouring elements need:

* ``B1_k`` -- integral over the element's full current time step, used by
  neighbours with the *same* time step;
* ``B2_k`` -- integral over the first half of the step, used by neighbours
  with a *smaller* (half) time step;
* ``B3_k`` -- the pairwise accumulated integral (eq. 17's even/odd rule),
  used by neighbours with a *larger* (double) time step.

Unlike the buffer/derivative scheme of Breuer et al. 2016 (ref. [15]) no time
derivatives are ever communicated, which is what makes the scheme efficient
for the anelastic wave equations where the derivatives carry no exploitable
zero blocks.

Storage layout: the buffers live in one ``(4, n_elements + 1, 9, B[, f])``
block -- ``B1``, ``B2``, ``B3`` plus the precomputed second-half integral
``B1 - B2`` -- with a trailing all-zero ghost row per buffer.  A correction's
neighbour gather then reduces to a single fancy-index read (relation code and
neighbour id combine into one flat row index, boundary faces hit the ghost
row), instead of a zero-fill plus three boolean-masked scatter passes; with a
fused trailing axis the gathered rows are F times wider and the scatter
passes dominated the correction phase.  The second-half buffer is filled from
the same ``full``/``half`` integrals a reader would subtract, so the gathered
values are bit-identical to the three-buffer formulation.
"""

from __future__ import annotations

import numpy as np

from ..kernels.backend import ReferenceBackend
from ..kernels.discretization import Discretization, N_ELASTIC

__all__ = ["LtsBuffers"]

_REFERENCE = ReferenceBackend()

#: relation codes of a face neighbour's cluster w.r.t. the element's cluster
SAME, SMALLER, LARGER, BOUNDARY = 0, -1, 1, -2

#: store rows: B1, B2, B3 and the precomputed second-half integral B1 - B2
_B1, _B2, _B3, _B1M2 = 0, 1, 2, 3


class LtsBuffers:
    """Buffer storage and the buffer update/read rules of the LTS scheme."""

    def __init__(self, disc: Discretization, n_fused: int = 0, dtype=None):
        if dtype is None:
            dtype = getattr(disc, "dtype", np.float64)
        shape: tuple[int, ...] = (N_ELASTIC, disc.n_basis)
        if n_fused > 0:
            shape = shape + (n_fused,)
        self._n_elements = disc.n_elements
        #: row n_elements of every buffer is an all-zero ghost row that
        #: boundary faces gather from; fill() never writes it
        self._store = np.zeros((4, disc.n_elements + 1) + shape, dtype=dtype)
        self._flat = self._store.reshape((4 * (disc.n_elements + 1),) + shape)

    # ------------------------------------------------------------------
    # the public three-buffer view (checkpoint/exchange paths assign these);
    # the views are read-only because an in-place write through them would
    # silently stale the precomputed ``B1 - B2`` row -- mutate via ``fill``
    # or whole-buffer assignment (``buffers.b1 = ...``)
    # ------------------------------------------------------------------
    def _view(self, row: int) -> np.ndarray:
        view = self._store[row, : self._n_elements]
        view.flags.writeable = False
        return view

    @property
    def b1(self) -> np.ndarray:
        return self._view(_B1)

    @b1.setter
    def b1(self, value) -> None:
        self._store[_B1, : self._n_elements] = value
        self._refresh_second_half()

    @property
    def b2(self) -> np.ndarray:
        return self._view(_B2)

    @b2.setter
    def b2(self, value) -> None:
        self._store[_B2, : self._n_elements] = value
        self._refresh_second_half()

    @property
    def b3(self) -> np.ndarray:
        return self._view(_B3)

    @b3.setter
    def b3(self, value) -> None:
        self._store[_B3, : self._n_elements] = value

    def _refresh_second_half(self) -> None:
        """Re-establish ``store[B1M2] == b1 - b2`` after a bulk assignment.

        ``b1 - b2`` on restored arrays is elementwise over the exact stored
        values, so the invariant reproduces what a read-time subtraction
        would have computed, bit for bit.
        """
        n = self._n_elements
        np.subtract(
            self._store[_B1, :n], self._store[_B2, :n], out=self._store[_B1M2, :n]
        )

    # ------------------------------------------------------------------
    def fill(
        self,
        elements: np.ndarray,
        derivatives: list[np.ndarray],
        dt: float,
        step_index: int,
        needs_half: bool = True,
        backend=None,
        ws=None,
        elastic_integral: np.ndarray | None = None,
    ) -> None:
        """Fill the buffers of ``elements`` after their time prediction (eq. 17).

        Parameters
        ----------
        derivatives:
            CK time derivatives of the batch (elastic part is used).
        dt:
            The elements' (cluster) time step.
        step_index:
            The elements' local step counter ``n_k`` (before the step), which
            controls the even/odd accumulation of ``B3``.
        needs_half:
            Whether ``B2`` is required (only if a smaller-step neighbour
            exists); computing it unconditionally is allowed but wasteful.
        backend / ws:
            Optional kernel backend (and its scratch workspace): a
            workspace-backed backend integrates into reused scratch arrays
            instead of allocating per fill (the default is the reference
            backend, i.e. exactly the pre-backend behaviour).
        elastic_integral:
            Optionally the already-computed elastic full-interval integral
            (the ``[:, :9]`` slice of the prediction's time-integrated DOFs).
            Taylor integration is elementwise, so reusing it is bit-identical
            to re-integrating the elastic derivative slices; only the
            half-interval ``B2`` then needs a fresh integration.
        """
        backend = backend or _REFERENCE
        elastic_derivatives = [d[:, :N_ELASTIC] for d in derivatives]
        if elastic_integral is not None:
            full = elastic_integral
        else:
            full = backend.time_integrate(
                elastic_derivatives, 0.0, dt, ws=ws, key="b_full"
            )
        if needs_half:
            half = backend.time_integrate(
                elastic_derivatives, 0.0, 0.5 * dt, ws=ws, key="b_half"
            )
            self._store[_B2, elements] = half
            # the second-half integral a smaller-step neighbour's odd
            # sub-step reads; ``full - half`` here equals the read-time
            # ``b1 - b2`` bitwise (same stored operands, same subtraction);
            # ``half`` is integration scratch, safe to overwrite in place
            np.subtract(full, half, out=half)
            self._store[_B1M2, elements] = half
        self._store[_B1, elements] = full
        if step_index % 2 == 0:
            self._store[_B3, elements] = full
        else:
            self._store[_B3, elements] += full

    def neighbor_data(
        self,
        elements: np.ndarray,
        neighbors: np.ndarray,
        relations: np.ndarray,
        step_index: int,
    ) -> np.ndarray:
        """Gather the neighbour time-integrated data for a batch's correction.

        Parameters
        ----------
        elements:
            Element ids of the batch (cluster ``l``) that completes a step.
        neighbors:
            ``(E, 4)`` face-neighbour ids of the batch.
        relations:
            ``(E, 4)`` cluster relation per face: ``SAME``, ``SMALLER``
            (neighbour advances with half the step), ``LARGER`` (double the
            step) or ``BOUNDARY``.
        step_index:
            The batch's local step counter ``n_k`` (before the step); for a
            ``LARGER`` neighbour it decides whether the element's interval is
            the first (even) or second (odd) half of the neighbour's step.

        Returns
        -------
        numpy.ndarray
            ``(E, 4, 9, B[, n_fused])`` neighbour elastic time-integrated DOFs
            over the batch's time interval; boundary faces are zero-filled
            (they are replaced by ghost data downstream).
        """
        del elements  # the gather works purely on the neighbour ids
        # relation -> store row: SAME reads B1, SMALLER reads B3 (the two
        # accumulated sub-steps), LARGER reads B2 on an even local step and
        # the precomputed B1 - B2 on an odd one; boundary faces read the
        # all-zero ghost row (any store row works, B1 is used)
        larger_row = _B2 if step_index % 2 == 0 else _B1M2
        sel = np.where(relations == SMALLER, _B3, _B1)
        sel = np.where(relations == LARGER, larger_row, sel)
        ids = np.where(relations == BOUNDARY, self._n_elements, neighbors)
        rows = (sel * (self._n_elements + 1) + ids).ravel()
        gathered = self._flat[rows]
        return gathered.reshape(neighbors.shape[:2] + gathered.shape[1:])

"""The three time buffers of the next-generation LTS scheme (Sec. V-B).

For every element ``k`` three additional ``9 x B`` data structures hold the
elastic time-integrated information face-neighbouring elements need:

* ``B1_k`` -- integral over the element's full current time step, used by
  neighbours with the *same* time step;
* ``B2_k`` -- integral over the first half of the step, used by neighbours
  with a *smaller* (half) time step;
* ``B3_k`` -- the pairwise accumulated integral (eq. 17's even/odd rule),
  used by neighbours with a *larger* (double) time step.

Unlike the buffer/derivative scheme of Breuer et al. 2016 (ref. [15]) no time
derivatives are ever communicated, which is what makes the scheme efficient
for the anelastic wave equations where the derivatives carry no exploitable
zero blocks.
"""

from __future__ import annotations

import numpy as np

from ..kernels.backend import ReferenceBackend
from ..kernels.discretization import Discretization, N_ELASTIC

__all__ = ["LtsBuffers"]

_REFERENCE = ReferenceBackend()

#: relation codes of a face neighbour's cluster w.r.t. the element's cluster
SAME, SMALLER, LARGER, BOUNDARY = 0, -1, 1, -2


class LtsBuffers:
    """Buffer storage and the buffer update/read rules of the LTS scheme."""

    def __init__(self, disc: Discretization, n_fused: int = 0, dtype=None):
        if dtype is None:
            dtype = getattr(disc, "dtype", np.float64)
        shape: tuple[int, ...] = (disc.n_elements, N_ELASTIC, disc.n_basis)
        if n_fused > 0:
            shape = shape + (n_fused,)
        self.b1 = np.zeros(shape, dtype=dtype)
        self.b2 = np.zeros(shape, dtype=dtype)
        self.b3 = np.zeros(shape, dtype=dtype)

    def fill(
        self,
        elements: np.ndarray,
        derivatives: list[np.ndarray],
        dt: float,
        step_index: int,
        needs_half: bool = True,
        backend=None,
        ws=None,
        elastic_integral: np.ndarray | None = None,
    ) -> None:
        """Fill the buffers of ``elements`` after their time prediction (eq. 17).

        Parameters
        ----------
        derivatives:
            CK time derivatives of the batch (elastic part is used).
        dt:
            The elements' (cluster) time step.
        step_index:
            The elements' local step counter ``n_k`` (before the step), which
            controls the even/odd accumulation of ``B3``.
        needs_half:
            Whether ``B2`` is required (only if a smaller-step neighbour
            exists); computing it unconditionally is allowed but wasteful.
        backend / ws:
            Optional kernel backend (and its scratch workspace): a
            workspace-backed backend integrates into reused scratch arrays
            instead of allocating per fill (the default is the reference
            backend, i.e. exactly the pre-backend behaviour).
        elastic_integral:
            Optionally the already-computed elastic full-interval integral
            (the ``[:, :9]`` slice of the prediction's time-integrated DOFs).
            Taylor integration is elementwise, so reusing it is bit-identical
            to re-integrating the elastic derivative slices; only the
            half-interval ``B2`` then needs a fresh integration.
        """
        backend = backend or _REFERENCE
        elastic_derivatives = [d[:, :N_ELASTIC] for d in derivatives]
        if elastic_integral is not None:
            full = elastic_integral
        else:
            full = backend.time_integrate(
                elastic_derivatives, 0.0, dt, ws=ws, key="b_full"
            )
        if needs_half:
            self.b2[elements] = backend.time_integrate(
                elastic_derivatives, 0.0, 0.5 * dt, ws=ws, key="b_half"
            )
        self.b1[elements] = full
        if step_index % 2 == 0:
            self.b3[elements] = full
        else:
            self.b3[elements] += full

    def neighbor_data(
        self,
        elements: np.ndarray,
        neighbors: np.ndarray,
        relations: np.ndarray,
        step_index: int,
    ) -> np.ndarray:
        """Gather the neighbour time-integrated data for a batch's correction.

        Parameters
        ----------
        elements:
            Element ids of the batch (cluster ``l``) that completes a step.
        neighbors:
            ``(E, 4)`` face-neighbour ids of the batch.
        relations:
            ``(E, 4)`` cluster relation per face: ``SAME``, ``SMALLER``
            (neighbour advances with half the step), ``LARGER`` (double the
            step) or ``BOUNDARY``.
        step_index:
            The batch's local step counter ``n_k`` (before the step); for a
            ``LARGER`` neighbour it decides whether the element's interval is
            the first (even) or second (odd) half of the neighbour's step.

        Returns
        -------
        numpy.ndarray
            ``(E, 4, 9, B[, n_fused])`` neighbour elastic time-integrated DOFs
            over the batch's time interval; boundary faces are zero-filled
            (they are replaced by ghost data downstream).
        """
        del elements  # the gather works purely on the neighbour ids
        safe = np.maximum(neighbors, 0)
        out = np.zeros((neighbors.shape[0], 4) + self.b1.shape[1:], dtype=self.b1.dtype)

        same = relations == SAME
        smaller = relations == SMALLER
        larger = relations == LARGER

        if np.any(same):
            out[same] = self.b1[safe[same]]
        if np.any(smaller):
            # the faster neighbour accumulated its two sub-steps in B3
            out[smaller] = self.b3[safe[smaller]]
        if np.any(larger):
            if step_index % 2 == 0:
                out[larger] = self.b2[safe[larger]]
            else:
                out[larger] = self.b1[safe[larger]] - self.b2[safe[larger]]
        return out

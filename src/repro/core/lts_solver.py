"""The next-generation clustered local time stepping solver (Sec. V).

The driver advances the mesh cluster by cluster following the rate-2
schedule of :mod:`repro.core.lts_scheduler`:

* when a cluster starts one of its intervals it *predicts*: the Cauchy-
  Kowalevski time kernel is evaluated, the three buffers ``B1/B2/B3`` are
  filled (eq. 17) and the element-local part of the update (volume + local
  surface kernels) is computed and stored;
* when the interval ends the cluster *corrects*: the neighbouring surface
  kernel is evaluated from the face-neighbours' buffers (same step: ``B1``,
  smaller step: ``B3``, larger step: ``B2`` or ``B1 - B2`` depending on the
  sub-step parity -- exactly the walkthrough of Fig. 6) and the DOFs advance.

With a single cluster the scheme degenerates to GTS and reproduces the GTS
solver bit-for-bit, which the test suite asserts.
"""

from __future__ import annotations

import numpy as np

from ..kernels.backend import make_backend
from ..kernels.discretization import Discretization, N_ELASTIC
from ..observability import NULL_TELEMETRY
from ..source.moment_tensor import DiscretePointSource, MomentTensorSource, PointForceSource
from ..source.receivers import ReceiverSet
from .buffers import BOUNDARY, LARGER, SAME, SMALLER, LtsBuffers
from .clustering import Clustering
from .lts_scheduler import micro_steps_per_cycle, schedule_cycle

__all__ = ["ClusteredLtsSolver"]


class _ClusterData:
    """Static per-cluster data of the LTS driver."""

    def __init__(self, disc: Discretization, clustering: Clustering, cluster: int):
        ids = np.where(clustering.cluster_ids == cluster)[0]
        self.cluster_id = cluster
        self.elements = ids
        self.dt = float(clustering.cluster_time_steps[cluster])
        neighbors = disc.mesh.neighbors[ids]
        self.neighbors = neighbors
        neighbor_clusters = np.where(
            neighbors >= 0, clustering.cluster_ids[np.maximum(neighbors, 0)], -1
        )
        relations = np.full(neighbors.shape, BOUNDARY, dtype=np.int64)
        relations[(neighbors >= 0) & (neighbor_clusters == cluster)] = SAME
        relations[(neighbors >= 0) & (neighbor_clusters == cluster - 1)] = SMALLER
        relations[(neighbors >= 0) & (neighbor_clusters == cluster + 1)] = LARGER
        invalid = (neighbors >= 0) & (np.abs(neighbor_clusters - cluster) > 1)
        if np.any(invalid):
            raise ValueError(
                "clustering is not normalised: face neighbours differ by more than one cluster"
            )
        self.relations = relations
        self.has_smaller_neighbor = bool(np.any(relations == SMALLER))
        #: source elements of this cluster (filled by the solver once the
        #: sources are bound; avoids a set intersection per correction step)
        self.source_elements = np.zeros(0, dtype=np.int64)
        #: per-cluster kernel scratch workspace (attached by the solver;
        #: ``None`` for the reference backend, which allocates per call)
        self.workspace = None
        # prediction storage
        self.pending_local_delta: np.ndarray | None = None
        self.pending_te: np.ndarray | None = None
        #: the prediction's projected local traces, reused by the correction
        #: (recomputing them from ``pending_te`` yields identical values)
        self.pending_traces: np.ndarray | None = None
        self.step_index = 0


class ClusteredLtsSolver:
    """Clustered rate-2 local time stepping ADER-DG solver."""

    def __init__(
        self,
        disc: Discretization,
        clustering: Clustering,
        sources: list | None = None,
        receivers: ReceiverSet | None = None,
        n_fused: int = 0,
        kernels=None,
        telemetry=None,
    ):
        if len(clustering.cluster_ids) != disc.n_elements:
            raise ValueError("clustering does not match the discretization")
        if np.any(clustering.cluster_time_steps[clustering.cluster_ids] > disc.time_steps + 1e-12):
            raise ValueError("clustered time steps exceed the CFL limit of some elements")
        self.disc = disc
        self.clustering = clustering
        self.n_fused = n_fused
        self.receivers = receivers
        self.sources = [self._bind_source(s) for s in (sources or [])]
        self._sources_by_element = {}
        for source in self.sources:
            self._sources_by_element.setdefault(source.element, []).append(source)

        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.backend = make_backend(kernels)
        self.backend.telemetry = self.telemetry
        self.dofs = disc.allocate_dofs(n_fused=n_fused)
        self.buffers = LtsBuffers(disc, n_fused=n_fused)
        self.clusters = [
            _ClusterData(disc, clustering, l) for l in range(clustering.n_clusters)
        ]
        for cluster in self.clusters:
            cluster.workspace = self.backend.make_workspace()
        source_ids = np.array(sorted(self._sources_by_element), dtype=np.int64)
        for cluster in self.clusters:
            cluster.source_elements = np.intersect1d(cluster.elements, source_ids)
        self.time = 0.0
        self.n_element_updates = 0

    def _bind_source(self, source) -> DiscretePointSource:
        if isinstance(source, DiscretePointSource):
            return source
        if isinstance(source, (MomentTensorSource, PointForceSource, list, tuple)):
            # a list/tuple is a fused per-slot source ensemble sharing one
            # location; DiscretePointSource stacks it along the fused axis
            return DiscretePointSource(self.disc, source)
        raise TypeError(f"unsupported source type: {type(source)!r}")

    # ------------------------------------------------------------------
    @property
    def macro_dt(self) -> float:
        """Duration of one macro cycle (one step of the largest cluster)."""
        return float(self.clustering.cluster_time_steps[-1])

    def set_initial_condition(self, func) -> None:
        self.dofs = self.disc.project_initial_condition(func, n_fused=self.n_fused)

    # ------------------------------------------------------------------
    def _predict(self, cluster: _ClusterData) -> None:
        """Time kernel, buffer fill and local update of one cluster."""
        if len(cluster.elements) == 0:
            cluster.pending_local_delta = None
            return
        with self.telemetry.region("predict"):
            delta, time_integrated_elastic, local_traces = self._predict_elements(
                cluster, cluster.elements
            )
        cluster.pending_local_delta = delta
        cluster.pending_te = time_integrated_elastic
        cluster.pending_traces = local_traces

    def _predict_elements(
        self, cluster: _ClusterData, elements: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The element-local prediction body for a batch of the cluster's
        elements: CK time kernel, buffer fill, volume + local surface update.

        Shared between the full-cluster ``_predict`` and the distributed
        rank stepper's boundary/interior split -- every contraction is
        element-local, so any partition of the batch produces bit-identical
        per-element results.  Returns
        ``(local_delta, elastic_time_integral, local_traces)``.
        """
        backend = self.backend
        ws = cluster.workspace
        delta, time_integrated, derivatives, local_traces = backend.local_update(
            self.disc, self.dofs, cluster.dt, elements, ws=ws
        )
        self.buffers.fill(
            elements,
            derivatives,
            cluster.dt,
            cluster.step_index,
            needs_half=True,
            backend=backend,
            ws=ws,
            elastic_integral=time_integrated[:, :N_ELASTIC],
        )
        return delta, time_integrated[:, :N_ELASTIC], local_traces

    def _neighbor_coefficients(self, cluster: _ClusterData) -> np.ndarray:
        """Face-basis coefficients of the neighbours' traces for a correction.

        Split out as a hook: the distributed rank stepper overlays the
        coefficients of partition-boundary faces with the face-local
        compressed payloads received through the communicator.
        """
        disc = self.disc
        backend = self.backend
        neighbor_te = self.buffers.neighbor_data(
            cluster.elements, cluster.neighbors, cluster.relations, cluster.step_index
        )
        own_traces = cluster.pending_traces
        if own_traces is None:
            own_traces = backend.project_local_traces(
                disc, cluster.pending_te, cluster.elements, ws=cluster.workspace
            )
        return backend.neighbor_face_coefficients(
            disc, neighbor_te, own_traces, cluster.elements, ws=cluster.workspace
        )

    def _correct(self, cluster: _ClusterData, cluster_start_time: float) -> None:
        """Neighbouring update and DOF advance of one cluster."""
        if len(cluster.elements) == 0:
            cluster.step_index += 1
            return
        disc = self.disc
        with self.telemetry.region("correct"):
            coeffs = self._neighbor_coefficients(cluster)
            delta = cluster.pending_local_delta
            with self.telemetry.region("kernel.surface_neighbor"):
                delta += self.backend.surface_kernel_neighbor(
                    disc, coeffs, cluster.elements, ws=cluster.workspace
                )
            self.dofs[cluster.elements] += delta
        cluster.pending_local_delta = None
        cluster.pending_te = None
        cluster.pending_traces = None

        t_new = cluster_start_time + cluster.dt
        for element in cluster.source_elements:
            for source in self._sources_by_element[int(element)]:
                source.inject(self.dofs, cluster_start_time, t_new)
        if self.receivers is not None:
            self.receivers.record_elements(cluster.elements, t_new, self.dofs)

        self.n_element_updates += len(cluster.elements)
        if self.telemetry.enabled:
            self.telemetry.inc(
                f"updates/cluster{cluster.cluster_id}", len(cluster.elements)
            )
        cluster.step_index += 1

    # ------------------------------------------------------------------
    def step_cycle(self) -> None:
        """Advance the whole mesh by one macro cycle (largest cluster step)."""
        n_clusters = self.clustering.n_clusters
        dt0 = float(self.clustering.cluster_time_steps[0])
        for entry in schedule_cycle(n_clusters):
            for l in entry["predict"]:
                self._predict(self.clusters[l])
            for l in entry["correct"]:
                cluster = self.clusters[l]
                start = self.time + (entry["micro_step"] + 1) * dt0 - cluster.dt
                self._correct(cluster, start)
        self.time += self.macro_dt

    def run(self, t_end: float) -> np.ndarray:
        """Advance to at least ``t_end`` (full macro cycles); returns the DOFs."""
        if t_end < self.time:
            raise ValueError("t_end lies in the past")
        n_cycles = int(np.ceil((t_end - self.time) / self.macro_dt - 1e-12))
        for _ in range(n_cycles):
            self.step_cycle()
        return self.dofs

    # ------------------------------------------------------------------
    def theoretical_speedup(self) -> float:
        """Theoretical speedup of the clustering over GTS at the mesh's dt_min."""
        return self.clustering.speedup()

    def updates_per_cycle(self) -> int:
        """Element updates per macro cycle of this configuration."""
        counts = self.clustering.counts
        n_clusters = self.clustering.n_clusters
        steps = 2 ** (n_clusters - 1 - np.arange(n_clusters))
        return int(np.sum(counts * steps))

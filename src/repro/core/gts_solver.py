"""Global time stepping (GTS) solver -- the baseline configuration.

Advances all elements with the minimum CFL time step of the mesh, using the
classic one-step ADER-DG update.  GTS is both the paper's baseline for the
algorithmic-efficiency comparisons (Tab. I, Fig. 9/10) and the reference the
LTS solver is verified against.
"""

from __future__ import annotations

import numpy as np

from ..kernels.backend import make_backend
from ..kernels.discretization import Discretization
from ..kernels.update import gts_step
from ..observability import NULL_TELEMETRY
from ..source.moment_tensor import DiscretePointSource, MomentTensorSource, PointForceSource
from ..source.receivers import ReceiverSet

__all__ = ["GlobalTimeSteppingSolver"]


class GlobalTimeSteppingSolver:
    """ADER-DG solver advancing every element at the global minimum time step.

    ``kernels`` selects the kernel-execution backend (``"ref"``/``"opt"`` or
    a backend instance); the optimized backend reuses one solver-wide scratch
    workspace across steps.
    """

    def __init__(
        self,
        disc: Discretization,
        dt: float | None = None,
        sources: list | None = None,
        receivers: ReceiverSet | None = None,
        n_fused: int = 0,
        kernels=None,
        telemetry=None,
    ):
        self.disc = disc
        self.dt = float(dt) if dt is not None else float(disc.time_steps.min())
        if self.dt <= 0:
            raise ValueError("time step must be positive")
        self.n_fused = n_fused
        self.receivers = receivers
        self.sources = [self._bind_source(s) for s in (sources or [])]
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.backend = make_backend(kernels)
        self.backend.telemetry = self.telemetry
        self.workspace = self.backend.make_workspace()
        self.dofs = disc.allocate_dofs(n_fused=n_fused)
        self.time = 0.0
        self.n_element_updates = 0

    def _bind_source(self, source) -> DiscretePointSource:
        if isinstance(source, DiscretePointSource):
            return source
        if isinstance(source, (MomentTensorSource, PointForceSource, list, tuple)):
            # a list/tuple is a fused per-slot source ensemble sharing one
            # location; DiscretePointSource stacks it along the fused axis
            return DiscretePointSource(self.disc, source)
        raise TypeError(f"unsupported source type: {type(source)!r}")

    # ------------------------------------------------------------------
    def set_initial_condition(self, func) -> None:
        """L2-project an initial condition ``func(points) -> values``."""
        self.dofs = self.disc.project_initial_condition(func, n_fused=self.n_fused)

    def step(self) -> None:
        """Advance all elements by one global time step."""
        with self.telemetry.region("update"):
            self.dofs = gts_step(
                self.disc, self.dofs, self.dt, backend=self.backend, ws=self.workspace
            )
        for source in self.sources:
            source.inject(self.dofs, self.time, self.time + self.dt)
        self.time += self.dt
        self.n_element_updates += self.disc.n_elements
        if self.receivers is not None:
            self.receivers.record_all(self.time, self.dofs)

    def run(self, t_end: float) -> np.ndarray:
        """Advance the simulation to (at least) ``t_end``; returns the DOFs."""
        if t_end < self.time:
            raise ValueError("t_end lies in the past")
        n_steps = int(np.ceil((t_end - self.time) / self.dt - 1e-12))
        for _ in range(n_steps):
            self.step()
        return self.dofs

"""Next-generation clustered local time stepping: the clustering (Sec. V-A).

Elements are grouped into ``N_c`` rate-2 time clusters

``C_1 = [lambda dt_min, 2 lambda dt_min), ..., C_Nc = [2^{Nc-1} lambda dt_min, inf)``

with the user-set number of clusters (including the open-ended last cluster)
and the tuning parameter ``lambda in (0.5, 1]`` that this paper introduces.
All elements of cluster ``C_l`` advance with the cluster's lower-bound time
step ``2^{l-1} lambda dt_min``.  The clustering is normalised so that
face-neighbouring elements differ by at most one cluster, which removes
corner cases from the buffer scheme at a negligible loss of algorithmic
efficiency (< 1.5 % in the studied settings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .speedup import load_fractions, theoretical_speedup

__all__ = ["Clustering", "assign_clusters", "normalize_clusters", "derive_clustering", "optimize_lambda"]


@dataclass(frozen=True)
class Clustering:
    """A complete LTS clustering of a mesh.

    Attributes
    ----------
    cluster_ids:
        Per-element cluster index (0-based; cluster 0 has the smallest step).
    cluster_time_steps:
        The time step of each cluster, ``2^l * lambda * dt_min``.
    lam:
        The lambda parameter used.
    dt_min:
        The minimum CFL time step of the mesh.
    """

    cluster_ids: np.ndarray
    cluster_time_steps: np.ndarray
    lam: float
    dt_min: float

    @property
    def n_clusters(self) -> int:
        return len(self.cluster_time_steps)

    @property
    def counts(self) -> np.ndarray:
        """Number of elements per cluster."""
        return np.bincount(self.cluster_ids, minlength=self.n_clusters)

    def speedup(self) -> float:
        """Theoretical speedup over GTS of this clustering."""
        return theoretical_speedup(self.cluster_ids, self.cluster_time_steps, self.dt_min)

    def load_fractions(self) -> np.ndarray:
        """Fraction of the total computational load carried by each cluster."""
        return load_fractions(self.cluster_ids, self.cluster_time_steps)

    def element_time_steps(self) -> np.ndarray:
        """The actual (clustered) time step each element advances with."""
        return self.cluster_time_steps[self.cluster_ids]


def assign_clusters(time_steps: np.ndarray, n_clusters: int, lam: float) -> np.ndarray:
    """Assign each element to its rate-2 cluster (eq. 16), without normalisation."""
    time_steps = np.asarray(time_steps, dtype=np.float64)
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    if not 0.5 < lam <= 1.0:
        raise ValueError("lambda must lie in (0.5, 1]")
    if np.any(time_steps <= 0):
        raise ValueError("time steps must be positive")
    dt_min = float(time_steps.min())
    ratios = time_steps / (lam * dt_min)
    # cluster l covers [2^l, 2^{l+1}) in units of lambda * dt_min
    ids = np.floor(np.log2(np.maximum(ratios, 1.0))).astype(np.int64)
    return np.clip(ids, 0, n_clusters - 1)


def normalize_clusters(cluster_ids: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
    """Lower cluster assignments until face neighbours differ by at most one.

    ``neighbors`` is the ``(K, 4)`` face-neighbour array of the mesh (boundary
    faces marked by negative entries).  Elements are only ever *moved down*
    (to smaller time steps), matching the paper's example of moving an
    element from ``C_3`` to ``C_2``.
    """
    cluster_ids = np.asarray(cluster_ids, dtype=np.int64).copy()
    neighbors = np.asarray(neighbors, dtype=np.int64)
    if neighbors.ndim != 2 or neighbors.shape[0] != len(cluster_ids):
        raise ValueError("neighbors must have shape (n_elements, n_faces)")
    for _ in range(int(cluster_ids.max()) + 2):
        neighbor_ids = np.where(neighbors >= 0, cluster_ids[np.maximum(neighbors, 0)], np.iinfo(np.int64).max)
        limit = neighbor_ids.min(axis=1) + 1
        new_ids = np.minimum(cluster_ids, limit)
        if np.array_equal(new_ids, cluster_ids):
            return new_ids
        cluster_ids = new_ids
    return cluster_ids


def derive_clustering(
    time_steps: np.ndarray,
    n_clusters: int,
    lam: float,
    neighbors: np.ndarray | None = None,
) -> Clustering:
    """Build a (normalised) clustering for the given per-element time steps."""
    time_steps = np.asarray(time_steps, dtype=np.float64)
    ids = assign_clusters(time_steps, n_clusters, lam)
    if neighbors is not None:
        ids = normalize_clusters(ids, neighbors)
    dt_min = float(time_steps.min())
    cluster_dts = lam * dt_min * 2.0 ** np.arange(n_clusters)
    return Clustering(cluster_ids=ids, cluster_time_steps=cluster_dts, lam=lam, dt_min=dt_min)


def optimize_lambda(
    time_steps: np.ndarray,
    n_clusters: int,
    neighbors: np.ndarray | None = None,
    increment: float = 0.01,
) -> Clustering:
    """Grid-search the lambda parameter (Sec. V-A's preprocessing step).

    Tests ``lambda in {0.5 + increment, ..., 1.0}`` and returns the clustering
    with the largest theoretical speedup over GTS.
    """
    if increment <= 0 or increment > 0.5:
        raise ValueError("increment must lie in (0, 0.5]")
    best: Clustering | None = None
    lam = 1.0
    candidates = np.arange(1.0, 0.5, -increment)
    for lam in candidates:
        clustering = derive_clustering(time_steps, n_clusters, float(lam), neighbors)
        if best is None or clustering.speedup() > best.speedup():
            best = clustering
    assert best is not None
    return best

"""Scheduling of the rate-2 clustered LTS scheme.

With ``N_c`` clusters whose time steps are ``dt_l = 2^l * dt_0``, the
simulation advances in micro steps of ``dt_0``.  Cluster ``l``

* *predicts* (time kernel + buffer fill) at the beginning of each of its
  intervals, i.e. at micro steps divisible by ``2^l``, and
* *corrects* (applies volume + surface updates and advances its DOFs) at the
  end of each of its intervals, i.e. after micro steps ``s`` with
  ``(s + 1)`` divisible by ``2^l``.

Corrections at a time-level boundary must use the buffer state *before* any
re-prediction at the same boundary; this module provides the pure scheduling
queries the solver loops over, which keeps the driver readable and easy to
test against the paper's Fig. 6 walkthrough.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "micro_steps_per_cycle",
    "clusters_predicting_at",
    "clusters_correcting_after",
    "updates_per_cycle",
    "schedule_cycle",
]


def micro_steps_per_cycle(n_clusters: int) -> int:
    """Number of smallest-cluster steps per step of the largest cluster."""
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    return 2 ** (n_clusters - 1)


def clusters_predicting_at(micro_step: int, n_clusters: int) -> list[int]:
    """Clusters that start a new interval at the given micro step."""
    return [l for l in range(n_clusters) if micro_step % (2**l) == 0]


def clusters_correcting_after(micro_step: int, n_clusters: int) -> list[int]:
    """Clusters whose interval ends after the given micro step (0-based)."""
    return [l for l in range(n_clusters) if (micro_step + 1) % (2**l) == 0]


def updates_per_cycle(cluster_counts: np.ndarray) -> int:
    """Total element updates in one macro cycle (one step of the largest cluster)."""
    cluster_counts = np.asarray(cluster_counts, dtype=np.int64)
    n_clusters = len(cluster_counts)
    steps = 2 ** (n_clusters - 1 - np.arange(n_clusters))
    return int(np.sum(cluster_counts * steps))


def schedule_cycle(n_clusters: int) -> list[dict]:
    """The full schedule of one macro cycle as a list of micro-step entries.

    Each entry is ``{"micro_step": s, "predict": [...], "correct": [...]}``
    where ``predict`` lists the clusters predicting at the *beginning* of the
    micro step and ``correct`` those correcting at its end.  The first micro
    step predicts every cluster (all elements are at a common time level at
    the beginning of a cycle, as in Fig. 6 (a)).
    """
    schedule = []
    for s in range(micro_steps_per_cycle(n_clusters)):
        schedule.append(
            {
                "micro_step": s,
                "predict": clusters_predicting_at(s, n_clusters),
                "correct": clusters_correcting_after(s, n_clusters),
            }
        )
    return schedule

"""Algorithmic efficiency model of clustered local time stepping.

The cost of advancing the mesh by one unit of simulated time is
``sum_k 1 / dt_k^{used}`` element updates; GTS uses ``dt_min`` for every
element while LTS uses each element's cluster time step.  The theoretical
speedup of a clustering over GTS (the numbers quoted for Figs. 4 and 5,
e.g. 2.28x / 2.67x for LOH.3 and 5.38x for La Habra) is the ratio of these
costs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "update_cost_per_unit_time",
    "theoretical_speedup",
    "load_fractions",
    "normalization_loss",
    "ideal_speedup",
]


def update_cost_per_unit_time(cluster_ids: np.ndarray, cluster_time_steps: np.ndarray) -> float:
    """Element updates per unit simulated time of a clustered configuration."""
    cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
    cluster_time_steps = np.asarray(cluster_time_steps, dtype=np.float64)
    return float(np.sum(1.0 / cluster_time_steps[cluster_ids]))


def theoretical_speedup(
    cluster_ids: np.ndarray, cluster_time_steps: np.ndarray, dt_min: float
) -> float:
    """Speedup of the clustering over global time stepping at ``dt_min``."""
    n_elements = len(cluster_ids)
    gts_cost = n_elements / dt_min
    lts_cost = update_cost_per_unit_time(cluster_ids, cluster_time_steps)
    return gts_cost / lts_cost


def ideal_speedup(time_steps: np.ndarray) -> float:
    """Speedup of (hypothetical) fully element-local time stepping over GTS."""
    time_steps = np.asarray(time_steps, dtype=np.float64)
    gts_cost = len(time_steps) / time_steps.min()
    local_cost = float(np.sum(1.0 / time_steps))
    return gts_cost / local_cost


def load_fractions(cluster_ids: np.ndarray, cluster_time_steps: np.ndarray) -> np.ndarray:
    """Fraction of the total update load carried by each cluster.

    This is what the paper quotes as e.g. "cluster C2 ... carries most of the
    computational load (78.5 %)" for the LOH.3 clustering of Fig. 4 (a).
    """
    cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
    cluster_time_steps = np.asarray(cluster_time_steps, dtype=np.float64)
    counts = np.bincount(cluster_ids, minlength=len(cluster_time_steps))
    loads = counts / cluster_time_steps
    return loads / loads.sum()


def normalization_loss(
    raw_cluster_ids: np.ndarray,
    normalized_cluster_ids: np.ndarray,
    cluster_time_steps: np.ndarray,
) -> float:
    """Relative loss of algorithmic efficiency caused by the normalisation.

    The paper reports this loss to be below 1.5 % for the studied settings.
    """
    raw = update_cost_per_unit_time(raw_cluster_ids, cluster_time_steps)
    normalized = update_cost_per_unit_time(normalized_cluster_ids, cluster_time_steps)
    return normalized / raw - 1.0

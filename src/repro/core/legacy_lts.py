"""Model of the previous-generation buffer/derivative LTS scheme (ref. [15]).

The scheme of Breuer, Heinecke & Bader 2016 -- used by SeisSol and the
baseline the paper compares against -- communicates either summed time
buffers or raw time *derivatives* between elements of different clusters.
For the elastic wave equations the higher time derivatives carry zero blocks
that can be exploited; for the anelastic wave equations they do not (the
elastic derivatives couple to the anelastic ones through the reactive
source), so the derivative exchange becomes prohibitively large -- the
motivation for the next-generation scheme (Sec. V).

This module provides the per-element data-exchange volumes of

* the legacy derivative exchange (with and without the elastic zero-block
  optimisation),
* the next-generation three-buffer scheme, and
* the face-local compressed MPI representation (Sec. V-C),

which the communication benchmark turns into the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..basis.functions import basis_size, face_basis_size

__all__ = ["CommunicationVolume", "communication_volumes"]

N_ELASTIC = 9


@dataclass(frozen=True)
class CommunicationVolume:
    """Per-element (or per-face) exchanged values of the different schemes."""

    derivative_scheme_elastic: int  #: legacy scheme, elastic equations, zero blocks exploited
    derivative_scheme_anelastic: int  #: legacy scheme applied to the anelastic equations
    buffer_scheme: int  #: next-generation scheme, one shared-memory buffer
    face_local_mpi: int  #: face-local compressed representation per face (Sec. V-C)

    def reduction_vs_derivatives(self) -> float:
        """Data reduction of the buffer scheme vs. the legacy anelastic exchange."""
        return self.derivative_scheme_anelastic / self.buffer_scheme

    def reduction_face_local(self) -> float:
        """Data reduction of one face-local MPI message vs. one full buffer."""
        return self.buffer_scheme / self.face_local_mpi


def communication_volumes(order: int, n_mechanisms: int = 3) -> CommunicationVolume:
    """Exchange volumes (in scalar values) for a given order and mechanism count.

    For ``order = 5`` the derivative exchange of the elastic equations needs
    ``sum_d 9 * B(5 - d)`` values when exploiting the zero blocks of the
    higher derivatives, whereas the anelastic case requires all
    ``O * 9 * B = 1,575`` values (the paper's number).  The next-generation
    buffer holds ``9 * B = 315`` values and the face-local MPI message
    ``9 * F = 135`` values.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if n_mechanisms < 0:
        raise ValueError("n_mechanisms must be non-negative")
    b = basis_size(order)
    f = face_basis_size(order)

    # elastic: derivative d only needs the basis functions of degree <= O-1-d
    derivative_elastic = sum(N_ELASTIC * basis_size(order - d) for d in range(order))
    # anelastic: no zero blocks exploitable -> all O derivatives at full size
    derivative_anelastic = order * N_ELASTIC * b
    buffer_scheme = N_ELASTIC * b
    face_local = N_ELASTIC * f
    return CommunicationVolume(
        derivative_scheme_elastic=derivative_elastic,
        derivative_scheme_anelastic=derivative_anelastic,
        buffer_scheme=buffer_scheme,
        face_local_mpi=face_local,
    )

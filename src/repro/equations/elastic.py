"""Elastic wave equations: Jacobians and element-local star matrices.

The elastic part of the variable vector is ordered as in the paper,
``q_e = (sig_xx, sig_yy, sig_zz, sig_xy, sig_yz, sig_xz, u, v, w)``, and the
system reads ``q_t + A q_x + B q_y + C q_z = E q`` with the sparse Jacobians
``A_e, B_e, C_e in R^{9x9}`` of Dumbser & Kaeser (paper ref. [23]).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "N_ELASTIC_VARS",
    "STRESS_INDICES",
    "VELOCITY_INDICES",
    "elastic_jacobians",
    "elastic_star_matrices",
    "wave_speeds",
]

N_ELASTIC_VARS = 9
STRESS_INDICES = (0, 1, 2, 3, 4, 5)
VELOCITY_INDICES = (6, 7, 8)


def elastic_jacobians(lam: float, mu: float, rho: float) -> np.ndarray:
    """The three elastic Jacobians ``(A_e, B_e, C_e)`` as an array ``(3, 9, 9)``."""
    if rho <= 0:
        raise ValueError("density must be positive")
    a = np.zeros((9, 9))
    b = np.zeros((9, 9))
    c = np.zeros((9, 9))
    lam2mu = lam + 2.0 * mu
    inv_rho = 1.0 / rho

    # x-direction
    a[0, 6] = -lam2mu
    a[1, 6] = -lam
    a[2, 6] = -lam
    a[3, 7] = -mu
    a[5, 8] = -mu
    a[6, 0] = -inv_rho
    a[7, 3] = -inv_rho
    a[8, 5] = -inv_rho

    # y-direction
    b[0, 7] = -lam
    b[1, 7] = -lam2mu
    b[2, 7] = -lam
    b[3, 6] = -mu
    b[4, 8] = -mu
    b[6, 3] = -inv_rho
    b[7, 1] = -inv_rho
    b[8, 4] = -inv_rho

    # z-direction
    c[0, 8] = -lam
    c[1, 8] = -lam
    c[2, 8] = -lam2mu
    c[4, 7] = -mu
    c[5, 6] = -mu
    c[6, 5] = -inv_rho
    c[7, 4] = -inv_rho
    c[8, 2] = -inv_rho

    return np.stack([a, b, c])


def elastic_jacobians_batch(lam: np.ndarray, mu: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Vectorised Jacobians for per-element materials, shape ``(K, 3, 9, 9)``."""
    lam = np.asarray(lam, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    rho = np.asarray(rho, dtype=np.float64)
    n = len(lam)
    jac = np.zeros((n, 3, 9, 9))
    lam2mu = lam + 2.0 * mu
    inv_rho = 1.0 / rho

    jac[:, 0, 0, 6] = -lam2mu
    jac[:, 0, 1, 6] = -lam
    jac[:, 0, 2, 6] = -lam
    jac[:, 0, 3, 7] = -mu
    jac[:, 0, 5, 8] = -mu
    jac[:, 0, 6, 0] = -inv_rho
    jac[:, 0, 7, 3] = -inv_rho
    jac[:, 0, 8, 5] = -inv_rho

    jac[:, 1, 0, 7] = -lam
    jac[:, 1, 1, 7] = -lam2mu
    jac[:, 1, 2, 7] = -lam
    jac[:, 1, 3, 6] = -mu
    jac[:, 1, 4, 8] = -mu
    jac[:, 1, 6, 3] = -inv_rho
    jac[:, 1, 7, 1] = -inv_rho
    jac[:, 1, 8, 4] = -inv_rho

    jac[:, 2, 0, 8] = -lam
    jac[:, 2, 1, 8] = -lam
    jac[:, 2, 2, 8] = -lam2mu
    jac[:, 2, 4, 7] = -mu
    jac[:, 2, 5, 6] = -mu
    jac[:, 2, 6, 5] = -inv_rho
    jac[:, 2, 7, 4] = -inv_rho
    jac[:, 2, 8, 2] = -inv_rho
    return jac


def elastic_star_matrices(
    inverse_jacobians: np.ndarray, lam: np.ndarray, mu: np.ndarray, rho: np.ndarray
) -> np.ndarray:
    """Element-local star matrices ``Abar_e_{k,c}`` of eq. (6)/(8).

    ``Abar_{k,c} = sum_d (dxi_c / dx_d) A_d`` combines the physical Jacobians
    with the element's inverse affine map so that the kernels can operate in
    reference coordinates.  Returns shape ``(K, 3, 9, 9)``.
    """
    jac = elastic_jacobians_batch(lam, mu, rho)  # (K, 3, 9, 9)
    inverse_jacobians = np.asarray(inverse_jacobians, dtype=np.float64)
    return np.einsum("kcd,kdij->kcij", inverse_jacobians, jac)


def wave_speeds(lam: np.ndarray, mu: np.ndarray, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """P- and S-wave speeds from Lame parameters."""
    lam = np.asarray(lam, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    rho = np.asarray(rho, dtype=np.float64)
    vp = np.sqrt((lam + 2.0 * mu) / rho)
    vs = np.sqrt(mu / rho)
    return vp, vs

"""Material models for the (visco)elastic wave equations.

The solver works with per-element material tables sampled from a velocity
model at the element centroids (the per-element seismic velocities written by
the preprocessing pipeline, Sec. VI).  Quality factors ``Q_p``/``Q_s`` follow
the frequency-independent (constant-Q) definition used by the High-F project
and the LOH.3 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ElasticMaterial", "ViscoelasticMaterial", "MaterialTable"]


@dataclass(frozen=True)
class ElasticMaterial:
    """Isotropic elastic material given by density and body-wave velocities."""

    rho: float  #: density [kg/m^3]
    vp: float  #: p-wave velocity [m/s]
    vs: float  #: s-wave velocity [m/s]

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.vp <= 0 or self.vs < 0:
            raise ValueError("density and velocities must be positive (vs may be zero)")
        if self.vs >= self.vp:
            raise ValueError("shear velocity must be smaller than p-wave velocity")

    @property
    def mu(self) -> float:
        """Shear modulus."""
        return self.rho * self.vs**2

    @property
    def lam(self) -> float:
        """First Lame parameter."""
        return self.rho * (self.vp**2 - 2.0 * self.vs**2)


@dataclass(frozen=True)
class ViscoelasticMaterial(ElasticMaterial):
    """Elastic material extended by constant-Q quality factors."""

    qp: float = np.inf  #: p-wave quality factor
    qs: float = np.inf  #: s-wave quality factor

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qp <= 0 or self.qs <= 0:
            raise ValueError("quality factors must be positive")


class MaterialTable:
    """Per-element material arrays for a mesh.

    All arrays have one entry per element; this is the structure the kernels
    consume directly (EDGE stores the equivalent per-element data in the
    annotation files written by the preprocessing pipeline).
    """

    def __init__(
        self,
        rho: np.ndarray,
        vp: np.ndarray,
        vs: np.ndarray,
        qp: np.ndarray | None = None,
        qs: np.ndarray | None = None,
    ):
        self.rho = np.asarray(rho, dtype=np.float64)
        self.vp = np.asarray(vp, dtype=np.float64)
        self.vs = np.asarray(vs, dtype=np.float64)
        n = len(self.rho)
        if not (len(self.vp) == len(self.vs) == n):
            raise ValueError("rho, vp and vs must have the same length")
        if np.any(self.rho <= 0) or np.any(self.vp <= 0) or np.any(self.vs <= 0):
            raise ValueError("material parameters must be positive")
        if np.any(self.vs >= self.vp):
            raise ValueError("vs must be smaller than vp everywhere")
        self.qp = np.full(n, np.inf) if qp is None else np.asarray(qp, dtype=np.float64)
        self.qs = np.full(n, np.inf) if qs is None else np.asarray(qs, dtype=np.float64)
        if len(self.qp) != n or len(self.qs) != n:
            raise ValueError("qp and qs must have the same length as rho")
        if np.any(self.qp <= 0) or np.any(self.qs <= 0):
            raise ValueError("quality factors must be positive")

    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        return len(self.rho)

    @property
    def mu(self) -> np.ndarray:
        return self.rho * self.vs**2

    @property
    def lam(self) -> np.ndarray:
        return self.rho * (self.vp**2 - 2.0 * self.vs**2)

    @property
    def max_wave_speed(self) -> np.ndarray:
        return self.vp

    def is_attenuating(self) -> bool:
        """Whether any element carries a finite quality factor."""
        return bool(np.any(np.isfinite(self.qp)) or np.any(np.isfinite(self.qs)))

    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, material: ElasticMaterial, n_elements: int) -> "MaterialTable":
        """A table with the same material in every element."""
        qp = getattr(material, "qp", np.inf)
        qs = getattr(material, "qs", np.inf)
        return cls(
            rho=np.full(n_elements, material.rho),
            vp=np.full(n_elements, material.vp),
            vs=np.full(n_elements, material.vs),
            qp=np.full(n_elements, qp),
            qs=np.full(n_elements, qs),
        )

    @classmethod
    def from_velocity_model(cls, model, centroids: np.ndarray) -> "MaterialTable":
        """Sample a velocity model (see :mod:`repro.preprocessing.velocity_model`)
        at element centroids."""
        sample = model.sample(np.asarray(centroids, dtype=np.float64))
        return cls(
            rho=sample["rho"],
            vp=sample["vp"],
            vs=sample["vs"],
            qp=sample.get("qp"),
            qs=sample.get("qs"),
        )

    def subset(self, element_ids: np.ndarray) -> "MaterialTable":
        """Material table restricted to the given elements (e.g. one partition)."""
        ids = np.asarray(element_ids, dtype=np.int64)
        return MaterialTable(
            rho=self.rho[ids], vp=self.vp[ids], vs=self.vs[ids], qp=self.qp[ids], qs=self.qs[ids]
        )

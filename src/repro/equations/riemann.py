"""Riemann solvers / flux solver matrices for element faces.

The surface kernel (eqs. 10-13) applies element-local "flux solver" matrices
``A~-_{k,i}`` (acting on the element's own trace) and ``A~+_{k,i}`` (acting
on the face-neighbour's trace).  This module provides the single-face
building blocks; :mod:`repro.kernels.discretization` assembles the per-mesh
arrays and folds in the ``|S_i| / |J_k|`` geometry scaling.

Two flux choices are implemented:

``rusanov``
    Local Lax-Friedrichs flux.  Simple, robust and sufficient for all LTS
    correctness studies (the LTS-vs-GTS comparisons do not depend on the
    choice of flux).
``godunov``
    Face-aligned upwind flux: the trace is rotated into a face-aligned frame,
    split with the 1-D elastic upwind matrices of the respective side's
    material, and rotated back.  Used for the convergence/accuracy studies.

The anelastic flux rows act on the elastic traces only (eqs. 12-13) and use a
central average; the relaxation frequencies and coupling moduli are applied
by the kernels.
"""

from __future__ import annotations

import numpy as np

from .anelastic import anelastic_jacobians
from .elastic import elastic_jacobians

__all__ = [
    "FLUX_KINDS",
    "tangent_vectors",
    "stress_rotation_matrix",
    "elastic_rotation_matrix",
    "elastic_normal_jacobian",
    "anelastic_normal_jacobian",
    "elastic_upwind_split",
    "rusanov_flux_matrices",
    "godunov_flux_matrices",
    "free_surface_ghost_operator",
    "absorbing_ghost_operator",
]

FLUX_KINDS = ("rusanov", "godunov")

#: index pairs of the 6-component stress ordering (xx, yy, zz, xy, yz, xz)
_STRESS_PAIRS = ((0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (0, 2))


# ----------------------------------------------------------------------
# rotations
# ----------------------------------------------------------------------
def tangent_vectors(normal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Two unit tangents completing ``normal`` to a right-handed frame.

    Vectorised over leading dimensions; ``normal`` must contain unit vectors.
    """
    normal = np.asarray(normal, dtype=np.float64)
    helper = np.zeros_like(normal)
    # pick the coordinate axis least aligned with the normal
    smallest = np.argmin(np.abs(normal), axis=-1)
    idx = np.expand_dims(smallest, axis=-1)
    np.put_along_axis(helper, idx, 1.0, axis=-1)
    s = np.cross(normal, helper)
    s /= np.linalg.norm(s, axis=-1, keepdims=True)
    t = np.cross(normal, s)
    return s, t


def stress_rotation_matrix(rotation: np.ndarray) -> np.ndarray:
    """6x6 transformation of symmetric stress tensors under a 3x3 rotation.

    For ``sigma_global = R sigma_local R^T`` expressed on the 6-component
    ordering ``(xx, yy, zz, xy, yz, xz)``.  Vectorised over leading dims.
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    shape = rotation.shape[:-2]
    out = np.empty(shape + (6, 6), dtype=np.float64)
    for row, (i, j) in enumerate(_STRESS_PAIRS):
        for col, (a, b) in enumerate(_STRESS_PAIRS):
            term = rotation[..., i, a] * rotation[..., j, b]
            if a != b:
                term = term + rotation[..., i, b] * rotation[..., j, a]
            out[..., row, col] = term
    return out


def elastic_rotation_matrix(normal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rotation ``T`` (and its inverse) of the 9 elastic variables into a
    face-aligned frame whose first axis is ``normal``.

    Returns ``(T, T_inv)`` with shapes ``(..., 9, 9)``; ``q_global = T q_face``.
    """
    normal = np.asarray(normal, dtype=np.float64)
    s, t = tangent_vectors(normal)
    # R columns are the face frame expressed in global coordinates
    rot = np.stack([normal, s, t], axis=-1)
    shape = rot.shape[:-2]
    big = np.zeros(shape + (9, 9), dtype=np.float64)
    big_inv = np.zeros_like(big)
    big[..., :6, :6] = stress_rotation_matrix(rot)
    big[..., 6:, 6:] = rot
    rot_t = np.swapaxes(rot, -1, -2)
    big_inv[..., :6, :6] = stress_rotation_matrix(rot_t)
    big_inv[..., 6:, 6:] = rot_t
    return big, big_inv


# ----------------------------------------------------------------------
# normal Jacobians
# ----------------------------------------------------------------------
def elastic_normal_jacobian(lam: float, mu: float, rho: float, normal: np.ndarray) -> np.ndarray:
    """``A n_x + B n_y + C n_z`` for a single material and unit normal."""
    jac = elastic_jacobians(lam, mu, rho)
    normal = np.asarray(normal, dtype=np.float64)
    return np.einsum("d,dij->ij", normal, jac)


def anelastic_normal_jacobian(normal: np.ndarray) -> np.ndarray:
    """Normal combination of the (material independent) anelastic blocks.

    Vectorised over leading dimensions of ``normal``; returns ``(..., 6, 9)``.
    """
    jac = anelastic_jacobians()  # (3, 6, 9)
    normal = np.asarray(normal, dtype=np.float64)
    return np.einsum("...d,dij->...ij", normal, jac)


# ----------------------------------------------------------------------
# upwind splitting
# ----------------------------------------------------------------------
def elastic_upwind_split(lam: float, mu: float, rho: float) -> tuple[np.ndarray, np.ndarray]:
    """Positive/negative parts of the 1-D (x-direction) elastic Jacobian.

    ``A = A_plus + A_minus`` with ``A_plus`` having the non-negative and
    ``A_minus`` the non-positive wave speeds.  Computed via the numerical
    eigendecomposition of the 9x9 Jacobian (its eigenvalues are
    ``+-v_p, +-v_s (x2)`` and ``0 (x3)``; the matrix is diagonalisable).
    """
    a = elastic_jacobians(lam, mu, rho)[0]
    eigvals, eigvecs = np.linalg.eig(a)
    eigvals = np.real(eigvals)
    eigvecs = np.real(eigvecs)
    inv_vecs = np.linalg.inv(eigvecs)
    plus = eigvecs @ np.diag(np.maximum(eigvals, 0.0)) @ inv_vecs
    minus = eigvecs @ np.diag(np.minimum(eigvals, 0.0)) @ inv_vecs
    return plus, minus


# ----------------------------------------------------------------------
# flux solver matrices for a single face
# ----------------------------------------------------------------------
def rusanov_flux_matrices(
    lam_local: float,
    mu_local: float,
    rho_local: float,
    lam_neigh: float,
    mu_neigh: float,
    rho_neigh: float,
    normal: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Local Lax-Friedrichs flux matrices ``(G_local, G_neigh)``.

    The numerical normal flux is ``F* = G_local q_k + G_neigh q_kn`` with
    ``G_local = (A_n(k) + s I)/2`` and ``G_neigh = (A_n(kn) - s I)/2`` where
    ``s`` is the largest wave speed across the interface.
    """
    an_local = elastic_normal_jacobian(lam_local, mu_local, rho_local, normal)
    an_neigh = elastic_normal_jacobian(lam_neigh, mu_neigh, rho_neigh, normal)
    vp_local = np.sqrt((lam_local + 2.0 * mu_local) / rho_local)
    vp_neigh = np.sqrt((lam_neigh + 2.0 * mu_neigh) / rho_neigh)
    s = max(vp_local, vp_neigh)
    eye = np.eye(9)
    return 0.5 * (an_local + s * eye), 0.5 * (an_neigh - s * eye)


def godunov_flux_matrices(
    lam_local: float,
    mu_local: float,
    rho_local: float,
    lam_neigh: float,
    mu_neigh: float,
    rho_neigh: float,
    normal: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Face-aligned upwind flux matrices ``(G_local, G_neigh)``.

    Outgoing characteristics use the local material's positive split,
    incoming characteristics the neighbour material's negative split
    (Dumbser & Kaeser style upwinding).
    """
    t_mat, t_inv = elastic_rotation_matrix(np.asarray(normal, dtype=np.float64))
    plus_local, _ = elastic_upwind_split(lam_local, mu_local, rho_local)
    _, minus_neigh = elastic_upwind_split(lam_neigh, mu_neigh, rho_neigh)
    g_local = t_mat @ plus_local @ t_inv
    g_neigh = t_mat @ minus_neigh @ t_inv
    return g_local, g_neigh


# ----------------------------------------------------------------------
# boundary ghost operators
# ----------------------------------------------------------------------
def free_surface_ghost_operator(normal: np.ndarray) -> np.ndarray:
    """Ghost-state operator of a traction-free surface.

    The ghost trace equals the interior trace with the three traction
    components (``sigma'_nn, sigma'_ns, sigma'_nt`` in the face-aligned
    frame) negated; particle velocities are kept.  The flux solver applied to
    this ghost state then enforces (approximately) zero traction at the face.
    """
    t_mat, t_inv = elastic_rotation_matrix(np.asarray(normal, dtype=np.float64))
    mirror = np.diag([-1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0])
    return t_mat @ mirror @ t_inv


def absorbing_ghost_operator(normal: np.ndarray) -> np.ndarray:
    """Ghost-state operator of a first-order absorbing (outflow) face."""
    return np.eye(9)

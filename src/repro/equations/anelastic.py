"""Viscoelastic attenuation: relaxation mechanisms, Q-fitting and coupling.

EDGE models anelastic attenuation with a generalized Maxwell body of ``m``
relaxation mechanisms (typically three, Sec. VII-A).  Each mechanism ``l``
contributes six memory variables per element (paper eq. 1); following the
formulation of Kaeser et al. (paper ref. [24]) the memory variables are
relaxation-filtered strain rates:

* their evolution is driven by the velocity gradients through the
  *mechanism-independent* anelastic Jacobian blocks ``A_a, B_a, C_a`` with
  the relaxation frequency ``omega_l`` factored out -- exactly the structure
  the paper exploits in eqs. (7), (9), (12) and (13);
* the material (and Q) dependence sits in the per-mechanism coupling
  matrices ``E_l in R^{9x6}`` that feed the memory variables back into the
  stress equations (eq. 3), built from anelastic Lame parameters fitted to
  the frequency-independent quality factors ``Q_p``/``Q_s``.

Derivation sketch (generalized Maxwell body)::

    sigma(t)     = int Psi(t - tau) deps/dt dtau,   Psi(t) = M_R + sum_l M_l exp(-omega_l t)
    dsigma/dt    = M_u deps/dt - sum_l M_l zeta_l
    zeta_l(t)    = omega_l int exp(-omega_l (t - tau)) deps/dt dtau
    dzeta_l/dt   = omega_l deps/dt - omega_l zeta_l

with ``M_l = Y_l M_u`` the per-mechanism anelastic moduli.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

__all__ = [
    "RelaxationSpectrum",
    "fit_constant_q",
    "quality_factor_of_spectrum",
    "anelastic_lame_parameters",
    "coupling_matrices",
    "anelastic_jacobians",
    "anelastic_star_matrices",
    "n_anelastic_vars",
]


def n_anelastic_vars(n_mechanisms: int) -> int:
    """Number of memory variables ``N_a(m) = 6 m``."""
    return 6 * n_mechanisms


# ----------------------------------------------------------------------
# constant-Q fitting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RelaxationSpectrum:
    """Relaxation frequencies and dimensionless anelastic coefficients.

    The spectrum approximates ``1/Q(w) = sum_l y_l * omega_l * w /
    (omega_l^2 + w^2)``; the unit coefficients are fitted for ``Q = 1`` and
    scale linearly with ``1/Q`` (linearised constant-Q model, accurate for
    the large quality factors of the considered workloads).
    """

    omegas: np.ndarray  #: (m,) relaxation frequencies [rad/s]
    y_unit: np.ndarray  #: (m,) coefficients realising Q = 1

    @property
    def n_mechanisms(self) -> int:
        return len(self.omegas)

    def coefficients(self, q: np.ndarray | float) -> np.ndarray:
        """Anelastic coefficients ``Y_l`` for quality factor(s) ``q``.

        For an array ``q`` of shape ``(K,)`` the result has shape ``(K, m)``;
        infinite Q yields zero coefficients (purely elastic element).
        """
        q = np.asarray(q, dtype=np.float64)
        inv_q = np.where(np.isfinite(q), 1.0 / q, 0.0)
        return np.multiply.outer(inv_q, self.y_unit)


def fit_constant_q(
    frequency_band: tuple[float, float],
    n_mechanisms: int = 3,
    n_sample_frequencies: int = 24,
) -> RelaxationSpectrum:
    """Fit relaxation frequencies and coefficients for frequency-independent Q.

    The relaxation frequencies are logarithmically spaced over the band and
    the non-negative coefficients are obtained from a least-squares fit of
    ``1/Q(omega) = 1`` at sample frequencies (Emmerich & Korn style).
    """
    f_min, f_max = frequency_band
    if f_min <= 0 or f_max <= f_min:
        raise ValueError("frequency band must satisfy 0 < f_min < f_max")
    if n_mechanisms < 1:
        raise ValueError("need at least one relaxation mechanism")

    omegas = 2.0 * np.pi * np.logspace(np.log10(f_min), np.log10(f_max), n_mechanisms)
    sample = 2.0 * np.pi * np.logspace(
        np.log10(f_min), np.log10(f_max), max(n_sample_frequencies, 2 * n_mechanisms)
    )
    design = (omegas[None, :] * sample[:, None]) / (omegas[None, :] ** 2 + sample[:, None] ** 2)
    target = np.ones(len(sample))
    y_unit, _residual = nnls(design, target)
    return RelaxationSpectrum(omegas=omegas, y_unit=y_unit)


def quality_factor_of_spectrum(
    omegas: np.ndarray, y: np.ndarray, frequencies: np.ndarray
) -> np.ndarray:
    """Quality factor ``Q(f)`` realised by a relaxation spectrum."""
    omegas = np.asarray(omegas, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    w = 2.0 * np.pi * np.asarray(frequencies, dtype=np.float64)
    inv_q = np.sum(
        y[None, :] * omegas[None, :] * w[:, None] / (omegas[None, :] ** 2 + w[:, None] ** 2),
        axis=1,
    )
    with np.errstate(divide="ignore"):
        return np.where(inv_q > 0, 1.0 / inv_q, np.inf)


# ----------------------------------------------------------------------
# coupling matrices (material dependent)
# ----------------------------------------------------------------------
def anelastic_lame_parameters(
    lam: np.ndarray,
    mu: np.ndarray,
    qp: np.ndarray,
    qs: np.ndarray,
    spectrum: RelaxationSpectrum,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-element, per-mechanism anelastic Lame parameters ``(lam_a, mu_a)``.

    The shear coefficients follow ``Q_s``, the P-modulus coefficients follow
    ``Q_p`` and the anelastic first Lame parameter is recovered from
    ``lam_a = (lam + 2 mu) Y_p - 2 mu Y_s``.  Shapes are ``(K, m)``.
    """
    lam = np.asarray(lam, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    y_p = spectrum.coefficients(qp)
    y_s = spectrum.coefficients(qs)
    p_modulus = (lam + 2.0 * mu)[:, None]
    mu_a = mu[:, None] * y_s
    lam_a = p_modulus * y_p - 2.0 * mu_a
    return lam_a, mu_a


def coupling_matrices(lam_a: np.ndarray, mu_a: np.ndarray) -> np.ndarray:
    """Coupling matrices ``E_l`` feeding memory variables into the stresses.

    Parameters have shape ``(K, m)``; the result has shape ``(K, m, 9, 6)``.
    The stress equations receive ``- C_l zeta_l`` on their right-hand side,
    with ``C_l`` the isotropic anelastic stiffness of mechanism ``l`` acting
    on the (tensor) strain-rate memory variables.
    """
    lam_a = np.asarray(lam_a, dtype=np.float64)
    mu_a = np.asarray(mu_a, dtype=np.float64)
    if lam_a.shape != mu_a.shape or lam_a.ndim != 2:
        raise ValueError("lam_a and mu_a must both have shape (n_elements, n_mechanisms)")
    n_elem, n_mech = lam_a.shape
    e = np.zeros((n_elem, n_mech, 9, 6))
    lam2mu = lam_a + 2.0 * mu_a
    # normal stresses
    for row in range(3):
        for col in range(3):
            e[:, :, row, col] = -(lam2mu if row == col else lam_a)
    # shear stresses (tensor strain -> factor 2 mu)
    for idx in (3, 4, 5):
        e[:, :, idx, idx] = -2.0 * mu_a
    return e


# ----------------------------------------------------------------------
# anelastic Jacobian blocks (material independent, omega_l factored out)
# ----------------------------------------------------------------------
def anelastic_jacobians() -> np.ndarray:
    """The mechanism-independent anelastic Jacobian blocks, shape ``(3, 6, 9)``.

    The full-system Jacobian block of mechanism ``l`` is ``omega_l`` times the
    returned matrices (the factorisation of eq. 7).  The blocks extract the
    negative tensor strain rate from the particle-velocity columns, mirroring
    the sign convention of the elastic Jacobians.
    """
    jac = np.zeros((3, 6, 9))
    # x-direction: d/dx of (u, v, w) -> eps_xx, eps_xy, eps_xz
    jac[0, 0, 6] = -1.0
    jac[0, 3, 7] = -0.5
    jac[0, 5, 8] = -0.5
    # y-direction
    jac[1, 1, 7] = -1.0
    jac[1, 3, 6] = -0.5
    jac[1, 4, 8] = -0.5
    # z-direction
    jac[2, 2, 8] = -1.0
    jac[2, 4, 7] = -0.5
    jac[2, 5, 6] = -0.5
    return jac


def anelastic_star_matrices(inverse_jacobians: np.ndarray) -> np.ndarray:
    """Element-local anelastic star matrices ``Abar_a_{k,c}``, shape ``(K, 3, 6, 9)``.

    Only geometry enters (the anelastic Jacobian blocks carry no material
    dependence); the relaxation frequencies ``omega_l`` are applied by the
    kernels, and the anelastic moduli by the coupling matrices ``E_l``.
    """
    jac = anelastic_jacobians()  # (3, 6, 9)
    inverse_jacobians = np.asarray(inverse_jacobians, dtype=np.float64)
    return np.einsum("kcd,dij->kcij", inverse_jacobians, jac)

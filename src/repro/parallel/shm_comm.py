"""Zero-copy shared-memory halo exchange (Sec. V-C, scale-out transport).

:class:`ShmCommunicator` is the shared-memory sibling of
:class:`~repro.parallel.process_comm.ProcessCommunicator`: the exact same
``send``/``flush``/``recv``/``pending``/``stats``/``all_delivered`` interface
and the exact same send-side byte accounting, but halo payloads never travel
through a ``multiprocessing.Queue``.  The queue transport pays a pickle plus
a feeder-thread lock round per payload batch; here the sender writes the
payload bytes *in place* into a per-rank-pair ring buffer over
``multiprocessing.shared_memory`` and the queues only carry lightweight
tokens -- ``(tag, offset, shape, dtype, advance)`` headers, a few dozen
bytes regardless of payload size -- so the transport cost approaches a
single memcpy per side.

Ring layout (one segment per *directed* rank pair, single producer / single
consumer)::

    [ header: 64 bytes | data: capacity bytes ]
      released (uint64 at offset 0, written only by the consumer)

The producer keeps a private cumulative ``written`` counter and allocates at
``written % capacity`` (padding over the segment end when a payload would
wrap); free space is ``capacity - (written - released)``.  Each counter has
exactly one writer, so no locks are needed: a stale ``released`` read only
*under*-estimates free space.  The consumer copies the payload out of the
ring on ingest and immediately publishes the new ``released`` value, so ring
space recycles as fast as the receiver touches its communicator at all.

Tokens are shipped *after* the payload bytes are written (program order on
the producer, a pipe read on the consumer), which is what makes the data
visible before the header that describes it.  If a ring fills mid-flush the
producer ships the tokens written so far and drains its own inbound tokens
while waiting -- releasing its peers' rings -- so two mutually-full ranks
can never deadlock.

Capacity is sized by the engine from the exchange model
(:func:`ring_capacity`), several macro cycles deep, so the wait path is a
safety net rather than a steady state.  Segment lifetime is owned by the
*parent* engine process: it creates the segments before spawning workers and
unlinks them on ``close()``/``_terminate()`` and before every respawn;
workers only attach and close.  If the parent itself is SIGKILLed, the
``multiprocessing`` resource tracker (a separate process that survives the
kill) unlinks every still-registered segment -- no ``/dev/shm`` leak either
way.
"""

from __future__ import annotations

import queue as _queue
import struct
import time
from collections import defaultdict, deque
from itertools import groupby
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from .communicator import MessageStats, unflushed_note

__all__ = ["ShmCommunicator", "ShmRing", "ring_capacity", "create_ring_segment"]

#: ring header size: the consumer-written ``released`` counter (uint64 at
#: offset 0) padded to a cache line so header traffic never shares a line
#: with payload bytes
HEADER_BYTES = 64

_RELEASED = struct.Struct("<Q")


def ring_capacity(pair_bytes_per_cycle: float, min_capacity: int = 1 << 16) -> int:
    """Ring data capacity for a pair moving ``pair_bytes_per_cycle``.

    Four cycles deep (run-ahead between two parent commands is bounded by
    one cycle, so 4x keeps the blocking allocator a cold path), rounded up
    to a power of two, never below ``min_capacity``.
    """
    need = 4 * max(0, int(pair_bytes_per_cycle))
    return max(int(min_capacity), 1 << max(1, need - 1).bit_length())


def create_ring_segment(name: str, capacity: int) -> SharedMemory:
    """Create (and zero-initialise the header of) one ring's segment."""
    shm = SharedMemory(name=name, create=True, size=HEADER_BYTES + int(capacity))
    _RELEASED.pack_into(shm.buf, 0, 0)
    return shm


class ShmRing:
    """One endpoint of a directed rank pair's SPSC byte ring.

    The same class serves both roles: the producer only uses
    :meth:`try_allocate`/:meth:`view`, the consumer only
    :meth:`view`/:meth:`release`.  Capacity is derived from the segment
    size, so an attached endpoint needs nothing but the name.
    """

    def __init__(self, shm: SharedMemory):
        self.shm = shm
        self.capacity = shm.size - HEADER_BYTES
        if self.capacity <= 0:
            raise ValueError(f"segment {shm.name!r} is smaller than the ring header")
        #: producer-local cumulative allocated bytes (padding included)
        self.written = 0
        #: consumer-local mirror of the published ``released`` counter
        self.consumed = 0

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        return cls(SharedMemory(name=name))

    # -- producer side --------------------------------------------------
    def released(self) -> int:
        return _RELEASED.unpack_from(self.shm.buf, 0)[0]

    def try_allocate(self, nbytes: int) -> tuple[int, int] | None:
        """Reserve ``nbytes`` contiguous data bytes.

        Returns ``(offset, advance)`` -- where to write and how many ring
        bytes the allocation consumes (``advance > nbytes`` when the tail
        padding skips over the segment end) -- or ``None`` when the ring is
        currently too full.  Raises when the payload can never fit.
        """
        if nbytes > self.capacity:
            raise ValueError(
                f"payload of {nbytes} bytes exceeds the ring capacity "
                f"({self.capacity} bytes) of segment {self.shm.name!r}"
            )
        offset = self.written % self.capacity
        advance = nbytes if offset + nbytes <= self.capacity else (
            self.capacity - offset
        ) + nbytes
        if self.written + advance - self.released() > self.capacity:
            return None
        if offset + nbytes > self.capacity:
            offset = 0
        self.written += advance
        return offset, advance

    # -- both sides ------------------------------------------------------
    def view(self, offset: int, shape: tuple, dtype) -> np.ndarray:
        """An ndarray view straight over the ring's data bytes."""
        return np.ndarray(
            shape, dtype=dtype, buffer=self.shm.buf, offset=HEADER_BYTES + offset
        )

    # -- consumer side ---------------------------------------------------
    def release(self, advance: int) -> None:
        """Publish that ``advance`` more ring bytes may be overwritten."""
        self.consumed += int(advance)
        _RELEASED.pack_into(self.shm.buf, 0, self.consumed)

    def close(self) -> None:
        try:
            self.shm.close()
        except (BufferError, OSError):  # pragma: no cover - shutdown safety
            pass


class ShmCommunicator:
    """One rank's endpoint of the shared-memory halo-exchange fabric.

    ``tx`` maps destination rank to the producer endpoint of this rank's
    outgoing ring, ``rx`` maps source rank to the consumer endpoint of the
    incoming ring; ``inbound``/``outbound`` are the token queues (same
    wiring as the queue transport, but the items are header tuples).
    """

    #: sleep between free-space polls of a full ring (cold path)
    _WAIT_S = 200e-6

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        inbound,
        outbound: dict[int, object],
        tx: dict[int, ShmRing],
        rx: dict[int, ShmRing],
        timeout: float = 120.0,
    ):
        if not 0 <= rank < n_ranks:
            raise ValueError(f"rank {rank} out of range (n_ranks = {n_ranks})")
        self.rank = int(rank)
        self.n_ranks = int(n_ranks)
        self._inbound = inbound
        self._outbound = outbound
        self._tx = dict(tx)
        self._rx = dict(rx)
        self.timeout = timeout
        self._mailboxes: dict[tuple[int, int], deque[np.ndarray]] = defaultdict(deque)
        self._staged: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
        self.stats = MessageStats()

    # ------------------------------------------------------------------
    def send(self, payload: np.ndarray, src: int, dst: int, tag: int = 0) -> None:
        """Stage ``payload`` for rank ``dst`` (shipped on :meth:`flush`);
        the logical message is accounted immediately -- byte for byte the
        same accounting as the queue transport."""
        if src != self.rank:
            raise ValueError(f"rank {self.rank} cannot send as rank {src}")
        if not 0 <= dst < self.n_ranks:
            raise ValueError(f"rank {dst} out of range (n_ranks = {self.n_ranks})")
        payload = np.ascontiguousarray(payload)
        self._staged[dst].append((tag, payload))
        self.stats.record(src, dst, payload.nbytes)

    def flush(self) -> None:
        """Write every staged payload into its ring and ship the tokens.

        Halo payloads are tiny (one ``9 x F`` face block each), so per-
        payload ring writes would drown in Python overhead.  Instead each
        contiguous run of equal-shape payloads is written as ONE stacked
        block -- a single allocation, one ``np.stack`` straight into the
        ring, one token ``(tags, offset, block_shape, dtype, advance)`` --
        the same per-destination aggregation the queue transport performs,
        minus the pickle.  One token-queue item per destination per flush,
        except when a ring fills mid-batch: then the tokens written so far
        ship early so the consumer can release the space the rest of the
        batch needs.
        """
        for dst, staged in self._staged.items():
            if not staged:
                continue
            ring = self._tx[dst]
            tokens: list[tuple] = []
            for _, run in groupby(
                staged, key=lambda item: (item[1].shape, item[1].dtype.str)
            ):
                batch = list(run)
                item_nbytes = batch[0][1].nbytes
                # a block must fit in the ring in one piece; chunk wide runs
                # so the blocking allocator can stream them through
                chunk = max(1, ring.capacity // item_nbytes) if item_nbytes else len(batch)
                for start in range(0, len(batch), chunk):
                    part = batch[start : start + chunk]
                    arrays = [payload for _, payload in part]
                    block_shape = (len(arrays),) + arrays[0].shape
                    offset, advance = self._allocate(
                        ring, dst, item_nbytes * len(arrays), tokens
                    )
                    np.stack(
                        arrays, out=ring.view(offset, block_shape, arrays[0].dtype)
                    )
                    tokens.append(
                        (
                            tuple(int(tag) for tag, _ in part),
                            offset,
                            block_shape,
                            arrays[0].dtype.str,
                            advance,
                        )
                    )
            staged.clear()
            self._ship(dst, tokens)

    def _allocate(
        self, ring: ShmRing, dst: int, nbytes: int, tokens: list
    ) -> tuple[int, int]:
        """Reserve ring space, keeping the fabric live while waiting.

        On a full ring the tokens accumulated so far ship immediately (the
        peer cannot release space it has no headers for) and this rank's
        own inbound tokens are drained (releasing the rings *its* peers may
        be blocked on) -- two mutually-full ranks always make progress.
        """
        allocation = ring.try_allocate(nbytes)
        if allocation is not None:
            return allocation
        deadline = time.monotonic() + self.timeout
        while allocation is None:
            self._ship(dst, tokens)
            self._drain()
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"rank {self.rank}: ring to rank {dst} stayed full for "
                    f"{self.timeout:.0f} s ({ring.capacity} byte capacity) -- "
                    "peer died or stopped receiving"
                )
            time.sleep(self._WAIT_S)
            allocation = ring.try_allocate(nbytes)
        return allocation

    def _ship(self, dst: int, tokens: list) -> None:
        if tokens:
            self._outbound[dst].put((self.rank, list(tokens)))
            tokens.clear()

    # ------------------------------------------------------------------
    def recv(self, src: int, dst: int, tag: int = 0) -> np.ndarray:
        """Receive the oldest message on the ``(src, tag)`` channel; blocks."""
        if dst != self.rank:
            raise ValueError(f"rank {self.rank} cannot receive for rank {dst}")
        mailbox = self._mailboxes[(src, tag)]
        while not mailbox:
            try:
                self._ingest(self._inbound.get(timeout=self.timeout))
            except _queue.Empty:
                raise RuntimeError(
                    f"rank {self.rank}: no halo payload from rank {src} "
                    f"(tag {tag}) within {self.timeout:.0f} s -- peer died or "
                    f"schedule mismatch{unflushed_note(self._staged)}"
                ) from None
        return mailbox.popleft()

    def pending(self, src: int, dst: int, tag: int = 0) -> int:
        """Messages already *arrived* on a channel (in-flight ones are not
        observable; the steppers therefore consume by static count)."""
        if dst != self.rank:
            raise ValueError(f"rank {self.rank} cannot poll for rank {dst}")
        self._drain()
        return len(self._mailboxes[(src, tag)])

    def _ingest(self, item) -> None:
        """Copy each tokenised block out of the ring and release its space.

        Mailbox entries are per-message *copies* (never views of the ring or
        of a shared block), so the ring recycles immediately and a consumed
        message holds no other message's memory alive.
        """
        src, tokens = item
        ring = self._rx[int(src)]
        for tags, offset, shape, dtype, advance in tokens:
            block = ring.view(offset, shape, dtype)
            for index, tag in enumerate(tags):
                self._mailboxes[(int(src), int(tag))].append(block[index].copy())
            ring.release(advance)

    def _drain(self) -> None:
        while True:
            try:
                self._ingest(self._inbound.get_nowait())
            except _queue.Empty:
                return

    def all_delivered(self) -> bool:
        """Whether every staged payload went out and every payload that
        reached this rank has been consumed (same contract and caveats as
        the queue transport: in-flight tokens are unobservable)."""
        self._drain()
        return all(len(staged) == 0 for staged in self._staged.values()) and all(
            len(mailbox) == 0 for mailbox in self._mailboxes.values()
        )

    def close(self) -> None:
        """Detach from every ring segment (workers never unlink -- segment
        lifetime belongs to the parent engine)."""
        for ring in (*self._tx.values(), *self._rx.values()):
            ring.close()

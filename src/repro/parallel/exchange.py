"""Halo exchange with the paper's face-local compression (Sec. V-C).

Across the distributed-memory boundary EDGE does not send the full
``9 x B`` time buffers: the buffer data is first multiplied with the
neighbouring flux matrix ``F_bar`` (a ``B -> F`` reduction), so that only
``9 x F`` values per face travel through MPI -- the receiving element would
have performed exactly this multiplication anyway.  This module implements
the per-partition-boundary accounting and the exchange of face-local data
through the simulated communicator.

:class:`HaloIndex` precomputes the per-face index arrays (owning element,
face, neighbour, ranks, message tags) once, so that repeated exchanges and
the per-cycle accounting are vectorised instead of re-deriving them with
Python-level lookups on every call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..basis.functions import basis_size, face_basis_size
from .communicator import SimulatedCommunicator, pair_key

__all__ = [
    "HaloFace",
    "HaloIndex",
    "build_halo",
    "build_halo_index",
    "exchange_volumes_per_cycle",
    "exchange_face_data",
]

N_ELASTIC = 9


@dataclass(frozen=True)
class HaloFace:
    """One element face on a partition boundary."""

    element: int  #: owning element (global id)
    face: int  #: local face id of the owning element
    neighbor_element: int  #: element on the other side (global id)
    owner_rank: int
    neighbor_rank: int


@dataclass(frozen=True)
class HaloIndex:
    """Vectorised index arrays over all partition-boundary faces.

    Computed once at setup; every array has one entry per directed halo face
    (each cut face appears twice, once from each side).  ``tags`` is the
    unique message tag ``element * 4 + face`` of the owning side, which is
    what pairs a send with the matching receive.
    """

    elements: np.ndarray  #: (H,) owning element per halo face
    faces: np.ndarray  #: (H,) local face id of the owning element
    neighbor_elements: np.ndarray  #: (H,) element on the other side
    owner_ranks: np.ndarray  #: (H,)
    neighbor_ranks: np.ndarray  #: (H,)
    tags: np.ndarray  #: (H,) message tag of the owning side

    @property
    def n_faces(self) -> int:
        return len(self.elements)

    @classmethod
    def from_partitions(cls, neighbors: np.ndarray, partitions: np.ndarray) -> "HaloIndex":
        """All element faces whose neighbour lives on a different partition."""
        neighbors = np.asarray(neighbors, dtype=np.int64)
        partitions = np.asarray(partitions, dtype=np.int64)
        cut = (neighbors >= 0) & (
            partitions[np.maximum(neighbors, 0)] != partitions[:, None]
        )
        elements, faces = np.nonzero(cut)
        neighbor_elements = neighbors[elements, faces]
        return cls(
            elements=elements,
            faces=faces,
            neighbor_elements=neighbor_elements,
            owner_ranks=partitions[elements],
            neighbor_ranks=partitions[neighbor_elements],
            tags=elements * 4 + faces,
        )

    @classmethod
    def from_halo(cls, halo: list[HaloFace]) -> "HaloIndex":
        """Index arrays of an explicit :func:`build_halo` face list."""
        elements = np.array([f.element for f in halo], dtype=np.int64)
        faces = np.array([f.face for f in halo], dtype=np.int64)
        return cls(
            elements=elements,
            faces=faces,
            neighbor_elements=np.array([f.neighbor_element for f in halo], dtype=np.int64),
            owner_ranks=np.array([f.owner_rank for f in halo], dtype=np.int64),
            neighbor_ranks=np.array([f.neighbor_rank for f in halo], dtype=np.int64),
            tags=elements * 4 + faces,
        )


def build_halo(neighbors: np.ndarray, partitions: np.ndarray) -> list[HaloFace]:
    """All element faces whose neighbour lives on a different partition."""
    index = HaloIndex.from_partitions(neighbors, partitions)
    return [
        HaloFace(
            element=int(index.elements[h]),
            face=int(index.faces[h]),
            neighbor_element=int(index.neighbor_elements[h]),
            owner_rank=int(index.owner_ranks[h]),
            neighbor_rank=int(index.neighbor_ranks[h]),
        )
        for h in range(index.n_faces)
    ]


def build_halo_index(halo: list[HaloFace] | HaloIndex) -> HaloIndex:
    """Normalise a halo description to precomputed index arrays."""
    if isinstance(halo, HaloIndex):
        return halo
    return HaloIndex.from_halo(halo)


def exchange_volumes_per_cycle(
    halo: list[HaloFace] | HaloIndex,
    cluster_ids: np.ndarray,
    n_clusters: int,
    order: int,
    face_local: bool = True,
    bytes_per_value: int = 4,
) -> dict:
    """Bytes exchanged per LTS macro cycle over all partition boundaries.

    ``face_local = True`` uses the compressed ``9 x F`` representation,
    ``False`` the full ``9 x B`` buffers.  Data travels at the faster side's
    update frequency (the buffers have to be refreshed that often).

    The returned dict is JSON-native; ``per_pair`` maps the directed rank
    pair ``"src->dst"`` to its modelled bytes per cycle, so a distributed
    run's *measured* traffic can be validated entry by entry.
    """
    index = build_halo_index(halo)
    cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
    values = N_ELASTIC * (face_basis_size(order) if face_local else basis_size(order))
    frequencies = 2 ** (
        n_clusters
        - 1
        - np.minimum(cluster_ids[index.elements], cluster_ids[index.neighbor_elements])
    ).astype(np.int64)
    face_bytes = values * bytes_per_value * frequencies
    per_pair: dict[str, float] = {}
    for src, dst, n_bytes in zip(index.owner_ranks, index.neighbor_ranks, face_bytes):
        key = pair_key(int(src), int(dst))
        per_pair[key] = per_pair.get(key, 0.0) + float(n_bytes)
    return {
        "total_bytes": float(face_bytes.sum()),
        "n_messages": int(frequencies.sum()),
        "n_halo_faces": float(index.n_faces),
        "values_per_face": float(values),
        "max_pair_bytes": max(per_pair.values()) if per_pair else 0.0,
        "per_pair": per_pair,
    }


def exchange_face_data(
    communicator: SimulatedCommunicator,
    halo: list[HaloFace] | HaloIndex,
    face_data: dict[tuple[int, int], np.ndarray],
) -> dict[tuple[int, int], np.ndarray]:
    """Exchange per-face payloads across partition boundaries.

    ``face_data`` maps ``(element, face)`` of the *owning* side to the
    (already face-local compressed) payload to send; the returned dict maps
    ``(neighbor_element, element)`` -- the receiving element plus the sending
    element, which identifies the shared face uniquely (two conforming
    tetrahedra share at most one face).  The function verifies that every
    send is matched by a receive (no lost messages).
    """
    index = build_halo_index(halo)
    received: dict[tuple[int, int], np.ndarray] = {}
    for h in range(index.n_faces):
        payload = face_data[(int(index.elements[h]), int(index.faces[h]))]
        communicator.send(
            payload,
            src=int(index.owner_ranks[h]),
            dst=int(index.neighbor_ranks[h]),
            tag=int(index.tags[h]),
        )
    for h in range(index.n_faces):
        # the mirror entry: the neighbour element receives data sent by this face
        payload = communicator.recv(
            src=int(index.owner_ranks[h]),
            dst=int(index.neighbor_ranks[h]),
            tag=int(index.tags[h]),
        )
        received[(int(index.neighbor_elements[h]), int(index.elements[h]))] = payload
    if len(received) != index.n_faces:
        raise RuntimeError("halo exchange dropped payloads (duplicate face keys)")
    if not communicator.all_delivered():
        raise RuntimeError("halo exchange left undelivered messages")
    return received

"""Halo exchange with the paper's face-local compression (Sec. V-C).

Across the distributed-memory boundary EDGE does not send the full
``9 x B`` time buffers: the buffer data is first multiplied with the
neighbouring flux matrix ``F_bar`` (a ``B -> F`` reduction), so that only
``9 x F`` values per face travel through MPI -- the receiving element would
have performed exactly this multiplication anyway.  This module implements
the per-partition-boundary accounting and the exchange of face-local data
through the simulated communicator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..basis.functions import basis_size, face_basis_size
from .communicator import SimulatedCommunicator

__all__ = ["HaloFace", "build_halo", "exchange_volumes_per_cycle", "exchange_face_data"]

N_ELASTIC = 9


@dataclass(frozen=True)
class HaloFace:
    """One element face on a partition boundary."""

    element: int  #: owning element (global id)
    face: int  #: local face id of the owning element
    neighbor_element: int  #: element on the other side (global id)
    owner_rank: int
    neighbor_rank: int


def build_halo(neighbors: np.ndarray, partitions: np.ndarray) -> list[HaloFace]:
    """All element faces whose neighbour lives on a different partition."""
    neighbors = np.asarray(neighbors, dtype=np.int64)
    partitions = np.asarray(partitions, dtype=np.int64)
    halo: list[HaloFace] = []
    for k in range(neighbors.shape[0]):
        for i in range(neighbors.shape[1]):
            n = neighbors[k, i]
            if n >= 0 and partitions[n] != partitions[k]:
                halo.append(
                    HaloFace(
                        element=k,
                        face=i,
                        neighbor_element=int(n),
                        owner_rank=int(partitions[k]),
                        neighbor_rank=int(partitions[n]),
                    )
                )
    return halo


def exchange_volumes_per_cycle(
    halo: list[HaloFace],
    cluster_ids: np.ndarray,
    n_clusters: int,
    order: int,
    face_local: bool = True,
    bytes_per_value: int = 4,
) -> dict[str, float]:
    """Bytes exchanged per LTS macro cycle over all partition boundaries.

    ``face_local = True`` uses the compressed ``9 x F`` representation,
    ``False`` the full ``9 x B`` buffers.  Data travels at the faster side's
    update frequency (the buffers have to be refreshed that often).
    """
    cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
    values = N_ELASTIC * (face_basis_size(order) if face_local else basis_size(order))
    total_bytes = 0.0
    per_pair: dict[tuple[int, int], float] = {}
    for face in halo:
        frequency = 2 ** (
            n_clusters - 1 - min(cluster_ids[face.element], cluster_ids[face.neighbor_element])
        )
        n_bytes = values * bytes_per_value * frequency
        total_bytes += n_bytes
        key = (face.owner_rank, face.neighbor_rank)
        per_pair[key] = per_pair.get(key, 0.0) + n_bytes
    return {
        "total_bytes": total_bytes,
        "n_halo_faces": float(len(halo)),
        "values_per_face": float(values),
        "max_pair_bytes": max(per_pair.values()) if per_pair else 0.0,
    }


def exchange_face_data(
    communicator: SimulatedCommunicator,
    halo: list[HaloFace],
    face_data: dict[tuple[int, int], np.ndarray],
) -> dict[tuple[int, int], np.ndarray]:
    """Exchange per-face payloads across partition boundaries.

    ``face_data`` maps ``(element, face)`` of the *owning* side to the
    (already face-local compressed) payload to send; the returned dict maps
    ``(neighbor_element, neighbor_rank-side face key)`` ... more precisely the
    receiving side is keyed by ``(element, face)`` of the receiving element's
    mirrored halo entry.  The function verifies that every send is matched by
    a receive (no lost messages).
    """
    received: dict[tuple[int, int], np.ndarray] = {}
    for face in halo:
        payload = face_data[(face.element, face.face)]
        communicator.send(
            payload, src=face.owner_rank, dst=face.neighbor_rank, tag=face.element * 4 + face.face
        )
    for face in halo:
        # the mirror entry: the neighbour element receives data sent by this face
        payload = communicator.recv(
            src=face.owner_rank, dst=face.neighbor_rank, tag=face.element * 4 + face.face
        )
        received[(face.neighbor_element, face.owner_rank)] = payload
    if not communicator.all_delivered():
        raise RuntimeError("halo exchange left undelivered messages")
    return received

"""Machine model of the Frontera supercomputer and the strong-scaling study.

The paper's strong-scaling runs (Fig. 10) cannot be executed here -- no
Frontera, no MPI -- so the scaling behaviour is *modelled* from the two
ingredients that actually determine it:

* the weighted load balance of the partitioning (computation time per node is
  proportional to the heaviest partition's weighted element load), and
* the communication time of the partition-boundary exchange (bytes per cycle
  over the face-local messages divided by the injection bandwidth, plus a
  per-message latency), which EDGE overlaps with the interior computation.

The node parameters default to Frontera's Cascade Lake nodes (Sec. VII-A):
2x28 cores at 2.7 GHz with AVX-512 -> 4.84 FP32-TFLOPS peak, HDR100 downlinks
(100 Gb/s).  The per-element-update cost is taken from the kernel flop counts
at a configurable fraction of peak (the paper sustains 20-28 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MachineNode", "FRONTERA_NODE", "ScalingPoint", "strong_scaling_study"]


@dataclass(frozen=True)
class MachineNode:
    """A compute node of the modelled machine."""

    name: str
    peak_flops: float  #: FP32 peak [flop/s]
    sustained_fraction: float  #: fraction of peak the kernels sustain
    network_bandwidth: float  #: injection bandwidth [byte/s]
    network_latency: float  #: per message latency [s]

    @property
    def sustained_flops(self) -> float:
        return self.peak_flops * self.sustained_fraction


#: Frontera Cascade Lake node (Sec. VII-A) with the paper's ~22 % sustained fraction.
FRONTERA_NODE = MachineNode(
    name="Frontera CLX",
    peak_flops=4.84e12,
    sustained_fraction=0.22,
    network_bandwidth=100e9 / 8.0,
    network_latency=2e-6,
)


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling study."""

    n_nodes: int
    compute_time: float
    communication_time: float
    exposed_communication_time: float
    total_time: float
    parallel_efficiency: float
    speedup_vs_smallest: float


def strong_scaling_study(
    element_weights: np.ndarray,
    neighbors: np.ndarray,
    cluster_ids: np.ndarray,
    n_clusters: int,
    node_counts: list[int],
    flops_per_element_update: float,
    order: int,
    node: MachineNode = FRONTERA_NODE,
    bytes_per_value: int = 4,
    overlap_fraction: float = 0.9,
    partitioner=None,
) -> list[ScalingPoint]:
    """Model the strong scaling of an LTS configuration over ``node_counts``.

    For each node count the mesh is partitioned with the weighted
    partitioner; the modelled cycle time is
    ``max_p(compute_p) + max(0, comm - overlap_fraction * compute)`` --
    communication is overlapped with computation as EDGE does by reordering
    the send elements first.  Parallel efficiency is reported relative to the
    smallest node count, exactly like Fig. 10.
    """
    from .exchange import build_halo, exchange_volumes_per_cycle
    from .partition import partition_dual_graph

    element_weights = np.asarray(element_weights, dtype=np.float64)
    partitioner = partitioner or partition_dual_graph

    results: list[ScalingPoint] = []
    base_time_per_node: float | None = None
    for n_nodes in node_counts:
        partition = partitioner(neighbors, element_weights, n_nodes)
        loads = partition.weighted_loads
        # weighted load is in units of smallest-cluster element updates per cycle
        compute_time = loads.max() * flops_per_element_update / node.sustained_flops

        halo = build_halo(neighbors, partition.partitions)
        volumes = exchange_volumes_per_cycle(
            halo, cluster_ids, n_clusters, order, face_local=True, bytes_per_value=bytes_per_value
        )
        # communication of the busiest pair, plus latency per message
        comm_time = (
            volumes["max_pair_bytes"] / node.network_bandwidth
            + node.network_latency * max(1.0, volumes["n_halo_faces"] / max(n_nodes, 1))
        )
        exposed = max(0.0, comm_time - overlap_fraction * compute_time)
        total = compute_time + exposed

        if base_time_per_node is None:
            base_time_per_node = total * n_nodes
            speedup = 1.0
            efficiency = 1.0
        else:
            speedup = (base_time_per_node / node_counts[0]) / total
            efficiency = base_time_per_node / (total * n_nodes)
        results.append(
            ScalingPoint(
                n_nodes=n_nodes,
                compute_time=compute_time,
                communication_time=comm_time,
                exposed_communication_time=exposed,
                total_time=total,
                parallel_efficiency=efficiency,
                speedup_vs_smallest=speedup,
            )
        )
    return results

"""Message passing between rank worker processes (Sec. V-C, scale-out).

:class:`ProcessCommunicator` is the multiprocessing-backed sibling of
:class:`~repro.parallel.communicator.SimulatedCommunicator`: the same
``send``/``recv``/``pending``/``stats`` interface, but the payloads actually
cross process boundaries.  Each rank worker owns one inbound
:class:`multiprocessing.Queue` (one pipe, one feeder thread -- ``put`` never
blocks, so posting a halo send returns immediately and the transfer proceeds
in the background while the sender computes interior work) and holds
references to every peer's inbound queue for sending.

Sends are *staged*: ``send`` appends to a per-destination buffer (and
accounts the logical message), and :meth:`flush` ships each destination's
buffer as a single queue item with the payloads stacked into one array --
one pickle and one lock round per rank pair per micro step instead of per
face, exactly the aggregation a real MPI halo exchange performs.  The
stepper flushes right after posting a micro step's sends.  On the receiving
side batches are unpacked into per-``(src, tag)`` mailboxes; per-channel
FIFO order is preserved (each producer feeds a queue from a single thread).
``recv`` blocks until the requested channel has a message, which is why the
distributed steppers consume the *statically known* number of due messages
per correction instead of polling ``pending`` (the in-flight state of an
asynchronous channel cannot be observed race-free).

Every transfer is accounted on the send side with the exact payload byte
count, so a process-backed run reports the same measured traffic as the
simulated communicator -- and both must match the machine model exactly.
"""

from __future__ import annotations

import queue as _queue
from collections import defaultdict, deque
from itertools import groupby

import numpy as np

from .communicator import MessageStats, unflushed_note

__all__ = ["ProcessCommunicator"]


class ProcessCommunicator:
    """One rank's endpoint of the inter-process halo-exchange fabric."""

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        inbound,
        outbound: dict[int, object],
        timeout: float = 120.0,
    ):
        if not 0 <= rank < n_ranks:
            raise ValueError(f"rank {rank} out of range (n_ranks = {n_ranks})")
        self.rank = int(rank)
        self.n_ranks = int(n_ranks)
        self._inbound = inbound
        self._outbound = outbound
        self.timeout = timeout
        self._mailboxes: dict[tuple[int, int], deque[np.ndarray]] = defaultdict(deque)
        self._staged: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
        self.stats = MessageStats()

    # ------------------------------------------------------------------
    def send(self, payload: np.ndarray, src: int, dst: int, tag: int = 0) -> None:
        """Stage ``payload`` for rank ``dst`` (shipped on :meth:`flush`);
        the logical message is accounted immediately."""
        if src != self.rank:
            raise ValueError(f"rank {self.rank} cannot send as rank {src}")
        if not 0 <= dst < self.n_ranks:
            raise ValueError(f"rank {dst} out of range (n_ranks = {self.n_ranks})")
        payload = np.ascontiguousarray(payload)
        self._staged[dst].append((tag, payload))
        self.stats.record(src, dst, payload.nbytes)

    def flush(self) -> None:
        """Ship every staged batch, one queue item per destination rank.

        The payloads of a batch usually share one shape (halo payloads are
        ``9 x F`` face-local blocks), so they travel stacked in a single
        array: one pickle per rank pair per micro step.  Mixed-shape stages
        (e.g. mixed-width fused groups) ship as one item per *contiguous
        run* of equal shape and dtype -- runs, not a shape-keyed
        regrouping, so per-channel FIFO order survives the batching.
        """
        for dst, staged in self._staged.items():
            if not staged:
                continue
            for _, run in groupby(
                staged, key=lambda item: (item[1].shape, item[1].dtype.str)
            ):
                batch = list(run)
                tags = np.array([tag for tag, _ in batch], dtype=np.int64)
                stacked = np.stack([payload for _, payload in batch])
                self._outbound[dst].put((self.rank, tags, stacked))
            staged.clear()

    def recv(self, src: int, dst: int, tag: int = 0) -> np.ndarray:
        """Receive the oldest message on the ``(src, tag)`` channel; blocks."""
        if dst != self.rank:
            raise ValueError(f"rank {self.rank} cannot receive for rank {dst}")
        mailbox = self._mailboxes[(src, tag)]
        while not mailbox:
            try:
                self._ingest(self._inbound.get(timeout=self.timeout))
            except _queue.Empty:
                raise RuntimeError(
                    f"rank {self.rank}: no halo payload from rank {src} (tag {tag}) "
                    f"within {self.timeout:.0f} s -- peer died or schedule mismatch"
                    f"{unflushed_note(self._staged)}"
                ) from None
        return mailbox.popleft()

    def pending(self, src: int, dst: int, tag: int = 0) -> int:
        """Messages already *arrived* on a channel (in-flight ones are not
        observable; the steppers therefore consume by static count)."""
        if dst != self.rank:
            raise ValueError(f"rank {self.rank} cannot poll for rank {dst}")
        self._drain()
        return len(self._mailboxes[(src, tag)])

    def _ingest(self, item) -> None:
        # copy, don't slice: a `stacked[index]` view keeps the whole
        # unpickled batch alive until the *last* message of the batch is
        # consumed, which on wide batches holds a multiple of the live halo
        # working set in memory
        src, tags, stacked = item
        for index, tag in enumerate(tags):
            self._mailboxes[(int(src), int(tag))].append(stacked[index].copy())

    def _drain(self) -> None:
        while True:
            try:
                self._ingest(self._inbound.get_nowait())
            except _queue.Empty:
                return

    def all_delivered(self) -> bool:
        """Whether every staged payload went out and every payload that
        reached this rank has been consumed.

        Drains the inbound queue first so arrived-but-unread excess messages
        are visible: after a macro cycle in which every correction consumed
        its full static message count, a non-empty mailbox (or unflushed
        stage) means a schedule mismatch.  Messages still in flight on the
        wire are inherently unobservable.
        """
        self._drain()
        return all(len(staged) == 0 for staged in self._staged.values()) and all(
            len(mailbox) == 0 for mailbox in self._mailboxes.values()
        )

    def close(self) -> None:
        """No-op: the queue transport holds no resources of its own (queues
        belong to the engine).  Exists so workers can close any communicator
        uniformly -- the shm transport must detach its ring segments."""

"""Distributed-memory substrate: partitioning, communication accounting, scaling model."""

from .communicator import MessageStats, SimulatedCommunicator, pair_key
from .exchange import (
    HaloFace,
    HaloIndex,
    build_halo,
    build_halo_index,
    exchange_face_data,
    exchange_volumes_per_cycle,
)
from .machine_model import FRONTERA_NODE, MachineNode, ScalingPoint, strong_scaling_study
from .partition import PartitionResult, element_weights, face_weights, partition_dual_graph
from .process_comm import ProcessCommunicator
from .shm_comm import ShmCommunicator, ShmRing, ring_capacity

__all__ = [
    "PartitionResult",
    "element_weights",
    "face_weights",
    "partition_dual_graph",
    "SimulatedCommunicator",
    "ProcessCommunicator",
    "ShmCommunicator",
    "ShmRing",
    "ring_capacity",
    "MessageStats",
    "pair_key",
    "HaloFace",
    "HaloIndex",
    "build_halo",
    "build_halo_index",
    "exchange_volumes_per_cycle",
    "exchange_face_data",
    "MachineNode",
    "FRONTERA_NODE",
    "ScalingPoint",
    "strong_scaling_study",
]

"""Simulated message passing with byte and message accounting.

No MPI implementation is available in this environment, so the distributed-
memory behaviour of the solver is exercised through an in-process simulated
communicator: ranks are plain indices, sends and receives move NumPy arrays
between per-rank mailboxes, and every transfer is accounted (message count
and payload bytes).  The strong-scaling model and the communication-scheme
benchmarks consume these counters; the interface mirrors the small subset of
MPI the real solver needs (point-to-point send/recv and barriers).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MessageStats", "SimulatedCommunicator", "pair_key", "unflushed_note"]


def pair_key(src: int, dst: int) -> str:
    """The JSON-safe ``"src->dst"`` key identifying a directed rank pair."""
    return f"{src}->{dst}"


def unflushed_note(staged: dict[int, list]) -> str:
    """Diagnostic suffix for a recv-timeout error: which staged sends never
    left this rank.

    A timeout with a non-empty stage almost always means a ``flush()`` call
    was skipped somewhere in the schedule -- the peers are starving on
    payloads that were posted but never shipped -- which is a very different
    bug from a dead peer, so the error message must distinguish the two.
    """
    counts = {dst: len(items) for dst, items in staged.items() if items}
    if not counts:
        return ""
    total = sum(counts.values())
    return (
        f"; {total} staged payload(s) for rank(s) {sorted(counts)} were never "
        "flushed and did NOT travel (staged sends only ship on flush())"
    )


@dataclass
class MessageStats:
    """Accumulated communication statistics of a simulated run.

    ``per_pair`` maps the directed rank pair ``"src->dst"`` to plain-int
    message/byte counters, so the whole object embeds into run-summary JSON
    without a custom encoder.
    """

    n_messages: int = 0
    n_bytes: int = 0
    per_pair: dict[str, dict[str, int]] = field(default_factory=dict)

    def record(self, src: int, dst: int, n_bytes: int) -> None:
        # coerce to plain int: callers pass numpy sizes (e.g. ndarray.nbytes
        # on some platforms, or np.int64 volumes) and `int += np.int64`
        # silently turns the totals into numpy scalars, which json.dumps of
        # a run summary then rejects
        self.n_messages += 1
        self.n_bytes += int(n_bytes)
        entry = self.per_pair.setdefault(pair_key(src, dst), {"messages": 0, "bytes": 0})
        entry["messages"] += 1
        entry["bytes"] += int(n_bytes)

    def merge(self, other: "MessageStats | dict") -> None:
        """Accumulate another stats object (e.g. one rank's worker-side
        counters) into this one."""
        data = other.as_dict() if isinstance(other, MessageStats) else other
        self.n_messages += int(data["n_messages"])
        self.n_bytes += int(data["n_bytes"])
        for pair, entry in data["per_pair"].items():
            mine = self.per_pair.setdefault(pair, {"messages": 0, "bytes": 0})
            mine["messages"] += int(entry["messages"])
            mine["bytes"] += int(entry["bytes"])

    def as_dict(self) -> dict:
        """JSON-native snapshot of the accumulated statistics."""
        return {
            "n_messages": self.n_messages,
            "n_bytes": self.n_bytes,
            "per_pair": {k: dict(v) for k, v in self.per_pair.items()},
        }


class SimulatedCommunicator:
    """An in-process stand-in for an MPI communicator.

    Messages are delivered immediately into the destination rank's mailbox
    and tagged; ``recv`` pops the oldest matching message.  All traffic is
    recorded in :attr:`stats`.
    """

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self._mailboxes: dict[tuple[int, int, int], deque[np.ndarray]] = defaultdict(deque)
        self.stats = MessageStats()

    def send(self, payload: np.ndarray, src: int, dst: int, tag: int = 0) -> None:
        """Send ``payload`` from rank ``src`` to rank ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.asarray(payload)
        self._mailboxes[(src, dst, tag)].append(payload.copy())
        self.stats.record(src, dst, payload.nbytes)

    def recv(self, src: int, dst: int, tag: int = 0) -> np.ndarray:
        """Receive the oldest pending message from ``src`` at rank ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        queue = self._mailboxes[(src, dst, tag)]
        if not queue:
            raise RuntimeError(f"no pending message from rank {src} to rank {dst} (tag {tag})")
        return queue.popleft()

    def pending(self, src: int, dst: int, tag: int = 0) -> int:
        """Number of undelivered messages on a channel."""
        return len(self._mailboxes[(src, dst, tag)])

    def all_delivered(self) -> bool:
        """Whether every sent message has been received."""
        return all(len(queue) == 0 for queue in self._mailboxes.values())

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range (n_ranks = {self.n_ranks})")

"""Weighted dual-graph partitioning (Sec. V-C).

The preprocessing pipeline assigns each element a weight that reflects its
update frequency (cluster ``C_1`` gets ``2^{Nc-1}``, ..., ``C_Nc`` gets 1)
and each dual-graph edge a weight reflecting the potential communication
volume/frequency across the shared face, and hands the graph to a graph
partitioner.  EDGE uses an external partitioner; this module implements a
deterministic greedy region-growing partitioner with boundary refinement that
produces the same qualitative behaviour the paper reports in Fig. 7: balanced
*weighted* loads and therefore deliberately unbalanced element counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PartitionResult", "element_weights", "face_weights", "partition_dual_graph"]


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a weighted mesh partitioning."""

    partitions: np.ndarray  #: (K,) partition id per element
    n_partitions: int
    element_weights: np.ndarray  #: (K,) weights used for balancing

    @property
    def element_counts(self) -> np.ndarray:
        return np.bincount(self.partitions, minlength=self.n_partitions)

    @property
    def weighted_loads(self) -> np.ndarray:
        return np.bincount(
            self.partitions, weights=self.element_weights, minlength=self.n_partitions
        )

    def load_imbalance(self) -> float:
        """Maximum weighted load divided by the mean weighted load."""
        loads = self.weighted_loads
        return float(loads.max() / loads.mean())

    def element_count_spread(self) -> float:
        """Largest over smallest element count -- the quantity of Fig. 7."""
        counts = self.element_counts
        if counts.min() == 0:
            return float("inf")
        return float(counts.max() / counts.min())

    def cut_edges(self, adjacency: list[np.ndarray] | np.ndarray) -> int:
        """Number of dual-graph edges cut by the partitioning."""
        cut = 0
        for k, neighbors in enumerate(adjacency):
            for n in neighbors:
                if n >= 0 and n > k and self.partitions[n] != self.partitions[k]:
                    cut += 1
        return cut


def element_weights(cluster_ids: np.ndarray, n_clusters: int) -> np.ndarray:
    """Computation weights: cluster ``C_l`` updates ``2^{Nc-1-l}`` times per cycle."""
    cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
    if np.any(cluster_ids < 0) or np.any(cluster_ids >= n_clusters):
        raise ValueError("cluster ids out of range")
    return 2.0 ** (n_clusters - 1 - cluster_ids)


def face_weights(
    cluster_ids: np.ndarray, neighbors: np.ndarray, n_clusters: int, values_per_face: int
) -> np.ndarray:
    """Communication weights per face: exchanged values times exchange frequency."""
    cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
    neighbors = np.asarray(neighbors, dtype=np.int64)
    own = np.repeat(cluster_ids[:, None], neighbors.shape[1], axis=1)
    other = np.where(neighbors >= 0, cluster_ids[np.maximum(neighbors, 0)], own)
    # data is exchanged at the faster side's frequency
    frequency = 2.0 ** (n_clusters - 1 - np.minimum(own, other))
    weights = values_per_face * frequency
    weights[neighbors < 0] = 0.0
    return weights


def partition_dual_graph(
    neighbors: np.ndarray,
    weights: np.ndarray,
    n_partitions: int,
    refine_iterations: int = 4,
    seed: int = 0,
) -> PartitionResult:
    """Partition the dual graph into ``n_partitions`` weighted-balanced parts.

    Greedy region growing: seeds are spread over the element index space (the
    mesh is usually already ordered spatially), each partition grows by
    absorbing the frontier element that keeps it most compact, and a boundary
    refinement pass moves elements between neighbouring partitions to even
    out the weighted loads.
    """
    neighbors = np.asarray(neighbors, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    n_elements = len(weights)
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if n_partitions > n_elements:
        raise ValueError("more partitions than elements")
    if np.any(weights <= 0):
        raise ValueError("element weights must be positive")

    partitions = np.full(n_elements, -1, dtype=np.int64)
    target = weights.sum() / n_partitions
    loads = np.zeros(n_partitions)

    # contiguous chunk initialisation by cumulative weight: deterministic,
    # spatially compact for reordered meshes, and exactly weight-balanced up
    # to one element
    order = np.arange(n_elements)
    cumulative = np.cumsum(weights[order])
    boundaries = np.searchsorted(cumulative, target * np.arange(1, n_partitions))
    start = 0
    for p, end in enumerate(list(boundaries) + [n_elements]):
        end = max(end, start + 1) if p < n_partitions - 1 else n_elements
        partitions[order[start:end]] = p
        loads[p] = weights[order[start:end]].sum()
        start = end
    partitions[partitions < 0] = n_partitions - 1

    # boundary refinement: move boundary elements from overloaded to
    # underloaded neighbouring partitions
    rng = np.random.default_rng(seed)
    for _ in range(refine_iterations):
        moved = 0
        boundary_elements = np.where(
            np.any(
                (neighbors >= 0)
                & (partitions[np.maximum(neighbors, 0)] != partitions[:, None]),
                axis=1,
            )
        )[0]
        for k in rng.permutation(boundary_elements):
            own = partitions[k]
            candidates = {
                partitions[n] for n in neighbors[k] if n >= 0 and partitions[n] != own
            }
            if not candidates:
                continue
            best = min(candidates, key=lambda p: loads[p])
            if loads[own] - weights[k] > loads[best] + weights[k] - 1e-12:
                partitions[k] = best
                loads[own] -= weights[k]
                loads[best] += weights[k]
                moved += 1
        if moved == 0:
            break

    return PartitionResult(
        partitions=partitions, n_partitions=n_partitions, element_weights=weights
    )

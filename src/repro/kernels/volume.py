"""Volume kernel of the ADER-DG update (eqs. 8-9).

Operates on the time-integrated DOFs ``T_k`` of a batch of elements.  The
intermediate result ``(T_e) K_c`` of the elastic part is reused for the
anelastic part, and the mechanism-independent anelastic spatial term is
computed once and scaled by ``omega_l`` per mechanism -- exactly the data
reuse described in the paper.
"""

from __future__ import annotations

import numpy as np

from .discretization import Discretization, N_ELASTIC

__all__ = ["volume_kernel"]


def volume_kernel(
    disc: Discretization,
    time_integrated: np.ndarray,
    elements: np.ndarray | slice = slice(None),
) -> np.ndarray:
    """Element-local volume contribution for a batch of elements.

    Parameters
    ----------
    time_integrated:
        ``(E, N_q, B[, n_fused])`` time-integrated DOFs of the batch.
    elements:
        The element ids the batch corresponds to (used to select the
        element-local operators).

    Returns
    -------
    numpy.ndarray
        Volume update of the same shape as ``time_integrated``.
    """
    star_e = disc.star_elastic[elements]
    star_a = disc.star_anelastic[elements]
    coupling = disc.coupling[elements]
    omegas = disc.omegas
    k_vol = disc.k_vol

    te = time_integrated[:, :N_ELASTIC]
    out = np.zeros_like(time_integrated)

    anelastic_common = None
    for c in range(3):
        tmp = np.einsum("evb...,bd->evd...", te, k_vol[c])
        out[:, :N_ELASTIC] += np.einsum("eij,ejb...->eib...", star_e[:, c], tmp)
        contrib = np.einsum("eij,ejb...->eib...", star_a[:, c], tmp)
        anelastic_common = contrib if anelastic_common is None else anelastic_common + contrib

    for l in range(disc.n_mechanisms):
        ta_l = time_integrated[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)]
        out[:, :N_ELASTIC] += np.einsum("eij,ejb...->eib...", coupling[:, l], ta_l)
        # the spatial (stiffness) term enters with a positive sign after
        # integration by parts, the relaxation source with -omega_l
        out[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)] = omegas[l] * (
            anelastic_common - ta_l
        )
    return out

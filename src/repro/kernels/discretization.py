"""Per-mesh discretization data for the ADER-DG kernels.

A :class:`Discretization` bundles everything the kernels need and that is
precomputed once per (mesh, material, order) combination -- the equivalent of
EDGE's per-partition annotation data written by the preprocessing pipeline:

* the reference element operators (mass/stiffness/flux matrices),
* element-local star matrices of the elastic and anelastic Jacobians,
* the relaxation spectrum and per-element/mechanism coupling matrices ``E_l``,
* element-local flux solver matrices ``A~+-_{k,i}`` with the geometry factor
  ``2 |S_i| / |J_k|`` folded in (boundary faces additionally fold in their
  ghost-state operator),
* the neighbouring flux matrices ``F_bar``, deduplicated into the small
  unique set the paper exploits (Sec. III, ref. [31]), and
* per-element CFL time steps.
"""

from __future__ import annotations

import numpy as np

from ..basis.reference_element import ReferenceElement, reference_element
from ..equations.anelastic import (
    RelaxationSpectrum,
    anelastic_jacobians,
    anelastic_lame_parameters,
    anelastic_star_matrices,
    coupling_matrices,
    fit_constant_q,
)
from ..equations.elastic import elastic_star_matrices
from ..equations.material import MaterialTable
from ..equations.riemann import (
    FLUX_KINDS,
    anelastic_normal_jacobian,
    free_surface_ghost_operator,
    godunov_flux_matrices,
    rusanov_flux_matrices,
)
from ..mesh.geometry import cfl_time_steps
from ..mesh.tet_mesh import (
    BOUNDARY_ANALYTIC,
    BOUNDARY_FREE_SURFACE,
    TetMesh,
)

__all__ = ["Discretization", "N_ELASTIC", "PRECISIONS"]

N_ELASTIC = 9

#: supported state/operator precisions: float64 (the verification default)
#: and float32 (EDGE's production single-precision mode)
PRECISIONS = ("f64", "f32")

_PRECISION_DTYPES = {"f64": np.float64, "f32": np.float32}


class Discretization:
    """Precomputed ADER-DG discretization of a mesh with a material table.

    Parameters
    ----------
    mesh:
        The conforming tetrahedral mesh.
    materials:
        Per-element material table.
    order:
        Order of convergence ``O`` (space-time order of the ADER-DG scheme).
    n_mechanisms:
        Number of anelastic relaxation mechanisms ``m``; ``0`` selects the
        purely elastic wave equations.
    frequency_band:
        Band over which the constant-Q fit of the relaxation spectrum is
        performed (only used when ``n_mechanisms > 0``).
    flux:
        ``"rusanov"`` or ``"godunov"`` (see :mod:`repro.equations.riemann`).
    cfl:
        CFL safety factor of the per-element time-step estimate.
    precision:
        ``"f64"`` or ``"f32"``.  Selects the dtype of every operator the
        kernels contract with (star/coupling/flux matrices, the reference
        operators and the relaxation frequencies) and the default dtype of
        DOF/buffer allocations, so a single-precision run stays single
        precision end to end.  Setup (geometry, quadrature, operator
        assembly, clustering) always computes in float64 and casts once.
    operators:
        Optional dict of precomputed operator arrays as returned by
        :meth:`operator_arrays` (the content-addressed preprocessing
        cache's ``operators`` stage).  When given, the expensive
        per-element assembly (star matrices, flux solvers, neighbour flux
        matrices) is skipped and the stored arrays are used verbatim, so a
        cached discretization is bit-identical to a freshly assembled one.
    """

    #: the array attributes that make up the assembled-operator state (the
    #: payload of :meth:`operator_arrays`; everything else is cheap to
    #: recompute from mesh + materials)
    OPERATOR_ARRAY_KEYS = (
        "star_elastic",
        "star_anelastic",
        "coupling",
        "omegas",
        "flux_local_elastic",
        "flux_neigh_elastic",
        "flux_local_anelastic",
        "flux_neigh_anelastic",
        "neighbor_flux_matrices",
        "neighbor_flux_index",
    )

    def __init__(
        self,
        mesh: TetMesh,
        materials: MaterialTable,
        order: int = 4,
        n_mechanisms: int = 0,
        frequency_band: tuple[float, float] = (0.1, 10.0),
        flux: str = "rusanov",
        cfl: float = 0.5,
        precision: str = "f64",
        operators: dict | None = None,
    ):
        if materials.n_elements != mesh.n_elements:
            raise ValueError("material table size does not match the mesh")
        if flux not in FLUX_KINDS:
            raise ValueError(f"flux must be one of {FLUX_KINDS}, got {flux!r}")
        if n_mechanisms < 0:
            raise ValueError("n_mechanisms must be non-negative")
        if precision not in PRECISIONS:
            raise ValueError(f"precision must be one of {PRECISIONS}, got {precision!r}")

        self.mesh = mesh
        self.materials = materials
        self.order = order
        self.n_mechanisms = n_mechanisms
        self.flux = flux
        self.cfl = cfl
        self.precision = precision
        self.dtype = _PRECISION_DTYPES[precision]

        self.ref: ReferenceElement = reference_element(order)
        self.n_basis = self.ref.n_basis
        self.n_face_basis = self.ref.n_face_basis
        self.n_vars = N_ELASTIC + 6 * n_mechanisms

        geometry = mesh.geometry
        self.time_steps = cfl_time_steps(
            geometry.insphere_radii, materials.max_wave_speed, order, cfl
        )

        # the relaxation spectrum is a tiny deterministic fit, so it is
        # recomputed even when the assembled operators come from the cache
        self.spectrum: RelaxationSpectrum | None = (
            fit_constant_q(frequency_band, n_mechanisms) if n_mechanisms > 0 else None
        )

        if operators is not None:
            missing = [k for k in self.OPERATOR_ARRAY_KEYS if k not in operators]
            if missing:
                raise ValueError(f"precomputed operators lack arrays: {missing}")
            for key in self.OPERATOR_ARRAY_KEYS:
                setattr(self, key, np.asarray(operators[key]))
        else:
            # -- volume operators ------------------------------------------
            lam, mu, rho = materials.lam, materials.mu, materials.rho
            self.star_elastic = elastic_star_matrices(
                geometry.inverse_jacobians, lam, mu, rho
            )
            if n_mechanisms > 0:
                self.omegas = self.spectrum.omegas
                lam_a, mu_a = anelastic_lame_parameters(
                    lam, mu, materials.qp, materials.qs, self.spectrum
                )
                self.coupling = coupling_matrices(lam_a, mu_a)  # (K, m, 9, 6)
                self.star_anelastic = anelastic_star_matrices(geometry.inverse_jacobians)
            else:
                self.omegas = np.zeros(0)
                self.coupling = np.zeros((mesh.n_elements, 0, 9, 6))
                self.star_anelastic = np.zeros((mesh.n_elements, 3, 6, 9))

            # -- flux solvers and neighbour flux matrices -------------------
            self._assemble_flux_solvers()
            self._assemble_neighbor_flux_matrices()
        self._cast_operators()

    def operator_arrays(self) -> dict:
        """The assembled operator arrays, keyed for :class:`Discretization`'s
        ``operators`` parameter (and the preprocessing cache's npz payload).

        Arrays are returned in the discretization's run precision; cache
        keys therefore include the precision, so an f32 entry is never fed
        to an f64 run.
        """
        return {key: getattr(self, key) for key in self.OPERATOR_ARRAY_KEYS}

    def _cast_operators(self) -> None:
        """Cast every kernel operand to the run precision (no-op at f64).

        The reference-element operators the kernels contract with are
        re-exposed as ``k_time``/``k_vol``/``ftilde``/``fhat`` attributes so
        the cast never mutates the (cached, shared) :class:`ReferenceElement`.
        """
        dtype = self.dtype
        for name in (
            "star_elastic",
            "star_anelastic",
            "coupling",
            "omegas",
            "flux_local_elastic",
            "flux_neigh_elastic",
            "flux_local_anelastic",
            "flux_neigh_anelastic",
            "neighbor_flux_matrices",
        ):
            setattr(self, name, getattr(self, name).astype(dtype, copy=False))
        self.k_time = self.ref.k_time.astype(dtype, copy=False)
        self.k_vol = self.ref.k_vol.astype(dtype, copy=False)
        self.ftilde = self.ref.ftilde.astype(dtype, copy=False)
        self.fhat = self.ref.fhat.astype(dtype, copy=False)

    # ------------------------------------------------------------------
    # flux solvers
    # ------------------------------------------------------------------
    def _assemble_flux_solvers(self) -> None:
        mesh, materials = self.mesh, self.materials
        geometry = mesh.geometry
        n_elements = mesh.n_elements
        lam, mu, rho = materials.lam, materials.mu, materials.rho
        neighbors = mesh.neighbors

        flux_builder = rusanov_flux_matrices if self.flux == "rusanov" else godunov_flux_matrices

        flux_local_e = np.empty((n_elements, 4, 9, 9))
        flux_neigh_e = np.empty((n_elements, 4, 9, 9))
        flux_local_a = np.empty((n_elements, 4, 6, 9))
        flux_neigh_a = np.empty((n_elements, 4, 6, 9))

        for k in range(n_elements):
            for i in range(4):
                normal = geometry.face_normals[k, i]
                neighbor = neighbors[k, i]
                if neighbor >= 0:
                    mat_n = (lam[neighbor], mu[neighbor], rho[neighbor])
                else:
                    mat_n = (lam[k], mu[k], rho[k])
                g_local, g_neigh = flux_builder(lam[k], mu[k], rho[k], *mat_n, normal)

                an_a = anelastic_normal_jacobian(normal)
                ga_local = 0.5 * an_a
                ga_neigh = 0.5 * an_a

                if neighbor < 0:
                    ghost = self._ghost_operator(k, i, normal)
                    g_neigh = g_neigh @ ghost
                    ga_neigh = ga_neigh @ ghost

                # weak-form sign and geometry scaling: -2 |S_i| / |J_k|
                scale = -2.0 * geometry.face_areas[k, i] / geometry.determinants[k]
                flux_local_e[k, i] = scale * g_local
                flux_neigh_e[k, i] = scale * g_neigh
                flux_local_a[k, i] = scale * ga_local
                flux_neigh_a[k, i] = scale * ga_neigh

        self.flux_local_elastic = flux_local_e
        self.flux_neigh_elastic = flux_neigh_e
        self.flux_local_anelastic = flux_local_a
        self.flux_neigh_anelastic = flux_neigh_a

    def _ghost_operator(self, element: int, face: int, normal: np.ndarray) -> np.ndarray:
        tag = self.mesh.boundary_tags[element, face]
        if tag == BOUNDARY_FREE_SURFACE:
            return free_surface_ghost_operator(normal)
        if tag == BOUNDARY_ANALYTIC:
            # analytic (Dirichlet) ghost states are injected by the solver at
            # run time; the flux solver matrix stays unmodified.
            return np.eye(9)
        return np.eye(9)  # absorbing: ghost state equals the interior trace

    # ------------------------------------------------------------------
    # neighbouring flux matrices
    # ------------------------------------------------------------------
    def _assemble_neighbor_flux_matrices(self) -> None:
        """Build the matrices projecting a neighbour's modal trace onto the
        local face basis, and deduplicate them.

        For conforming affine meshes the composite map (local face
        parametrisation -> physical space -> neighbour reference element)
        only depends on which local face of the neighbour is shared and on
        the vertex correspondence; the set of distinct matrices is therefore
        tiny (the paper's 12 unique ``F_bar_{j,h}`` under EDGE's canonical
        vertex ordering; at most 24 for arbitrary orderings).
        """
        mesh = self.mesh
        ref = self.ref
        n_elements = mesh.n_elements
        quad = ref.face_quadrature
        w = quad.weights
        chi = ref.face_basis_at_quad  # (nqf, F)
        neighbors = mesh.neighbors
        verts = mesh.vertices[mesh.elements]  # (K, 4, 3)
        v0 = verts[:, 0]
        jac = mesh.geometry.jacobians
        inv_jac = mesh.geometry.inverse_jacobians

        unique: list[np.ndarray] = []
        unique_lookup: dict[bytes, int] = {}
        index = np.full((n_elements, 4), -1, dtype=np.int64)

        for i in range(4):
            interior = np.where(neighbors[:, i] >= 0)[0]
            if len(interior) == 0:
                continue
            neigh = neighbors[interior, i]
            # physical positions of the local face quadrature points
            ref_pts = ref.face_quad_points[i]  # (nqf, 3)
            phys = v0[interior, None, :] + np.einsum("kdr,qr->kqd", jac[interior], ref_pts)
            # pull back into the neighbours' reference elements
            rel = phys - v0[neigh][:, None, :]
            xi_neigh = np.einsum("krd,kqd->kqr", inv_jac[neigh], rel)
            psi = ref.basis.evaluate(xi_neigh.reshape(-1, 3)).reshape(
                len(interior), quad.n_points, ref.n_basis
            )
            fbar = np.einsum("q,kqb,qf->kbf", w, psi, chi)

            # deduplicate by a rounded key but keep the full-precision matrices
            rounded = np.round(fbar, 9).reshape(len(interior), -1)
            # round-to-zero avoids -0.0 / +0.0 hash mismatches
            rounded[rounded == 0.0] = 0.0
            for row, k in enumerate(interior):
                key = rounded[row].tobytes()
                match = unique_lookup.get(key)
                if match is None:
                    unique.append(fbar[row])
                    match = len(unique) - 1
                    unique_lookup[key] = match
                index[k, i] = match

        if unique:
            self.neighbor_flux_matrices = np.stack(unique)
        else:
            self.neighbor_flux_matrices = np.zeros((0, ref.n_basis, ref.n_face_basis))
        self.neighbor_flux_index = index

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        return self.mesh.n_elements

    @property
    def n_unique_neighbor_matrices(self) -> int:
        return self.neighbor_flux_matrices.shape[0]

    def allocate_dofs(self, n_fused: int = 0, dtype=None) -> np.ndarray:
        """Allocate a zero DOF array ``(K, N_q, B)`` (plus a fused axis if requested).

        ``dtype`` defaults to the discretization's run precision.
        """
        shape: tuple[int, ...] = (self.n_elements, self.n_vars, self.n_basis)
        if n_fused > 0:
            shape = shape + (n_fused,)
        return np.zeros(shape, dtype=self.dtype if dtype is None else dtype)

    def elastic_view(self, dofs: np.ndarray) -> np.ndarray:
        """View of the elastic variables of a DOF array."""
        return dofs[:, :N_ELASTIC]

    def anelastic_view(self, dofs: np.ndarray, mechanism: int) -> np.ndarray:
        """View of mechanism ``l``'s memory variables of a DOF array."""
        start = N_ELASTIC + 6 * mechanism
        return dofs[:, start : start + 6]

    def physical_quadrature_points(self) -> np.ndarray:
        """Volume-quadrature points of every element, physical coordinates.

        ``(K, n_quad, 3)`` via the affine map ``x = v0 + J xi`` -- the one
        shared definition behind initial-condition projection and the
        verification error norms, so the two can never desynchronize.
        """
        quad = self.ref.volume_quadrature
        v0 = self.mesh.vertices[self.mesh.elements][:, 0]
        jac = self.mesh.geometry.jacobians
        return v0[:, None, :] + np.einsum("kdr,qr->kqd", jac, quad.points)

    def project_initial_condition(self, func, n_fused: int = 0) -> np.ndarray:
        """L2-project an initial condition ``func(points) -> (n_points, n_vars)``.

        ``func`` receives physical coordinates with shape ``(n_points, 3)``
        and must return the variable vector at those points.  For fused runs
        the same initial condition is replicated across the ensemble.
        """
        quad = self.ref.volume_quadrature
        psi = self.ref.basis.evaluate(quad.points)  # (nq, B)
        phys = self.physical_quadrature_points()
        values = np.asarray(func(phys.reshape(-1, 3)), dtype=np.float64)
        values = values.reshape(self.n_elements, quad.n_points, -1)
        if values.shape[2] != self.n_vars:
            if values.shape[2] == N_ELASTIC:
                padded = np.zeros((self.n_elements, quad.n_points, self.n_vars))
                padded[:, :, :N_ELASTIC] = values
                values = padded
            else:
                raise ValueError(
                    f"initial condition returned {values.shape[2]} variables, "
                    f"expected {self.n_vars} (or 9 elastic)"
                )
        coeffs = np.einsum("q,kqv,qb->kvb", quad.weights, values, psi)
        coeffs = np.einsum("kvb,bc->kvc", coeffs, self.ref.inv_mass)
        # the projection itself is evaluated in float64 for accuracy; the
        # result is cast once so an f32 run's state is not silently upcast
        coeffs = coeffs.astype(self.dtype, copy=False)
        if n_fused > 0:
            coeffs = np.repeat(coeffs[..., None], n_fused, axis=-1)
        return coeffs

    def evaluate_at_points(
        self, dofs: np.ndarray, element_ids: np.ndarray, reference_points: np.ndarray
    ) -> np.ndarray:
        """Evaluate the DG solution of selected elements at reference points.

        Returns ``(len(element_ids), n_points, n_vars[, n_fused])``.
        """
        psi = self.ref.basis.evaluate(reference_points)  # (n_points, B)
        # sample in the state's own precision (an f32 run must not upcast)
        psi = psi.astype(dofs.dtype, copy=False)
        return np.einsum("kvb...,pb->kpv...", dofs[element_ids], psi)

"""ADER time kernel: Cauchy-Kowalevski procedure and time integration.

Implements eqs. (4)-(7) of the paper.  The time derivatives of the modal
DOFs are obtained by repeatedly substituting spatial for temporal derivatives
via the governing PDE; a Taylor series in time then yields the time-integrated
DOFs over arbitrary sub-intervals, which is exactly what the LTS buffers
``B1/B2/B3`` (eq. 17) require.

All functions operate on *batches* of elements (an index array selects the
elements of one time cluster) and transparently support EDGE's fused
(ensemble) mode through a trailing ensemble axis handled by einsum ellipses.
The intermediate products ``(d^d/dt^d Q_e) K_c`` are computed once and reused
for the elastic and all anelastic derivative computations, mirroring the
data-reuse the paper describes after eq. (7).
"""

from __future__ import annotations

import math

import numpy as np

from .discretization import Discretization, N_ELASTIC

__all__ = [
    "compute_time_derivatives",
    "time_integrate",
    "time_integrated_dofs",
    "taylor_evaluate",
]


def compute_time_derivatives(
    disc: Discretization, dofs: np.ndarray, elements: np.ndarray | slice = slice(None)
) -> list[np.ndarray]:
    """Time derivatives ``d^d/dt^d Q_k`` for ``d = 0 .. O-1``.

    Parameters
    ----------
    disc:
        The discretization.
    dofs:
        Global DOF array ``(K, N_q, B[, n_fused])``.
    elements:
        Element ids (or slice) selecting the batch to operate on.

    Returns
    -------
    list of arrays
        ``O`` arrays of shape ``(E, N_q, B[, n_fused])``.
    """
    batch = dofs[elements]
    star_e = disc.star_elastic[elements]  # (E, 3, 9, 9)
    star_a = disc.star_anelastic[elements]  # (E, 3, 6, 9)
    coupling = disc.coupling[elements]  # (E, m, 9, 6)
    omegas = disc.omegas
    n_mech = disc.n_mechanisms
    k_time = disc.k_time  # (3, B, B), cast to the run precision

    derivatives = [batch]
    current = batch
    for _ in range(1, disc.order):
        nxt = np.zeros_like(current)
        elastic_prev = current[:, :N_ELASTIC]
        # intermediate results (d^d Q_e) K_c, reused by elastic and anelastic parts
        anelastic_common = None
        for c in range(3):
            tmp = np.einsum("evb...,bd->evd...", elastic_prev, k_time[c])
            nxt[:, :N_ELASTIC] -= np.einsum("eij,ejb...->eib...", star_e[:, c], tmp)
            contrib = np.einsum("eij,ejb...->eib...", star_a[:, c], tmp)
            anelastic_common = contrib if anelastic_common is None else anelastic_common + contrib
        for l in range(n_mech):
            mem_prev = current[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)]
            # reactive source: memory variables feed back into the stresses
            nxt[:, :N_ELASTIC] += np.einsum("eij,ejb...->eib...", coupling[:, l], mem_prev)
            # relaxation: the memory variables are driven by the (scaled)
            # anelastic spatial terms and decay with omega_l
            nxt[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)] = -omegas[l] * (
                anelastic_common + mem_prev
            )
        derivatives.append(nxt)
        current = nxt
    return derivatives


def time_integrate(
    derivatives: list[np.ndarray], t_start: float, t_end: float
) -> np.ndarray:
    """Integrate the Taylor expansion over ``[t_start, t_end]`` (eq. 4).

    ``t_start``/``t_end`` are offsets relative to the expansion point, i.e.
    the classic time-integrated DOFs over one step of size ``dt`` are obtained
    with ``time_integrate(derivatives, 0.0, dt)``.
    """
    if t_end < t_start:
        raise ValueError("t_end must be >= t_start")
    result = np.zeros_like(derivatives[0])
    for d, deriv in enumerate(derivatives):
        factor = (t_end ** (d + 1) - t_start ** (d + 1)) / math.factorial(d + 1)
        result += factor * deriv
    return result


def time_integrated_dofs(
    disc: Discretization,
    dofs: np.ndarray,
    dt: float | np.ndarray,
    elements: np.ndarray | slice = slice(None),
) -> np.ndarray:
    """Convenience wrapper: CK derivatives followed by integration over ``[0, dt]``.

    ``dt`` may be a scalar or a per-element array (shape ``(E,)``).
    """
    derivatives = compute_time_derivatives(disc, dofs, elements)
    if np.isscalar(dt):
        return time_integrate(derivatives, 0.0, float(dt))
    dt = np.asarray(dt, dtype=np.float64)
    extra_dims = derivatives[0].ndim - 1
    dt_shaped = dt.reshape((-1,) + (1,) * extra_dims)
    result = np.zeros_like(derivatives[0])
    for d, deriv in enumerate(derivatives):
        result += dt_shaped ** (d + 1) / math.factorial(d + 1) * deriv
    return result


def taylor_evaluate(derivatives: list[np.ndarray], tau: float) -> np.ndarray:
    """Evaluate the Taylor expansion of the DOFs at time offset ``tau``."""
    result = np.zeros_like(derivatives[0])
    for d, deriv in enumerate(derivatives):
        result += tau**d / math.factorial(d) * deriv
    return result

"""Floating-point operation counting for the ADER-DG kernels.

The paper reports 529,110 flops per element update for single forward
simulations (exploiting only block-sparsity) and 212,688 flops per simulation
and element update when fusing sixteen simulations and exploiting *all*
sparsity, i.e. 59.8 % of the single-simulation operations are zero-operations
(Sec. VII-B).  This module derives the analogous counts for this
implementation's operator set, both for dense (block-sparse) and fully sparse
execution, so the sparsity benchmark can reproduce the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .discretization import Discretization, N_ELASTIC

__all__ = ["FlopCount", "count_flops_per_element_update", "sparsity_report"]


def _matmul_flops(m: int, n: int, k: int) -> int:
    """Flops of a dense (m x k) @ (k x n) product (multiply + add)."""
    return 2 * m * n * k


def _sparse_matmul_flops(nnz: int, n: int) -> int:
    """Flops of a sparse (m x k, nnz non-zeros) times dense (k x n) product."""
    return 2 * nnz * n


def _nnz(matrix: np.ndarray, tol: float = 0.0) -> int:
    return int(np.count_nonzero(np.abs(matrix) > tol))


@dataclass(frozen=True)
class FlopCount:
    """Per-element-update flop counts of the individual kernels."""

    time_kernel: int
    volume_kernel: int
    surface_local: int
    surface_neighbor: int

    @property
    def total(self) -> int:
        return self.time_kernel + self.volume_kernel + self.surface_local + self.surface_neighbor


def count_flops_per_element_update(disc: Discretization, sparse: bool = False) -> FlopCount:
    """Count flops of one element update (time + volume + surface kernels).

    ``sparse=False`` counts dense small-matrix products for the element-local
    operators (the single-forward-simulation mode, which exploits only the
    block structure of the anelastic system).  ``sparse=True`` counts only
    the non-zero entries of every operator (the fused-simulation mode, where
    the ensemble axis allows perfect vectorisation of sparse operators).
    """
    b = disc.n_basis
    f = disc.n_face_basis
    order = disc.order
    m = disc.n_mechanisms

    ref = disc.ref
    k_time_nnz = [_nnz(ref.k_time[c], 1e-12) for c in range(3)]
    k_vol_nnz = [_nnz(ref.k_vol[c], 1e-12) for c in range(3)]
    ftilde_nnz = [_nnz(ref.ftilde[i], 1e-12) for i in range(4)]
    fhat_nnz = [_nnz(ref.fhat[i], 1e-12) for i in range(4)]
    star_e_nnz = _nnz(disc.star_elastic[0]) // 3 if disc.n_elements else 0
    star_a_nnz = _nnz(disc.star_anelastic[0]) // 3 if disc.n_elements else 0
    coupling_nnz = _nnz(disc.coupling[0, 0]) if m else 0
    flux_e_nnz = _nnz(disc.flux_local_elastic[0, 0]) if disc.n_elements else 0
    flux_a_nnz = _nnz(disc.flux_local_anelastic[0, 0]) if disc.n_elements else 0
    if disc.n_unique_neighbor_matrices:
        fbar_nnz = int(np.mean([_nnz(mat, 1e-12) for mat in disc.neighbor_flux_matrices]))
    else:
        fbar_nnz = b * f

    def mm(rows: int, cols: int, inner: int, nnz: int | None = None) -> int:
        if sparse and nnz is not None:
            return _sparse_matmul_flops(nnz, cols)
        return _matmul_flops(rows, cols, inner)

    # ------------------------------------------------------------------
    # time kernel: (order - 1) CK iterations
    # ------------------------------------------------------------------
    time_flops = 0
    for _ in range(order - 1):
        for c in range(3):
            time_flops += mm(N_ELASTIC, b, b, 9 * k_time_nnz[c] // b if sparse else None)
            time_flops += mm(N_ELASTIC, b, N_ELASTIC, star_e_nnz * b // 9 if sparse else None)
            time_flops += mm(6, b, N_ELASTIC, star_a_nnz * b // 9 if sparse else None) if m else 0
        for _l in range(m):
            time_flops += mm(N_ELASTIC, b, 6, coupling_nnz * b // 6 if sparse else None)
            time_flops += 2 * 6 * b  # relaxation scaling and addition
    # Taylor integration of all derivatives
    time_flops += 2 * order * disc.n_vars * b

    # ------------------------------------------------------------------
    # volume kernel
    # ------------------------------------------------------------------
    volume_flops = 0
    for c in range(3):
        volume_flops += mm(N_ELASTIC, b, b, 9 * k_vol_nnz[c] // b if sparse else None)
        volume_flops += mm(N_ELASTIC, b, N_ELASTIC, star_e_nnz * b // 9 if sparse else None)
        volume_flops += mm(6, b, N_ELASTIC, star_a_nnz * b // 9 if sparse else None) if m else 0
    for _l in range(m):
        volume_flops += mm(N_ELASTIC, b, 6, coupling_nnz * b // 6 if sparse else None)
        volume_flops += 2 * 6 * b

    # ------------------------------------------------------------------
    # surface kernels (4 faces each)
    # ------------------------------------------------------------------
    surface_local = 0
    surface_neighbor = 0
    for i in range(4):
        # trace projection T_e F~_i
        proj = mm(N_ELASTIC, f, b, 9 * ftilde_nnz[i] // b if sparse else None)
        test = mm(N_ELASTIC, b, f, 9 * fhat_nnz[i] // f if sparse else None)
        flux_apply_e = mm(N_ELASTIC, f, N_ELASTIC, flux_e_nnz * f // 9 if sparse else None)
        surface_local += proj + flux_apply_e + test
        # neighbouring side: project the neighbour's DOFs with F_bar
        proj_n = mm(N_ELASTIC, f, b, 9 * fbar_nnz // b if sparse else None)
        surface_neighbor += proj_n + flux_apply_e + test
        if m:
            flux_apply_a = mm(6, f, N_ELASTIC, flux_a_nnz * f // 9 if sparse else None)
            test_a = mm(6, b, f, 6 * fhat_nnz[i] // f if sparse else None)
            scale_a = 2 * 6 * b * m
            surface_local += flux_apply_a + test_a + scale_a
            surface_neighbor += flux_apply_a + test_a + scale_a

    # final update additions (eq. 14)
    update_flops = 3 * disc.n_vars * b
    return FlopCount(
        time_kernel=time_flops,
        volume_kernel=volume_flops + update_flops,
        surface_local=surface_local,
        surface_neighbor=surface_neighbor,
    )


def sparsity_report(disc: Discretization) -> dict[str, float]:
    """Summary of the operator sparsity and the zero-operation fraction.

    Mirrors the paper's Sec. VII-B analysis: the fraction of the dense
    (block-sparse) operations that are zero-operations and therefore skipped
    by the fused sparse kernels.
    """
    dense = count_flops_per_element_update(disc, sparse=False)
    sparse = count_flops_per_element_update(disc, sparse=True)
    return {
        "flops_dense": float(dense.total),
        "flops_sparse": float(sparse.total),
        "zero_operation_fraction": 1.0 - sparse.total / dense.total,
    }

"""Element update scheme (eq. 14) and the reference one-step GTS update.

The update of an element is split into a *local* step (time kernel, volume
kernel, local surface kernel -- requires only the element's own data) and a
*neighbouring* step (neighbouring surface kernel -- requires the
face-neighbours' time-integrated data).  The split is what allows EDGE to
hide communication behind computation and is preserved here because the
local/neighbouring split is also the backbone of the LTS scheme.
"""

from __future__ import annotations

import numpy as np

from .backend import ReferenceBackend
from .discretization import Discretization, N_ELASTIC

__all__ = ["local_update", "neighbor_update", "gts_step"]

#: default execution strategy of the module-level functions: the reference
#: kernels, exactly as before the backend layer existed
_REFERENCE = ReferenceBackend()


def local_update(
    disc: Discretization,
    dofs: np.ndarray,
    dt: float,
    elements: np.ndarray | slice = slice(None),
    backend=None,
    ws=None,
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Local part of an element update over ``[t, t + dt]``.

    Returns ``(delta, time_integrated, derivatives)``: the local update
    increment (volume + local surface), the time-integrated DOFs used for it,
    and the CK time derivatives (needed by the LTS buffers).  ``backend``
    selects the kernel-execution strategy (reference kernels by default);
    with a workspace-backed backend the returned arrays are scratch views
    valid until the backend's next call on the same workspace.
    """
    delta, time_integrated, derivatives, _ = (backend or _REFERENCE).local_update(
        disc, dofs, dt, elements, ws=ws
    )
    return delta, time_integrated, derivatives


def neighbor_update(
    disc: Discretization,
    neighbor_time_integrated_elastic: np.ndarray,
    own_time_integrated: np.ndarray,
    elements: np.ndarray,
    backend=None,
    ws=None,
    own_traces: np.ndarray | None = None,
) -> np.ndarray:
    """Neighbouring part of an element update.

    ``neighbor_time_integrated_elastic`` has shape ``(E, 4, 9, B[, n_fused])``
    and contains, per face, the neighbour's elastic time-integrated DOFs over
    the element's time interval.  ``own_traces`` optionally reuses the local
    step's projected traces (recomputing them yields identical values).
    """
    backend = backend or _REFERENCE
    if own_traces is None:
        own_traces = backend.project_local_traces(
            disc, own_time_integrated[:, :N_ELASTIC], elements, ws=ws
        )
    coeffs = backend.neighbor_face_coefficients(
        disc, neighbor_time_integrated_elastic, own_traces, elements, ws=ws
    )
    return backend.surface_kernel_neighbor(disc, coeffs, elements, ws=ws)


def gts_step(
    disc: Discretization, dofs: np.ndarray, dt: float, backend=None, ws=None
) -> np.ndarray:
    """One global time step over all elements (the classic ADER-DG update).

    This is the reference implementation used by the GTS solver and by the
    LTS correctness tests; it returns the new DOF array.
    """
    backend = backend or _REFERENCE
    if ws is not None:
        # a stable array identity keeps the workspace's operator-gather and
        # batch-token caches warm across steps
        all_elements = ws.cached("gts_elements", disc.n_elements, lambda: np.arange(disc.n_elements))
    else:
        all_elements = np.arange(disc.n_elements)
    delta, time_integrated, _, local_traces = backend.local_update(
        disc, dofs, dt, all_elements, ws=ws
    )

    # gather the neighbours' time-integrated elastic DOFs per face
    te = time_integrated[:, :N_ELASTIC]
    neighbors = disc.mesh.neighbors
    safe_neighbors = np.where(neighbors >= 0, neighbors, 0)
    neighbor_te = te[safe_neighbors]  # (K, 4, 9, B[, n_fused])

    # the local step's traces are reused for the ghost faces of the
    # neighbouring update (recomputing them yields identical values)
    delta += neighbor_update(
        disc, neighbor_te, time_integrated, all_elements, backend, ws,
        own_traces=local_traces,
    )
    return dofs + delta

"""Element update scheme (eq. 14) and the reference one-step GTS update.

The update of an element is split into a *local* step (time kernel, volume
kernel, local surface kernel -- requires only the element's own data) and a
*neighbouring* step (neighbouring surface kernel -- requires the
face-neighbours' time-integrated data).  The split is what allows EDGE to
hide communication behind computation and is preserved here because the
local/neighbouring split is also the backbone of the LTS scheme.
"""

from __future__ import annotations

import numpy as np

from .ader import compute_time_derivatives, time_integrate
from .discretization import Discretization, N_ELASTIC
from .surface import (
    neighbor_face_coefficients,
    project_local_traces,
    surface_kernel_local,
    surface_kernel_neighbor,
)
from .volume import volume_kernel

__all__ = ["local_update", "neighbor_update", "gts_step"]


def local_update(
    disc: Discretization,
    dofs: np.ndarray,
    dt: float,
    elements: np.ndarray | slice = slice(None),
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Local part of an element update over ``[t, t + dt]``.

    Returns ``(delta, time_integrated, derivatives)``: the local update
    increment (volume + local surface), the time-integrated DOFs used for it,
    and the CK time derivatives (needed by the LTS buffers).
    """
    derivatives = compute_time_derivatives(disc, dofs, elements)
    time_integrated = time_integrate(derivatives, 0.0, dt)
    local_traces = project_local_traces(disc, time_integrated[:, :N_ELASTIC], elements)
    delta = volume_kernel(disc, time_integrated, elements)
    delta += surface_kernel_local(disc, time_integrated, elements, local_traces=local_traces)
    return delta, time_integrated, derivatives


def neighbor_update(
    disc: Discretization,
    neighbor_time_integrated_elastic: np.ndarray,
    own_time_integrated: np.ndarray,
    elements: np.ndarray,
) -> np.ndarray:
    """Neighbouring part of an element update.

    ``neighbor_time_integrated_elastic`` has shape ``(E, 4, 9, B[, n_fused])``
    and contains, per face, the neighbour's elastic time-integrated DOFs over
    the element's time interval.
    """
    own_traces = project_local_traces(disc, own_time_integrated[:, :N_ELASTIC], elements)
    coeffs = neighbor_face_coefficients(
        disc, neighbor_time_integrated_elastic, own_traces, elements
    )
    return surface_kernel_neighbor(disc, coeffs, elements)


def gts_step(disc: Discretization, dofs: np.ndarray, dt: float) -> np.ndarray:
    """One global time step over all elements (the classic ADER-DG update).

    This is the reference implementation used by the GTS solver and by the
    LTS correctness tests; it returns the new DOF array.
    """
    all_elements = np.arange(disc.n_elements)
    delta, time_integrated, _ = local_update(disc, dofs, dt, all_elements)

    # gather the neighbours' time-integrated elastic DOFs per face
    te = time_integrated[:, :N_ELASTIC]
    neighbors = disc.mesh.neighbors
    safe_neighbors = np.where(neighbors >= 0, neighbors, 0)
    neighbor_te = te[safe_neighbors]  # (K, 4, 9, B[, n_fused])

    delta += neighbor_update(disc, neighbor_te, time_integrated, all_elements)
    return dofs + delta

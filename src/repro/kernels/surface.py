"""Surface kernel of the ADER-DG update (eqs. 10-13).

The kernel is split exactly as the paper splits it:

* the *local* part ``S^L`` uses only the element's own time-integrated
  elastic DOFs and can be evaluated together with the time and volume
  kernels, and
* the *neighbouring* part ``S^N`` uses the face-neighbours' elastic
  time-integrated data -- in the LTS scheme this data comes from the
  buffers ``B1/B2/B3`` and, across partition boundaries, from the
  face-local compressed MPI messages.

The two-step structure (project the trace onto the ``F``-dimensional face
basis with ``F~_i`` / ``F_bar``, apply the flux solver, test with ``F^_i``)
is implemented literally; the projected local traces are computed once per
face and reused between the elastic and anelastic contributions.
"""

from __future__ import annotations

import numpy as np

from .discretization import Discretization, N_ELASTIC

__all__ = [
    "surface_kernel_local",
    "surface_kernel_neighbor",
    "project_local_traces",
    "neighbor_face_coefficients",
]


def project_local_traces(
    disc: Discretization,
    time_integrated_elastic: np.ndarray,
    elements: np.ndarray | slice = slice(None),
) -> np.ndarray:
    """Project the elements' own elastic traces onto the face basis.

    Returns ``(E, 4, 9, F[, n_fused])`` -- the quantity ``T_e F~_i`` of
    eqs. (10)/(12).
    """
    del elements  # the projection uses reference-element data only
    ftilde = disc.ftilde  # (4, B, F), cast to the run precision
    return np.einsum("evb...,ibf->eivf...", time_integrated_elastic, ftilde)


def surface_kernel_local(
    disc: Discretization,
    time_integrated: np.ndarray,
    elements: np.ndarray | slice = slice(None),
    local_traces: np.ndarray | None = None,
) -> np.ndarray:
    """Local part of the surface kernel, ``S^{eL}`` and ``S^{aL}``.

    Parameters
    ----------
    time_integrated:
        ``(E, N_q, B[, n_fused])`` time-integrated DOFs of the batch.
    local_traces:
        Optional precomputed result of :func:`project_local_traces` (reused
        by the buffer computation of the LTS scheme).
    """
    if local_traces is None:
        local_traces = project_local_traces(disc, time_integrated[:, :N_ELASTIC], elements)
    fhat = disc.fhat  # (4, F, B)
    flux_e = disc.flux_local_elastic[elements]  # (E, 4, 9, 9)
    flux_a = disc.flux_local_anelastic[elements]  # (E, 4, 6, 9)
    omegas = disc.omegas

    out = np.zeros_like(time_integrated)
    for i in range(4):
        # (A~- (T_e F~_i)) F^_i
        solved = np.einsum("evw,ewf...->evf...", flux_e[:, i], local_traces[:, i])
        out[:, :N_ELASTIC] += np.einsum("evf...,fb->evb...", solved, fhat[i])
        if disc.n_mechanisms:
            solved_a = np.einsum("evw,ewf...->evf...", flux_a[:, i], local_traces[:, i])
            contrib_a = np.einsum("evf...,fb->evb...", solved_a, fhat[i])
            for l in range(disc.n_mechanisms):
                out[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)] += omegas[l] * contrib_a
    return out


def neighbor_face_coefficients(
    disc: Discretization,
    neighbor_time_integrated_elastic: np.ndarray,
    own_local_traces: np.ndarray,
    elements: np.ndarray,
) -> np.ndarray:
    """Face-basis coefficients of the neighbours' elastic traces.

    Parameters
    ----------
    neighbor_time_integrated_elastic:
        ``(E, 4, 9, B[, n_fused])`` -- for every face of every batch element
        the elastic time-integrated DOFs of the face neighbour, integrated
        over the correct interval (GTS: the global step; LTS: read from the
        neighbour's buffers).  Entries of boundary faces are ignored.
    own_local_traces:
        Result of :func:`project_local_traces` for the same batch; used for
        boundary faces, whose ghost state is built from the element's own
        trace (the ghost operator is folded into the flux solver).
    elements:
        Element ids of the batch.

    Returns
    -------
    numpy.ndarray
        ``(E, 4, 9, F[, n_fused])``.
    """
    fbar = disc.neighbor_flux_matrices  # (U, B, F)
    fbar_index = disc.neighbor_flux_index[elements]  # (E, 4)
    out = np.empty_like(own_local_traces)
    for i in range(4):
        idx = fbar_index[:, i]
        interior = idx >= 0
        if np.any(interior):
            mats = fbar[idx[interior]]  # (E_int, B, F)
            out[interior, i] = np.einsum(
                "evb...,ebf->evf...", neighbor_time_integrated_elastic[interior, i], mats
            )
        if np.any(~interior):
            out[~interior, i] = own_local_traces[~interior, i]
    return out


def surface_kernel_neighbor(
    disc: Discretization,
    neighbor_face_coeffs: np.ndarray,
    elements: np.ndarray | slice = slice(None),
) -> np.ndarray:
    """Neighbouring part of the surface kernel, ``S^{eN}`` and ``S^{aN}``.

    ``neighbor_face_coeffs`` is the result of
    :func:`neighbor_face_coefficients` (or, in the distributed-memory case,
    the face-local data received through the communication layer).
    """
    fhat = disc.fhat
    flux_e = disc.flux_neigh_elastic[elements]
    flux_a = disc.flux_neigh_anelastic[elements]
    omegas = disc.omegas

    n_batch = neighbor_face_coeffs.shape[0]
    fused_shape = neighbor_face_coeffs.shape[4:]
    out = np.zeros(
        (n_batch, disc.n_vars, disc.n_basis) + fused_shape, dtype=neighbor_face_coeffs.dtype
    )
    for i in range(4):
        solved = np.einsum("evw,ewf...->evf...", flux_e[:, i], neighbor_face_coeffs[:, i])
        out[:, :N_ELASTIC] += np.einsum("evf...,fb->evb...", solved, fhat[i])
        if disc.n_mechanisms:
            solved_a = np.einsum("evw,ewf...->evf...", flux_a[:, i], neighbor_face_coeffs[:, i])
            contrib_a = np.einsum("evf...,fb->evb...", solved_a, fhat[i])
            for l in range(disc.n_mechanisms):
                out[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)] += omegas[l] * contrib_a
    return out

"""ADER-DG kernels: discretization setup, time/volume/surface kernels, updates."""

from .ader import (
    compute_time_derivatives,
    taylor_evaluate,
    time_integrate,
    time_integrated_dofs,
)
from .backend import (
    KERNEL_KINDS,
    KernelWorkspace,
    OptimizedBackend,
    ReferenceBackend,
    make_backend,
)
from .discretization import Discretization, N_ELASTIC, PRECISIONS
from .flops import FlopCount, count_flops_per_element_update, sparsity_report
from .surface import (
    neighbor_face_coefficients,
    project_local_traces,
    surface_kernel_local,
    surface_kernel_neighbor,
)
from .update import gts_step, local_update, neighbor_update
from .volume import volume_kernel

__all__ = [
    "Discretization",
    "N_ELASTIC",
    "PRECISIONS",
    "KERNEL_KINDS",
    "KernelWorkspace",
    "ReferenceBackend",
    "OptimizedBackend",
    "make_backend",
    "compute_time_derivatives",
    "time_integrate",
    "time_integrated_dofs",
    "taylor_evaluate",
    "volume_kernel",
    "project_local_traces",
    "surface_kernel_local",
    "surface_kernel_neighbor",
    "neighbor_face_coefficients",
    "local_update",
    "neighbor_update",
    "gts_step",
    "FlopCount",
    "count_flops_per_element_update",
    "sparsity_report",
]

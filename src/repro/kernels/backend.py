"""Pluggable kernel-execution backends for the ADER-DG solver stack.

The paper's performance numbers come from EDGE's tuned fused element kernels;
the solvers in :mod:`repro.core` and :mod:`repro.distributed` were written
against the straightforward reference kernels of :mod:`repro.kernels.ader`,
:mod:`~repro.kernels.volume` and :mod:`~repro.kernels.surface`.  This module
makes the execution strategy a pluggable object so that every solver (GTS,
clustered LTS, distributed rank steppers) runs through one of:

* :class:`ReferenceBackend` -- delegates to the reference kernel functions
  and preserves their bit-exact behaviour (and their per-call temporaries),
* :class:`OptimizedBackend` -- the same math restructured for speed,
* :class:`FastBackend` -- the optimized structure with the f64 bit-identity
  pin dropped: every contraction may reassociate (BLAS dispatch), so results
  are *tolerance-equal* instead of bit-identical.

``OptimizedBackend`` restructures as follows:

  1. the per-dimension ``c = 0..2`` star/stiffness applications and the
     per-face/per-mechanism loops are stacked into batched einsums over
     operator layouts chosen for contiguous inner loops (the element-local
     star/flux gathers are built once per cluster and cached),
  2. the *exact-zero* block structure of the element operators is exploited:
     the elastic star matrices are block-off-diagonal (stress rows only read
     velocity columns and vice versa), the anelastic star and flux matrices
     only read the velocity columns, and the coupling matrices only write
     stress rows -- the structure is verified once per discretization and
     the backend falls back to dense contractions if it does not hold,
  3. every kernel writes into a preallocated :class:`KernelWorkspace`
     (derivative stacks, time integrals, deltas, traces) that is reused
     across micro steps instead of ``np.zeros_like`` per call, and
  4. ``np.einsum_path`` contraction plans are precomputed and cached per
     (operator, shape) pair.

Bit-exactness contract
----------------------
At f64 the optimized backend is **bit-identical** to the reference backend
(asserted by the test suite on GTS, clustered-LTS and distributed runs).
The restructurings in (1)-(3) are chosen so that every output element is
produced by the same sequence of floating-point operations as the reference
loops: batching only adds outer (non-contracted) dimensions, relayouting
only changes strides, slicing only drops terms that are exactly zero, and
accumulations keep the reference order.  The cached einsum plans of (4) may
dispatch contractions to BLAS, which reassociates the reductions; they are
therefore only applied in f32 mode, where results are compared against f64
within a tolerance anyway and the reassociation buys the largest speedup.

Tolerance-equality contract (fast mode)
---------------------------------------
:class:`FastBackend` deliberately breaks the f64 pin: the einsum-plan cache
engages at every precision, the batched per-element matrix applications are
lowered to ``np.matmul`` (batched BLAS GEMMs), and the per-dimension /
per-face / per-mechanism accumulation loops are fused into single
contractions.  Every output is still assembled from the same exactly-zero-
sliced operands, so the result differs from the reference only by floating-
point reassociation.  "Close enough" is not left to ad-hoc ``allclose``
calls: :mod:`repro.verification` pins the contract with convergence-order
checks against analytic solutions and committed golden-trace regressions
under an explicit per-scenario tolerance ladder.
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..observability import NULL_TELEMETRY
from .ader import compute_time_derivatives, time_integrate
from .discretization import N_ELASTIC
from .surface import (
    neighbor_face_coefficients,
    project_local_traces,
    surface_kernel_local,
    surface_kernel_neighbor,
)
from .volume import volume_kernel

__all__ = [
    "KERNEL_KINDS",
    "KernelWorkspace",
    "ReferenceBackend",
    "OptimizedBackend",
    "FastBackend",
    "make_backend",
]

KERNEL_KINDS = ("ref", "opt", "fast")

#: environment override for the default backend of directly constructed
#: solvers (scenario specs name their backend explicitly and win) -- this is
#: what lets CI soak the whole tier-1 suite under the optimized kernels
_ENV_VAR = "REPRO_KERNELS"


def make_backend(kind=None):
    """Resolve a backend name (or pass an instance through).

    ``None`` falls back to the ``REPRO_KERNELS`` environment variable and
    then to ``"ref"``.
    """
    if isinstance(kind, ReferenceBackend):  # Optimized/FastBackend subclass it
        return kind
    if kind is None:
        kind = os.environ.get(_ENV_VAR) or "ref"
    if kind == "ref":
        return ReferenceBackend()
    if kind == "opt":
        return OptimizedBackend()
    if kind == "fast":
        return FastBackend()
    raise ValueError(f"kernel backend must be one of {KERNEL_KINDS}, got {kind!r}")


class KernelWorkspace:
    """Preallocated scratch (and cached static data), keyed by name + shape.

    One workspace is owned per batch producer (one per LTS cluster, one per
    GTS solver); keeping the shape in the scratch key lets the distributed
    steppers alternate between their boundary- and interior-row batch sizes
    without reallocating either.  :meth:`cached` additionally memoizes
    batch-static data (operator gathers, receive plans) under an explicit
    token, so per-cluster element gathers happen once instead of per call.
    """

    __slots__ = ("_arrays", "_cache", "_tokens")

    def __init__(self):
        self._arrays: dict = {}
        self._cache: dict = {}
        #: id(elements) -> (elements, token): memoized batch identities; the
        #: stored reference keeps the array alive so the id stays valid
        self._tokens: dict = {}

    def scratch(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """An uninitialised scratch array of the requested shape/dtype."""
        key = (name, shape, np.dtype(dtype))
        array = self._arrays.get(key)
        if array is None:
            array = np.empty(shape, dtype=dtype)
            self._arrays[key] = array
        return array

    def cached(self, name: str, token, builder):
        """Memoize ``builder()`` under ``(name, token)``."""
        key = (name, token)
        value = self._cache.get(key)
        if value is None:
            value = builder()
            self._cache[key] = value
        return value


class ReferenceBackend:
    """Executes the reference kernel functions exactly as written."""

    name = "ref"

    #: per-solver telemetry lane; the owning solver overwrites this with its
    #: own instance, so kernel-kind timings land in the right rank's lane.
    #: The class default is the shared no-op, keeping direct backend use
    #: (tests, benchmarks) unmeasured and overhead-free.
    telemetry = NULL_TELEMETRY

    def make_workspace(self) -> KernelWorkspace | None:
        """Reference kernels allocate per call; no workspace is kept."""
        return None

    # -- time kernel ----------------------------------------------------
    def compute_time_derivatives(self, disc, dofs, elements, ws=None):
        return compute_time_derivatives(disc, dofs, elements)

    def time_integrate(self, derivatives, t_start, t_end, ws=None, key="ti"):
        return time_integrate(derivatives, t_start, t_end)

    # -- space kernels --------------------------------------------------
    def project_local_traces(self, disc, time_integrated_elastic, elements, ws=None):
        return project_local_traces(disc, time_integrated_elastic, elements)

    def volume_kernel(self, disc, time_integrated, elements, ws=None):
        return volume_kernel(disc, time_integrated, elements)

    def surface_kernel_local(self, disc, time_integrated, elements, local_traces, ws=None):
        return surface_kernel_local(disc, time_integrated, elements, local_traces=local_traces)

    def neighbor_face_coefficients(self, disc, neighbor_te, own_traces, elements, ws=None):
        return neighbor_face_coefficients(disc, neighbor_te, own_traces, elements)

    def surface_kernel_neighbor(self, disc, coeffs, elements, ws=None):
        return surface_kernel_neighbor(disc, coeffs, elements)

    # -- fused local update (time + volume + local surface) -------------
    def local_update(self, disc, dofs, dt, elements, ws=None):
        """``(delta, time_integrated, derivatives, local_traces)``.

        The one canonical local-step pipeline: the GTS step, the clustered
        LTS prediction and the distributed rank steppers all run through
        this method (on either backend), so the bit-exactness-critical
        kernel sequence exists exactly once per backend.
        """
        telemetry = self.telemetry
        with telemetry.region("kernel.ck"):
            derivatives = self.compute_time_derivatives(disc, dofs, elements, ws=ws)
        with telemetry.region("kernel.integrate"):
            time_integrated = self.time_integrate(
                derivatives, 0.0, dt, ws=ws, key="local_ti"
            )
        with telemetry.region("kernel.trace"):
            local_traces = self.project_local_traces(
                disc, time_integrated[:, :N_ELASTIC], elements, ws=ws
            )
        with telemetry.region("kernel.volume"):
            delta = self.volume_kernel(disc, time_integrated, elements, ws=ws)
        with telemetry.region("kernel.surface_local"):
            delta += self.surface_kernel_local(
                disc, time_integrated, elements, local_traces, ws=ws
            )
        return delta, time_integrated, derivatives, local_traces


class _DiscData:
    """Per-discretization derived data of the optimized backend.

    ``*_zero`` flags record the exact-zero structure of the element
    operators (verified once -- the arrays are assembled analytically, so
    the zeros are exact by construction for the elastic/anelastic wave
    equations; a variant that breaks an assumption falls back to the dense
    contraction).  ``ftilde_flat`` groups the four face projections into one
    ``(B, 4 F)`` operator so the trace projection is a single contraction.
    """

    __slots__ = ("star_e_blocks", "star_a_velocity", "coupling_stress",
                 "flux_a_velocity", "ftilde_flat", "k_time_rows", "k_time_sliced",
                 "k_time_cat_t", "k_vol_cat_t", "fhat_flat")

    def __init__(self, disc):
        star_e = disc.star_elastic
        self.star_e_blocks = bool(
            np.all(star_e[:, :, :6, :6] == 0.0) and np.all(star_e[:, :, 6:, 6:] == 0.0)
        )
        self.star_a_velocity = bool(np.all(disc.star_anelastic[:, :, :, :6] == 0.0))
        self.coupling_stress = bool(
            disc.coupling.shape[1] == 0 or np.all(disc.coupling[:, :, 6:, :] == 0.0)
        )
        self.flux_a_velocity = bool(
            np.all(disc.flux_local_anelastic[..., :6] == 0.0)
            and np.all(disc.flux_neigh_anelastic[..., :6] == 0.0)
        )
        self.ftilde_flat = np.ascontiguousarray(disc.ftilde.transpose(1, 0, 2)).reshape(
            disc.ftilde.shape[1], -1
        )
        # the time stiffness matrices lower the polynomial degree, so whole
        # input rows are exactly zero; contracting only the non-zero rows
        # drops exactly-zero terms (bit-safe) and their FLOPs
        self.k_time_rows = []
        self.k_time_sliced = []
        for c in range(3):
            rows = np.where(~(disc.k_time[c] == 0.0).all(axis=1))[0]
            if len(rows) < disc.k_time.shape[1]:
                self.k_time_rows.append(rows)
                self.k_time_sliced.append(np.ascontiguousarray(disc.k_time[c][rows]))
            else:
                self.k_time_rows.append(None)
                self.k_time_sliced.append(disc.k_time[c])
        # concatenated-and-transposed stiffness operators of the fast fused
        # path: one (3 B, B) GEMM per CK/volume iteration instead of three
        # B x B applications -- triples the GEMM rows per batch item, which
        # amortizes the per-item dispatch cost the narrow fused column
        # counts otherwise expose
        self.k_time_cat_t = np.ascontiguousarray(
            np.concatenate([disc.k_time[c].T for c in range(3)], axis=0)
        )
        self.k_vol_cat_t = np.ascontiguousarray(
            np.concatenate([disc.k_vol[c].T for c in range(3)], axis=0)
        )
        # (4 F, B) flattened back-projection of the fast fused surface path
        self.fhat_flat = np.ascontiguousarray(
            disc.fhat.reshape(-1, disc.fhat.shape[2])
        )


def _elements_token(elements, ws=None):
    """A hashable identity for an element batch (operator-gather cache key).

    Serialising the id array is O(E); batches are long-lived (per-cluster
    element lists, per-solver GTS ranges), so the token is memoized on the
    workspace by object identity and computed once per distinct array.
    """
    if isinstance(elements, slice):
        return (elements.start, elements.stop, elements.step)
    if ws is not None:
        entry = ws._tokens.get(id(elements))
        if entry is not None and entry[0] is elements:
            return entry[1]
        token = elements.tobytes()
        ws._tokens[id(elements)] = (elements, token)
        return token
    return elements.tobytes()


class OptimizedBackend(ReferenceBackend):
    """Batched, structure-exploiting, workspace-backed kernel execution.

    Every kernel method is overridden; the composite ``local_update``
    pipeline is inherited, so the bit-exactness-critical kernel sequence
    exists exactly once and dispatches to whichever backend runs it.
    """

    name = "opt"

    #: whether f64 contractions run through the einsum-plan cache too; the
    #: optimized backend keeps f64 on the bit-exact c_einsum kernel, the
    #: fast backend flips this and plans every dtype
    _plan_f64 = False

    def __init__(self):
        #: cached np.einsum_path plans, keyed by (subscripts, operand shapes)
        self._plans: dict = {}

    def make_workspace(self) -> KernelWorkspace:
        return KernelWorkspace()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _disc_data(self, disc) -> _DiscData:
        cached = getattr(disc, "_opt_kernel_data", None)
        if cached is None:
            cached = _DiscData(disc)
            try:
                disc._opt_kernel_data = cached
            except AttributeError:  # pragma: no cover - exotic disc objects
                pass
        return cached

    def _einsum(self, subscripts: str, *operands, out=None):
        """Einsum through the contraction-plan cache.

        Unless ``_plan_f64`` is set, f64 operands stay on numpy's
        sum-of-products kernel (``optimize=False``) so the result is
        bit-identical to the reference loops; everything else applies the
        cached ``np.einsum_path`` plan, which may dispatch to BLAS.
        """
        if not self._plan_f64 and operands[0].dtype == np.float64:
            return np.einsum(subscripts, *operands, out=out)
        key = (subscripts,) + tuple(op.shape for op in operands)
        plan = self._plans.get(key)
        if plan is None:
            plan = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
            self._plans[key] = plan
        return np.einsum(subscripts, *operands, out=out, optimize=plan)

    def _basis_apply(self, x, matrix, out=None):
        """``out[e, v, :, ...] = sum_b x[e, v, b, ...] @ matrix[b, :]``.

        The shared right-multiply-by-an-operator pattern behind the
        stiffness applications, the trace projection and the neighbour
        flux back-projection; any fused trailing axis rides along.  The
        optimized backend keeps the generic einsum (f64 stays on the
        bit-exact unplanned kernel); the fast backend overrides this with
        a GEMM that *folds* the fused axis into the matmul columns instead
        of broadcasting over it.
        """
        return self._einsum("evb...,bd->evd...", x, matrix, out=out)

    @staticmethod
    def _scratch(ws, name, shape, dtype):
        if ws is None:
            return np.empty(shape, dtype=dtype)
        return ws.scratch(name, shape, dtype)

    @staticmethod
    def _cached(ws, name, elements, builder):
        """Memoize a batch-static build on the workspace (build-through when
        no workspace is kept -- the batch token is only computed when it is
        actually used as a cache key)."""
        if ws is None:
            return builder()
        return ws.cached(name, _elements_token(elements, ws), builder)

    def _volume_ops(self, disc, elements, ws):
        """Gathered + relayouted star/coupling operators of a batch (cached).

        The sliced star blocks are stored c-major (``(3, E, rows, cols)``)
        so the batched application iterates contiguously; the coupling
        matrices stay element-major (measured faster for their shape).
        """
        data = self._disc_data(disc)

        def build():
            star_e = disc.star_elastic[elements]
            star_a = disc.star_anelastic[elements]
            coupling = disc.coupling[elements]
            ops = {}
            if data.star_e_blocks:
                ops["star_stress"] = np.ascontiguousarray(
                    star_e[:, :, :6, 6:N_ELASTIC].transpose(1, 0, 2, 3)
                )
                ops["star_veloc"] = np.ascontiguousarray(
                    star_e[:, :, 6:N_ELASTIC, :6].transpose(1, 0, 2, 3)
                )
            else:
                ops["star_full"] = np.ascontiguousarray(star_e.transpose(1, 0, 2, 3))
            if disc.n_mechanisms:
                if data.star_a_velocity:
                    ops["star_a"] = np.ascontiguousarray(
                        star_a[:, :, :, 6:N_ELASTIC].transpose(1, 0, 2, 3)
                    )
                else:
                    ops["star_a"] = np.ascontiguousarray(star_a.transpose(1, 0, 2, 3))
                ops["coupling"] = (
                    np.ascontiguousarray(coupling[:, :, :6])
                    if data.coupling_stress
                    else coupling
                )
            return ops

        return data, self._cached(ws, "volume_ops", elements, build)

    def _surface_ops(self, disc, elements, ws, neighbor: bool):
        """Gathered flux-solver operators of a batch (cached)."""
        data = self._disc_data(disc)
        name = "surf_neigh_ops" if neighbor else "surf_local_ops"

        def build():
            if neighbor:
                flux_e = disc.flux_neigh_elastic[elements]
                flux_a = disc.flux_neigh_anelastic[elements]
            else:
                flux_e = disc.flux_local_elastic[elements]
                flux_a = disc.flux_local_anelastic[elements]
            ops = {"flux_e": flux_e}
            if disc.n_mechanisms:
                ops["flux_a"] = (
                    np.ascontiguousarray(flux_a[..., 6:N_ELASTIC])
                    if data.flux_a_velocity
                    else flux_a
                )
            return ops

        return data, self._cached(ws, name, elements, build)

    # ------------------------------------------------------------------
    # time kernel
    # ------------------------------------------------------------------
    def compute_time_derivatives(self, disc, dofs, elements, ws=None):
        """CK time derivatives into a reused ``(O, E, N_q, B[, f])`` stack."""
        if isinstance(elements, slice):
            batch_shape = dofs[elements].shape
        else:
            batch_shape = (len(elements),) + dofs.shape[1:]
        order = disc.order
        stack = self._scratch(ws, "derivs", (order,) + batch_shape, dofs.dtype)
        stack[0] = dofs[elements]
        derivatives = [stack[d] for d in range(order)]
        if order == 1:
            return derivatives

        data, ops = self._volume_ops(disc, elements, ws)
        omegas = disc.omegas
        n_mech = disc.n_mechanisms

        E = batch_shape[0]
        n_basis = disc.n_basis
        fused = batch_shape[3:]
        dtype = dofs.dtype
        tmp = self._scratch(ws, "ck_tmp", (3, E, N_ELASTIC, n_basis) + fused, dtype)
        if n_mech:
            an_parts = self._scratch(ws, "ck_an", (3, E, 6, n_basis) + fused, dtype)
            an_common = self._scratch(ws, "ck_an_common", (E, 6, n_basis) + fused, dtype)
            neg_omegas = (-omegas).reshape((n_mech, 1, 1) + (1,) * len(fused))

        # the zero-row slicing pays on scalar batches (fewer FLOPs, bit-safe)
        # but on fused batches the fancy-index row gather of a strided
        # (E, 9, rows, F) block costs more than the dropped zero products;
        # the fast backend contracts the full matrices there instead
        slice_rows = not (fused and self._plan_f64)
        for d in range(1, order):
            current = stack[d - 1]
            nxt = stack[d]
            elastic_prev = current[:, :N_ELASTIC]
            for c in range(3):
                rows = data.k_time_rows[c] if slice_rows else None
                self._basis_apply(
                    elastic_prev if rows is None else elastic_prev[:, :, rows],
                    data.k_time_sliced[c] if slice_rows else disc.k_time[c],
                    out=tmp[c],
                )
            self._star_elastic_apply(data, ops, tmp, nxt, ws, sign=-1.0)
            if n_mech:
                self._star_anelastic_apply(data, ops, tmp, an_parts, an_common)
                mem_prev = current[:, N_ELASTIC:].reshape(
                    (E, n_mech, 6, n_basis) + fused
                )
                self._coupling_apply(data, ops, mem_prev, nxt, ws)
                # relaxation: memory variables driven by the anelastic terms
                mem_next = nxt[:, N_ELASTIC:].reshape((E, n_mech, 6, n_basis) + fused)
                np.add(an_common[:, None], mem_prev, out=mem_next)
                mem_next *= neg_omegas
        return derivatives

    def _star_elastic_apply(self, data, ops, tmp, out, ws, sign):
        """Apply the three elastic star contractions to ``out[:, :9]``.

        Starts from zero exactly like the reference's ``zeros_like``
        initialisation (``-1.0 * x`` == ``0 - x`` and ``1.0 * x`` == ``0 + x``
        bitwise, modulo signed zeros); ``sign`` is -1 for the time kernel
        and +1 for the volume kernel.
        """
        dtype = tmp.dtype
        if data.star_e_blocks:
            # stress rows read only velocity columns, and vice versa
            stress = self._scratch(ws, "star_stress_out", (3,) + out[:, :6].shape, dtype)
            veloc = self._scratch(ws, "star_veloc_out", (3,) + out[:, 6:N_ELASTIC].shape, dtype)
            self._einsum("ceij,cejb...->ceib...", ops["star_stress"],
                         tmp[:, :, 6:N_ELASTIC], out=stress)
            self._einsum("ceij,cejb...->ceib...", ops["star_veloc"],
                         tmp[:, :, :6], out=veloc)
            targets = ((out[:, :6], stress), (out[:, 6:N_ELASTIC], veloc))
        else:  # dense fallback
            full = self._scratch(ws, "star_full_out", (3,) + out[:, :N_ELASTIC].shape, dtype)
            self._einsum("ceij,cejb...->ceib...", ops["star_full"], tmp, out=full)
            targets = ((out[:, :N_ELASTIC], full),)
        for target, parts in targets:
            np.multiply(parts[0], sign, out=target)
            for c in (1, 2):
                if sign < 0:
                    target -= parts[c]
                else:
                    target += parts[c]

    def _star_anelastic_apply(self, data, ops, tmp, an_parts, an_common):
        """``an_common = sum_c star_a[:, c] @ tmp[c]`` in reference order."""
        if data.star_a_velocity:
            self._einsum("ceij,cejb...->ceib...", ops["star_a"],
                         tmp[:, :, 6:N_ELASTIC], out=an_parts)
        else:
            self._einsum("ceij,cejb...->ceib...", ops["star_a"], tmp, out=an_parts)
        np.add(an_parts[0], an_parts[1], out=an_common)
        an_common += an_parts[2]

    def _coupling_apply(self, data, ops, mem, out, ws):
        """``out[:, :9] += sum_l coupling[:, l] @ mem[:, l]`` (reference order)."""
        coupling = ops["coupling"]
        n_mech = coupling.shape[1]
        dtype = mem.dtype
        rows = coupling.shape[2]
        contrib = self._scratch(
            ws, "coup_out", (out.shape[0], n_mech, rows) + out.shape[2:], dtype
        )
        self._einsum("elij,eljb...->elib...", coupling, mem, out=contrib)
        target = out[:, :rows]
        for l in range(n_mech):
            target += contrib[:, l]

    # ------------------------------------------------------------------
    # time integration
    # ------------------------------------------------------------------
    def time_integrate(self, derivatives, t_start, t_end, ws=None, key="ti"):
        """Taylor integration over ``[t_start, t_end]`` into workspace arrays."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        first = derivatives[0]
        result = self._scratch(ws, key, first.shape, first.dtype)
        term = self._scratch(ws, "ti_term", first.shape, first.dtype)
        for d, deriv in enumerate(derivatives):
            factor = (t_end ** (d + 1) - t_start ** (d + 1)) / math.factorial(d + 1)
            if d == 0:
                np.multiply(deriv, factor, out=result)
            else:
                np.multiply(deriv, factor, out=term)
                result += term
        return result

    # ------------------------------------------------------------------
    # space kernels
    # ------------------------------------------------------------------
    def project_local_traces(self, disc, time_integrated_elastic, elements, ws=None):
        """Trace projection as one grouped ``(B, 4 F)`` contraction."""
        data = self._disc_data(disc)
        te = time_integrated_elastic
        E = te.shape[0]
        n_face_basis = disc.n_face_basis
        fused = te.shape[3:]
        grouped = self._scratch(
            ws, "traces_grouped", (E, N_ELASTIC, 4 * n_face_basis) + fused, te.dtype
        )
        self._basis_apply(te, data.ftilde_flat, out=grouped)
        out = self._scratch(
            ws, "traces", (E, 4, N_ELASTIC, n_face_basis) + fused, te.dtype
        )
        # regroup (E, 9, (i, F)) -> (E, 4, 9, F): one contiguous copy so the
        # surface kernels (and the halo payload path) see the public layout
        split = grouped.reshape((E, N_ELASTIC, 4, n_face_basis) + fused)
        np.copyto(out, np.moveaxis(split, 2, 1))
        return out

    def volume_kernel(self, disc, time_integrated, elements, ws=None):
        data, ops = self._volume_ops(disc, elements, ws)
        omegas = disc.omegas
        n_mech = disc.n_mechanisms
        k_vol = disc.k_vol

        te = time_integrated[:, :N_ELASTIC]
        E = time_integrated.shape[0]
        n_basis = time_integrated.shape[2]
        fused = time_integrated.shape[3:]
        dtype = time_integrated.dtype
        out = self._scratch(ws, "vol_out", time_integrated.shape, dtype)

        tmp = self._scratch(ws, "ck_tmp", (3, E, N_ELASTIC, n_basis) + fused, dtype)
        for c in range(3):
            self._basis_apply(te, k_vol[c], out=tmp[c])
        self._star_elastic_apply(data, ops, tmp, out, ws, sign=1.0)
        if n_mech:
            an_parts = self._scratch(ws, "ck_an", (3, E, 6, n_basis) + fused, dtype)
            an_common = self._scratch(ws, "ck_an_common", (E, 6, n_basis) + fused, dtype)
            self._star_anelastic_apply(data, ops, tmp, an_parts, an_common)
            mem_te = time_integrated[:, N_ELASTIC:].reshape((E, n_mech, 6, n_basis) + fused)
            self._coupling_apply(data, ops, mem_te, out, ws)
            mem_out = out[:, N_ELASTIC:].reshape((E, n_mech, 6, n_basis) + fused)
            np.subtract(an_common[:, None], mem_te, out=mem_out)
            mem_out *= omegas.reshape((n_mech, 1, 1) + (1,) * len(fused))
        else:
            out[:, N_ELASTIC:] = 0.0
        return out

    def _surface_kernel(self, disc, data, ops, face_coeffs, ws, prefix):
        """Shared body of the local and neighbouring surface kernels.

        ``face_coeffs`` is ``(E, 4, 9, F[, f])`` -- the projected traces
        (local part) or the neighbour face coefficients (neighbouring part).
        """
        fhat = disc.fhat  # (4, F, B)
        omegas = disc.omegas
        n_mech = disc.n_mechanisms
        E = face_coeffs.shape[0]
        fused = face_coeffs.shape[4:]
        n_basis = disc.n_basis
        dtype = face_coeffs.dtype
        flux_e = ops["flux_e"]

        out = self._scratch(
            ws, prefix + "_out", (E, disc.n_vars, n_basis) + fused, dtype
        )
        # per-face pipeline into face-major scratch: each contraction reads
        # and writes contiguous (E, ...) blocks, which measures faster than
        # both the flattened and the doubly batched forms
        solved = self._scratch(
            ws, prefix + "_solved", (4, E, N_ELASTIC) + face_coeffs.shape[3:], dtype
        )
        contrib = self._scratch(
            ws, prefix + "_contrib", (4, E, N_ELASTIC, n_basis) + fused, dtype
        )
        for i in range(4):
            self._einsum("evw,ewf...->evf...", flux_e[:, i], face_coeffs[:, i], out=solved[i])
            self._basis_apply(solved[i], fhat[i], out=contrib[i])
        elastic = out[:, :N_ELASTIC]
        elastic[...] = contrib[0]
        for i in (1, 2, 3):
            elastic += contrib[i]

        if n_mech:
            flux_a = ops["flux_a"]
            coeffs_a = (
                face_coeffs[:, :, 6:N_ELASTIC] if data.flux_a_velocity else face_coeffs
            )
            solved_a = self._scratch(
                ws, prefix + "_solved_a", (4, E, 6) + face_coeffs.shape[3:], dtype
            )
            contrib_a = self._scratch(
                ws, prefix + "_contrib_a", (4, E, 6, n_basis) + fused, dtype
            )
            for i in range(4):
                self._einsum("evw,ewf...->evf...", flux_a[:, i], coeffs_a[:, i], out=solved_a[i])
                self._basis_apply(solved_a[i], fhat[i], out=contrib_a[i])
            scaled = self._scratch(ws, prefix + "_scaled", (E, 6, n_basis) + fused, dtype)
            for i in range(4):
                for l in range(n_mech):
                    target = out[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)]
                    np.multiply(contrib_a[i], omegas[l], out=scaled)
                    if i == 0:
                        target[...] = scaled
                    else:
                        target += scaled
        else:
            out[:, N_ELASTIC:] = 0.0
        return out

    def surface_kernel_local(self, disc, time_integrated, elements, local_traces, ws=None):
        if local_traces is None:
            local_traces = self.project_local_traces(
                disc, time_integrated[:, :N_ELASTIC], elements, ws=ws
            )
        data, ops = self._surface_ops(disc, elements, ws, neighbor=False)
        return self._surface_kernel(disc, data, ops, local_traces, ws, "surf_local")

    def neighbor_face_coefficients(self, disc, neighbor_te, own_traces, elements, ws=None):
        """Neighbour trace coefficients, grouped by unique ``F_bar`` matrix.

        The mesh only has a handful of distinct neighbouring flux matrices
        (Sec. III), so instead of gathering one ``B x F`` matrix per face the
        faces are grouped per unique matrix and contracted against it
        directly.  The per-face grouping is static and cached per batch.
        """
        fbar = disc.neighbor_flux_matrices

        def build():
            index = disc.neighbor_flux_index[elements]  # (E, 4)
            plan = []
            for i in range(4):
                column = index[:, i]
                boundary = np.where(column < 0)[0]
                groups = [
                    (int(u), np.where(column == u)[0])
                    for u in np.unique(column[column >= 0])
                ]
                plan.append((boundary, groups))
            return plan

        plan = self._cached(ws, "nfc_plan", elements, build)
        out = self._scratch(ws, "nfc_out", own_traces.shape, own_traces.dtype)
        for i, (boundary, groups) in enumerate(plan):
            for u, rows in groups:
                out[rows, i] = self._basis_apply(neighbor_te[rows, i], fbar[u])
            if len(boundary):
                out[boundary, i] = own_traces[boundary, i]
        return out

    def surface_kernel_neighbor(self, disc, coeffs, elements, ws=None):
        data, ops = self._surface_ops(disc, elements, ws, neighbor=True)
        return self._surface_kernel(disc, data, ops, coeffs, ws, "surf_neigh")


class FastBackend(OptimizedBackend):
    """Tolerance-equal f64 execution: the bit-identity pin dropped.

    Reuses the optimized backend's batching, cached operator gathers,
    zero-block slicing and scratch workspaces, but relaxes the contraction
    order for speed:

    * every einsum runs through the cached ``np.einsum_path`` plan at every
      dtype, so the tensordot-shaped contractions (stiffness applications,
      trace projections, ``F_bar``/``fhat`` multiplies) dispatch to BLAS,
    * the batched per-element matrix applications (star, coupling, flux
      solves) are lowered to ``np.matmul`` -- batched GEMMs over folded
      basis/fused trailing axes,
    * the four per-face surface contributions are accumulated by one fused
      ``(face, face_basis)`` contraction instead of a reference-ordered loop,
      and the per-mechanism anelastic surface terms reuse one common
      face-summed contribution.

    Results are NOT bit-identical to the reference at any precision; the
    accuracy contract (convergence order, golden-trace tolerances) is owned
    by :mod:`repro.verification`.
    """

    name = "fast"
    _plan_f64 = True  # the whole point: plans (and BLAS) at f64 too

    @staticmethod
    def _bmm(matrices, operand, out):
        """Batched ``matrices @ operand`` with trailing fused axes folded.

        ``matrices`` is ``(..., i, j)``, ``operand`` ``(..., j, B[, f])`` and
        ``out`` ``(..., i, B[, f])``.  Any fused trailing axes are folded
        into the GEMM column axis.  Both folds merge only the two innermost
        axes, which stay contiguous through every call site's middle-axis
        slicing, so they are views and ``np.matmul`` writes in place; an
        exotic non-contiguous *operand* would fold through a copy (still
        correct -- only ``out`` must remain a view, and it is always
        freshly-allocated contiguous workspace scratch).
        """
        batch = matrices.ndim - 1
        if operand.ndim > matrices.ndim:
            operand = operand.reshape(operand.shape[:batch] + (-1,))
            out = out.reshape(out.shape[:batch] + (-1,))
        n = operand.shape[-1]
        if n > 128:
            # wide folded column counts fall off a serial-GEMM performance
            # cliff (measured ~2.5x per column beyond ~128 columns for the
            # small star/flux blocks); chunking the column axis keeps each
            # GEMM on the fast path and is bitwise free -- every output
            # column's accumulation over j is untouched
            n_chunks = -(n // -128)
            step = -(n // -n_chunks)
            for start in range(0, n, step):
                np.matmul(
                    matrices,
                    operand[..., start : start + step],
                    out=out[..., start : start + step],
                )
            return
        np.matmul(matrices, operand, out=out)

    def _basis_apply(self, x, matrix, out=None):
        """Right-multiply by an operator as a GEMM with the fused axis folded.

        Scalar batches run ``x @ matrix`` (a ``(V, B) @ (B, D)`` GEMM per
        element).  Fused batches run ``matrix.T @ x``: broadcasting maps
        ``(D, B) @ (E, V, B, F) -> (E, V, D, F)``, i.e. the fused axis
        becomes the GEMM column axis -- one operator read shared by all F
        fused runs per ``(e, v)`` batch, instead of the planned einsum's
        broadcast (which re-reads the operator per slot and measures several
        times slower at F >= 2).
        """
        if x.ndim == 3:
            return np.matmul(x, matrix, out=out)
        return np.matmul(matrix.T, x, out=out)

    def _star_elastic_apply(self, data, ops, tmp, out, ws, sign):
        """Fused ``out[:, :9] = sign * sum_c star[c] @ tmp[c]``."""
        dtype = tmp.dtype
        if data.star_e_blocks:
            stress = self._scratch(ws, "star_stress_out", (3,) + out[:, :6].shape, dtype)
            veloc = self._scratch(ws, "star_veloc_out", (3,) + out[:, 6:N_ELASTIC].shape, dtype)
            self._bmm(ops["star_stress"], tmp[:, :, 6:N_ELASTIC], stress)
            self._bmm(ops["star_veloc"], tmp[:, :, :6], veloc)
            targets = ((out[:, :6], stress), (out[:, 6:N_ELASTIC], veloc))
        else:  # dense fallback
            full = self._scratch(ws, "star_full_out", (3,) + out[:, :N_ELASTIC].shape, dtype)
            self._bmm(ops["star_full"], tmp, full)
            targets = ((out[:, :N_ELASTIC], full),)
        for target, parts in targets:
            np.add(parts[0], parts[1], out=target)
            target += parts[2]
            if sign < 0:
                np.negative(target, out=target)

    def _star_anelastic_apply(self, data, ops, tmp, an_parts, an_common):
        if data.star_a_velocity:
            self._bmm(ops["star_a"], tmp[:, :, 6:N_ELASTIC], an_parts)
        else:
            self._bmm(ops["star_a"], tmp, an_parts)
        np.add(an_parts[0], an_parts[1], out=an_common)
        an_common += an_parts[2]

    def _coupling_apply(self, data, ops, mem, out, ws):
        coupling = ops["coupling"]
        n_mech = coupling.shape[1]
        rows = coupling.shape[2]
        contrib = self._scratch(
            ws, "coup_out", (out.shape[0], n_mech, rows) + out.shape[2:], mem.dtype
        )
        self._bmm(coupling, mem, contrib)
        target = out[:, :rows]
        for l in range(n_mech):
            target += contrib[:, l]

    def _stiffness_cat(self, cat_t, x, tmp_cat):
        """All three directional stiffness applications as one wide GEMM.

        ``cat_t`` is the ``(3 B, B)`` concatenation of the transposed
        stiffness operators; the result lands in ``tmp_cat`` with layout
        ``(E, 9, 3 B, F)`` and is returned as the ``(3, E, 9, B, F)`` view
        the star/anelastic applications consume -- the view keeps the
        ``(B, F)`` block of every batch item contiguous, so the downstream
        folded GEMMs still run copy-free.
        """
        np.matmul(cat_t, x, out=tmp_cat)
        E, n_vars, three_b = tmp_cat.shape[:3]
        split = tmp_cat.reshape((E, n_vars, 3, three_b // 3) + tmp_cat.shape[3:])
        return split.transpose((2, 0, 1, 3) + tuple(range(4, split.ndim)))

    def compute_time_derivatives(self, disc, dofs, elements, ws=None):
        """Fused batches run the CK loop on concatenated stiffness GEMMs."""
        if isinstance(elements, slice):
            batch_shape = dofs[elements].shape
        else:
            batch_shape = (len(elements),) + dofs.shape[1:]
        fused = batch_shape[3:]
        if not fused:
            return super().compute_time_derivatives(disc, dofs, elements, ws)
        order = disc.order
        stack = self._scratch(ws, "derivs", (order,) + batch_shape, dofs.dtype)
        stack[0] = dofs[elements]
        derivatives = [stack[d] for d in range(order)]
        if order == 1:
            return derivatives

        data, ops = self._volume_ops(disc, elements, ws)
        n_mech = disc.n_mechanisms

        E = batch_shape[0]
        n_basis = disc.n_basis
        dtype = dofs.dtype
        tmp_cat = self._scratch(
            ws, "ck_tmp_cat", (E, N_ELASTIC, 3 * n_basis) + fused, dtype
        )
        if n_mech:
            an_parts = self._scratch(ws, "ck_an", (3, E, 6, n_basis) + fused, dtype)
            an_common = self._scratch(ws, "ck_an_common", (E, 6, n_basis) + fused, dtype)
            neg_omegas = (-disc.omegas).reshape((n_mech, 1, 1) + (1,) * len(fused))

        for d in range(1, order):
            current = stack[d - 1]
            nxt = stack[d]
            tmp = self._stiffness_cat(
                data.k_time_cat_t, current[:, :N_ELASTIC], tmp_cat
            )
            self._star_elastic_apply(data, ops, tmp, nxt, ws, sign=-1.0)
            if n_mech:
                self._star_anelastic_apply(data, ops, tmp, an_parts, an_common)
                mem_prev = current[:, N_ELASTIC:].reshape(
                    (E, n_mech, 6, n_basis) + fused
                )
                self._coupling_apply(data, ops, mem_prev, nxt, ws)
                mem_next = nxt[:, N_ELASTIC:].reshape((E, n_mech, 6, n_basis) + fused)
                np.add(an_common[:, None], mem_prev, out=mem_next)
                mem_next *= neg_omegas
        return derivatives

    def volume_kernel(self, disc, time_integrated, elements, ws=None):
        """Fused batches run the volume kernel on a concatenated GEMM too."""
        fused = time_integrated.shape[3:]
        if not fused:
            return super().volume_kernel(disc, time_integrated, elements, ws)
        data, ops = self._volume_ops(disc, elements, ws)
        omegas = disc.omegas
        n_mech = disc.n_mechanisms

        te = time_integrated[:, :N_ELASTIC]
        E = time_integrated.shape[0]
        n_basis = time_integrated.shape[2]
        dtype = time_integrated.dtype
        out = self._scratch(ws, "vol_out", time_integrated.shape, dtype)

        tmp_cat = self._scratch(
            ws, "ck_tmp_cat", (E, N_ELASTIC, 3 * n_basis) + fused, dtype
        )
        tmp = self._stiffness_cat(data.k_vol_cat_t, te, tmp_cat)
        self._star_elastic_apply(data, ops, tmp, out, ws, sign=1.0)
        if n_mech:
            an_parts = self._scratch(ws, "ck_an", (3, E, 6, n_basis) + fused, dtype)
            an_common = self._scratch(ws, "ck_an_common", (E, 6, n_basis) + fused, dtype)
            self._star_anelastic_apply(data, ops, tmp, an_parts, an_common)
            mem_te = time_integrated[:, N_ELASTIC:].reshape((E, n_mech, 6, n_basis) + fused)
            self._coupling_apply(data, ops, mem_te, out, ws)
            mem_out = out[:, N_ELASTIC:].reshape((E, n_mech, 6, n_basis) + fused)
            np.subtract(an_common[:, None], mem_te, out=mem_out)
            mem_out *= omegas.reshape((n_mech, 1, 1) + (1,) * len(fused))
        else:
            out[:, N_ELASTIC:] = 0.0
        return out

    def _surface_kernel(self, disc, data, ops, face_coeffs, ws, prefix):
        """Surface kernels with fused per-face accumulation.

        The four flux solves run as one ``(E, 4)``-batched GEMM and the four
        ``fhat`` back-projections collapse into a single contraction over
        ``(face, face_basis)``; the anelastic mechanisms share one common
        face-summed contribution scaled per ``omega_l``.
        """
        fhat = disc.fhat  # (4, F, B)
        omegas = disc.omegas
        n_mech = disc.n_mechanisms
        E = face_coeffs.shape[0]
        fused = face_coeffs.shape[4:]
        n_basis = disc.n_basis
        dtype = face_coeffs.dtype

        out = self._scratch(
            ws, prefix + "_out", (E, disc.n_vars, n_basis) + fused, dtype
        )
        solved = self._scratch(
            ws, prefix + "_fsolved", (E, 4, N_ELASTIC) + face_coeffs.shape[3:], dtype
        )
        self._bmm(ops["flux_e"], face_coeffs, solved)
        self._fhat_project(data, fhat, solved, out[:, :N_ELASTIC], ws, prefix)

        if n_mech:
            flux_a = ops["flux_a"]
            coeffs_a = (
                face_coeffs[:, :, 6:N_ELASTIC] if data.flux_a_velocity else face_coeffs
            )
            solved_a = self._scratch(
                ws, prefix + "_fsolved_a", (E, 4, 6) + face_coeffs.shape[3:], dtype
            )
            self._bmm(flux_a, coeffs_a, solved_a)
            common = self._scratch(
                ws, prefix + "_fcommon", (E, 6, n_basis) + fused, dtype
            )
            self._fhat_project(data, fhat, solved_a, common, ws, prefix + "_a")
            for l in range(n_mech):
                target = out[:, N_ELASTIC + 6 * l : N_ELASTIC + 6 * (l + 1)]
                np.multiply(common, omegas[l], out=target)
        else:
            out[:, N_ELASTIC:] = 0.0
        return out

    def _fhat_project(self, data, fhat, solved, out, ws, prefix):
        """``out[e, v] = sum_{i, f} solved[e, i, v, f] @ fhat[i, f]``.

        Scalar batches keep the fused ``(face, face_basis)`` einsum
        contraction.  Fused batches regroup ``solved`` so the contraction
        axes are innermost and run ONE flat ``(E V F, 4 f) @ (4 f, B)``
        GEMM -- the planned einsum broadcasts the fused axis into many
        narrow GEMMs plus internal transpose copies, which dominated the
        fused surface kernels.
        """
        if solved.ndim == 4:  # no fused axis
            self._einsum("eivf,ifb->evb", solved, fhat, out=out)
            return
        E, _, n_vars, n_face_basis, n_fused = solved.shape
        n_basis = out.shape[2]
        regrouped = self._scratch(
            ws,
            prefix + "_fhat_in",
            (E, n_vars, n_fused, 4 * n_face_basis),
            solved.dtype,
        )
        np.copyto(
            regrouped.reshape(E, n_vars, n_fused, 4, n_face_basis),
            solved.transpose(0, 2, 4, 1, 3),
        )
        projected = self._scratch(
            ws, prefix + "_fhat_out", (E, n_vars, n_fused, n_basis), solved.dtype
        )
        np.matmul(
            regrouped.reshape(-1, 4 * n_face_basis),
            data.fhat_flat,
            out=projected.reshape(-1, n_basis),
        )
        out[...] = projected.transpose(0, 1, 3, 2)


"""Content-addressed preprocessing cache.

The paper's fused-simulation and clustered-LTS arguments are amortization
arguments: many related runs should share setup cost.  This module makes
that sharing concrete for the preprocessing pipeline: each stage -- mesh,
materials, assembled kernel operators, LTS clustering, weighted partition /
reordering -- is keyed by a SHA-256 over *only the spec fields that
determine its result* and persisted as an ``.npz`` under a cache directory.
A 1000-member source ensemble on a shared mesh therefore pays mesh,
operator-assembly and clustering cost once: the source location is not part
of any stage key, so every member after the first loads bit-identical
arrays from disk.

Stage keys deliberately do NOT reuse
:func:`repro.observability.events.spec_content_hash`, which hashes the
whole spec including the ``output`` observability block -- two runs that
differ only in ``--events`` must share every cache entry.  The
``output``-insensitive whole-spec hash is :func:`result_content_hash`, the
identity under which sweep manifests compare members against standalone
runs.

Key derivation starts from ``spec.to_dict()`` -- the defaults-filled,
JSON-native form -- and serialises key-sorted, so field order, tuple/list
representation and defaulted-vs-explicit values cannot split the cache.

All writes are atomic (tmp file + ``os.replace``), so concurrent sweep
workers can share one cache directory: the worst race is building the same
artifact twice, never reading a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..core.clustering import Clustering
from ..equations.material import MaterialTable
from ..mesh.tet_mesh import TetMesh

__all__ = [
    "CACHE_FORMAT_VERSION",
    "STAGES",
    "result_content_hash",
    "stage_key_fields",
    "stage_key",
    "PreprocessingCache",
    "diff_stats",
    "warm_preprocessing",
]

#: bumped whenever a stage's serialised layout (or anything influencing its
#: artifact bytes) changes; part of every stage key, so stale cache
#: directories miss instead of poisoning new runs
CACHE_FORMAT_VERSION = 1

#: the cacheable pipeline stages, in dependency order
STAGES = ("mesh", "materials", "operators", "clustering", "partition")


def _canonical_hash(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def result_content_hash(spec) -> str:
    """SHA-256 of the spec minus the ``output`` observability block.

    The observability knobs (telemetry, traces, ledgers, progress) never
    influence the numerical result, so this is the identity under which a
    sweep member and a standalone ``repro run`` of "the same scenario"
    compare equal even though the sweep instruments its members.
    """
    data = spec.to_dict()
    data.pop("output", None)
    return _canonical_hash(data)


# ---------------------------------------------------------------------------
# per-stage key fields
# ---------------------------------------------------------------------------


def stage_key_fields(spec, stage: str, *, layout: str = "original") -> dict:
    """The result-determining spec fields of one pipeline stage.

    * ``mesh``: the domain and mesh blocks; in ``wavelength`` mode also the
      velocity model and the order (the elements-per-wavelength rule reads
      both).  Source, materials options, solver and output knobs are
      excluded -- a source ensemble shares one mesh.
    * ``materials``: the mesh fields plus the velocity model and the
      ``anelastic`` switch (which strips the quality factors).
    * ``operators``: the materials fields plus everything the operator
      assembly reads -- order, mechanisms, constant-Q band, flux, CFL and
      the run precision (operators are stored post-cast).  ``layout``
      discriminates the element order the arrays were assembled in:
      ``"original"`` (mesh order) vs ``"reordered"`` (solver order after the
      partition/reordering pass, whose key then also covers the
      preprocessing and clustering policy that shaped the permutation).
    * ``clustering``: the materials fields plus order, CFL and the
      clustering policy (the per-element CFL steps feed the lambda search);
      derived in original element order, so reordered and plain runs share
      the entry.
    * ``partition``: the clustering fields plus the preprocessing block
      (partition count / reordering).
    """
    if stage not in STAGES:
        raise ValueError(f"stage must be one of {STAGES}, got {stage!r}")
    if layout not in ("original", "reordered"):
        raise ValueError(f"layout must be 'original' or 'reordered', got {layout!r}")
    d = spec.to_dict()
    fields: dict = {"domain": d["domain"], "mesh": d["mesh"]}
    if stage == "mesh":
        if spec.mesh.mode == "wavelength":
            fields["velocity_model"] = d["velocity_model"]
            fields["order"] = d["order"]
        return fields
    fields["velocity_model"] = d["velocity_model"]
    fields["anelastic"] = d["material"]["anelastic"]
    if stage == "materials":
        return fields
    if stage == "operators":
        fields["order"] = d["order"]
        fields["material"] = d["material"]
        fields["flux"] = d["solver"]["flux"]
        fields["cfl"] = d["solver"]["cfl"]
        fields["precision"] = d["solver"]["precision"]
        fields["layout"] = layout
        if layout == "reordered":
            # the reordering permutation (and hence the element order the
            # arrays are stored in) depends on the partition count and the
            # clustering policy
            fields["preprocessing"] = d["preprocessing"]
            fields["clustering"] = d["clustering"]
        return fields
    fields["order"] = d["order"]
    fields["cfl"] = d["solver"]["cfl"]
    fields["clustering"] = d["clustering"]
    if stage == "clustering":
        return fields
    fields["preprocessing"] = d["preprocessing"]  # stage == "partition"
    return fields


def stage_key(spec, stage: str, *, layout: str = "original") -> str:
    """The content-address of one stage: SHA-256 over its key fields."""
    return _canonical_hash(
        {
            "stage": stage,
            "format": CACHE_FORMAT_VERSION,
            **stage_key_fields(spec, stage, layout=layout),
        }
    )


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


class PreprocessingCache:
    """Content-addressed, on-disk store of preprocessing stage artifacts.

    Layout: ``<root>/<stage>/<key>.npz``, one file per artifact.  Loads and
    stores are counted per stage in :attr:`stats`; sweep workers report the
    per-member delta (:meth:`snapshot` / :func:`diff_stats`) into the sweep
    manifest, which is how "preprocessing was paid exactly once" becomes a
    checkable claim rather than a hope.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.stats: dict[str, dict[str, int]] = {
            stage: {"hits": 0, "misses": 0} for stage in STAGES
        }

    # -- bookkeeping -----------------------------------------------------
    def snapshot(self) -> dict:
        """A deep copy of the hit/miss counters (for delta accounting)."""
        return {stage: dict(counts) for stage, counts in self.stats.items()}

    def _count(self, stage: str, hit: bool) -> None:
        self.stats[stage]["hits" if hit else "misses"] += 1

    def _path(self, stage: str, key: str) -> Path:
        return self.root / stage / f"{key}.npz"

    def _store(self, stage: str, key: str, arrays: dict) -> None:
        path = self._path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # atomic publish: concurrent workers may race to build the same
        # artifact, but a reader can never observe a torn file
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp, path)

    def _load(self, stage: str, key: str) -> dict | None:
        path = self._path(stage, key)
        if not path.exists():
            return None
        with np.load(path) as data:
            return {name: data[name].copy() for name in data.files}

    def is_warm(self, spec) -> bool:
        """Whether every stage artifact the spec needs already exists on disk."""
        keys = [
            ("mesh", stage_key(spec, "mesh")),
            ("materials", stage_key(spec, "materials")),
            ("operators", stage_key(spec, "operators")),
            ("clustering", stage_key(spec, "clustering")),
        ]
        if spec.preprocessing.active:
            keys.append(("partition", stage_key(spec, "partition")))
            keys.append(("operators", stage_key(spec, "operators", layout="reordered")))
        return all(self._path(stage, key).exists() for stage, key in keys)

    # -- stages ----------------------------------------------------------
    def mesh(self, spec, build) -> TetMesh:
        """Load the mesh stage, or ``build()`` and persist it."""
        key = stage_key(spec, "mesh")
        stored = self._load("mesh", key)
        if stored is not None:
            self._count("mesh", hit=True)
            return TetMesh(
                vertices=stored["vertices"],
                elements=stored["elements"],
                boundary_tags=stored["boundary_tags"],
            )
        self._count("mesh", hit=False)
        mesh = build()
        self._store(
            "mesh",
            key,
            {
                "vertices": mesh.vertices,
                "elements": mesh.elements,
                "boundary_tags": mesh.boundary_tags,
            },
        )
        return mesh

    def materials(self, spec, build) -> MaterialTable:
        """Load the materials stage, or ``build()`` and persist it."""
        key = stage_key(spec, "materials")
        stored = self._load("materials", key)
        if stored is not None:
            self._count("materials", hit=True)
            return MaterialTable(
                rho=stored["rho"], vp=stored["vp"], vs=stored["vs"],
                qp=stored["qp"], qs=stored["qs"],
            )
        self._count("materials", hit=False)
        materials = build()
        self._store(
            "materials",
            key,
            {
                "rho": materials.rho, "vp": materials.vp, "vs": materials.vs,
                "qp": materials.qp, "qs": materials.qs,
            },
        )
        return materials

    def discretization(self, spec, mesh, materials, kwargs: dict,
                       *, layout: str = "original"):
        """Build a :class:`~repro.kernels.discretization.Discretization`,
        reusing the cached ``operators`` stage when present.

        ``kwargs`` are the non-(mesh, materials) constructor arguments; only
        the expensive assembled arrays travel through the cache -- geometry
        and the reference element are recomputed (cheap, deterministic).
        ``layout`` must name the element order of ``mesh``/``materials``
        (see :func:`stage_key_fields`).
        """
        from ..kernels.discretization import Discretization

        key = stage_key(spec, "operators", layout=layout)
        stored = self._load("operators", key)
        if stored is not None:
            self._count("operators", hit=True)
            return Discretization(mesh, materials, operators=stored, **kwargs)
        self._count("operators", hit=False)
        disc = Discretization(mesh, materials, **kwargs)
        self._store("operators", key, disc.operator_arrays())
        return disc

    def clustering(self, spec, derive) -> Clustering:
        """Load the clustering stage, or ``derive()`` and persist it."""
        key = stage_key(spec, "clustering")
        stored = self._load("clustering", key)
        if stored is not None:
            self._count("clustering", hit=True)
            return Clustering(
                cluster_ids=stored["cluster_ids"],
                cluster_time_steps=stored["cluster_time_steps"],
                lam=float(stored["lam"]),
                dt_min=float(stored["dt_min"]),
            )
        self._count("clustering", hit=False)
        clustering = derive()
        self._store(
            "clustering",
            key,
            {
                "cluster_ids": clustering.cluster_ids,
                "cluster_time_steps": clustering.cluster_time_steps,
                "lam": np.float64(clustering.lam),
                "dt_min": np.float64(clustering.dt_min),
            },
        )
        return clustering

    def partition(self, spec) -> dict | None:
        """The cached partition/reordering stage, or ``None`` on a miss.

        Returns ``{"permutation", "partitions", "time_steps", clustering}``
        in *solver (reordered) element order*; the caller derives the
        reordered mesh/materials by applying the permutation (cheap).
        """
        stored = self._load("partition", stage_key(spec, "partition"))
        if stored is None:
            self._count("partition", hit=False)
            return None
        self._count("partition", hit=True)
        return {
            "permutation": stored["permutation"],
            "partitions": stored["partitions"],
            "time_steps": stored["time_steps"],
            "clustering": Clustering(
                cluster_ids=stored["cluster_ids"],
                cluster_time_steps=stored["cluster_time_steps"],
                lam=float(stored["lam"]),
                dt_min=float(stored["dt_min"]),
            ),
        }

    def store_partition(self, spec, *, permutation, partitions, time_steps,
                        clustering: Clustering) -> None:
        """Persist the partition/reordering stage (post-permutation arrays)."""
        self._store(
            "partition",
            stage_key(spec, "partition"),
            {
                "permutation": np.asarray(permutation, dtype=np.int64),
                "partitions": np.asarray(partitions, dtype=np.int64),
                "time_steps": np.asarray(time_steps),
                "cluster_ids": clustering.cluster_ids,
                "cluster_time_steps": clustering.cluster_time_steps,
                "lam": np.float64(clustering.lam),
                "dt_min": np.float64(clustering.dt_min),
            },
        )


def diff_stats(before: dict, after: dict) -> dict:
    """Per-stage hit/miss delta between two :meth:`snapshot` results,
    dropping stages that saw no traffic (keeps manifest rows small)."""
    delta = {}
    for stage, counts in after.items():
        base = before.get(stage, {})
        row = {k: counts[k] - base.get(k, 0) for k in counts}
        if any(row.values()):
            delta[stage] = row
    return delta


def warm_preprocessing(spec, cache: PreprocessingCache) -> dict:
    """Build (or touch) every stage artifact a spec needs; returns the
    per-stage hit/miss delta.

    The sweep orchestrator calls this once per unique preprocessing
    signature *before* starting its workers, so a shared-mesh ensemble pays
    mesh/operator/clustering cost exactly once -- in the parent -- and every
    member run is a pure cache hit regardless of worker count.  Only the
    preprocessing stages run; no solver is constructed.
    """
    from ..scenarios.runner import _build_discretization, build_setup, preprocess_setup

    before = cache.snapshot()
    setup = build_setup(spec, cache=cache)
    if spec.preprocessing.active:
        model = preprocess_setup(spec, setup, cache=cache)
        _build_discretization(spec, model.mesh, model.materials,
                              cache=cache, layout="reordered")
    else:
        cache.clustering(spec, setup.clustering)
    return diff_stats(before, cache.snapshot())

"""Seismic velocity models.

Two models matter for the paper's workloads:

* the LOH.3 layer-over-halfspace model with its exact published parameters
  (Sec. VII-B), and
* the CVM-S4.26.M01 community velocity model of the La Habra region.  The
  CVM is proprietary-scale external data that is not available offline, so a
  synthetic basin model reproduces its features that drive the paper's
  evaluation: a shallow low-velocity basin (minimum shear velocity cut-off
  configurable down to 250 m/s as in Sec. VII-C), a velocity gradient with
  depth, and a fast halfspace underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Layer", "LayeredVelocityModel", "loh3_model", "LaHabraBasinModel"]


@dataclass(frozen=True)
class Layer:
    """A horizontal layer ``z_top >= z > z_bottom`` (z is up, surface at 0)."""

    z_top: float
    z_bottom: float
    rho: float
    vp: float
    vs: float
    qp: float = np.inf
    qs: float = np.inf


class LayeredVelocityModel:
    """A stack of horizontal layers queried by depth."""

    def __init__(self, layers: list[Layer]):
        if not layers:
            raise ValueError("need at least one layer")
        self.layers = sorted(layers, key=lambda layer: -layer.z_top)

    def sample(self, points: np.ndarray) -> dict[str, np.ndarray]:
        """Sample the model at ``points`` (n, 3); returns per-point arrays."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        z = points[:, 2]
        out = {
            key: np.empty(len(z))
            for key in ("rho", "vp", "vs", "qp", "qs")
        }
        assigned = np.zeros(len(z), dtype=bool)
        for layer in self.layers:
            mask = (~assigned) & (z <= layer.z_top + 1e-9)
            in_layer = mask & (z > layer.z_bottom)
            for key in out:
                out[key][in_layer] = getattr(layer, key)
            assigned |= in_layer
        # anything below the last layer gets the deepest layer's values
        bottom = self.layers[-1]
        for key in out:
            out[key][~assigned] = getattr(bottom, key)
        return out

    def min_shear_velocity(self, z: float) -> float:
        """Shear velocity at depth ``z`` (used by the meshing rules)."""
        return float(self.sample(np.array([[0.0, 0.0, z]]))["vs"][0])


def loh3_model() -> LayeredVelocityModel:
    """The LOH.3 benchmark model (Sec. VII-B, ref. [37]).

    Layer (1000 m): vs = 2000 m/s, vp = 4000 m/s, rho = 2600 kg/m^3,
    Qs = 40, Qp = 120; halfspace: vs = 3464 m/s, vp = 6000 m/s,
    rho = 2700 kg/m^3, Qs = 69.3, Qp = 155.9.
    """
    return LayeredVelocityModel(
        [
            Layer(z_top=0.0, z_bottom=-1000.0, rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0),
            Layer(z_top=-1000.0, z_bottom=-1e9, rho=2700.0, vp=6000.0, vs=3464.0, qp=155.9, qs=69.3),
        ]
    )


@dataclass
class LaHabraBasinModel:
    """Synthetic stand-in for the CVM-S4.26.M01 model of the La Habra region.

    The model has a sedimentary basin whose depth varies laterally (a smooth
    bump centred in the domain), a linear velocity gradient inside the basin
    down to the configurable minimum shear velocity, and a crystalline
    halfspace below.  Quality factors follow the common ``Q_s = 50 vs_km``
    rule, ``Q_p = 2 Q_s``.
    """

    extent: tuple[float, float, float, float]  #: (x0, x1, y0, y1) of the region
    min_vs: float = 250.0  #: minimum (cut-off) shear velocity, paper uses 250 m/s
    basin_vs: float = 900.0  #: shear velocity at the basin bottom
    basin_max_depth: float = 3000.0
    halfspace_vs: float = 3200.0
    halfspace_vp: float = 5500.0
    halfspace_rho: float = 2700.0

    def basin_depth(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Basin depth (positive, metres) as a smooth function of position.

        The basin pinches out towards the domain boundary (depth exactly zero
        outside the central bump), so stations outside the basin sit on rock.
        """
        x0, x1, y0, y1 = self.extent
        cx, cy = 0.5 * (x0 + x1), 0.5 * (y0 + y1)
        lx, ly = 0.35 * (x1 - x0), 0.35 * (y1 - y0)
        bump = np.exp(-(((x - cx) / lx) ** 2 + ((y - cy) / ly) ** 2))
        return self.basin_max_depth * np.clip((bump - 0.2) / 0.8, 0.0, None)

    def sample(self, points: np.ndarray) -> dict[str, np.ndarray]:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        x, y, z = points[:, 0], points[:, 1], points[:, 2]
        depth = -z
        basin = self.basin_depth(x, y)
        in_basin = depth < basin
        # linear gradient from min_vs at the surface to basin_vs at the basin bottom
        frac = np.clip(np.where(basin > 0, depth / np.maximum(basin, 1e-6), 1.0), 0.0, 1.0)
        vs_basin = self.min_vs + (self.basin_vs - self.min_vs) * frac
        vs = np.where(in_basin, vs_basin, self.halfspace_vs)
        vp = np.where(in_basin, np.maximum(1.9 * vs, 1500.0), self.halfspace_vp)
        rho = np.where(in_basin, 1900.0 + 0.3 * vs, self.halfspace_rho)
        qs = 0.05 * vs  # the common "Q_s = 50 * vs [km/s]" rule
        qs = np.clip(qs, 20.0, 200.0)
        qp = 2.0 * qs
        return {"rho": rho, "vp": vp, "vs": vs, "qp": qp, "qs": qs}

    def min_shear_velocity(self, z: float) -> float:
        """Worst-case (smallest) shear velocity at depth ``z`` over the region."""
        depth = -z
        if depth < self.basin_max_depth:
            frac = np.clip(depth / self.basin_max_depth, 0.0, 1.0)
            return float(self.min_vs + (self.basin_vs - self.min_vs) * frac)
        return float(self.halfspace_vs)

"""EDGE's end-to-end preprocessing pipeline (Sec. VI, Fig. 8).

The pipeline turns a velocity model and a handful of user rules into
everything the core solver needs, in the paper's order:

1. velocity-aware meshing (target edge lengths from elements per wavelength),
2. per-element material sampling,
3. derivation of the LTS clusters and the optimal lambda,
4. element/face weights and weighted partitioning,
5. reordering by (partition, time cluster, communication role), and
6. writing per-partition files (mesh chunk + annotation data) that the solver
   can read back without any startup communication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.clustering import Clustering, derive_clustering, optimize_lambda
from ..equations.material import MaterialTable
from ..mesh.generation import layered_box_mesh
from ..mesh.geometry import cfl_time_steps
from ..mesh.refinement import elements_per_wavelength_rule
from ..mesh.reorder import reorder_elements
from ..mesh.tet_mesh import TetMesh
from ..observability import NULL_TELEMETRY
from ..parallel.partition import PartitionResult, element_weights, partition_dual_graph

__all__ = ["PreprocessedModel", "PreprocessingPipeline"]


@dataclass
class PreprocessedModel:
    """Everything the core solver needs, in solver (reordered) element order."""

    mesh: TetMesh
    materials: MaterialTable
    time_steps: np.ndarray
    clustering: Clustering
    partitions: np.ndarray
    order: int
    n_mechanisms: int
    frequency_band: tuple[float, float]

    @property
    def n_elements(self) -> int:
        return self.mesh.n_elements

    def summary(self) -> dict[str, float]:
        """Key figures of the preprocessed model (printed by the examples)."""
        return {
            "n_elements": float(self.n_elements),
            "n_clusters": float(self.clustering.n_clusters),
            "lambda": float(self.clustering.lam),
            "theoretical_speedup": float(self.clustering.speedup()),
            "n_partitions": float(self.partitions.max() + 1),
        }


class PreprocessingPipeline:
    """Configurable implementation of the preprocessing of Fig. 8."""

    def __init__(
        self,
        velocity_model,
        extent: tuple[float, float, float, float, float, float],
        max_frequency: float,
        elements_per_wavelength: float = 2.0,
        order: int = 4,
        n_mechanisms: int = 3,
        n_clusters: int = 3,
        n_partitions: int = 1,
        cfl: float = 0.5,
        jitter: float = 0.15,
        optimize_lambda_increment: float = 0.01,
        lam: float | None = None,
        topography=None,
        seed: int = 0,
        telemetry=None,
    ):
        self.velocity_model = velocity_model
        self.extent = extent
        self.max_frequency = max_frequency
        self.elements_per_wavelength = elements_per_wavelength
        self.order = order
        self.n_mechanisms = n_mechanisms
        self.n_clusters = n_clusters
        self.n_partitions = n_partitions
        self.cfl = cfl
        self.jitter = jitter
        self.optimize_lambda_increment = optimize_lambda_increment
        self.lam = lam
        self.topography = topography
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    # ------------------------------------------------------------------
    def build_mesh(self) -> TetMesh:
        """Step 1: velocity-aware tetrahedral meshing."""
        rule = elements_per_wavelength_rule(
            self.velocity_model.min_shear_velocity,
            self.max_frequency,
            self.elements_per_wavelength,
            self.order,
        )
        x0, x1, y0, y1, z0, z1 = self.extent
        horizontal = rule(z1)  # resolution demanded by the slowest (shallow) material
        with self.telemetry.region("preprocess.mesh"):
            return layered_box_mesh(
                extent=self.extent,
                edge_length_of_depth=rule,
                horizontal_edge_length=horizontal,
                jitter=self.jitter,
                seed=self.seed,
                topography=self.topography,
            )

    def run(self) -> PreprocessedModel:
        """Execute the full pipeline and return the preprocessed model."""
        mesh = self.build_mesh()
        with self.telemetry.region("preprocess.materials"):
            materials = MaterialTable.from_velocity_model(
                self.velocity_model, mesh.centroids
            )
        return self.preprocess(mesh, materials)

    # -- explicit stages (the preprocessing cache's unit of storage) ----
    def derive_time_steps(self, mesh: TetMesh, materials: MaterialTable) -> np.ndarray:
        """Step 2b: per-element CFL time steps."""
        with self.telemetry.region("preprocess.time_steps"):
            return cfl_time_steps(
                mesh.insphere_radii, materials.max_wave_speed, self.order, self.cfl
            )

    def derive_clustering(self, mesh: TetMesh, time_steps: np.ndarray) -> Clustering:
        """Step 3: LTS clustering (Sec. V-A) in *original* element order.

        An explicit lambda wins, otherwise the grid search runs (or
        lambda = 1 when the search is disabled).
        """
        with self.telemetry.region("preprocess.clustering"):
            if self.lam is not None:
                return derive_clustering(
                    time_steps, self.n_clusters, self.lam, mesh.neighbors
                )
            if self.optimize_lambda_increment > 0:
                return optimize_lambda(
                    time_steps, self.n_clusters, mesh.neighbors,
                    self.optimize_lambda_increment,
                )
            return derive_clustering(time_steps, self.n_clusters, 1.0, mesh.neighbors)

    def derive_partition(self, mesh: TetMesh, clustering: Clustering) -> PartitionResult:
        """Step 4: weighted partitioning (Sec. V-C)."""
        with self.telemetry.region("preprocess.partition"):
            weights = element_weights(clustering.cluster_ids, clustering.n_clusters)
            return partition_dual_graph(mesh.neighbors, weights, self.n_partitions)

    def derive_permutation(
        self, mesh: TetMesh, clustering: Clustering, partitions: np.ndarray
    ) -> np.ndarray:
        """Step 5: the (partition, cluster, communication-role) reordering
        permutation (Sec. VI), original -> solver element order."""
        with self.telemetry.region("preprocess.reorder"):
            send_role = np.any(
                (mesh.neighbors >= 0)
                & (
                    partitions[np.maximum(mesh.neighbors, 0)]
                    != partitions[:, None]
                ),
                axis=1,
            ).astype(np.int64)
            return reorder_elements(
                partitions, clustering.cluster_ids, send_role
            ).permutation

    def assemble(
        self,
        mesh: TetMesh,
        materials: MaterialTable,
        time_steps: np.ndarray,
        clustering: Clustering,
        partitions: np.ndarray,
        permutation: np.ndarray,
    ) -> PreprocessedModel:
        """Apply the reordering permutation and package the model.

        Pure array shuffling -- cheap and deterministic, so the cache stores
        the permutation (plus the post-permutation clustering/partitions)
        and replays this step rather than persisting whole reordered meshes.
        """
        return PreprocessedModel(
            mesh=mesh.permuted(permutation),
            materials=materials.subset(permutation),
            time_steps=time_steps[permutation],
            clustering=Clustering(
                cluster_ids=clustering.cluster_ids[permutation],
                cluster_time_steps=clustering.cluster_time_steps,
                lam=clustering.lam,
                dt_min=clustering.dt_min,
            ),
            partitions=partitions[permutation],
            order=self.order,
            n_mechanisms=self.n_mechanisms,
            frequency_band=(self.max_frequency / 50.0, self.max_frequency),
        )

    def preprocess(
        self,
        mesh: TetMesh,
        materials: MaterialTable,
        clustering: Clustering | None = None,
    ) -> PreprocessedModel:
        """Steps 3-6 of the pipeline on a prebuilt mesh + material table.

        The scenario runner uses this entry point to route spec-built meshes
        through clustering, weighted partitioning and reordering.  A prebuilt
        ``clustering`` (e.g. the preprocessing cache's clustering stage, in
        original element order) skips the clustering stage.
        """
        time_steps = self.derive_time_steps(mesh, materials)
        if clustering is None:
            clustering = self.derive_clustering(mesh, time_steps)
        partition = self.derive_partition(mesh, clustering)
        permutation = self.derive_permutation(mesh, clustering, partition.partitions)
        return self.assemble(
            mesh, materials, time_steps, clustering, partition.partitions, permutation
        )

"""Preprocessing pipeline: velocity models, velocity-aware meshing, clustering, partitioning, IO."""

from .partition_io import list_partitions, read_partition, write_partitions
from .pipeline import PreprocessedModel, PreprocessingPipeline
from .velocity_model import LaHabraBasinModel, Layer, LayeredVelocityModel, loh3_model

__all__ = [
    "Layer",
    "LayeredVelocityModel",
    "loh3_model",
    "LaHabraBasinModel",
    "PreprocessedModel",
    "PreprocessingPipeline",
    "write_partitions",
    "read_partition",
    "list_partitions",
]

"""Per-partition on-disk representation of a preprocessed model.

The preprocessing writes "the reordered mesh ... partition-wise to disk" plus
"a second file per partition which contains supporting data required by the
core solver" (Sec. VI); at scale every process then reads exactly its two
files and needs no further communication to initialise.  Here both files are
combined into a single compressed ``.npz`` archive per partition containing
the partition's elements (with global vertex coordinates), material data,
time steps, cluster ids and the ids of the elements whose data must be sent
to other partitions.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_partitions", "read_partition", "list_partitions"]


def write_partitions(model, directory: str | Path) -> list[Path]:
    """Write one ``partition_<p>.npz`` archive per partition; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    mesh = model.mesh
    paths: list[Path] = []
    n_partitions = int(model.partitions.max()) + 1
    for p in range(n_partitions):
        local = np.where(model.partitions == p)[0]
        neighbors = mesh.neighbors[local]
        neighbor_partitions = np.where(
            neighbors >= 0, model.partitions[np.maximum(neighbors, 0)], -1
        )
        send_elements = local[
            np.any((neighbors >= 0) & (neighbor_partitions != p), axis=1)
        ]
        path = directory / f"partition_{p:05d}.npz"
        np.savez_compressed(
            path,
            element_ids=local,
            elements=mesh.elements[local],
            vertices=mesh.vertices,
            boundary_tags=mesh.boundary_tags[local],
            neighbors=neighbors,
            neighbor_partitions=neighbor_partitions,
            rho=model.materials.rho[local],
            vp=model.materials.vp[local],
            vs=model.materials.vs[local],
            qp=model.materials.qp[local],
            qs=model.materials.qs[local],
            time_steps=model.time_steps[local],
            cluster_ids=model.clustering.cluster_ids[local],
            cluster_time_steps=model.clustering.cluster_time_steps,
            send_elements=send_elements,
            order=model.order,
            n_mechanisms=model.n_mechanisms,
        )
        paths.append(path)
    return paths


def read_partition(path: str | Path) -> dict:
    """Read one partition archive back into a plain dictionary of arrays."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def list_partitions(directory: str | Path) -> list[Path]:
    """All partition archives in a directory, ordered by partition id."""
    directory = Path(directory)
    return sorted(directory.glob("partition_*.npz"))

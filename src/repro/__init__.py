"""repro -- reproduction of "Next-Generation Local Time Stepping for the
ADER-DG Finite Element Method" (Breuer & Heinecke, IPDPS 2022).

The package mirrors the structure of the EDGE solver the paper describes:

* :mod:`repro.basis`           -- reference element (basis, quadrature, DG operators)
* :mod:`repro.mesh`            -- unstructured tetrahedral meshes
* :mod:`repro.equations`       -- (visco)elastic wave equations and flux solvers
* :mod:`repro.kernels`         -- ADER-DG time/volume/surface kernels
* :mod:`repro.core`            -- the paper's contribution: clustered local time stepping
* :mod:`repro.source`          -- seismic sources, receivers, misfits
* :mod:`repro.parallel`        -- partitioning, communication accounting, scaling model
* :mod:`repro.preprocessing`   -- velocity models and the end-to-end preprocessing pipeline
* :mod:`repro.workloads`       -- LOH.3 and the (scaled) La Habra workloads
* :mod:`repro.scenarios`       -- declarative scenario specs, registry, runner and CLI
"""

from .core import (
    ClusteredLtsSolver,
    Clustering,
    GlobalTimeSteppingSolver,
    derive_clustering,
    optimize_lambda,
)
from .equations import ElasticMaterial, MaterialTable, ViscoelasticMaterial
from .kernels import Discretization
from .mesh import TetMesh, box_mesh, layered_box_mesh
from .scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ScenarioSpec",
    "ScenarioRunner",
    "get_scenario",
    "scenario_names",
    "TetMesh",
    "box_mesh",
    "layered_box_mesh",
    "ElasticMaterial",
    "ViscoelasticMaterial",
    "MaterialTable",
    "Discretization",
    "Clustering",
    "derive_clustering",
    "optimize_lambda",
    "GlobalTimeSteppingSolver",
    "ClusteredLtsSolver",
]

"""Convergence-order verification on the plane-wave refinement ladder."""

import pytest

from repro.verification import plane_wave_convergence


class TestPlaneWaveConvergence:
    def test_order2_ladder_gts(self):
        """GTS at order 2 converges at ~h^2 -- under the fast kernels, which
        is exactly the point: reassociated contractions must not cost order."""
        study = plane_wave_convergence(order=2, lengths=(500.0, 250.0), kernels="fast")
        assert study.passes()
        assert study.estimated_order == pytest.approx(2.0, abs=0.75)
        assert study.errors[-1] < study.errors[0]

    @pytest.mark.slow
    def test_order3_ladder_all_kernels(self):
        """The full suite ladder at order 3, for every kernel backend.

        ref / opt / fast must all reach the formal order; ref and opt are
        bit-identical so their studies must agree exactly, fast only within
        the fit's own resolution.
        """
        studies = {
            kind: plane_wave_convergence(order=3, kernels=kind)
            for kind in ("ref", "opt", "fast")
        }
        for kind, study in studies.items():
            assert study.passes(), (kind, study.estimated_order, study.errors)
        assert studies["ref"].errors == studies["opt"].errors  # bit-identical
        assert studies["fast"].estimated_order == pytest.approx(
            studies["ref"].estimated_order, abs=0.05
        )

    def test_report_shape(self):
        study = plane_wave_convergence(order=2, lengths=(500.0, 250.0), kernels="fast")
        report = study.to_dict()
        assert report["expected_order"] == 2
        assert len(report["errors"]) == len(report["lengths"]) == 2
        assert report["passed"] == study.passes()
        assert report["kernels"] == "fast"

"""The verify_scenario / verify_suite entry points behind ``repro verify``."""

import numpy as np
import pytest

import repro.verification.harness as harness_module
from repro.verification import verify_scenario, verify_suite
from repro.verification.golden import compare_to_golden, load_golden


class TestVerifyScenario:
    def test_golden_scenario_report(self):
        report = verify_scenario("la_habra", kernels="fast")
        assert report["kind"] == "golden"
        assert report["scenario"] == "la_habra"
        assert report["passed"]

    @pytest.mark.slow
    def test_plane_wave_convergence_report(self):
        report = verify_scenario("plane_wave", kernels="fast")
        assert report["kind"] == "convergence"
        assert report["scenario"] == "plane_wave"
        assert report["passed"]
        assert report["expected_order"] == 3

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="plane_wave"):
            verify_scenario("bimaterial_slab")


class TestVerifySuite:
    @pytest.mark.slow
    def test_full_suite_passes_under_fast_kernels(self, monkeypatch):
        # shrink the convergence leg: the dedicated convergence tests own
        # the full ladder, the suite test owns the orchestration
        monkeypatch.setattr(
            harness_module,
            "SUITE_CONVERGENCE",
            dict(order=2, lengths=(500.0, 250.0), t_end=0.01),
        )
        report = verify_suite(kernels="fast")
        assert report["passed"]
        kinds = [check["kind"] for check in report["checks"]]
        assert kinds == ["golden", "golden", "golden", "convergence"]
        scenarios = [check["scenario"] for check in report["checks"]]
        assert scenarios == ["la_habra", "loh3", "loh3_fused2", "plane_wave"]


class TestGoldenStructuralMismatch:
    """Schedule drift is a hard error, never a tolerance question."""

    def test_sample_count_mismatch_raises(self, tmp_path, monkeypatch):
        import json

        import repro.verification.golden as golden_module

        golden = load_golden("la_habra")
        broken = json.loads(json.dumps(golden))
        for fixture in broken["receivers"].values():
            fixture["times"] = fixture["times"][:-1]
            fixture["values"] = fixture["values"][:-1]
        (tmp_path / "golden_la_habra.json").write_text(json.dumps(broken))
        with pytest.raises(ValueError, match="samples"):
            compare_to_golden("la_habra", directory=tmp_path)

    def test_sample_time_mismatch_raises(self, tmp_path):
        import json

        golden = load_golden("la_habra")
        broken = json.loads(json.dumps(golden))
        for fixture in broken["receivers"].values():
            fixture["times"] = list(np.asarray(fixture["times"]) * 1.001)
        (tmp_path / "golden_la_habra.json").write_text(json.dumps(broken))
        with pytest.raises(ValueError, match="times"):
            compare_to_golden("la_habra", directory=tmp_path)

    def test_unsupported_fixture_format_raises(self, tmp_path):
        import json

        golden = load_golden("la_habra")
        broken = dict(golden, format_version=999)
        (tmp_path / "golden_la_habra.json").write_text(json.dumps(broken))
        with pytest.raises(ValueError, match="format"):
            load_golden("la_habra", directory=tmp_path)

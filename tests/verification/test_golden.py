"""Golden seismogram regressions for the loh3 and la_habra scenarios.

The committed fixtures freeze the reference-backend f64 traces of two
small, fully-pinned configurations; every kernel backend re-runs the frozen
spec and must match under the tolerance ladder.  A failure here means the
numerical trajectory moved -- either an accuracy regression, or a deliberate
physics change that must be shipped together with regenerated fixtures
(``repro verify --update-golden``).
"""

import numpy as np
import pytest

from repro.verification import (
    GOLDEN_SCENARIOS,
    compare_to_golden,
    load_golden,
    record_golden,
    seismogram_tolerance,
)
from repro.verification.golden import golden_spec


class TestFixtures:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_fixture_committed_and_wellformed(self, name):
        golden = load_golden(name)
        assert golden["scenario"] == name
        assert golden["generator"]["kernels"] == "ref"
        assert golden["generator"]["precision"] == "f64"
        spec = golden_spec(name)
        # the frozen spec must round-trip: a comparison run rebuilds from it
        assert golden["spec"] == spec.to_dict()
        for fixture in golden["receivers"].values():
            values = np.asarray(fixture["values"])
            assert len(fixture["times"]) == len(values) > 0
            assert np.isfinite(values).all()
            # a golden of pre-arrival zeros would compare everything to noise
            assert np.abs(values).max() > 0.0

    def test_missing_fixture_message(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="update-golden"):
            load_golden("loh3", directory=tmp_path)

    def test_record_into_directory(self, tmp_path):
        path = record_golden("la_habra", directory=tmp_path)
        assert path.parent == tmp_path
        rewritten = load_golden("la_habra", directory=tmp_path)
        committed = load_golden("la_habra")
        assert rewritten["spec"] == committed["spec"]
        for name, fixture in committed["receivers"].items():
            # within the ladder's regeneration floor, not bitwise: the
            # committed fixture may come from a different numpy build
            values = np.asarray(fixture["values"])
            peak = np.abs(values).max()
            err = np.abs(np.asarray(rewritten["receivers"][name]["values"]) - values).max()
            assert err <= 1e-12 * peak


class TestToleranceLadder:
    def test_ladder_is_ordered(self):
        """Bit-exact backends get the floor, fast sits between, f32 on top."""
        for scenario in GOLDEN_SCENARIOS:
            ref = seismogram_tolerance(scenario, "ref", "f64")
            opt = seismogram_tolerance(scenario, "opt", "f64")
            fast = seismogram_tolerance(scenario, "fast", "f64")
            f32 = seismogram_tolerance(scenario, "fast", "f32")
            assert ref == opt < fast < f32

    def test_unknown_combination_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            seismogram_tolerance("loh3", "native", "f64")


class TestGoldenRegression:
    @pytest.mark.parametrize("kernels", ["ref", "opt", "fast"])
    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_f64_backends_match_golden(self, name, kernels):
        """All f64 backends pass their ladder rung.  ref/opt are only held
        to the 1e-12 floor, not to bitwise zero: the committed fixture may
        come from a different numpy build, and same-process opt-vs-ref
        bit-identity is already asserted by tests/kernels/test_backend.py."""
        report = compare_to_golden(name, kernels=kernels)
        assert report["passed"], report

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_f32_matches_golden_within_ladder(self, name):
        for kernels in ("opt", "fast"):
            report = compare_to_golden(name, kernels=kernels, precision="f32")
            assert report["passed"], report
            # and the ladder is meaningfully engaged, not trivially zero
            assert report["max_peak_rel_err"] > 0.0

    @pytest.mark.slow
    def test_fused_run_matches_golden(self):
        report = compare_to_golden("loh3", kernels="fast", n_fused=2)
        assert report["passed"], report


@pytest.mark.distributed
class TestGoldenDistributed:
    """The harness bar for fast-f64 on multi-rank runs: the frozen golden
    spec re-run on 2 ranks (both execution backends) stays in tolerance."""

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_2rank_fast_matches_golden(self, backend):
        report = compare_to_golden("loh3", kernels="fast", n_ranks=2, backend=backend)
        assert report["passed"], report
        assert report["n_ranks"] == 2 and report["backend"] == backend

    @pytest.mark.slow
    def test_2rank_bit_exact_backend_stays_on_the_floor(self):
        report = compare_to_golden("loh3", kernels="opt", n_ranks=2)
        assert report["passed"] and report["tolerance"] == 1e-12, report

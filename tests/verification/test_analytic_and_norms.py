"""Analytic solutions and error norms: the measuring sticks themselves."""

import numpy as np
import pytest

from repro.scenarios.registry import loh3_scenario, plane_wave_scenario
from repro.scenarios.runner import ScenarioRunner, build_setup
from repro.verification import (
    FIELD_NAMES,
    analytic_solution_for,
    estimate_order,
    state_error_norms,
)


@pytest.fixture(scope="module")
def plane_setup():
    return build_setup(
        plane_wave_scenario(extent_m=2000.0, characteristic_length=500.0, order=3)
    )


class TestAnalyticSolution:
    def test_matches_initial_condition_at_t0(self, plane_setup):
        """At t = 0 the travelling wave IS the projected initial condition."""
        solution = analytic_solution_for(plane_setup)
        assert solution is not None
        points = np.array([[100.0, 200.0, -300.0], [900.0, 0.0, -1500.0]])
        from_solution = solution(points, 0.0)
        from_ic = plane_setup.initial_condition(points)
        np.testing.assert_allclose(from_solution, from_ic, rtol=0, atol=1e-15)

    def test_travelling_wave_advects(self, plane_setup):
        """``q(x, t) == q(x - vp t, 0)`` -- pure advection at the P speed."""
        solution = analytic_solution_for(plane_setup)
        points = np.array([[500.0, 100.0, -100.0]])
        t = 0.0123
        shifted = points.copy()
        shifted[:, 0] -= solution.vp * t
        np.testing.assert_allclose(
            solution(points, t), solution(shifted, 0.0), rtol=1e-12
        )

    def test_satisfies_stress_velocity_relation(self, plane_setup):
        solution = analytic_solution_for(plane_setup)
        points = np.array([[321.0, 5.0, -777.0]])
        q = solution(points, 0.004)[0]
        # sxx = -rho vp vx and the lateral stresses follow lam/(lam + 2 mu)
        assert q[0] == pytest.approx(-solution.rho * solution.vp * q[6], rel=1e-12)
        assert q[1] == pytest.approx(q[0] * solution.lateral, rel=1e-12)
        assert q[1] == q[2]
        assert q[3] == q[4] == q[5] == 0.0
        assert q[7] == q[8] == 0.0

    def test_none_for_scenarios_without_closed_form(self):
        setup = build_setup(
            loh3_scenario(extent_m=6000.0, characteristic_length=3000.0, order=2)
        )
        assert analytic_solution_for(setup) is None


class TestStateErrorNorms:
    def test_projection_error_is_small_and_structured(self, plane_setup):
        solution = analytic_solution_for(plane_setup)
        disc = plane_setup.disc
        dofs = disc.project_initial_condition(lambda p: solution(p, 0.0))
        norms = state_error_norms(disc, dofs, 0.0, solution)
        assert set(norms["fields"]) == set(FIELD_NAMES)
        # best-approximation error of the projection: small but not zero
        assert 0.0 < norms["rel_l2"] < 0.1
        # fields the wave never touches are exactly representable (zero)
        assert norms["fields"]["sxy"]["l2"] < 1e-12 * norms["fields"]["sxx"]["l2"]
        assert "rel_l2" not in norms["fields"]["sxy"]  # zero reference: absolute only

    def test_interior_margin_shrinks_the_scored_region(self, plane_setup):
        solution = analytic_solution_for(plane_setup)
        disc = plane_setup.disc
        dofs = disc.project_initial_condition(lambda p: solution(p, 0.0))
        norms_full = state_error_norms(disc, dofs, 0.0, solution)
        norms_margin = state_error_norms(
            disc, dofs, 0.0, solution, interior_margin=600.0
        )
        # fewer elements scored: the absolute error integral can only shrink
        assert norms_margin["l2"] <= norms_full["l2"]

    def test_interior_margin_that_excludes_everything_raises(self, plane_setup):
        solution = analytic_solution_for(plane_setup)
        dofs = plane_setup.disc.allocate_dofs()
        with pytest.raises(ValueError, match="interior_margin"):
            state_error_norms(
                plane_setup.disc, dofs, 0.0, solution, interior_margin=5000.0
            )

    def test_fused_state_scores_first_simulation(self, plane_setup):
        solution = analytic_solution_for(plane_setup)
        disc = plane_setup.disc
        dofs = disc.project_initial_condition(lambda p: solution(p, 0.0), n_fused=2)
        scalar = disc.project_initial_condition(lambda p: solution(p, 0.0))
        fused = state_error_norms(disc, dofs, 0.0, solution)
        plain = state_error_norms(disc, scalar, 0.0, solution)
        # strided (fused slice) vs contiguous einsum may round differently
        assert fused["l2"] == pytest.approx(plain["l2"], rel=1e-12)


class TestEstimateOrder:
    def test_exact_power_law(self):
        hs = (400.0, 200.0, 100.0)
        errors = [1e-3 * (h / 400.0) ** 3 for h in hs]
        assert estimate_order(hs, errors) == pytest.approx(3.0, abs=1e-12)

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            estimate_order([100.0], [1e-3])

    def test_rejects_nonpositive_errors(self):
        with pytest.raises(ValueError):
            estimate_order([200.0, 100.0], [1e-3, 0.0])


class TestRunnerAccuracyBlock:
    def test_summary_reports_accuracy_for_plane_wave(self):
        spec = plane_wave_scenario(
            extent_m=1500.0, characteristic_length=750.0, order=2, n_cycles=2
        )
        summary = ScenarioRunner(spec).run()
        accuracy = summary["accuracy"]
        assert accuracy["t"] == summary["t_end"]
        assert 0.0 < accuracy["rel_l2"] < 1.0
        assert set(accuracy["fields"]) == set(FIELD_NAMES)

    def test_no_accuracy_block_without_analytic_solution(self):
        spec = loh3_scenario(
            extent_m=6000.0, characteristic_length=3000.0, order=2, n_cycles=1
        )
        assert "accuracy" not in ScenarioRunner(spec).run()

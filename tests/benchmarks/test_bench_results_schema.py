"""Schema validation of the committed ``benchmarks/results/BENCH_*.json``.

These small files are the perf trajectory tracked across PRs; they are
written exclusively by ``benchmarks/conftest.record_bench``.  A stale or
hand-edited point (missing host stamp, non-finite or non-positive timing,
wrong name) would silently poison every cross-PR comparison -- so the
committed files are linted here, in tier-1.
"""

import json
import math
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent.parent.parent / "benchmarks" / "results"

#: every key record_bench stamps into the host block
HOST_KEYS = {"cpu_count", "numpy", "python", "platform"}

#: keys that, when present at the top level or nested one level deep, must
#: be finite positive floats (wall clocks, throughputs, byte counts)
TIMING_SUFFIXES = ("wall_s", "element_updates_per_s", "comm_bytes", "_ms")


def bench_files():
    return sorted(RESULTS_DIR.glob("BENCH_*.json"))


def _timing_items(payload: dict):
    for key, value in payload.items():
        if isinstance(value, dict):
            yield from _timing_items(value)
        elif any(key.endswith(suffix) or key == suffix for suffix in TIMING_SUFFIXES):
            yield key, value


def test_committed_points_exist():
    assert bench_files(), f"no committed BENCH_*.json under {RESULTS_DIR}"


@pytest.mark.parametrize("path", bench_files(), ids=lambda p: p.stem)
def test_bench_point_schema(path):
    payload = json.loads(path.read_text())
    # the name key must match the file, so globbing stays trustworthy
    assert payload["bench"] == path.stem.removeprefix("BENCH_")

    host = payload.get("host")
    assert isinstance(host, dict), "host metadata stamp missing"
    assert HOST_KEYS <= set(host), f"host stamp incomplete: {sorted(host)}"
    assert isinstance(host["cpu_count"], int) and host["cpu_count"] >= 1
    for key in ("numpy", "python", "platform"):
        assert isinstance(host[key], str) and host[key]

    timings = list(_timing_items(payload))
    assert timings, "a perf point must carry at least one timing quantity"
    for key, value in timings:
        assert isinstance(value, (int, float)) and not isinstance(value, bool), key
        assert math.isfinite(value), f"{key} is not finite: {value}"
        assert value > 0.0, f"{key} must be positive: {value}"


@pytest.mark.parametrize("path", bench_files(), ids=lambda p: p.stem)
def test_speedups_are_consistent_with_wall_clocks(path):
    """Where a point carries both per-variant wall clocks and derived
    speedups, the ratio must actually match (hand-edits diverge here)."""
    payload = json.loads(path.read_text())
    for key, value in payload.items():
        if not key.startswith("speedup_") or "_vs_" not in key:
            continue
        num, _, den = key.removeprefix("speedup_").partition("_vs_")
        num_wall = payload.get(f"{den}_wall_s")
        den_wall = payload.get(f"{num}_wall_s")
        if num_wall is None or den_wall is None:
            continue
        assert value == pytest.approx(num_wall / den_wall, rel=1e-9), key


def test_fused_amortization_point_is_self_consistent():
    """The fused-ensemble point carries per-F walls whose derived per-run
    figures must match exactly -- and must actually show the amortization
    the fused axis exists for (per-run wall strictly decreasing to F=4)."""
    path = RESULTS_DIR / "BENCH_fused_amortization_loh3.json"
    assert path.exists(), "the fused amortization point must stay committed"
    payload = json.loads(path.read_text())
    widths = payload["widths"]
    assert widths == [1, 2, 4, 8]
    assert payload["scalar_wall_s"] == payload["fused1_wall_s"]
    per_run = {}
    for width in widths:
        wall = payload[f"fused{width}_wall_s"]
        per_run[width] = payload[f"per_run_f{width}_wall_s"]
        assert per_run[width] == pytest.approx(wall / width, rel=1e-12)
        # one fused run advances element_updates elements for each of its
        # F member runs, so the per-run throughput follows from the wall
        assert payload[f"per_run_f{width}_element_updates_per_s"] == pytest.approx(
            payload["element_updates"] * width / wall, rel=1e-12
        )
    assert per_run[2] < per_run[1], per_run
    assert per_run[4] < per_run[2], per_run
    assert per_run[8] < per_run[1], per_run

"""Unit tests for the flop counting utilities."""

import pytest

from repro.kernels.flops import count_flops_per_element_update, sparsity_report


class TestFlopCounts:
    def test_positive_and_ordered(self, viscoelastic_disc):
        dense = count_flops_per_element_update(viscoelastic_disc, sparse=False)
        sparse = count_flops_per_element_update(viscoelastic_disc, sparse=True)
        assert dense.total > 0
        assert sparse.total > 0
        assert sparse.total < dense.total

    def test_anelasticity_increases_cost(self, elastic_disc, viscoelastic_disc):
        elastic = count_flops_per_element_update(elastic_disc, sparse=False)
        visco = count_flops_per_element_update(viscoelastic_disc, sparse=False)
        # the paper reports a ~1.8x "cost of anelasticity" for three mechanisms
        ratio = visco.total / elastic.total
        assert 1.3 < ratio < 3.0

    def test_components_sum_to_total(self, viscoelastic_disc):
        count = count_flops_per_element_update(viscoelastic_disc)
        assert count.total == (
            count.time_kernel + count.volume_kernel + count.surface_local + count.surface_neighbor
        )

    def test_sparsity_report(self, viscoelastic_disc):
        report = sparsity_report(viscoelastic_disc)
        assert 0.0 < report["zero_operation_fraction"] < 1.0
        assert report["flops_sparse"] < report["flops_dense"]

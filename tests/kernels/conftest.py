"""Shared fixtures for kernel tests."""

import numpy as np
import pytest

from repro.equations.material import ElasticMaterial, MaterialTable, ViscoelasticMaterial
from repro.kernels.discretization import Discretization
from repro.mesh.generation import box_mesh


def small_mesh(n=2, jitter=0.0, seed=0, length=2000.0):
    coords = np.linspace(0.0, length, n + 1)
    return box_mesh(coords, coords, coords, jitter=jitter, seed=seed, free_surface_top=False)


@pytest.fixture(scope="module")
def elastic_disc():
    """A small purely elastic discretization (order 3)."""
    mesh = small_mesh(n=2, jitter=0.1)
    material = ElasticMaterial(rho=2700.0, vp=6000.0, vs=3464.0)
    table = MaterialTable.homogeneous(material, mesh.n_elements)
    return Discretization(mesh, table, order=3, n_mechanisms=0, flux="rusanov")


@pytest.fixture(scope="module")
def viscoelastic_disc():
    """A small viscoelastic discretization (order 3, three mechanisms)."""
    mesh = small_mesh(n=2, jitter=0.1)
    material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
    table = MaterialTable.homogeneous(material, mesh.n_elements)
    return Discretization(
        mesh, table, order=3, n_mechanisms=3, frequency_band=(0.1, 10.0), flux="rusanov"
    )

"""Fast (tolerance-equal) kernel backend tests.

The contract of ``FastBackend``: same math as the reference, arbitrary
reassociation.  Results must track the reference within a few ULPs per
kernel call (the per-kernel checks below) and within the verification
tolerance ladder over whole runs (tests/verification/).  Bit-identity is
explicitly NOT promised -- the one thing these tests never assert.
"""

import numpy as np
import pytest

from repro.core.clustering import derive_clustering
from repro.core.gts_solver import GlobalTimeSteppingSolver
from repro.core.lts_solver import ClusteredLtsSolver
from repro.equations.material import MaterialTable, ViscoelasticMaterial
from repro.kernels.backend import FastBackend, OptimizedBackend, ReferenceBackend, make_backend
from repro.kernels.discretization import Discretization, N_ELASTIC

from .conftest import small_mesh


def _random_dofs(disc, n_fused=0, seed=0):
    rng = np.random.default_rng(seed)
    shape = (disc.n_elements, disc.n_vars, disc.n_basis)
    if n_fused:
        shape += (n_fused,)
    return rng.standard_normal(shape)


def _assert_close(actual, expected, rtol=1e-12, name=""):
    scale = np.abs(expected).max()
    err = np.abs(np.asarray(actual) - np.asarray(expected)).max()
    assert err <= rtol * scale, f"{name}: rel err {err / scale:.3e} > {rtol:.0e}"


class TestResolution:
    def test_make_backend(self):
        assert isinstance(make_backend("fast"), FastBackend)
        assert make_backend("fast").name == "fast"
        backend = FastBackend()
        assert make_backend(backend) is backend
        # FastBackend is an OptimizedBackend (shares gathers/workspaces) and
        # therefore also a ReferenceBackend (shares the local_update pipeline)
        assert isinstance(backend, OptimizedBackend)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "fast")
        assert make_backend(None).name == "fast"

    def test_plan_cache_engages_at_f64(self):
        fast = FastBackend()
        a, b = np.ones((4, 5)), np.ones((5, 3))
        fast._einsum("ij,jk->ik", a, b)
        assert len(fast._plans) == 1  # unlike opt, f64 is planned too


class TestKernelToleranceParity:
    """Per-kernel: fast output within a few ULPs of the reference."""

    @pytest.fixture(scope="class", params=["elastic", "viscoelastic"])
    def disc(self, request):
        mesh = small_mesh(n=2, jitter=0.1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        n_mechanisms = 3 if request.param == "viscoelastic" else 0
        return Discretization(mesh, table, order=4, n_mechanisms=n_mechanisms)

    @pytest.mark.parametrize("n_fused", [0, 2, 8])
    def test_local_update(self, disc, n_fused):
        ref, fast = ReferenceBackend(), FastBackend()
        ws = fast.make_workspace()
        dofs = _random_dofs(disc, n_fused)
        elements = np.arange(disc.n_elements)
        dt = float(disc.time_steps.min())
        delta_r, ti_r, derivs_r, traces_r = ref.local_update(disc, dofs, dt, elements)
        delta_f, ti_f, derivs_f, traces_f = fast.local_update(disc, dofs, dt, elements, ws=ws)
        _assert_close(ti_f, ti_r, name="time_integrated")
        _assert_close(delta_f, delta_r, name="delta")
        _assert_close(traces_f, traces_r, name="traces")
        for d, (d_r, d_f) in enumerate(zip(derivs_r, derivs_f)):
            _assert_close(d_f, d_r, name=f"derivative {d}")

    def test_neighbor_path(self, disc):
        ref, fast = ReferenceBackend(), FastBackend()
        ws = fast.make_workspace()
        dofs = _random_dofs(disc, seed=3)
        elements = np.arange(disc.n_elements)
        dt = float(disc.time_steps.min())
        _, ti, _, _ = ref.local_update(disc, dofs, dt, elements)
        te = ti[:, :N_ELASTIC]
        neighbor_te = te[np.maximum(disc.mesh.neighbors, 0)]
        traces_r = ref.project_local_traces(disc, te, elements)
        traces_f = fast.project_local_traces(disc, te, elements, ws=ws)
        _assert_close(traces_f, traces_r, name="traces")
        coeffs_r = ref.neighbor_face_coefficients(disc, neighbor_te, traces_r, elements)
        coeffs_f = fast.neighbor_face_coefficients(disc, neighbor_te, traces_r, elements, ws=ws)
        _assert_close(coeffs_f, coeffs_r, name="coefficients")
        out_r = ref.surface_kernel_neighbor(disc, coeffs_r, elements)
        out_f = fast.surface_kernel_neighbor(disc, coeffs_r, elements, ws=ws)
        _assert_close(out_f, out_r, name="neighbor surface")

    def test_batch_subsets_are_self_consistent(self, disc):
        """Splitting a batch (the distributed boundary/interior split) stays
        within tolerance of the full batch -- unlike opt, not bit-identical,
        because the GEMM shapes (and thus the reassociation) change."""
        fast = FastBackend()
        ws = fast.make_workspace()
        dofs = _random_dofs(disc)
        dt = float(disc.time_steps.min())
        full = np.arange(disc.n_elements)
        delta_full, _, _, _ = fast.local_update(disc, dofs, dt, full, ws=ws)
        delta_full = delta_full.copy()
        for subset in (full[: disc.n_elements // 2], full[disc.n_elements // 2 :]):
            delta_sub, _, _, _ = fast.local_update(disc, dofs, dt, subset, ws=ws)
            _assert_close(delta_sub, delta_full[subset], name="subset")

    def test_dense_fallback_when_structure_absent(self):
        mesh = small_mesh(n=1, jitter=0.05)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        dense = Discretization(mesh, table, order=3, n_mechanisms=3)
        rng = np.random.default_rng(7)
        dense.star_elastic = dense.star_elastic + 1e-3 * rng.standard_normal(
            dense.star_elastic.shape
        )
        fast = FastBackend()
        assert not fast._disc_data(dense).star_e_blocks
        dofs = _random_dofs(dense, seed=5)
        elements = np.arange(dense.n_elements)
        dt = float(dense.time_steps.min())
        delta_r, ti_r, _, _ = ReferenceBackend().local_update(dense, dofs, dt, elements)
        delta_f, ti_f, _, _ = fast.local_update(
            dense, dofs, dt, elements, ws=fast.make_workspace()
        )
        _assert_close(ti_f, ti_r, name="ti dense")
        _assert_close(delta_f, delta_r, name="delta dense")


class TestFusedGemmFolding:
    """The fused-axis GEMM machinery behind the batched fast kernels."""

    @pytest.fixture(scope="class")
    def disc(self):
        mesh = small_mesh(n=2, jitter=0.1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        return Discretization(mesh, table, order=4, n_mechanisms=3)

    def test_bmm_folds_fused_axis(self):
        rng = np.random.default_rng(11)
        matrices = rng.standard_normal((6, 9, 9))
        operand = rng.standard_normal((6, 9, 20, 4))
        out = np.empty((6, 9, 20, 4))
        FastBackend._bmm(matrices, operand, out)
        expected = np.einsum("eij,ejbf->eibf", matrices, operand)
        _assert_close(out, expected, name="bmm fold")

    def test_bmm_column_chunking_is_bitwise(self):
        """Chunking the folded column axis must not change a single bit:
        every output column's accumulation over j is untouched."""
        rng = np.random.default_rng(12)
        matrices = rng.standard_normal((3, 9, 9))
        # folded width 20 * 8 = 160 > 128 engages the chunked path
        operand = rng.standard_normal((3, 9, 20, 8))
        chunked = np.empty((3, 9, 20, 8))
        FastBackend._bmm(matrices, operand, chunked)
        unchunked = np.matmul(
            matrices, operand.reshape(3, 9, -1)
        ).reshape(3, 9, 20, 8)
        np.testing.assert_array_equal(chunked, unchunked)

    def test_stiffness_cat_matches_per_direction_gemms(self, disc):
        """The concatenated-stiffness single GEMM equals the three separate
        per-direction contractions of the opt backend."""
        fast = FastBackend()
        data = fast._disc_data(disc)
        rng = np.random.default_rng(13)
        E, B, F = disc.n_elements, disc.n_basis, 4
        x = rng.standard_normal((E, N_ELASTIC, B, F))
        tmp_cat = np.empty((E, N_ELASTIC, 3 * B, F))
        result = fast._stiffness_cat(data.k_time_cat_t, x, tmp_cat)
        assert result.shape == (3, E, N_ELASTIC, B, F)
        for c in range(3):
            expected = np.einsum("bd,evbf->evdf", disc.k_time[c], x)
            _assert_close(result[c], expected, name=f"k_time dir {c}")
        # each direction's (B, F) block must stay contiguous for _bmm folds
        assert result[0].strides[-2:] == (F * x.itemsize, x.itemsize)

    def test_fhat_project_matches_reference_einsum(self, disc):
        fast = FastBackend()
        data = fast._disc_data(disc)
        ws = fast.make_workspace()
        rng = np.random.default_rng(14)
        E, B, F = disc.n_elements, disc.n_basis, 3
        n_face_basis = disc.fhat.shape[1]
        solved = rng.standard_normal((E, 4, N_ELASTIC, n_face_basis, F))
        out = np.empty((E, N_ELASTIC, B, F))
        fast._fhat_project(data, disc.fhat, solved, out, ws, "t")
        expected = np.einsum("eivgf,igb->evbf", solved, disc.fhat)
        _assert_close(out, expected, name="fhat project")

    def test_fused_and_scalar_slices_agree(self, disc):
        """Fast fused kernels vs the same fast backend run slot-by-slot:
        only tolerance-equal (the GEMM groupings differ), which is exactly
        the fast contract."""
        fast = FastBackend()
        ws = fast.make_workspace()
        dofs = _random_dofs(disc, n_fused=4, seed=15)
        elements = np.arange(disc.n_elements)
        dt = float(disc.time_steps.min())
        delta_fused, ti_fused, _, _ = fast.local_update(disc, dofs, dt, elements, ws=ws)
        for f in range(4):
            delta_f, ti_f, _, _ = fast.local_update(
                disc, np.ascontiguousarray(dofs[..., f]), dt, elements, ws=ws
            )
            _assert_close(delta_fused[..., f], delta_f, rtol=1e-11, name=f"slot {f}")
            _assert_close(ti_fused[..., f], ti_f, rtol=1e-11, name=f"ti slot {f}")


class TestSolverToleranceParity:
    """Whole solver runs stay within tolerance of the reference kernels."""

    @pytest.fixture(scope="class")
    def graded(self):
        mesh = small_mesh(n=3, jitter=0.25, seed=2)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        disc = Discretization(mesh, table, order=3, n_mechanisms=3)
        clustering = derive_clustering(disc.time_steps, 2, 1.0, disc.mesh.neighbors)
        return disc, clustering

    def test_clustered_lts_cycles(self, graded):
        disc, clustering = graded
        ic = lambda points: np.exp(
            -np.sum((points - points.mean(axis=0)) ** 2, axis=1, keepdims=True)
            / (2 * 500.0**2)
        ) * np.ones((1, 9))
        solvers = {}
        for kind in ("ref", "fast"):
            solver = ClusteredLtsSolver(disc, clustering, kernels=kind)
            solver.set_initial_condition(ic)
            for _ in range(3):
                solver.step_cycle()
            solvers[kind] = solver
        _assert_close(solvers["fast"].dofs, solvers["ref"].dofs, rtol=1e-11, name="lts dofs")
        for name in ("b1", "b2", "b3"):
            _assert_close(
                getattr(solvers["fast"].buffers, name),
                getattr(solvers["ref"].buffers, name),
                rtol=1e-11,
                name=name,
            )

    def test_gts_solver(self, graded):
        disc, _ = graded
        ic = lambda points: np.ones((len(points), 9)) * np.sin(points[:, :1] / 300.0)
        solvers = {}
        for kind in ("ref", "fast"):
            solver = GlobalTimeSteppingSolver(disc, kernels=kind)
            solver.set_initial_condition(ic)
            for _ in range(3):
                solver.step()
            solvers[kind] = solver
        _assert_close(solvers["fast"].dofs, solvers["ref"].dofs, rtol=1e-11, name="gts dofs")

    def test_f32_tracks_f64_within_tolerance(self):
        mesh = small_mesh(n=2, jitter=0.1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        results = {}
        for precision in ("f64", "f32"):
            disc = Discretization(mesh, table, order=3, n_mechanisms=3, precision=precision)
            clustering = derive_clustering(disc.time_steps, 2, 1.0, disc.mesh.neighbors)
            solver = ClusteredLtsSolver(disc, clustering, kernels="fast")
            solver.set_initial_condition(
                lambda points: np.ones((len(points), 9)) * np.cos(points[:, :1] / 400.0)
            )
            for _ in range(2):
                solver.step_cycle()
            results[precision] = solver.dofs
        assert results["f32"].dtype == np.float32
        scale = np.abs(results["f64"]).max()
        err = np.abs(results["f32"].astype(np.float64) - results["f64"]).max()
        assert err <= 1e-4 * scale

"""Unit tests for the ADER time kernel (Cauchy-Kowalevski + Taylor integration)."""

import numpy as np
import pytest

from repro.equations.elastic import elastic_jacobians
from repro.kernels.ader import (
    compute_time_derivatives,
    taylor_evaluate,
    time_integrate,
    time_integrated_dofs,
)


class TestDerivatives:
    def test_constant_field_has_zero_derivatives(self, elastic_disc):
        """A spatially constant elastic state is steady (no source, no coupling)."""
        disc = elastic_disc
        dofs = disc.allocate_dofs()
        dofs[:, :, 0] = 3.0  # constant mode only
        derivatives = compute_time_derivatives(disc, dofs)
        for deriv in derivatives[1:]:
            np.testing.assert_allclose(deriv, 0.0, atol=1e-12)

    def test_linear_field_first_derivative_matches_pde(self, elastic_disc):
        """For q(x) linear in x the first time derivative must equal -A dq/dx."""
        disc = elastic_disc
        length = 2000.0

        def ic(points):
            out = np.zeros((len(points), 9))
            out[:, 6] = points[:, 0] / length  # u = x / L
            return out

        dofs = disc.project_initial_condition(ic)
        derivatives = compute_time_derivatives(disc, dofs)
        mat = disc.materials
        a = elastic_jacobians(mat.lam[0], mat.mu[0], mat.rho[0])[0]
        dq_dx = np.zeros(9)
        dq_dx[6] = 1.0 / length
        expected = -a @ dq_dx  # constant in space

        # the constant mode of the first derivative must carry the expected value
        # (physical value = coefficient * psi_0 with psi_0 = sqrt(6) for the
        # orthonormal basis on the reference tetrahedron of volume 1/6)
        const_basis_value = np.sqrt(6.0)
        first = derivatives[1][:, :, 0] * const_basis_value
        np.testing.assert_allclose(first, np.broadcast_to(expected, first.shape), rtol=1e-6, atol=1e-9 * np.abs(expected).max())
        # higher modes of the first derivative vanish (derivative is constant)
        np.testing.assert_allclose(derivatives[1][:, :, 1:], 0.0, atol=1e-6)

    def test_number_of_derivatives_matches_order(self, elastic_disc):
        dofs = elastic_disc.allocate_dofs()
        derivatives = compute_time_derivatives(elastic_disc, dofs)
        assert len(derivatives) == elastic_disc.order

    def test_viscoelastic_relaxation_derivative(self, viscoelastic_disc):
        """With zero elastic field and a constant memory variable, the first
        time derivative of the memory variable is -omega_l * zeta and the
        stress rate is the coupling E_l zeta."""
        disc = viscoelastic_disc
        dofs = disc.allocate_dofs()
        dofs[:, 9, 0] = 1.0  # zeta^0_xx constant
        derivatives = compute_time_derivatives(disc, dofs)
        first = derivatives[1]
        np.testing.assert_allclose(
            first[:, 9, 0], -disc.omegas[0] * 1.0, rtol=1e-12
        )
        expected_sigma = disc.coupling[:, 0, :, 0] * 1.0  # (K, 9)
        np.testing.assert_allclose(first[:, :9, 0], expected_sigma, rtol=1e-10)

    def test_batch_selection(self, elastic_disc):
        disc = elastic_disc
        rng = np.random.default_rng(0)
        dofs = rng.normal(size=disc.allocate_dofs().shape)
        subset = np.array([0, 5, 7])
        full = compute_time_derivatives(disc, dofs)
        part = compute_time_derivatives(disc, dofs, subset)
        for d in range(disc.order):
            np.testing.assert_allclose(part[d], full[d][subset])

    def test_fused_axis_matches_single(self, elastic_disc):
        disc = elastic_disc
        rng = np.random.default_rng(1)
        single = rng.normal(size=disc.allocate_dofs().shape)
        fused = np.stack([single, 2.0 * single], axis=-1)
        d_single = compute_time_derivatives(disc, single)
        d_fused = compute_time_derivatives(disc, fused)
        for d in range(disc.order):
            np.testing.assert_allclose(d_fused[d][..., 0], d_single[d], rtol=1e-12)
            np.testing.assert_allclose(d_fused[d][..., 1], 2.0 * d_single[d], rtol=1e-12)


class TestTimeIntegration:
    def test_interval_additivity(self, elastic_disc):
        """Integral over [0, dt] must equal [0, dt/2] + [dt/2, dt] -- the
        identity the LTS buffer algebra relies on (B1 - B2 usage)."""
        disc = elastic_disc
        rng = np.random.default_rng(2)
        dofs = rng.normal(size=disc.allocate_dofs().shape)
        derivatives = compute_time_derivatives(disc, dofs)
        dt = 0.01
        full = time_integrate(derivatives, 0.0, dt)
        first = time_integrate(derivatives, 0.0, 0.5 * dt)
        second = time_integrate(derivatives, 0.5 * dt, dt)
        np.testing.assert_allclose(full, first + second, rtol=1e-12, atol=1e-15)

    def test_matches_paper_taylor_formula(self, elastic_disc):
        disc = elastic_disc
        rng = np.random.default_rng(3)
        dofs = rng.normal(size=disc.allocate_dofs().shape)
        derivatives = compute_time_derivatives(disc, dofs)
        dt = 0.02
        from math import factorial

        expected = sum(
            dt ** (d + 1) / factorial(d + 1) * derivatives[d] for d in range(disc.order)
        )
        np.testing.assert_allclose(time_integrate(derivatives, 0.0, dt), expected, rtol=1e-12)

    def test_invalid_interval_raises(self, elastic_disc):
        dofs = elastic_disc.allocate_dofs()
        derivatives = compute_time_derivatives(elastic_disc, dofs)
        with pytest.raises(ValueError):
            time_integrate(derivatives, 1.0, 0.5)

    def test_per_element_dt(self, elastic_disc):
        disc = elastic_disc
        rng = np.random.default_rng(4)
        dofs = rng.normal(size=disc.allocate_dofs().shape)
        dt = rng.uniform(0.001, 0.01, size=disc.n_elements)
        result = time_integrated_dofs(disc, dofs, dt)
        for k in (0, 3, 11):
            single = time_integrated_dofs(disc, dofs, float(dt[k]), np.array([k]))
            np.testing.assert_allclose(result[k], single[0], rtol=1e-12)

    def test_taylor_evaluate_at_zero_returns_dofs(self, elastic_disc):
        disc = elastic_disc
        rng = np.random.default_rng(5)
        dofs = rng.normal(size=disc.allocate_dofs().shape)
        derivatives = compute_time_derivatives(disc, dofs)
        np.testing.assert_allclose(taylor_evaluate(derivatives, 0.0), dofs)

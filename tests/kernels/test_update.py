"""Integration tests of the full ADER-DG update: plane-wave propagation,
convergence with order, steadiness and fused-mode equivalence."""

import numpy as np
import pytest

from repro.equations.material import ElasticMaterial, MaterialTable, ViscoelasticMaterial
from repro.kernels.discretization import Discretization
from repro.kernels.update import gts_step, local_update, neighbor_update
from repro.mesh.generation import box_mesh

RHO, VP, VS = 2700.0, 6000.0, 3464.0
LENGTH = 10000.0


def _mesh(n, jitter=0.0, seed=0):
    coords = np.linspace(0.0, LENGTH, n + 1)
    return box_mesh(coords, coords, coords, jitter=jitter, seed=seed, free_surface_top=False)


def _disc(n, order, jitter=0.0, flux="godunov", n_mechanisms=0, material=None):
    mesh = _mesh(n, jitter=jitter)
    material = material or ElasticMaterial(rho=RHO, vp=VP, vs=VS)
    table = MaterialTable.homogeneous(material, mesh.n_elements)
    return Discretization(mesh, table, order=order, n_mechanisms=n_mechanisms, flux=flux)


def _p_wave_packet(direction, width, center_offset):
    """Analytic compactly-supported plane P-wave packet q(x, t)."""
    direction = np.asarray(direction, dtype=np.float64)
    direction = direction / np.linalg.norm(direction)
    lam = RHO * (VP**2 - 2 * VS**2)
    mu = RHO * VS**2

    # eigenvector of the normal Jacobian for eigenvalue +vp: particle motion
    # along the propagation direction, stresses from Hooke's law
    def field(points, t):
        phase = points @ direction - VP * t - center_offset
        g = np.exp(-(phase**2) / (2.0 * width**2))
        out = np.zeros((len(points), 9))
        n = direction
        # velocity along n
        out[:, 6:9] = g[:, None] * n[None, :]
        # strain rate ~ -1/vp * n n^T g  ->  stress = -(lam tr + 2 mu) ... / vp
        nn = np.outer(n, n)
        sigma = -(lam * np.eye(3) + 2.0 * mu * nn) / VP
        out[:, 0] = g * sigma[0, 0]
        out[:, 1] = g * sigma[1, 1]
        out[:, 2] = g * sigma[2, 2]
        out[:, 3] = g * sigma[0, 1]
        out[:, 4] = g * sigma[1, 2]
        out[:, 5] = g * sigma[0, 2]
        return out

    return field


def _l2_error(disc, dofs, analytic, t):
    """L2 error of the DG solution against an analytic field at time t."""
    quad = disc.ref.volume_quadrature
    psi = disc.ref.basis.evaluate(quad.points)
    verts = disc.mesh.vertices[disc.mesh.elements]
    v0 = verts[:, 0]
    phys = v0[:, None, :] + np.einsum("kdr,qr->kqd", disc.mesh.geometry.jacobians, quad.points)
    numeric = np.einsum("kvb,qb->kqv", dofs[:, :9], psi)
    exact = analytic(phys.reshape(-1, 3), t).reshape(disc.n_elements, quad.n_points, 9)
    diff = numeric - exact
    err2 = np.einsum("q,kqv,kqv,k->", quad.weights, diff, diff, disc.mesh.geometry.determinants)
    norm2 = np.einsum("q,kqv,kqv,k->", quad.weights, exact, exact, disc.mesh.geometry.determinants)
    return np.sqrt(err2 / max(norm2, 1e-300))


def _run_gts(disc, dofs, dt, n_steps):
    for _ in range(n_steps):
        dofs = gts_step(disc, dofs, dt)
    return dofs


class TestSteadyStates:
    def test_constant_state_is_preserved(self):
        disc = _disc(2, order=3, jitter=0.1, flux="rusanov")
        dofs = disc.allocate_dofs()
        dofs[:, :, 0] = 5.0
        dt = 0.5 * disc.time_steps.min()
        new = gts_step(disc, dofs, dt)
        # the residual is a cancellation of terms of size ~ (lam + 2 mu) * dt *
        # |S|/|J|, so the achievable accuracy is machine epsilon times that scale
        scale = (RHO * VP**2) * dt * 1e-3
        np.testing.assert_allclose(new, dofs, atol=1e-12 * scale + 1e-12)

    def test_zero_state_stays_zero(self):
        disc = _disc(2, order=2, flux="godunov")
        dofs = disc.allocate_dofs()
        new = gts_step(disc, dofs, disc.time_steps.min())
        np.testing.assert_allclose(new, 0.0, atol=1e-14)


class TestPlaneWavePropagation:
    @pytest.mark.parametrize("flux", ["godunov", "rusanov"])
    def test_packet_advects_correctly(self, flux):
        """A P-wave packet propagated for a short time must match the analytic
        translation within a few percent at moderate resolution."""
        disc = _disc(3, order=4, flux=flux)
        analytic = _p_wave_packet([1.0, 0.0, 0.0], width=900.0, center_offset=0.5 * LENGTH)
        dofs = disc.project_initial_condition(lambda p: analytic(p, 0.0))
        dt = 0.4 * disc.time_steps.min()
        n_steps = 12
        dofs = _run_gts(disc, dofs, dt, n_steps)
        err = _l2_error(disc, dofs, analytic, n_steps * dt)
        assert err < 0.06, f"relative L2 error too large: {err}"

    def test_error_decreases_with_order(self):
        """Convergence with the approximation order (h fixed)."""
        analytic = _p_wave_packet([1.0, 1.0, 0.0], width=1200.0, center_offset=0.5 * LENGTH * np.sqrt(2))
        errors = {}
        for order in (2, 3, 4):
            disc = _disc(3, order=order, flux="godunov")
            dofs = disc.project_initial_condition(lambda p: analytic(p, 0.0))
            dt = 0.3 * disc.time_steps.min()
            n_steps = 8
            dofs = _run_gts(disc, dofs, dt, n_steps)
            errors[order] = _l2_error(disc, dofs, analytic, n_steps * dt)
        assert errors[3] < 0.6 * errors[2]
        assert errors[4] < 0.6 * errors[3]

    def test_error_decreases_with_mesh_refinement(self):
        analytic = _p_wave_packet([0.0, 0.0, 1.0], width=1400.0, center_offset=0.5 * LENGTH)
        errors = {}
        for n in (2, 4):
            disc = _disc(n, order=3, flux="godunov")
            dofs = disc.project_initial_condition(lambda p: analytic(p, 0.0))
            dt = 0.3 * disc.time_steps.min()
            n_steps = 6
            dofs = _run_gts(disc, dofs, dt, n_steps)
            errors[n] = _l2_error(disc, dofs, analytic, n_steps * dt)
        # third order scheme: halving h should reduce the error by ~8x; be lenient
        assert errors[4] < 0.35 * errors[2]


class TestFusedMode:
    def test_fused_step_matches_independent_runs(self):
        disc = _disc(2, order=3, jitter=0.05, flux="rusanov")
        rng = np.random.default_rng(0)
        a = 1e-3 * rng.normal(size=disc.allocate_dofs().shape)
        b = 1e-3 * rng.normal(size=disc.allocate_dofs().shape)
        fused = np.stack([a, b], axis=-1)
        dt = 0.5 * disc.time_steps.min()
        stepped_fused = gts_step(disc, fused, dt)
        stepped_a = gts_step(disc, a, dt)
        stepped_b = gts_step(disc, b, dt)
        np.testing.assert_allclose(stepped_fused[..., 0], stepped_a, rtol=1e-12, atol=1e-18)
        np.testing.assert_allclose(stepped_fused[..., 1], stepped_b, rtol=1e-12, atol=1e-18)


class TestViscoelasticUpdate:
    def test_memory_variables_are_excited_and_solution_stays_bounded(self):
        """Strong attenuation (Q = 5) must excite the memory variables while the
        solution stays bounded over a substantial run (an attenuation sign error
        shows up as exponential growth on this time scale)."""
        material = ViscoelasticMaterial(rho=RHO, vp=VP, vs=VS, qp=5.0, qs=5.0)
        disc_visco = _disc(2, order=3, flux="rusanov", n_mechanisms=3, material=material)
        analytic = _p_wave_packet([1.0, 0.0, 0.0], width=1500.0, center_offset=0.4 * LENGTH)

        dofs_v = disc_visco.project_initial_condition(lambda p: analytic(p, 0.0))
        dt = 0.4 * disc_visco.time_steps.min()
        n_steps = int(round(0.3 / dt))
        initial_velocity_max = np.max(np.abs(dofs_v[:, 6:9, :]))
        for _ in range(n_steps):
            dofs_v = gts_step(disc_visco, dofs_v, dt)

        assert np.max(np.abs(dofs_v[:, 9:, :])) > 0.0
        assert np.max(np.abs(dofs_v[:, 6:9, :])) < 2.0 * initial_velocity_max

    def test_nearly_elastic_limit_matches_elastic_run(self):
        """With very large quality factors the viscoelastic solver must
        reproduce the purely elastic solution (consistency of the coupling)."""
        material = ViscoelasticMaterial(rho=RHO, vp=VP, vs=VS, qp=1e7, qs=1e7)
        disc_visco = _disc(2, order=3, flux="rusanov", n_mechanisms=3, material=material)
        disc_elastic = _disc(2, order=3, flux="rusanov")
        analytic = _p_wave_packet([1.0, 0.0, 0.0], width=1500.0, center_offset=0.5 * LENGTH)

        dofs_v = disc_visco.project_initial_condition(lambda p: analytic(p, 0.0))
        dofs_e = disc_elastic.project_initial_condition(lambda p: analytic(p, 0.0))
        dt = 0.4 * disc_elastic.time_steps.min()
        for _ in range(8):
            dofs_v = gts_step(disc_visco, dofs_v, dt)
            dofs_e = gts_step(disc_elastic, dofs_e, dt)
        scale = np.max(np.abs(dofs_e[:, 6:9, :]))
        np.testing.assert_allclose(
            dofs_v[:, 6:9, :], dofs_e[:, 6:9, :], atol=1e-5 * scale
        )

    def test_viscoelastic_stability(self):
        """The viscoelastic update must remain bounded over many steps."""
        material = ViscoelasticMaterial(rho=RHO, vp=VP, vs=VS, qp=50.0, qs=25.0)
        disc = _disc(2, order=3, flux="rusanov", n_mechanisms=3, material=material)
        analytic = _p_wave_packet([1.0, 0.0, 0.0], width=1500.0, center_offset=0.5 * LENGTH)
        dofs = disc.project_initial_condition(lambda p: analytic(p, 0.0))
        initial_max = np.max(np.abs(dofs))
        dt = 0.4 * disc.time_steps.min()
        for _ in range(30):
            dofs = gts_step(disc, dofs, dt)
        assert np.max(np.abs(dofs)) < 5.0 * initial_max


class TestLocalNeighborSplit:
    def test_split_equals_full_step(self):
        """local_update + neighbor_update must reproduce gts_step exactly."""
        disc = _disc(2, order=3, jitter=0.1, flux="rusanov")
        rng = np.random.default_rng(1)
        dofs = 1e-3 * rng.normal(size=disc.allocate_dofs().shape)
        dt = 0.5 * disc.time_steps.min()
        all_elements = np.arange(disc.n_elements)

        delta, time_integrated, _ = local_update(disc, dofs, dt, all_elements)
        te = time_integrated[:, :9]
        safe = np.where(disc.mesh.neighbors >= 0, disc.mesh.neighbors, 0)
        delta += neighbor_update(disc, te[safe], time_integrated, all_elements)

        np.testing.assert_allclose(dofs + delta, gts_step(disc, dofs, dt), rtol=1e-12, atol=1e-18)

"""Kernel-execution backend tests.

The contract of the backend layer:

* ``OptimizedBackend`` at f64 is **bit-identical** to ``ReferenceBackend``
  -- per kernel, per GTS step, over clustered-LTS cycles (workspaces reused
  across micro steps), in fused mode, and through the scenario runner;
* an f32 discretization runs in single precision end to end (DOFs, buffers,
  seismograms) and matches the f64 result within a documented tolerance;
* the optimized backend's structure assumptions are verified per
  discretization (dense fallback otherwise), and its einsum-plan cache only
  engages where bit-exactness is not contractual (f32).
"""

import numpy as np
import pytest

from repro.core.clustering import derive_clustering
from repro.core.gts_solver import GlobalTimeSteppingSolver
from repro.core.lts_solver import ClusteredLtsSolver
from repro.kernels.backend import (
    KernelWorkspace,
    OptimizedBackend,
    ReferenceBackend,
    make_backend,
)
from repro.kernels.discretization import Discretization, N_ELASTIC
from repro.kernels.update import gts_step

from .conftest import small_mesh
from repro.equations.material import MaterialTable, ViscoelasticMaterial


def _random_dofs(disc, n_fused=0, seed=0):
    rng = np.random.default_rng(seed)
    shape = (disc.n_elements, disc.n_vars, disc.n_basis)
    if n_fused:
        shape += (n_fused,)
    return rng.standard_normal(shape)


class TestMakeBackend:
    def test_resolution(self):
        assert isinstance(make_backend("ref"), ReferenceBackend)
        assert isinstance(make_backend("opt"), OptimizedBackend)
        backend = OptimizedBackend()
        assert make_backend(backend) is backend
        with pytest.raises(ValueError):
            make_backend("vectorized")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert make_backend(None).name == "ref"
        monkeypatch.setenv("REPRO_KERNELS", "opt")
        assert make_backend(None).name == "opt"


class TestKernelParity:
    """Per-kernel bitwise parity of the optimized backend at f64."""

    @pytest.fixture(scope="class", params=["elastic", "viscoelastic"])
    def disc(self, request):
        mesh = small_mesh(n=2, jitter=0.1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        n_mechanisms = 3 if request.param == "viscoelastic" else 0
        return Discretization(mesh, table, order=4, n_mechanisms=n_mechanisms)

    @pytest.mark.parametrize("n_fused", [0, 2])
    def test_local_update_bitwise(self, disc, n_fused):
        ref, opt = ReferenceBackend(), OptimizedBackend()
        ws = opt.make_workspace()
        dofs = _random_dofs(disc, n_fused)
        elements = np.arange(disc.n_elements)
        dt = float(disc.time_steps.min())
        delta_r, ti_r, derivs_r, traces_r = ref.local_update(disc, dofs, dt, elements)
        delta_o, ti_o, derivs_o, traces_o = opt.local_update(disc, dofs, dt, elements, ws=ws)
        assert np.array_equal(ti_o, ti_r)
        assert np.array_equal(delta_o, delta_r)
        assert np.array_equal(traces_o, traces_r)
        for d_r, d_o in zip(derivs_r, derivs_o):
            assert np.array_equal(d_o, d_r)

    def test_batch_subsets_match_full_batch(self, disc):
        """Splitting a batch (the distributed boundary/interior split) is
        bit-identical per element, including reused workspace scratch."""
        opt = OptimizedBackend()
        ws = opt.make_workspace()
        dofs = _random_dofs(disc)
        dt = float(disc.time_steps.min())
        full = np.arange(disc.n_elements)
        delta_full, _, _, _ = opt.local_update(disc, dofs, dt, full, ws=ws)
        delta_full = delta_full.copy()
        halves = (full[: disc.n_elements // 2], full[disc.n_elements // 2 :])
        for subset in halves:
            delta_sub, _, _, _ = opt.local_update(disc, dofs, dt, subset, ws=ws)
            assert np.array_equal(delta_sub, delta_full[subset])

    def test_neighbor_path_bitwise(self, disc):
        ref, opt = ReferenceBackend(), OptimizedBackend()
        ws = opt.make_workspace()
        dofs = _random_dofs(disc, seed=3)
        elements = np.arange(disc.n_elements)
        dt = float(disc.time_steps.min())
        _, ti, _, _ = ref.local_update(disc, dofs, dt, elements)
        te = ti[:, :N_ELASTIC]
        neighbor_te = te[np.maximum(disc.mesh.neighbors, 0)]
        traces_r = ref.project_local_traces(disc, te, elements)
        traces_o = opt.project_local_traces(disc, te, elements, ws=ws)
        assert np.array_equal(traces_o, traces_r)
        coeffs_r = ref.neighbor_face_coefficients(disc, neighbor_te, traces_r, elements)
        coeffs_o = opt.neighbor_face_coefficients(disc, neighbor_te, traces_o, elements, ws=ws)
        assert np.array_equal(coeffs_o, coeffs_r)
        out_r = ref.surface_kernel_neighbor(disc, coeffs_r, elements)
        out_o = opt.surface_kernel_neighbor(disc, coeffs_o, elements, ws=ws)
        assert np.array_equal(out_o, out_r)

    def test_gts_step_bitwise(self, disc):
        dofs = _random_dofs(disc, seed=1)
        dt = float(disc.time_steps.min())
        stepped_ref = gts_step(disc, dofs, dt)
        ws = KernelWorkspace()
        opt = OptimizedBackend()
        stepped_opt = gts_step(disc, dofs, dt, backend=opt, ws=ws)
        assert np.array_equal(stepped_opt, stepped_ref)
        # repeat on the same workspace: scratch reuse must not leak state
        assert np.array_equal(gts_step(disc, dofs, dt, backend=opt, ws=ws), stepped_ref)

    def test_structure_verified_per_discretization(self, disc):
        opt = OptimizedBackend()
        data = opt._disc_data(disc)
        assert data.star_e_blocks  # elastic star matrices are block-off-diagonal
        if disc.n_mechanisms:
            assert data.star_a_velocity and data.coupling_stress and data.flux_a_velocity

    def test_dense_fallback_when_structure_absent(self, disc):
        """A (hypothetical) operator set violating the zero-block assumptions
        must route through the dense contractions and still match."""
        mesh = small_mesh(n=1, jitter=0.05)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        dense = Discretization(mesh, table, order=3, n_mechanisms=3)
        rng = np.random.default_rng(7)
        dense.star_elastic = dense.star_elastic + 1e-3 * rng.standard_normal(
            dense.star_elastic.shape
        )
        dense.star_anelastic = dense.star_anelastic + 1e-3 * rng.standard_normal(
            dense.star_anelastic.shape
        )
        opt = OptimizedBackend()
        assert not opt._disc_data(dense).star_e_blocks
        dofs = _random_dofs(dense, seed=5)
        elements = np.arange(dense.n_elements)
        dt = float(dense.time_steps.min())
        delta_r, ti_r, _, _ = ReferenceBackend().local_update(dense, dofs, dt, elements)
        delta_o, ti_o, _, _ = opt.local_update(dense, dofs, dt, elements, ws=opt.make_workspace())
        assert np.array_equal(ti_o, ti_r)
        assert np.array_equal(delta_o, delta_r)


class TestSolverParity:
    """Bitwise parity over full solver runs (workspaces reused across steps)."""

    @pytest.fixture(scope="class")
    def graded(self):
        mesh = small_mesh(n=3, jitter=0.25, seed=2)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        disc = Discretization(mesh, table, order=3, n_mechanisms=3)
        clustering = derive_clustering(disc.time_steps, 2, 1.0, disc.mesh.neighbors)
        return disc, clustering

    def test_clustered_lts_cycles_bitwise(self, graded):
        disc, clustering = graded
        ic = lambda points: np.exp(
            -np.sum((points - points.mean(axis=0)) ** 2, axis=1, keepdims=True)
            / (2 * 500.0**2)
        ) * np.ones((1, 9))
        solvers = {}
        for kind in ("ref", "opt"):
            solver = ClusteredLtsSolver(disc, clustering, kernels=kind)
            solver.set_initial_condition(ic)
            for _ in range(3):
                solver.step_cycle()
            solvers[kind] = solver
        assert np.array_equal(solvers["opt"].dofs, solvers["ref"].dofs)
        for name in ("b1", "b2", "b3"):
            assert np.array_equal(
                getattr(solvers["opt"].buffers, name), getattr(solvers["ref"].buffers, name)
            )

    def test_gts_solver_bitwise(self, graded):
        disc, _ = graded
        ic = lambda points: np.ones((len(points), 9)) * np.sin(points[:, :1] / 300.0)
        solvers = {}
        for kind in ("ref", "opt"):
            solver = GlobalTimeSteppingSolver(disc, kernels=kind)
            solver.set_initial_condition(ic)
            for _ in range(3):
                solver.step()
            solvers[kind] = solver
        assert np.array_equal(solvers["opt"].dofs, solvers["ref"].dofs)


class TestPrecision:
    def test_f32_discretization_end_to_end(self):
        mesh = small_mesh(n=2, jitter=0.1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        disc = Discretization(mesh, table, order=3, n_mechanisms=3, precision="f32")
        assert disc.dtype == np.float32
        for name in ("star_elastic", "coupling", "flux_local_elastic",
                     "neighbor_flux_matrices", "omegas", "k_time", "k_vol",
                     "ftilde", "fhat"):
            assert getattr(disc, name).dtype == np.float32, name
        assert disc.allocate_dofs().dtype == np.float32
        assert disc.time_steps.dtype == np.float64  # time arithmetic stays f64

    def test_projection_and_sampling_stay_f32(self):
        """The satellite fix: initial-condition projection and receiver
        sampling must not silently upcast f32 state to f64."""
        mesh = small_mesh(n=2, jitter=0.1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        disc = Discretization(mesh, table, order=3, n_mechanisms=3, precision="f32")
        ic = lambda points: np.ones((len(points), 9))
        coeffs = disc.project_initial_condition(ic)
        assert coeffs.dtype == np.float32
        assert disc.project_initial_condition(ic, n_fused=2).dtype == np.float32
        sampled = disc.evaluate_at_points(
            coeffs, np.array([0]), np.array([[0.25, 0.25, 0.25]])
        )
        assert sampled.dtype == np.float32

    def test_invalid_precision_rejected(self):
        mesh = small_mesh(n=1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        with pytest.raises(ValueError, match="precision"):
            Discretization(mesh, table, order=2, precision="f16")

    @pytest.mark.parametrize("kind", ["ref", "opt"])
    def test_f32_solver_tracks_f64_within_tolerance(self, kind):
        mesh = small_mesh(n=2, jitter=0.1)
        material = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(material, mesh.n_elements)
        results = {}
        for precision in ("f64", "f32"):
            disc = Discretization(mesh, table, order=3, n_mechanisms=3, precision=precision)
            clustering = derive_clustering(disc.time_steps, 2, 1.0, disc.mesh.neighbors)
            solver = ClusteredLtsSolver(disc, clustering, kernels=kind)
            solver.set_initial_condition(
                lambda points: np.ones((len(points), 9)) * np.cos(points[:, :1] / 400.0)
            )
            for _ in range(2):
                solver.step_cycle()
            results[precision] = solver.dofs
        assert results["f32"].dtype == np.float32
        scale = np.abs(results["f64"]).max()
        err = np.abs(results["f32"].astype(np.float64) - results["f64"]).max()
        # a handful of LTS cycles at order 3 accumulates O(100) f32 roundings
        assert err <= 1e-4 * scale

    def test_plan_cache_engages_only_for_f32(self):
        opt = OptimizedBackend()
        a64, b64 = np.ones((4, 5)), np.ones((5, 3))
        opt._einsum("ij,jk->ik", a64, b64)
        assert not opt._plans  # f64 stays on the bit-exact kernel
        opt._einsum("ij,jk->ik", a64.astype(np.float32), b64.astype(np.float32))
        assert len(opt._plans) == 1

"""Unit tests for the per-mesh discretization setup."""

import numpy as np
import pytest

from repro.equations.material import ElasticMaterial, MaterialTable
from repro.kernels.discretization import Discretization
from repro.mesh.generation import box_mesh

from .conftest import small_mesh


class TestShapesAndValidation:
    def test_basic_shapes(self, viscoelastic_disc):
        disc = viscoelastic_disc
        K = disc.n_elements
        assert disc.n_vars == 27  # 9 elastic + 3 mechanisms x 6
        assert disc.star_elastic.shape == (K, 3, 9, 9)
        assert disc.star_anelastic.shape == (K, 3, 6, 9)
        assert disc.coupling.shape == (K, 3, 9, 6)
        assert disc.flux_local_elastic.shape == (K, 4, 9, 9)
        assert disc.flux_neigh_anelastic.shape == (K, 4, 6, 9)
        assert disc.time_steps.shape == (K,)
        assert np.all(disc.time_steps > 0)

    def test_elastic_only_has_nine_variables(self, elastic_disc):
        assert elastic_disc.n_vars == 9
        assert elastic_disc.omegas.size == 0

    def test_material_size_mismatch_raises(self):
        mesh = small_mesh(n=2)
        table = MaterialTable.homogeneous(ElasticMaterial(2700.0, 6000.0, 3464.0), 3)
        with pytest.raises(ValueError):
            Discretization(mesh, table, order=3)

    def test_invalid_flux_raises(self):
        mesh = small_mesh(n=2)
        table = MaterialTable.homogeneous(ElasticMaterial(2700.0, 6000.0, 3464.0), mesh.n_elements)
        with pytest.raises(ValueError):
            Discretization(mesh, table, order=3, flux="roe")


class TestNeighborFluxMatrices:
    def test_unique_count_is_small(self, elastic_disc):
        """The per-face neighbour projection matrices must deduplicate into the
        small unique set (the paper's 12 F_bar matrices under EDGE's canonical
        ordering; at most 24 for arbitrary orderings)."""
        assert 1 <= elastic_disc.n_unique_neighbor_matrices <= 24

    def test_index_assignment(self, elastic_disc):
        idx = elastic_disc.neighbor_flux_index
        interior = elastic_disc.mesh.neighbors >= 0
        assert np.all(idx[interior] >= 0)
        assert np.all(idx[~interior] == -1)

    def test_neighbor_projection_reproduces_trace(self, elastic_disc):
        """Projecting a neighbour's polynomial through F_bar must equal the
        pointwise trace of that polynomial on the shared face."""
        disc = elastic_disc
        mesh = disc.mesh
        ref = disc.ref
        rng = np.random.default_rng(0)
        # pick an interior face
        k, i = np.argwhere(mesh.neighbors >= 0)[0]
        neighbor = mesh.neighbors[k, i]
        coeffs = rng.normal(size=(1, ref.n_basis))

        fbar = disc.neighbor_flux_matrices[disc.neighbor_flux_index[k, i]]
        face_coeffs = coeffs @ fbar  # (1, F)
        chi = ref.face_basis_at_quad
        trace_from_projection = face_coeffs @ chi.T  # values at local face quad points

        # direct evaluation: map local face quad points to physical space and
        # into the neighbour's reference coordinates
        from repro.mesh.geometry import map_physical_to_reference, map_reference_to_physical

        phys = map_reference_to_physical(
            mesh.vertices, mesh.elements, np.array([k]), ref.face_quad_points[i]
        )[0]
        xi_neigh = map_physical_to_reference(mesh.vertices, mesh.elements, neighbor, phys)
        trace_direct = coeffs @ ref.basis.evaluate(xi_neigh).T
        np.testing.assert_allclose(trace_from_projection, trace_direct, atol=1e-8)


class TestFluxSolverScaling:
    def test_flux_solver_includes_geometry_factor(self, elastic_disc):
        """For equal traces, local + neighbour flux matrices must equal the
        scaled normal Jacobian (consistency), including the -2|S|/|J| factor."""
        disc = elastic_disc
        mesh = disc.mesh
        mat = disc.materials
        from repro.equations.riemann import elastic_normal_jacobian

        k, i = np.argwhere(mesh.neighbors >= 0)[0]
        normal = mesh.geometry.face_normals[k, i]
        an = elastic_normal_jacobian(mat.lam[k], mat.mu[k], mat.rho[k], normal)
        scale = -2.0 * mesh.geometry.face_areas[k, i] / mesh.geometry.determinants[k]
        combined = disc.flux_local_elastic[k, i] + disc.flux_neigh_elastic[k, i]
        np.testing.assert_allclose(combined, scale * an, rtol=1e-9, atol=1e-6)


class TestDofHelpers:
    def test_allocate_and_views(self, viscoelastic_disc):
        disc = viscoelastic_disc
        dofs = disc.allocate_dofs()
        assert dofs.shape == (disc.n_elements, 27, disc.n_basis)
        fused = disc.allocate_dofs(n_fused=4)
        assert fused.shape == (disc.n_elements, 27, disc.n_basis, 4)
        assert disc.elastic_view(dofs).shape[1] == 9
        assert disc.anelastic_view(dofs, 2).shape[1] == 6

    def test_project_initial_condition_roundtrip(self, elastic_disc):
        disc = elastic_disc

        def ic(points):
            out = np.zeros((len(points), 9))
            out[:, 6] = np.sin(2 * np.pi * points[:, 0] / 2000.0)
            out[:, 0] = points[:, 1] / 2000.0
            return out

        dofs = disc.project_initial_condition(ic)
        # evaluate at element centroids and compare with the analytic field
        centers = np.full((1, 3), 0.25)
        values = disc.evaluate_at_points(dofs, np.arange(disc.n_elements), centers)
        phys = disc.mesh.vertices[disc.mesh.elements][:, 0] + np.einsum(
            "kdr,r->kd", disc.mesh.geometry.jacobians, centers[0]
        )
        expected_u = np.sin(2 * np.pi * phys[:, 0] / 2000.0)
        np.testing.assert_allclose(values[:, 0, 6], expected_u, atol=0.05)

    def test_project_initial_condition_elastic_padding(self, viscoelastic_disc):
        disc = viscoelastic_disc

        def ic(points):
            return np.ones((len(points), 9))

        dofs = disc.project_initial_condition(ic)
        assert dofs.shape[1] == 27
        np.testing.assert_allclose(dofs[:, 9:, :], 0.0)

    def test_project_initial_condition_wrong_width_raises(self, viscoelastic_disc):
        with pytest.raises(ValueError):
            viscoelastic_disc.project_initial_condition(lambda p: np.ones((len(p), 5)))

    def test_fused_initial_condition(self, elastic_disc):
        dofs = elastic_disc.project_initial_condition(lambda p: np.ones((len(p), 9)), n_fused=3)
        assert dofs.shape[-1] == 3
        np.testing.assert_allclose(dofs[..., 0], dofs[..., 2])

"""Unit tests for source time functions, point sources, receivers and misfits."""

import numpy as np
import pytest

from repro.equations.material import ElasticMaterial, MaterialTable
from repro.kernels.discretization import Discretization
from repro.mesh.generation import box_mesh
from repro.source.misfit import envelope_misfit, seismogram_misfit
from repro.source.moment_tensor import (
    DiscretePointSource,
    MomentTensorSource,
    PointForceSource,
    locate_point,
)
from repro.source.receivers import ReceiverSet, lowpass_filter, resample_seismogram
from repro.source.time_functions import GaussianDerivative, RickerWavelet, SmoothedStep


@pytest.fixture(scope="module")
def disc():
    coords = np.linspace(0.0, 2000.0, 3)
    mesh = box_mesh(coords, coords, coords, free_surface_top=False)
    table = MaterialTable.homogeneous(ElasticMaterial(2700.0, 6000.0, 3464.0), mesh.n_elements)
    return Discretization(mesh, table, order=3)


class TestTimeFunctions:
    def test_ricker_peak_at_delay(self):
        stf = RickerWavelet(f0=2.0, t0=1.0)
        t = np.linspace(0, 2, 2001)
        assert abs(t[np.argmax(stf(t))] - 1.0) < 1e-3

    def test_ricker_integral_matches_quadrature(self):
        stf = RickerWavelet(f0=1.5, t0=0.5)
        t = np.linspace(0.0, 0.8, 20001)
        reference = np.trapezoid(stf(t), t)
        assert stf.integral(0.0, 0.8) == pytest.approx(reference, rel=1e-6)

    def test_gaussian_derivative_closed_form_integral(self):
        stf = GaussianDerivative(sigma=0.1, t0=0.3)
        t = np.linspace(0.0, 1.0, 50001)
        reference = np.trapezoid(stf(t), t)
        assert stf.integral(0.0, 1.0) == pytest.approx(reference, abs=1e-6)

    def test_smoothed_step_reaches_amplitude(self):
        stf = SmoothedStep(rise_time=0.2, amplitude=3.0)
        assert stf(10.0) == pytest.approx(3.0, rel=1e-6)
        assert stf(-1.0) == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RickerWavelet(f0=-1.0, t0=0.0)
        with pytest.raises(ValueError):
            GaussianDerivative(sigma=0.0, t0=0.0)
        with pytest.raises(ValueError):
            SmoothedStep(rise_time=0.0)


class TestPointSources:
    def test_locate_point(self, disc):
        element = locate_point(disc.mesh, np.array([500.0, 500.0, 500.0]))
        assert 0 <= element < disc.mesh.n_elements
        verts = disc.mesh.vertices[disc.mesh.elements[element]]
        assert verts[:, 0].min() <= 500.0 <= verts[:, 0].max() + 1e-9

    def test_moment_tensor_validation(self):
        with pytest.raises(ValueError):
            MomentTensorSource(np.zeros(3), np.ones((3, 2)), RickerWavelet(1.0, 0.0))
        with pytest.raises(ValueError):
            MomentTensorSource(
                np.zeros(3), np.array([[0, 1, 0], [0, 0, 0], [0, 0, 0.0]]), RickerWavelet(1.0, 0.0)
            )

    def test_injection_adds_to_source_element_only(self, disc):
        source = MomentTensorSource(
            location=np.array([500.0, 500.0, 500.0]),
            moment_tensor=1e9 * np.eye(3),
            time_function=RickerWavelet(f0=5.0, t0=0.1),
        )
        discrete = DiscretePointSource(disc, source)
        dofs = disc.allocate_dofs()
        discrete.inject(dofs, 0.0, 0.2)
        changed = np.where(np.any(dofs != 0.0, axis=(1, 2)))[0]
        np.testing.assert_array_equal(changed, [discrete.element])
        # explosive source: only normal stresses are excited
        np.testing.assert_allclose(dofs[discrete.element, 3:9], 0.0)

    def test_force_source_scales_with_density(self, disc):
        source = PointForceSource(
            location=np.array([500.0, 500.0, 500.0]),
            force=np.array([0.0, 0.0, 1e6]),
            time_function=RickerWavelet(f0=5.0, t0=0.1),
        )
        discrete = DiscretePointSource(disc, source)
        dofs = disc.allocate_dofs()
        discrete.inject(dofs, 0.0, 0.2)
        assert np.any(dofs[discrete.element, 8] != 0.0)
        np.testing.assert_allclose(dofs[discrete.element, 0:6], 0.0)

    def test_source_outside_mesh_raises(self, disc):
        source = MomentTensorSource(
            location=np.array([1e6, 1e6, 1e6]),
            moment_tensor=np.eye(3),
            time_function=RickerWavelet(f0=5.0, t0=0.1),
        )
        with pytest.raises(ValueError):
            DiscretePointSource(disc, source)

    def test_fused_injection(self, disc):
        source = MomentTensorSource(
            location=np.array([500.0, 500.0, 500.0]),
            moment_tensor=1e9 * np.eye(3),
            time_function=RickerWavelet(f0=5.0, t0=0.1),
        )
        discrete = DiscretePointSource(disc, source)
        dofs = disc.allocate_dofs(n_fused=3)
        discrete.inject(dofs, 0.0, 0.2)
        np.testing.assert_allclose(dofs[..., 0], dofs[..., 2])


class TestReceivers:
    def test_receiver_records_point_value(self, disc):
        receivers = ReceiverSet(disc, {"a": np.array([700.0, 600.0, 500.0])})
        dofs = disc.allocate_dofs()
        dofs[:, 6, 0] = 1.0 / np.sqrt(6.0)  # constant u = 1 everywhere
        receivers.record_all(0.25, dofs)
        times, values = receivers["a"].seismogram()
        np.testing.assert_allclose(times, [0.25])
        np.testing.assert_allclose(values[0], [1.0, 0.0, 0.0], atol=1e-12)

    def test_record_elements_filters_by_element(self, disc):
        receivers = ReceiverSet(disc, {"a": np.array([700.0, 600.0, 500.0])})
        element = receivers["a"].element
        dofs = disc.allocate_dofs()
        receivers.record_elements(np.array([element + 1]), 0.1, dofs)
        assert len(receivers["a"].times) == 0
        receivers.record_elements(np.array([element]), 0.2, dofs)
        assert len(receivers["a"].times) == 1

    def test_missing_receiver_raises(self, disc):
        receivers = ReceiverSet(disc, {"a": np.array([700.0, 600.0, 500.0])})
        with pytest.raises(KeyError):
            receivers["nope"]

    def test_resample_and_filter(self):
        times = np.linspace(0, 1, 101)
        values = np.sin(2 * np.pi * 3 * times)[:, None] * np.ones((1, 3))
        resampled = resample_seismogram(times, values, np.linspace(0, 1, 51))
        assert resampled.shape == (51, 3)
        filtered = lowpass_filter(values, dt=0.01, cutoff_hz=1.0)
        assert np.max(np.abs(filtered)) < 0.3 * np.max(np.abs(values))
        # cutoff above Nyquist: unchanged
        np.testing.assert_array_equal(lowpass_filter(values, 0.01, 100.0), values)


class TestMisfit:
    def test_identical_signals_have_zero_misfit(self):
        sig = np.sin(np.linspace(0, 10, 100))
        assert seismogram_misfit(sig, sig) == 0.0

    def test_scaling_of_misfit(self):
        ref = np.sin(np.linspace(0, 10, 100))
        assert seismogram_misfit(1.1 * ref, ref) == pytest.approx(0.01, rel=1e-9)

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            seismogram_misfit(np.ones(5), np.zeros(5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            seismogram_misfit(np.ones(5), np.ones(6))

    def test_envelope_misfit_tolerates_small_shift(self):
        t = np.linspace(0, 10, 1000)
        ref = np.exp(-((t - 5) ** 2)) * np.sin(20 * t)
        shifted = np.exp(-((t - 5.02) ** 2)) * np.sin(20 * (t - 0.02))
        assert envelope_misfit(shifted, ref) < seismogram_misfit(shifted, ref)

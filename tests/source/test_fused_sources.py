"""Fused ensemble sources: per-slot injection stacks, receiver demux and the
fused-sources spec block.

Slot ``f`` of a fused source must behave exactly like a standalone scalar
source ``f`` (bit-identical injection), and receivers recording a fused run
with genuinely distinct per-slot sources must show diverging per-slot traces
-- otherwise the fused axis silently degenerates into a replicated ensemble.
"""

import numpy as np
import pytest

from repro.equations.material import ElasticMaterial, MaterialTable
from repro.kernels.discretization import Discretization
from repro.mesh.generation import box_mesh
from repro.scenarios import FusedSourceSpec, ScenarioRunner, get_scenario
from repro.scenarios.spec import ScenarioSpec, SourceSpec, TimeFunctionSpec
from repro.source.moment_tensor import (
    DiscretePointSource,
    MomentTensorSource,
    PointForceSource,
)
from repro.source.receivers import ReceiverSet
from repro.source.time_functions import RickerWavelet


@pytest.fixture(scope="module")
def disc():
    coords = np.linspace(0.0, 2000.0, 3)
    mesh = box_mesh(coords, coords, coords, free_surface_top=False)
    table = MaterialTable.homogeneous(ElasticMaterial(2700.0, 6000.0, 3464.0), mesh.n_elements)
    return Discretization(mesh, table, order=3)


LOCATION = np.array([500.0, 500.0, 500.0])


def _slot_sources(n):
    """n genuinely distinct moment-tensor sources sharing one location."""
    return [
        MomentTensorSource(
            location=LOCATION,
            moment_tensor=(1.0 - 0.1 * f) * 1e9 * np.eye(3),
            time_function=RickerWavelet(f0=5.0, t0=0.1 + 0.02 * f),
        )
        for f in range(n)
    ]


class TestFusedDiscreteSource:
    def test_injection_stack_shape_and_width(self, disc):
        fused = DiscretePointSource(disc, _slot_sources(4))
        assert fused.n_fused == 4
        assert fused._injection.shape == (disc.n_vars, disc.n_basis, 4)

    def test_scalar_source_reports_zero_width(self, disc):
        scalar = DiscretePointSource(disc, _slot_sources(1)[0])
        assert scalar.n_fused == 0
        assert scalar._injection.shape == (disc.n_vars, disc.n_basis)

    def test_slot_injection_bitwise_matches_scalar(self, disc):
        """The load-bearing fused-source property: slot f's injected DOFs are
        bit-identical to a standalone scalar injection of source f."""
        sources = _slot_sources(4)
        fused = DiscretePointSource(disc, sources)
        dofs = disc.allocate_dofs(n_fused=4)
        fused.inject(dofs, 0.0, 0.2)
        for f, source in enumerate(sources):
            scalar_dofs = disc.allocate_dofs()
            DiscretePointSource(disc, source).inject(scalar_dofs, 0.0, 0.2)
            np.testing.assert_array_equal(dofs[..., f], scalar_dofs)

    def test_distinct_locations_raise(self, disc):
        base = _slot_sources(1)[0]
        moved = MomentTensorSource(
            location=LOCATION + 100.0,
            moment_tensor=1e9 * np.eye(3),
            time_function=RickerWavelet(f0=5.0, t0=0.1),
        )
        with pytest.raises(ValueError, match="share one location"):
            DiscretePointSource(disc, [base, moved])

    def test_empty_fused_list_raises(self, disc):
        with pytest.raises(ValueError, match="must not be empty"):
            DiscretePointSource(disc, [])

    def test_fused_source_requires_matching_dof_width(self, disc):
        fused = DiscretePointSource(disc, _slot_sources(2))
        with pytest.raises(ValueError, match="matching trailing axis"):
            fused.inject(disc.allocate_dofs(), 0.0, 0.2)
        with pytest.raises(ValueError, match="matching trailing axis"):
            fused.inject(disc.allocate_dofs(n_fused=3), 0.0, 0.2)

    def test_scalar_source_broadcasts_into_fused_dofs(self, disc):
        """A scalar source on fused DOFs stays the replicated ensemble."""
        scalar = DiscretePointSource(disc, _slot_sources(1)[0])
        dofs = disc.allocate_dofs(n_fused=3)
        scalar.inject(dofs, 0.0, 0.2)
        np.testing.assert_array_equal(dofs[..., 0], dofs[..., 1])
        np.testing.assert_array_equal(dofs[..., 0], dofs[..., 2])

    def test_fused_point_force_scales_per_slot(self, disc):
        stf = RickerWavelet(f0=5.0, t0=0.1)
        sources = [
            PointForceSource(LOCATION, np.array([0.0, 0.0, (1.0 + f) * 1e6]), stf)
            for f in range(2)
        ]
        fused = DiscretePointSource(disc, sources)
        dofs = disc.allocate_dofs(n_fused=2)
        fused.inject(dofs, 0.0, 0.2)
        k = fused.element
        assert np.any(dofs[k, 8, :, 0] != 0.0)
        # doubling the force doubles the injection exactly (same wavelet)
        np.testing.assert_array_equal(dofs[k, 8, :, 1], 2.0 * dofs[k, 8, :, 0])


class TestFusedReceiverTraces:
    def test_receiver_demuxes_distinct_slots(self, disc):
        """Distinct per-slot forces must produce diverging per-slot samples."""
        stf = RickerWavelet(f0=5.0, t0=0.1)
        sources = [
            PointForceSource(LOCATION, np.array([0.0, 0.0, (1.0 + f) * 1e6]), stf)
            for f in range(2)
        ]
        fused = DiscretePointSource(disc, sources)
        dofs = disc.allocate_dofs(n_fused=2)
        fused.inject(dofs, 0.0, 0.2)
        receivers = ReceiverSet(disc, {"a": LOCATION})
        assert receivers["a"].element == fused.element
        receivers.record_all(0.2, dofs)
        times, values = receivers["a"].seismogram()
        assert values.shape == (1, 3, 2)
        assert np.any(values[0, :, 0] != values[0, :, 1])

    def test_end_to_end_per_slot_traces_diverge(self):
        """A fused run with distinct per-slot sources records seismograms
        whose slots diverge -- and whose slot traces differ from what the
        replicated (identical-slots) ensemble would record."""
        spec = get_scenario(
            "loh3",
            extent_m=8000.0,
            characteristic_length=6000.0,
            order=2,
            n_mechanisms=1,
            lam=1.0,
            n_clusters=2,
            n_cycles=2,
        ).with_overrides(kernels="ref", precision="f64", n_fused=2)
        from dataclasses import replace

        slots = (
            FusedSourceSpec(moment_scale=1.0),
            FusedSourceSpec(
                moment_scale=0.5,
                time_function=dict(kind="ricker", params={"f0": 2.0, "t0": 0.6}),
            ),
        )
        fused_spec = replace(spec, source=replace(spec.source, fused=slots))
        runner = ScenarioRunner(fused_spec)
        summary = runner.run()
        assert summary["n_fused"] == 2
        diverged = False
        for receiver in runner.receivers.receivers:
            _, values = receiver.seismogram()
            assert values.shape[1:] == (3, 2)
            if np.any(values[..., 0] != values[..., 1]):
                diverged = True
        assert diverged


class TestFusedSourceSpec:
    def _base_source(self):
        return SourceSpec(
            kind="moment_tensor",
            location=(1.0, 2.0, -3.0),
            time_function=TimeFunctionSpec(kind="ricker", params={"f0": 2.0, "t0": 0.4}),
            moment_tensor=((0.0, 0.0, 1e9), (0.0, 0.0, 0.0), (1e9, 0.0, 0.0)),
        )

    def test_slot_applies_moment_scale_and_wavelet(self):
        source = SourceSpec(
            **{
                **self._base_source().__dict__,
                "fused": (
                    FusedSourceSpec(moment_scale=1.0),
                    FusedSourceSpec(
                        moment_scale=0.5,
                        time_function=dict(kind="ricker", params={"f0": 3.0, "t0": 0.7}),
                    ),
                ),
            }
        )
        slot0, slot1 = source.slot(0), source.slot(1)
        assert slot0.fused == () and slot1.fused == ()
        assert slot0.moment_tensor == source.moment_tensor
        assert slot1.moment_tensor[0][2] == 0.5 * source.moment_tensor[0][2]
        assert slot0.time_function == source.time_function
        assert slot1.time_function.params["f0"] == 3.0
        # location is shared: fused ensembles use one source element
        assert slot1.location == source.location

    def test_slot_labels_are_json_ready(self):
        source = SourceSpec(
            **{
                **self._base_source().__dict__,
                "fused": (FusedSourceSpec(), FusedSourceSpec(moment_scale=0.25)),
            }
        )
        labels = source.slot_labels()
        assert [label["slot"] for label in labels] == [0, 1]
        assert labels[1]["moment_scale"] == 0.25
        assert labels[1]["moment_tensor"][0][2] == 0.25e9
        import json

        json.dumps(labels)  # must already be JSON-native

    def test_fused_block_length_must_match_n_fused(self):
        spec = get_scenario("loh3", extent_m=8000.0, characteristic_length=6000.0)
        from dataclasses import replace

        with pytest.raises(ValueError, match="n_fused"):
            replace(
                spec.with_overrides(n_fused=3),
                source=replace(spec.source, fused=(FusedSourceSpec(), FusedSourceSpec())),
            )

    def test_fused_spec_round_trips_through_json(self):
        spec = get_scenario("loh3", extent_m=8000.0, characteristic_length=6000.0)
        from dataclasses import replace

        fused = replace(
            spec.with_overrides(n_fused=2),
            source=replace(
                spec.source,
                fused=(
                    FusedSourceSpec(moment_scale=0.9),
                    FusedSourceSpec(
                        moment_scale=0.8,
                        time_function=dict(kind="ricker", params={"f0": 2.5, "t0": 0.5}),
                    ),
                ),
            ),
        )
        again = ScenarioSpec.from_json(fused.to_json())
        assert again == fused
        assert again.source.fused[1].time_function == TimeFunctionSpec(
            kind="ricker", params={"f0": 2.5, "t0": 0.5}
        )

    def test_scalar_spec_serialisation_has_no_fused_key(self):
        """Scalar specs keep the pre-fused serialisation (golden fixtures)."""
        spec = get_scenario("loh3", extent_m=8000.0, characteristic_length=6000.0)
        assert "fused" not in spec.to_dict()["source"]
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_slot_validation(self):
        with pytest.raises(ValueError, match="finite"):
            FusedSourceSpec(moment_scale=float("nan"))
        base = self._base_source()
        with pytest.raises(ValueError, match="force"):
            SourceSpec(**{**base.__dict__, "fused": (FusedSourceSpec(force=(1.0, 0.0, 0.0)),)})

"""Unit tests for viscoelastic attenuation (Q-fitting, coupling, Jacobian blocks)."""

import numpy as np
import pytest

from repro.equations.anelastic import (
    anelastic_jacobians,
    anelastic_lame_parameters,
    anelastic_star_matrices,
    coupling_matrices,
    fit_constant_q,
    n_anelastic_vars,
    quality_factor_of_spectrum,
)


class TestConstantQFit:
    def test_paper_variable_count(self):
        # three mechanisms -> 18 memory variables -> 27 total variables
        assert n_anelastic_vars(3) == 18

    @pytest.mark.parametrize("q_target", [40.0, 69.3, 120.0, 155.9])
    def test_fitted_q_is_flat_over_band(self, q_target):
        spectrum = fit_constant_q((0.1, 10.0), n_mechanisms=3)
        y = spectrum.coefficients(q_target)[0] if np.ndim(q_target) else spectrum.coefficients(
            np.array([q_target])
        )[0]
        freqs = np.logspace(np.log10(0.12), np.log10(8.0), 40)
        q_realised = quality_factor_of_spectrum(spectrum.omegas, y, freqs)
        # within ~12 % of the target across the band (3 mechanisms, constant-Q fit)
        assert np.all(np.abs(q_realised - q_target) / q_target < 0.12)

    def test_infinite_q_gives_zero_coefficients(self):
        spectrum = fit_constant_q((0.1, 10.0), n_mechanisms=3)
        y = spectrum.coefficients(np.array([np.inf]))
        np.testing.assert_array_equal(y, 0.0)

    def test_relaxation_frequencies_span_band(self):
        spectrum = fit_constant_q((0.5, 5.0), n_mechanisms=3)
        assert spectrum.omegas[0] == pytest.approx(2 * np.pi * 0.5)
        assert spectrum.omegas[-1] == pytest.approx(2 * np.pi * 5.0)
        assert np.all(np.diff(spectrum.omegas) > 0)

    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            fit_constant_q((0.0, 1.0))
        with pytest.raises(ValueError):
            fit_constant_q((2.0, 1.0))
        with pytest.raises(ValueError):
            fit_constant_q((0.1, 1.0), n_mechanisms=0)

    def test_more_mechanisms_fit_better(self):
        freqs = np.logspace(np.log10(0.15), np.log10(8.0), 50)
        errors = []
        for m in (2, 3, 5):
            spectrum = fit_constant_q((0.1, 10.0), n_mechanisms=m)
            y = spectrum.coefficients(np.array([50.0]))[0]
            q = quality_factor_of_spectrum(spectrum.omegas, y, freqs)
            errors.append(np.max(np.abs(q - 50.0) / 50.0))
        assert errors[2] < errors[0]


class TestAnelasticModuli:
    def test_shapes(self):
        spectrum = fit_constant_q((0.1, 10.0), n_mechanisms=3)
        lam = np.array([2.08e10, 1.0e10])
        mu = np.array([3.24e10, 1.0e10])
        qp = np.array([155.9, 120.0])
        qs = np.array([69.3, 40.0])
        lam_a, mu_a = anelastic_lame_parameters(lam, mu, qp, qs, spectrum)
        assert lam_a.shape == (2, 3) and mu_a.shape == (2, 3)
        assert np.all(mu_a > 0)

    def test_lambda_combination(self):
        """lam_a must satisfy lam_a + 2 mu_a = (lam + 2 mu) * Y_p."""
        spectrum = fit_constant_q((0.1, 10.0), n_mechanisms=3)
        lam = np.array([2.08e10])
        mu = np.array([3.24e10])
        qp = np.array([100.0])
        qs = np.array([50.0])
        lam_a, mu_a = anelastic_lame_parameters(lam, mu, qp, qs, spectrum)
        y_p = spectrum.coefficients(qp)
        np.testing.assert_allclose(lam_a + 2 * mu_a, (lam + 2 * mu)[:, None] * y_p)

    def test_coupling_matrix_structure(self):
        lam_a = np.array([[1.0, 2.0]])
        mu_a = np.array([[3.0, 4.0]])
        e = coupling_matrices(lam_a, mu_a)
        assert e.shape == (1, 2, 9, 6)
        # velocity rows carry no coupling
        np.testing.assert_array_equal(e[:, :, 6:, :], 0.0)
        # normal stress diagonal: -(lam_a + 2 mu_a)
        np.testing.assert_allclose(e[0, 0, 0, 0], -(1.0 + 2 * 3.0))
        np.testing.assert_allclose(e[0, 1, 1, 1], -(2.0 + 2 * 4.0))
        # shear rows: -2 mu_a on the diagonal
        np.testing.assert_allclose(e[0, 0, 3, 3], -6.0)
        np.testing.assert_allclose(e[0, 0, 4, 4], -6.0)

    def test_coupling_shape_validation(self):
        with pytest.raises(ValueError):
            coupling_matrices(np.zeros(3), np.zeros(3))


class TestAnelasticJacobians:
    def test_strain_rate_extraction(self):
        """Applying the (negated) anelastic Jacobians to a linear velocity field
        must produce the tensor strain rate."""
        jac = anelastic_jacobians()
        assert jac.shape == (3, 6, 9)
        # constant velocity gradient: du_i/dx_j = G_ij
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(3, 3))
        # assemble sum_d jac_d * q where q has velocities only; the derivative
        # d q / dx_d has velocity entries grad[:, d]
        strain_rate = np.zeros(6)
        for d in range(3):
            q_deriv = np.zeros(9)
            q_deriv[6:] = grad[:, d]
            strain_rate += -jac[d] @ q_deriv
        expected = np.array(
            [
                grad[0, 0],
                grad[1, 1],
                grad[2, 2],
                0.5 * (grad[0, 1] + grad[1, 0]),
                0.5 * (grad[1, 2] + grad[2, 1]),
                0.5 * (grad[0, 2] + grad[2, 0]),
            ]
        )
        np.testing.assert_allclose(strain_rate, expected, atol=1e-12)

    def test_stress_columns_are_zero(self):
        jac = anelastic_jacobians()
        np.testing.assert_array_equal(jac[:, :, :6], 0.0)

    def test_star_matrices_identity_map(self):
        star = anelastic_star_matrices(np.eye(3)[None])
        np.testing.assert_allclose(star[0], anelastic_jacobians())

    def test_star_matrices_scaling(self):
        star = anelastic_star_matrices((2.0 * np.eye(3))[None])
        np.testing.assert_allclose(star[0], 2.0 * anelastic_jacobians())


class TestGeneralizedMaxwellBodyODE:
    """Quantitative verification of the attenuation chain (Q-fit -> anelastic
    moduli -> coupling matrices -> relaxation sign) on the 0-D generalized
    Maxwell body ODE, independent of the mesh and kernels.

    For a harmonic shear strain rate forcing the stress lags the strain by a
    phase ``delta`` with ``tan(delta) ~= 1/Q``; integrating the exact ODE
    system that the solver discretises must reproduce the target Q.
    """

    @staticmethod
    def _measure_q(q_target: float, frequency: float) -> float:
        from scipy.integrate import solve_ivp

        spectrum = fit_constant_q((0.1, 10.0), n_mechanisms=3)
        mu = 1.0  # normalised shear modulus
        lam = 1.0
        lam_a, mu_a = anelastic_lame_parameters(
            np.array([lam]), np.array([mu]), np.array([np.inf]), np.array([q_target]), spectrum
        )
        mu_a = mu_a[0]
        omega = 2 * np.pi * frequency

        # state: [sigma_xy, zeta_1, zeta_2, zeta_3] under eps_xy(t) = sin(w t)
        def rhs(t, y):
            deps = omega * np.cos(omega * t)
            dsigma = 2 * mu * deps - np.sum(2 * mu_a * y[1:])
            dzeta = spectrum.omegas * deps - spectrum.omegas * y[1:]
            return np.concatenate([[dsigma], dzeta])

        t_end = 12.0 / frequency
        sol = solve_ivp(rhs, (0.0, t_end), np.zeros(4), max_step=0.01 / frequency, rtol=1e-8)
        t, sigma = sol.t, sol.y[0]
        # use the last few cycles (steady state) and fit amplitude/phase
        mask = t > t_end - 4.0 / frequency
        t_fit, s_fit = t[mask], sigma[mask]
        design = np.column_stack([np.sin(omega * t_fit), np.cos(omega * t_fit)])
        a, b = np.linalg.lstsq(design, s_fit, rcond=None)[0]
        # dissipative response: sigma = A sin(w t + delta) leads the strain,
        # with tan(delta) = Im(M)/Re(M) = 1/Q; a = A cos(delta), b = A sin(delta)
        delta = np.arctan2(b, a)
        return 1.0 / np.tan(delta)

    @pytest.mark.parametrize("q_target", [20.0, 50.0])
    def test_measured_q_matches_target(self, q_target):
        for frequency in (0.5, 2.0):
            q_measured = self._measure_q(q_target, frequency)
            assert q_measured > 0, "stress must lead the strain (dissipative phase)"
            assert abs(q_measured - q_target) / q_target < 0.2, (
                f"Q mismatch at {frequency} Hz: target {q_target}, measured {q_measured:.1f}"
            )

"""Unit tests for material models."""

import numpy as np
import pytest

from repro.equations.material import ElasticMaterial, MaterialTable, ViscoelasticMaterial


class TestElasticMaterial:
    def test_lame_parameters(self):
        mat = ElasticMaterial(rho=2700.0, vp=6000.0, vs=3464.0)
        np.testing.assert_allclose(mat.mu, 2700.0 * 3464.0**2)
        np.testing.assert_allclose(mat.lam, 2700.0 * (6000.0**2 - 2 * 3464.0**2))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ElasticMaterial(rho=-1.0, vp=6000.0, vs=3464.0)
        with pytest.raises(ValueError):
            ElasticMaterial(rho=2700.0, vp=2000.0, vs=3464.0)

    def test_viscoelastic_quality_factors(self):
        mat = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        assert mat.qp == 120.0 and mat.qs == 40.0
        with pytest.raises(ValueError):
            ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=-1.0, qs=40.0)


class TestMaterialTable:
    def test_homogeneous_table(self):
        mat = ViscoelasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0, qp=120.0, qs=40.0)
        table = MaterialTable.homogeneous(mat, 10)
        assert table.n_elements == 10
        np.testing.assert_allclose(table.vp, 4000.0)
        np.testing.assert_allclose(table.qs, 40.0)
        assert table.is_attenuating()

    def test_elastic_table_is_not_attenuating(self):
        mat = ElasticMaterial(rho=2600.0, vp=4000.0, vs=2000.0)
        table = MaterialTable.homogeneous(mat, 5)
        assert not table.is_attenuating()

    def test_lame_arrays(self):
        table = MaterialTable(
            rho=np.array([2600.0, 2700.0]),
            vp=np.array([4000.0, 6000.0]),
            vs=np.array([2000.0, 3464.0]),
        )
        np.testing.assert_allclose(table.mu, table.rho * table.vs**2)
        np.testing.assert_allclose(table.lam, table.rho * (table.vp**2 - 2 * table.vs**2))
        np.testing.assert_allclose(table.max_wave_speed, table.vp)

    def test_validation(self):
        with pytest.raises(ValueError):
            MaterialTable(rho=np.array([1.0]), vp=np.array([1.0, 2.0]), vs=np.array([0.5]))
        with pytest.raises(ValueError):
            MaterialTable(rho=np.array([2600.0]), vp=np.array([2000.0]), vs=np.array([3000.0]))
        with pytest.raises(ValueError):
            MaterialTable(
                rho=np.array([2600.0]),
                vp=np.array([4000.0]),
                vs=np.array([2000.0]),
                qp=np.array([0.0]),
                qs=np.array([40.0]),
            )

    def test_subset(self):
        table = MaterialTable(
            rho=np.array([2600.0, 2700.0, 2800.0]),
            vp=np.array([4000.0, 6000.0, 6500.0]),
            vs=np.array([2000.0, 3464.0, 3700.0]),
            qp=np.array([120.0, 155.9, 200.0]),
            qs=np.array([40.0, 69.3, 100.0]),
        )
        sub = table.subset(np.array([2, 0]))
        np.testing.assert_allclose(sub.vp, [6500.0, 4000.0])
        np.testing.assert_allclose(sub.qs, [100.0, 40.0])

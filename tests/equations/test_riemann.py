"""Unit tests for rotation matrices, upwind splits and flux solver matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equations.elastic import elastic_jacobians
from repro.equations.riemann import (
    absorbing_ghost_operator,
    anelastic_normal_jacobian,
    elastic_normal_jacobian,
    elastic_rotation_matrix,
    elastic_upwind_split,
    free_surface_ghost_operator,
    godunov_flux_matrices,
    rusanov_flux_matrices,
    stress_rotation_matrix,
    tangent_vectors,
)

LAM, MU, RHO = 2.08e10, 3.24e10, 2700.0


def _random_unit_vectors(n, seed=0):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=(n, 3))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


class TestRotations:
    def test_tangents_form_orthonormal_frame(self):
        normals = _random_unit_vectors(20)
        s, t = tangent_vectors(normals)
        np.testing.assert_allclose(np.einsum("nd,nd->n", normals, s), 0.0, atol=1e-12)
        np.testing.assert_allclose(np.einsum("nd,nd->n", normals, t), 0.0, atol=1e-12)
        np.testing.assert_allclose(np.einsum("nd,nd->n", s, t), 0.0, atol=1e-12)
        np.testing.assert_allclose(np.linalg.norm(s, axis=1), 1.0)
        np.testing.assert_allclose(np.linalg.norm(t, axis=1), 1.0)

    def test_stress_rotation_matches_tensor_rotation(self):
        rng = np.random.default_rng(1)
        normals = _random_unit_vectors(5, seed=2)
        s, t = tangent_vectors(normals)
        rot = np.stack([normals, s, t], axis=-1)
        m = stress_rotation_matrix(rot)
        for i in range(5):
            sigma_vec = rng.normal(size=6)
            sigma = np.array(
                [
                    [sigma_vec[0], sigma_vec[3], sigma_vec[5]],
                    [sigma_vec[3], sigma_vec[1], sigma_vec[4]],
                    [sigma_vec[5], sigma_vec[4], sigma_vec[2]],
                ]
            )
            rotated = rot[i] @ sigma @ rot[i].T
            expected_vec = np.array(
                [rotated[0, 0], rotated[1, 1], rotated[2, 2], rotated[0, 1], rotated[1, 2], rotated[0, 2]]
            )
            np.testing.assert_allclose(m[i] @ sigma_vec, expected_vec, atol=1e-10)

    def test_rotation_matrix_inverse(self):
        normals = _random_unit_vectors(10, seed=3)
        t_mat, t_inv = elastic_rotation_matrix(normals)
        identity = np.einsum("nij,njk->nik", t_mat, t_inv)
        np.testing.assert_allclose(identity, np.broadcast_to(np.eye(9), (10, 9, 9)), atol=1e-12)

    def test_normal_jacobian_via_rotation(self):
        """T A_x T^{-1} must equal n_x A + n_y B + n_z C (isotropy)."""
        normals = _random_unit_vectors(6, seed=4)
        for n in normals:
            t_mat, t_inv = elastic_rotation_matrix(n)
            a1 = elastic_jacobians(LAM, MU, RHO)[0]
            rotated = t_mat @ a1 @ t_inv
            direct = elastic_normal_jacobian(LAM, MU, RHO, n)
            np.testing.assert_allclose(rotated, direct, rtol=1e-9, atol=1e-3)


class TestUpwindSplit:
    def test_split_sums_to_jacobian(self):
        plus, minus = elastic_upwind_split(LAM, MU, RHO)
        np.testing.assert_allclose(plus + minus, elastic_jacobians(LAM, MU, RHO)[0], atol=1e-4)

    def test_split_signs(self):
        plus, minus = elastic_upwind_split(LAM, MU, RHO)
        assert np.all(np.real(np.linalg.eigvals(plus)) > -1e-6)
        assert np.all(np.real(np.linalg.eigvals(minus)) < 1e-6)


class TestFluxMatrices:
    @pytest.mark.parametrize("builder", [rusanov_flux_matrices, godunov_flux_matrices])
    def test_consistency_with_normal_jacobian(self, builder):
        """For equal states on both sides the numerical flux must reduce to the
        physical normal flux (consistency of the Riemann solver)."""
        normals = _random_unit_vectors(4, seed=5)
        rng = np.random.default_rng(6)
        for n in normals:
            g_local, g_neigh = builder(LAM, MU, RHO, LAM, MU, RHO, n)
            an = elastic_normal_jacobian(LAM, MU, RHO, n)
            q = rng.normal(size=9)
            np.testing.assert_allclose(
                g_local @ q + g_neigh @ q, an @ q, rtol=1e-8, atol=1e-3 * np.abs(an @ q).max()
            )

    def test_godunov_equals_upwind_for_1d(self):
        n = np.array([1.0, 0.0, 0.0])
        g_local, g_neigh = godunov_flux_matrices(LAM, MU, RHO, LAM, MU, RHO, n)
        plus, minus = elastic_upwind_split(LAM, MU, RHO)
        np.testing.assert_allclose(g_local, plus, atol=1e-4)
        np.testing.assert_allclose(g_neigh, minus, atol=1e-4)

    def test_rusanov_is_dissipative(self):
        """The Rusanov local matrix minus half the normal Jacobian is positive
        semi-definite (s/2 I)."""
        n = np.array([0.0, 0.0, 1.0])
        g_local, g_neigh = rusanov_flux_matrices(LAM, MU, RHO, LAM, MU, RHO, n)
        an = elastic_normal_jacobian(LAM, MU, RHO, n)
        vp = np.sqrt((LAM + 2 * MU) / RHO)
        np.testing.assert_allclose(g_local - 0.5 * an, 0.5 * vp * np.eye(9), atol=1e-6)
        np.testing.assert_allclose(g_neigh - 0.5 * an, -0.5 * vp * np.eye(9), atol=1e-6)

    def test_anelastic_normal_jacobian_shape(self):
        normals = _random_unit_vectors(7, seed=8)
        an = anelastic_normal_jacobian(normals)
        assert an.shape == (7, 6, 9)
        np.testing.assert_array_equal(an[..., :6], 0.0)


class TestGhostOperators:
    def test_absorbing_is_identity(self):
        np.testing.assert_array_equal(absorbing_ghost_operator(np.array([0, 0, 1.0])), np.eye(9))

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_free_surface_is_involution(self, seed):
        n = _random_unit_vectors(1, seed=seed)[0]
        g = free_surface_ghost_operator(n)
        np.testing.assert_allclose(g @ g, np.eye(9), atol=1e-10)

    def test_free_surface_cancels_traction(self):
        """The average of interior and ghost state has zero traction."""
        n = _random_unit_vectors(1, seed=3)[0]
        g = free_surface_ghost_operator(n)
        rng = np.random.default_rng(0)
        q = rng.normal(size=9)
        avg = 0.5 * (q + g @ q)
        sigma = np.array(
            [
                [avg[0], avg[3], avg[5]],
                [avg[3], avg[1], avg[4]],
                [avg[5], avg[4], avg[2]],
            ]
        )
        traction = sigma @ n
        np.testing.assert_allclose(traction, 0.0, atol=1e-10)

    def test_free_surface_keeps_velocities(self):
        n = np.array([0.0, 0.0, 1.0])
        g = free_surface_ghost_operator(n)
        q = np.zeros(9)
        q[6:] = [1.0, 2.0, 3.0]
        np.testing.assert_allclose((g @ q)[6:], [1.0, 2.0, 3.0], atol=1e-12)

"""Unit tests for the elastic Jacobians and star matrices."""

import numpy as np
import pytest

from repro.equations.elastic import (
    elastic_jacobians,
    elastic_star_matrices,
    wave_speeds,
)
from repro.equations.elastic import elastic_jacobians_batch

LAM, MU, RHO = 2.08e10, 3.24e10, 2700.0


class TestElasticJacobians:
    def test_shapes_and_sparsity(self):
        jac = elastic_jacobians(LAM, MU, RHO)
        assert jac.shape == (3, 9, 9)
        # each Jacobian has exactly 9 non-zero entries minus the missing shear row
        assert np.count_nonzero(jac[0]) == 8
        assert np.count_nonzero(jac[1]) == 8
        assert np.count_nonzero(jac[2]) == 8

    def test_eigenvalues_are_wave_speeds(self):
        jac = elastic_jacobians(LAM, MU, RHO)
        vp = np.sqrt((LAM + 2 * MU) / RHO)
        vs = np.sqrt(MU / RHO)
        for d in range(3):
            eigvals = np.sort(np.real(np.linalg.eigvals(jac[d])))
            expected = np.sort([-vp, -vs, -vs, 0.0, 0.0, 0.0, vs, vs, vp])
            np.testing.assert_allclose(eigvals, expected, rtol=1e-9, atol=1e-6)

    def test_plane_wave_consistency(self):
        """A plane P-wave in x-direction must satisfy the dispersion relation:
        the vector (sigma, v) built from the analytic P-wave is an eigenvector
        of A with eigenvalue vp."""
        jac = elastic_jacobians(LAM, MU, RHO)[0]
        vp = np.sqrt((LAM + 2 * MU) / RHO)
        # q(x, t) = q0 * f(x - vp t): with u = 1, sigma_xx = -rho vp, sigma_yy = sigma_zz = -lam/vp... derive:
        # from the PDE, q0 must satisfy (A - vp I) q0 = 0.
        q0 = np.array([-(LAM + 2 * MU) / vp, -LAM / vp, -LAM / vp, 0, 0, 0, 1.0, 0, 0])
        residual = jac @ q0 - vp * q0
        np.testing.assert_allclose(residual, 0.0, atol=1e-6 * vp)

    def test_batch_matches_single(self):
        lam = np.array([LAM, 1e9])
        mu = np.array([MU, 2e9])
        rho = np.array([RHO, 2000.0])
        batch = elastic_jacobians_batch(lam, mu, rho)
        for k in range(2):
            np.testing.assert_allclose(batch[k], elastic_jacobians(lam[k], mu[k], rho[k]))

    def test_invalid_density_raises(self):
        with pytest.raises(ValueError):
            elastic_jacobians(LAM, MU, 0.0)


class TestStarMatrices:
    def test_identity_map_returns_jacobians(self):
        inv_jac = np.eye(3)[None, :, :]
        star = elastic_star_matrices(inv_jac, np.array([LAM]), np.array([MU]), np.array([RHO]))
        np.testing.assert_allclose(star[0], elastic_jacobians(LAM, MU, RHO))

    def test_scaled_map(self):
        """For x = 2 xi the star matrix in direction xi is A / 2 ... actually
        dxi/dx = 1/2 so Astar = A * 0.5."""
        inv_jac = (0.5 * np.eye(3))[None, :, :]
        star = elastic_star_matrices(inv_jac, np.array([LAM]), np.array([MU]), np.array([RHO]))
        np.testing.assert_allclose(star[0], 0.5 * elastic_jacobians(LAM, MU, RHO))

    def test_rotated_map_mixes_directions(self):
        # swap x and y axes: xi_1 = y, xi_2 = x
        inv_jac = np.array([[[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]])
        star = elastic_star_matrices(inv_jac, np.array([LAM]), np.array([MU]), np.array([RHO]))
        jac = elastic_jacobians(LAM, MU, RHO)
        np.testing.assert_allclose(star[0, 0], jac[1])
        np.testing.assert_allclose(star[0, 1], jac[0])


class TestWaveSpeeds:
    def test_roundtrip(self):
        vp, vs = wave_speeds(np.array([LAM]), np.array([MU]), np.array([RHO]))
        np.testing.assert_allclose(vp, np.sqrt((LAM + 2 * MU) / RHO))
        np.testing.assert_allclose(vs, np.sqrt(MU / RHO))

"""Slot-wise bit-identity of fused ensembles with distinct per-slot sources.

The fused axis is only trustworthy if it is *transparent*: slot ``f`` of an
F-wide fused run must reproduce the standalone scalar run of source ``f``
bit for bit (ref and opt kernels, f64), through the full LTS machinery --
serial and on the 2-rank process backend, whose halo payloads carry the
fused axis.  The halo traffic of a fused run must also match the F-scaled
exchange model exactly: fused ensembles amortize *messages*, never bytes.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.distributed import DistributedRunner, ProcessLtsEngine
from repro.scenarios import FusedSourceSpec, ScenarioRunner, get_scenario, make_runner

pytestmark = pytest.mark.distributed

WIDTH = 4


@pytest.fixture(scope="module")
def fused_loh3():
    """A small 2-cluster LOH.3 variant with 4 genuinely distinct slots."""
    spec = get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=3,
    )
    slots = tuple(
        FusedSourceSpec(
            moment_scale=1.0 - 0.15 * f,
            time_function=dict(kind="ricker", params={"f0": 2.0, "t0": 0.4 + 0.05 * f}),
        )
        for f in range(WIDTH)
    )
    return replace(
        spec.with_overrides(n_fused=WIDTH, precision="f64"),
        source=replace(spec.source, fused=slots),
    )


def _scalar_slot_spec(fused_spec, f):
    """The standalone scalar spec of fused slot ``f``."""
    return replace(
        fused_spec,
        source=fused_spec.source.slot(f),
        solver=replace(fused_spec.solver, n_fused=0),
    )


class TestSerialSlotIdentity:
    @pytest.mark.parametrize("kernels", ["ref", "opt"])
    def test_each_slot_bit_identical_to_scalar_run(self, fused_loh3, kernels):
        spec = fused_loh3.with_overrides(kernels=kernels)
        fused = ScenarioRunner(spec)
        summary = fused.run()
        assert summary["n_fused"] == WIDTH
        for f in range(WIDTH):
            scalar = ScenarioRunner(_scalar_slot_spec(spec, f))
            scalar.run()
            np.testing.assert_array_equal(fused.solver.dofs[..., f], scalar.solver.dofs)
            for receiver in scalar.receivers.receivers:
                t_s, v_s = receiver.seismogram()
                t_f, v_f = fused.receivers[receiver.name].seismogram()
                np.testing.assert_array_equal(t_f, t_s)
                np.testing.assert_array_equal(v_f[..., f], v_s)

    def test_slots_are_genuinely_distinct(self, fused_loh3):
        fused = ScenarioRunner(fused_loh3.with_overrides(kernels="ref"))
        fused.run()
        dofs = fused.solver.dofs
        for f in range(1, WIDTH):
            assert np.any(dofs[..., f] != dofs[..., 0])


class TestProcessBackendSlotIdentity:
    @pytest.fixture(scope="class")
    def process_run(self, fused_loh3):
        spec = fused_loh3.with_overrides(kernels="ref", n_ranks=2, backend="process")
        runner = make_runner(spec)
        assert isinstance(runner, DistributedRunner)
        assert isinstance(runner.engine, ProcessLtsEngine)
        summary = runner.run()
        return runner, summary

    def test_each_slot_bit_identical_to_scalar_single_rank(
        self, fused_loh3, process_run
    ):
        process, summary = process_run
        assert summary["n_fused"] == WIDTH
        for f in range(WIDTH):
            scalar = ScenarioRunner(
                _scalar_slot_spec(fused_loh3.with_overrides(kernels="ref"), f)
            )
            scalar.run()
            np.testing.assert_array_equal(
                process.solver.dofs[..., f], scalar.solver.dofs
            )
            for receiver in scalar.receivers.receivers:
                t_s, v_s = receiver.seismogram()
                t_p, v_p = process.receivers[receiver.name].seismogram()
                np.testing.assert_array_equal(t_p, t_s)
                np.testing.assert_array_equal(v_p[..., f], v_s)

    def test_measured_halo_bytes_match_f_scaled_model(self, fused_loh3, process_run):
        _, summary = process_run
        model = summary["comm"]["model"]
        assert summary["comm"]["measured_bytes_per_cycle"] == model["total_bytes"]
        assert summary["comm"]["measured_messages_per_cycle"] == model["n_messages"]

        # the model itself must scale exactly with F over the scalar run:
        # fused halos carry F times the bytes in the same number of messages
        scalar_spec = _scalar_slot_spec(fused_loh3.with_overrides(kernels="ref"), 0)
        scalar = make_runner(scalar_spec.with_overrides(n_ranks=2, backend="process"))
        scalar_summary = scalar.run()
        scalar_model = scalar_summary["comm"]["model"]
        assert model["total_bytes"] == WIDTH * scalar_model["total_bytes"]
        assert model["n_messages"] == scalar_model["n_messages"]
        assert (
            summary["comm"]["measured_bytes_per_cycle"]
            == WIDTH * scalar_summary["comm"]["measured_bytes_per_cycle"]
        )
        assert (
            summary["comm"]["measured_messages_per_cycle"]
            == scalar_summary["comm"]["measured_messages_per_cycle"]
        )

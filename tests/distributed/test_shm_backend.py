"""Tests of the shared-memory halo transport wired through the full stack.

The central claims:

* a ``--comm shm`` process-backend run (payloads written in place into
  per-rank-pair shared-memory rings, queues carrying only tokens) produces
  DOFs, seismograms, element-update counts and per-pair measured traffic
  bit-identical to the serial backend, the single-rank runner *and* the
  queue transport, for 2 and 4 ranks, with measured traffic exactly equal
  to ``exchange_volumes_per_cycle``,
* segment lifetime is airtight: rings exist exactly while workers are
  alive, ``close()``/``_terminate()``/respawn unlink them (including the
  crash path after a SIGKILLed worker), and nothing is left in
  ``/dev/shm``, and
* the spec/CLI surface round-trips ``solver.comm``/``solver.comm_timeout``
  and rejects invalid combinations.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.distributed import ProcessLtsEngine
from repro.distributed.process_engine import _ORPHAN_POLL_S, _reap_stale_segments
from repro.parallel.shm_comm import create_ring_segment
from repro.scenarios import ScenarioRunner, ScenarioSpec, make_runner
from repro.scenarios.cli import main as cli_main

from .conftest import assert_cross_rank_equal
from .test_process_backend import tiny_loh3, single_run, serial_run  # noqa: F401

pytestmark = pytest.mark.distributed


def _repro_segments() -> list[str]:
    """Names of this repo's shm segments currently backing files in /dev/shm."""
    return sorted(glob.glob("/dev/shm/repro-*"))


class TestBitIdentity:
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_shm_matches_serial_single_rank_and_queue(
        self, tiny_loh3, single_run, n_ranks  # noqa: F811
    ):
        spec = tiny_loh3.with_overrides(n_ranks=n_ranks, backend="process")
        queue_runner = make_runner(spec)
        queue_summary = queue_runner.run()
        before = _repro_segments()
        shm_runner = make_runner(spec.with_overrides(comm="shm"))
        assert isinstance(shm_runner.engine, ProcessLtsEngine)
        assert shm_runner.engine.comm_kind == "shm"
        shm_summary = shm_runner.run()

        np.testing.assert_array_equal(
            shm_runner.solver.dofs, queue_runner.solver.dofs
        )
        assert_cross_rank_equal(shm_runner.solver.dofs, single_run.solver.dofs)
        assert np.abs(shm_runner.solver.dofs).max() > 0.0, "the run must move"
        assert (
            shm_summary["element_updates"]
            == queue_summary["element_updates"]
            == single_run.solver.n_element_updates
        )
        for name in ("receiver_9", "epicentre"):
            t_single, v_single = single_run.receivers[name].seismogram()
            t_shm, v_shm = shm_runner.receivers[name].seismogram()
            np.testing.assert_array_equal(t_shm, t_single)
            assert_cross_rank_equal(v_shm, v_single)
        # byte accounting: identical to the queue transport, entry by entry,
        # and exactly equal to the exchange model per cycle
        assert shm_summary["comm"]["per_pair"] == queue_summary["comm"]["per_pair"]
        model = shm_summary["comm"]["model"]
        cycles = shm_summary["comm"]["cycles_measured"]
        assert shm_summary["comm"]["measured_bytes_per_cycle"] == model["total_bytes"]
        for pair, per_cycle in model["per_pair"].items():
            assert (
                shm_summary["comm"]["per_pair"][pair]["bytes"] == per_cycle * cycles
            )
        assert shm_summary["comm"]["transport"] == "shm"
        assert queue_summary["comm"]["transport"] == "queue"
        json.dumps(shm_summary)  # embeds without a custom encoder
        # the run released every segment it created
        assert _repro_segments() == before


class TestSegmentLifecycle:
    def test_segments_live_with_the_workers(self, tiny_loh3):  # noqa: F811
        before = _repro_segments()
        runner = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, backend="process", comm="shm")
        )
        engine = runner.engine
        created = set(_repro_segments()) - set(before)
        # one ring per directed pair named by the exchange model
        assert len(created) == len(engine.modelled_exchange_per_cycle()["per_pair"])
        runner.step_cycle()
        engine.close()
        assert _repro_segments() == before  # close() unlinked everything
        # a respawn creates a fresh generation...
        runner.step_cycle()
        respawned = set(_repro_segments()) - set(before)
        assert len(respawned) == len(created) and respawned != created
        # ...and continues bit-identically across the transport's respawn
        reference = make_runner(tiny_loh3.with_overrides(n_ranks=2))
        reference.step_cycle()
        reference.step_cycle()
        np.testing.assert_array_equal(engine.dofs, reference.solver.dofs)
        assert engine.stats.n_messages == reference.engine.stats.n_messages
        engine.close()
        assert _repro_segments() == before

    def test_sigkilled_worker_leaves_no_segments(self, tiny_loh3):  # noqa: F811
        before = _repro_segments()
        runner = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, backend="process", comm="shm")
        )
        engine = runner.engine
        runner.step_cycle()
        assert set(_repro_segments()) > set(before)
        # SIGKILL one worker: no atexit, no finally blocks, no detach
        engine._procs[0].kill()
        engine._procs[0].join()
        with pytest.raises(RuntimeError, match="worker"):
            runner.step_cycle()
        # the failure path tore the fabric down: no leaked segments
        assert _repro_segments() == before

    def test_stale_segments_of_dead_owners_are_reaped(self):
        # a whole-process-group SIGKILL takes out parent, workers AND the
        # resource tracker, so rings survive in /dev/shm; the reaper (run
        # at every engine start) reclaims rings whose embedded pid is dead
        dead_pid = int(
            subprocess.run(
                [sys.executable, "-c", "import os; print(os.getpid())"],
                capture_output=True,
                text=True,
                check=True,
            ).stdout
        )
        orphaned = create_ring_segment(f"repro-{dead_pid}-feed-0to1", 1 << 16)
        orphaned.close()
        alive = create_ring_segment(f"repro-{os.getpid()}-cafe-0to1", 1 << 16)
        unparseable = create_ring_segment("repro-test-suite-0to1", 1 << 16)
        try:
            reaped = _reap_stale_segments()
            assert f"repro-{dead_pid}-feed-0to1" in reaped
            survivors = _repro_segments()
            # a live owner's ring and names without an embedded pid survive
            assert f"/dev/shm/repro-{os.getpid()}-cafe-0to1" in survivors
            assert "/dev/shm/repro-test-suite-0to1" in survivors
            assert f"/dev/shm/repro-{dead_pid}-feed-0to1" not in survivors
        finally:
            for segment in (alive, unparseable):
                segment.close()
                segment.unlink()

    def test_workers_self_exit_after_parent_sigkill(self, tmp_path):
        # fork-inherited peer pipe fds mean a SIGKILLed parent produces no
        # EOF on ctrl.recv(); the workers' orphan poll must notice the
        # reparenting and exit instead of lingering forever
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "run", "loh3",
                "--set", "extent_m=4000.0",
                "--set", "characteristic_length=2000.0",
                "--set", "n_mechanisms=1",
                "--order", "2", "--clusters", "2", "--lambda", "0.8",
                "--cycles", "500", "--ranks", "2",
                "--backend", "process", "--comm", "shm",
                "--output-dir", str(tmp_path / "orphan"), "--quiet",
            ]
        )

        def workers() -> list[int]:
            found = []
            for entry in os.listdir("/proc"):
                if not entry.isdigit():
                    continue
                try:
                    stat = open(f"/proc/{entry}/stat").read()
                except OSError:
                    continue
                if int(stat.rsplit(")", 1)[1].split()[1]) == proc.pid:
                    found.append(int(entry))
            return found

        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and len(workers()) < 2:
            assert proc.poll() is None, f"run exited early rc {proc.returncode}"
            time.sleep(0.1)
        worker_pids = workers()
        # the scan also catches the resource tracker (a third child); all of
        # them must exit -- the tracker's pipe closes once the workers die.
        # capture the pids while the parent lives: once it dies the workers
        # reparent and the ppid scan can no longer find them
        assert len(worker_pids) >= 2, "workers never appeared"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        orphan_deadline = time.monotonic() + 6 * _ORPHAN_POLL_S

        def pids_alive(pids) -> list[int]:
            live = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                live.append(pid)
            return live

        while time.monotonic() < orphan_deadline and pids_alive(worker_pids):
            time.sleep(0.5)
        assert pids_alive(worker_pids) == [], "orphaned workers never exited"
        # with parent and workers gone the resource tracker (or the next
        # engine start's reaper) reclaims the rings
        tracker_deadline = time.monotonic() + 30.0
        while time.monotonic() < tracker_deadline and _repro_segments():
            time.sleep(0.5)
        if _repro_segments():
            _reap_stale_segments()
        assert _repro_segments() == []

    def test_checkpoint_resumes_across_transports(
        self, tiny_loh3, serial_run, tmp_path  # noqa: F811
    ):
        path = tmp_path / "shm.ckpt.npz"
        interrupted = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, backend="process", comm="shm")
        )
        while interrupted.cycles_done < 2:
            interrupted.step_cycle()
        interrupted.save_checkpoint(path)
        interrupted.engine.close()
        del interrupted

        # transports are bit-identical, so a shm checkpoint continues under
        # queue (and under the serial backend, where comm resets to queue)
        resumed = ScenarioRunner.resume(path, comm="queue")
        assert resumed.spec.solver.comm == "queue"
        resumed.run()
        np.testing.assert_array_equal(resumed.solver.dofs, serial_run.solver.dofs)

        serial = ScenarioRunner.resume(path, backend="serial")
        assert serial.spec.solver.comm == "queue"
        serial.run()
        np.testing.assert_array_equal(serial.solver.dofs, serial_run.solver.dofs)


class TestSpecAndCli:
    def test_comm_round_trips_through_json(self, tiny_loh3):  # noqa: F811
        spec = tiny_loh3.with_overrides(
            n_ranks=2, backend="process", comm="shm", comm_timeout=30.0
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.solver.comm == "shm"
        assert spec.solver.comm_timeout == 30.0

    def test_shm_requires_the_process_backend(self, tiny_loh3):  # noqa: F811
        with pytest.raises(ValueError, match="requires backend='process'"):
            tiny_loh3.with_overrides(comm="shm")
        with pytest.raises(ValueError, match="requires backend='process'"):
            tiny_loh3.with_overrides(n_ranks=2, comm="shm")

    def test_unknown_comm_and_bad_timeout_rejected(self, tiny_loh3):  # noqa: F811
        with pytest.raises(ValueError, match="solver comm"):
            tiny_loh3.with_overrides(n_ranks=2, backend="process", comm="mpi")
        with pytest.raises(ValueError, match="comm_timeout"):
            tiny_loh3.with_overrides(
                n_ranks=2, backend="process", comm_timeout=0.0
            )

    def test_comm_timeout_reaches_both_transports(self, tiny_loh3):  # noqa: F811
        for comm in ("queue", "shm"):
            runner = make_runner(
                tiny_loh3.with_overrides(
                    n_ranks=2, backend="process", comm=comm, comm_timeout=33.0
                )
            )
            assert runner.engine.comm_timeout == 33.0
            runner.engine.close()

    def test_cli_run_with_shm_transport(self, tmp_path):
        out_dir = tmp_path / "out"
        before = _repro_segments()
        code = cli_main(
            [
                "run",
                "loh3",
                "--set", "extent_m=4000.0",
                "--set", "characteristic_length=2000.0",
                "--set", "n_mechanisms=1",
                "--order", "2",
                "--clusters", "2",
                "--lambda", "1.0",
                "--cycles", "1",
                "--ranks", "2",
                "--backend", "process",
                "--comm", "shm",
                "--comm-timeout", "45",
                "--output-dir", str(out_dir),
                "--quiet",
            ]
        )
        assert code == 0
        summary = json.loads((out_dir / "run_summary.json").read_text())
        assert summary["comm"]["transport"] == "shm"
        assert summary["comm"]["n_messages"] > 0
        assert _repro_segments() == before

"""Shared helpers of the distributed-engine test suite."""

import os

import numpy as np

#: the suite soaks under REPRO_KERNELS=<kind> on CI; the fast backend's GEMM
#: shapes follow the batch, so comparisons *across different rank counts*
#: (whose boundary/interior splits differ) are tolerance-equal instead of
#: bitwise under a fast session default.  Same-shape comparisons (process vs
#: serial at equal rank count, checkpoint resume) stay bitwise everywhere.
FAST_SESSION_DEFAULT = (os.environ.get("REPRO_KERNELS") == "fast")


def assert_cross_rank_equal(actual, desired):
    """Bitwise under the bit-exact kernel family, 1e-11-relative under fast."""
    if not FAST_SESSION_DEFAULT:
        np.testing.assert_array_equal(actual, desired)
        return
    actual = np.asarray(actual, dtype=np.float64)
    desired = np.asarray(desired, dtype=np.float64)
    scale = np.abs(desired).max()
    if scale == 0.0:
        np.testing.assert_array_equal(actual, desired)
    else:
        err = np.abs(actual - desired).max()
        assert err <= 1e-11 * scale, f"rel err {err / scale:.3e} > 1e-11"

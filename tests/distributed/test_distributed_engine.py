"""Integration tests of the distributed execution subsystem.

The central correctness claims:

* a 2- and a 4-rank LOH.3 run produces DOFs, receiver seismograms and
  element-update counts bit-identical to the single-rank runner,
* the run summary reports *measured* per-pair message counts/bytes that are
  exactly consistent with ``exchange_volumes_per_cycle``, embeddable in JSON
  without a custom encoder,
* distributed checkpoints use the single-rank format (interchangeable) and
  resume bit-identically through the spec's ``n_ranks`` dispatch, and
* the CLI drives distributed runs end-to-end via ``--ranks``.
"""

import json

import numpy as np
import pytest

from repro.distributed import DistributedLtsEngine, DistributedRunner
from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    make_runner,
    runner_class_for,
)
from repro.scenarios.cli import main as cli_main

from .conftest import assert_cross_rank_equal

pytestmark = pytest.mark.distributed


@pytest.fixture(scope="module")
def tiny_loh3():
    """A small 2-cluster LOH.3 variant exercising all buffer relations."""
    return get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=3,
    )


@pytest.fixture(scope="module")
def three_cluster():
    """A genuinely three-cluster scenario: a homogeneous box whose two-stage
    vertical refinement spreads the CFL steps over a factor > 4, so the halo
    carries every buffer relation (``B1``, ``B3``, ``B2``/``B1 - B2``)."""
    from repro.scenarios import (
        ClusteringSpec,
        DomainSpec,
        MaterialSpec,
        MeshSpec,
        RefinementSpec,
        RunSpec,
        SolverSpec,
        SourceSpec,
        TimeFunctionSpec,
        VelocityModelSpec,
    )

    spec = ScenarioSpec(
        name="three_scale_box",
        description="Two-stage refined homogeneous box (3 populated clusters)",
        domain=DomainSpec(extent=(0.0, 4000.0, 0.0, 4000.0, -4000.0, 0.0)),
        mesh=MeshSpec(
            mode="characteristic",
            characteristic_length=2000.0,
            refinements=(
                RefinementSpec(z_above=-2000.0, divide_by=2.5),
                RefinementSpec(z_above=-1000.0, divide_by=7.0),
            ),
            jitter=0.15,
            seed=0,
        ),
        velocity_model=VelocityModelSpec(
            kind="homogeneous", params={"rho": 2700.0, "vp": 6000.0, "vs": 3464.0}
        ),
        material=MaterialSpec(anelastic=False, n_mechanisms=0),
        order=2,
        source=SourceSpec(
            kind="moment_tensor",
            location=(2000.0, 2000.0, -2000.0),
            moment_tensor=((0.0, 1e15, 0.0), (1e15, 0.0, 0.0), (0.0, 0.0, 0.0)),
            time_function=TimeFunctionSpec(kind="ricker", params={"f0": 1.0, "t0": 1.2}),
        ),
        receivers=(("top", (2000.0, 2000.0, -1.0)),),
        clustering=ClusteringSpec(n_clusters=3, lam=1.0),
        solver=SolverSpec(kind="lts"),
        run=RunSpec(n_cycles=2),
    )
    return spec


@pytest.fixture(scope="module")
def single_run(tiny_loh3):
    runner = ScenarioRunner(tiny_loh3)
    runner.run()
    return runner


class TestBitIdentity:
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_dofs_seismograms_and_updates_match_single_rank(
        self, tiny_loh3, single_run, n_ranks
    ):
        runner = make_runner(tiny_loh3.with_overrides(n_ranks=n_ranks))
        assert isinstance(runner, DistributedRunner)
        assert runner.engine.n_ranks == n_ranks
        summary = runner.run()

        assert_cross_rank_equal(runner.solver.dofs, single_run.solver.dofs)
        assert np.abs(runner.solver.dofs).max() > 0.0, "the run must move"
        assert summary["element_updates"] == single_run.solver.n_element_updates
        assert runner.solver.time == single_run.solver.time
        for name in ("receiver_9", "epicentre"):
            t_single, v_single = single_run.receivers[name].seismogram()
            t_dist, v_dist = runner.receivers[name].seismogram()
            np.testing.assert_array_equal(t_dist, t_single)
            assert_cross_rank_equal(v_dist, v_single)

    def test_three_clusters_four_ranks(self, three_cluster):
        single = ScenarioRunner(three_cluster)
        single.run()
        dist = make_runner(three_cluster.with_overrides(n_ranks=4))
        dist.run()
        assert_cross_rank_equal(dist.solver.dofs, single.solver.dofs)

    def test_fused_ensemble(self, tiny_loh3):
        spec = tiny_loh3.with_overrides(n_fused=2, n_cycles=2)
        single = ScenarioRunner(spec)
        single.run()
        dist = make_runner(spec.with_overrides(n_ranks=2))
        dist.run()
        assert_cross_rank_equal(dist.solver.dofs, single.solver.dofs)

    def test_preprocessed_partitions_are_reused(self, tiny_loh3):
        spec = tiny_loh3.with_overrides(n_partitions=2, reorder=True, n_ranks=2)
        dist = make_runner(spec)
        np.testing.assert_array_equal(
            dist.engine.partitions, dist.preprocessed.partitions
        )
        single = ScenarioRunner(spec.with_overrides(n_ranks=1))
        dist.run()
        single.run()
        assert_cross_rank_equal(dist.solver.dofs, single.solver.dofs)


class TestCommunicationAccounting:
    def test_measured_traffic_matches_exchange_model(self, three_cluster):
        runner = make_runner(three_cluster.with_overrides(n_ranks=2))
        summary = runner.run()
        comm = summary["comm"]
        model = comm["model"]

        assert comm["n_messages"] > 0
        assert comm["measured_bytes_per_cycle"] == model["total_bytes"]
        assert comm["measured_messages_per_cycle"] == model["n_messages"]
        assert set(comm["per_pair"]) == set(model["per_pair"])
        for pair, entry in comm["per_pair"].items():
            assert entry["bytes"] / summary["cycles"] == model["per_pair"][pair]

    def test_summary_is_json_serializable_without_custom_encoder(self, tiny_loh3):
        runner = make_runner(tiny_loh3.with_overrides(n_ranks=2, n_cycles=1))
        summary = runner.run()
        text = json.dumps(summary)  # would raise on tuple keys / numpy types
        assert "per_pair" in text

    def test_all_messages_delivered_every_cycle(self, tiny_loh3):
        runner = make_runner(tiny_loh3.with_overrides(n_ranks=2, n_cycles=1))
        runner.step_cycle()
        assert runner.engine.comm.all_delivered()


class TestSubdomains:
    def test_global_to_local_maps_partition_the_mesh(self, tiny_loh3):
        runner = make_runner(tiny_loh3.with_overrides(n_ranks=2))
        engine = runner.engine
        n_global = runner.setup.mesh.n_elements
        owned_union = np.concatenate([sub.owned for sub in engine.subdomains])
        assert sorted(owned_union.tolist()) == list(range(n_global))
        for sub in engine.subdomains:
            back = sub.local_of_global[sub.owned]
            np.testing.assert_array_equal(back, np.arange(sub.n_owned))
            # local operator arrays are gathered in owned order
            np.testing.assert_array_equal(
                sub.view.star_elastic, runner.setup.disc.star_elastic[sub.owned]
            )

    def test_send_schedule_covers_the_model_message_count(self, tiny_loh3):
        runner = make_runner(tiny_loh3.with_overrides(n_ranks=2))
        engine = runner.engine
        model = engine.modelled_exchange_per_cycle()
        planned = sum(
            len(batch.tags)
            for sub in engine.subdomains
            for batches in sub.send_schedule
            for batch in batches
        )
        assert planned == model["n_messages"]


class TestCheckpointRestart:
    def test_distributed_resume_is_bit_identical(self, tiny_loh3, tmp_path):
        spec = tiny_loh3.with_overrides(n_ranks=2)
        path = tmp_path / "dist.ckpt.npz"

        full = make_runner(spec)
        full.run()

        interrupted = make_runner(spec)
        while interrupted.cycles_done < 2:
            interrupted.step_cycle()
        interrupted.save_checkpoint(path)
        del interrupted

        resumed = ScenarioRunner.resume(path)
        assert isinstance(resumed, DistributedRunner)
        assert resumed.cycles_done == 2
        resumed.run()

        np.testing.assert_array_equal(resumed.solver.dofs, full.solver.dofs)
        assert resumed.solver.n_element_updates == full.solver.n_element_updates
        for name in ("receiver_9", "epicentre"):
            t_full, v_full = full.receivers[name].seismogram()
            t_res, v_res = resumed.receivers[name].seismogram()
            np.testing.assert_array_equal(t_res, t_full)
            np.testing.assert_array_equal(v_res, v_full)

    def test_checkpoint_format_is_single_rank_compatible(self, tiny_loh3, tmp_path):
        """A distributed checkpoint edited down to one rank resumes as a
        plain single-rank run with the same state -- the formats match."""
        path = tmp_path / "cross.ckpt.npz"
        dist = make_runner(tiny_loh3.with_overrides(n_ranks=2))
        dist.step_cycle()
        dist.save_checkpoint(path)

        data = dict(np.load(path))
        meta = json.loads(str(data["meta"]))
        assert meta["spec"]["solver"]["n_ranks"] == 2
        meta["spec"]["solver"]["n_ranks"] = 1
        data["meta"] = json.dumps(meta)
        np.savez_compressed(path, **data)

        resumed = ScenarioRunner.resume(path)
        assert type(resumed) is ScenarioRunner
        np.testing.assert_array_equal(resumed.solver.dofs, dist.solver.dofs)
        resumed.run()

        single_full = ScenarioRunner(tiny_loh3)
        single_full.run()
        assert_cross_rank_equal(resumed.solver.dofs, single_full.solver.dofs)


class TestSpecAndDispatch:
    def test_n_ranks_round_trips_through_json(self, tiny_loh3):
        spec = tiny_loh3.with_overrides(n_ranks=4)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.solver.n_ranks == 4

    def test_runner_class_dispatch(self, tiny_loh3):
        assert runner_class_for(tiny_loh3) is ScenarioRunner
        assert runner_class_for(tiny_loh3.with_overrides(n_ranks=2)) is DistributedRunner

    def test_gts_with_ranks_rejected(self, tiny_loh3):
        with pytest.raises(ValueError, match="clustered"):
            tiny_loh3.with_overrides(solver="gts", n_ranks=2)

    def test_engine_rejects_mismatched_partitions(self, tiny_loh3):
        runner = ScenarioRunner(tiny_loh3)
        with pytest.raises(ValueError, match="partitions"):
            DistributedLtsEngine(
                runner.setup.disc,
                runner.clustering,
                np.zeros(3, dtype=np.int64),
            )


class TestCli:
    def test_run_with_ranks_writes_outputs(self, tmp_path):
        out_dir = tmp_path / "out"
        code = cli_main(
            [
                "run",
                "loh3",
                "--set", "extent_m=4000.0",
                "--set", "characteristic_length=2000.0",
                "--set", "n_mechanisms=1",
                "--order", "2",
                "--clusters", "2",
                "--lambda", "1.0",
                "--cycles", "1",
                "--ranks", "2",
                "--output-dir", str(out_dir),
                "--quiet",
            ]
        )
        assert code == 0
        summary = json.loads((out_dir / "run_summary.json").read_text())
        assert summary["n_ranks"] == 2
        assert summary["comm"]["n_messages"] > 0
        assert (out_dir / "seismogram_epicentre.csv").exists()

"""Tests of the process-per-rank backend and the overlap restructure.

The central claims:

* the per-cluster boundary/interior split is a true partition, every halo
  send reads from a boundary element, and the receive plans' static message
  counts account for exactly the modelled per-cycle traffic,
* a ``--backend process`` run (one worker process per rank, overlapped halo
  exchange) produces DOFs, seismograms, element-update counts and per-pair
  measured traffic bit-identical to the serial backend and the single-rank
  runner, for 2 and 4 ranks,
* checkpoints are interchangeable across backends: write under ``serial``,
  resume under ``process`` (and vice versa), bit-identically, and
* the engine survives its worker lifecycle: state reads after ``close()``
  are served from the cache and stepping again respawns the workers.
"""

import json

import numpy as np
import pytest

from repro.distributed import DistributedRunner, ProcessLtsEngine
from repro.scenarios import ScenarioRunner, ScenarioSpec, get_scenario, make_runner
from repro.scenarios.cli import main as cli_main

from .conftest import assert_cross_rank_equal

pytestmark = pytest.mark.distributed


@pytest.fixture(scope="module")
def tiny_loh3():
    """A small 2-cluster LOH.3 variant exercising all buffer relations."""
    return get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=3,
    )


@pytest.fixture(scope="module")
def single_run(tiny_loh3):
    runner = ScenarioRunner(tiny_loh3)
    runner.run()
    return runner


@pytest.fixture(scope="module")
def serial_run(tiny_loh3):
    runner = make_runner(tiny_loh3.with_overrides(n_ranks=2))
    runner.run()
    return runner


class TestOverlapStructure:
    def test_boundary_interior_rows_partition_each_cluster(self, serial_run):
        for sub in serial_run.engine.subdomains:
            ghost_elements = set()
            for batches in sub.send_schedule:
                for batch in batches:
                    ghost_elements.update(batch.local_elements.tolist())
            for cluster in range(serial_run.clustering.n_clusters):
                batch = np.where(sub.clustering.cluster_ids == cluster)[0]
                boundary = sub.boundary_rows[cluster]
                interior = sub.interior_rows[cluster]
                merged = np.sort(np.concatenate([boundary, interior]))
                np.testing.assert_array_equal(merged, np.arange(len(batch)))
                # every sending element of this cluster is a boundary row
                sending = ghost_elements & set(batch.tolist())
                assert sending == set(batch[boundary].tolist())

    def test_recv_counts_cover_the_model_message_count(self, serial_run):
        engine = serial_run.engine
        n_clusters = serial_run.clustering.n_clusters
        model = engine.modelled_exchange_per_cycle()
        expected = 0
        for sub in engine.subdomains:
            for cluster, plan in enumerate(sub.recv_plans):
                corrections_per_cycle = 2 ** (n_clusters - 1 - cluster)
                expected += corrections_per_cycle * int(plan.counts.sum())
        assert expected == model["n_messages"]


class TestBitIdentity:
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_process_matches_serial_and_single_rank(
        self, tiny_loh3, single_run, n_ranks
    ):
        spec = tiny_loh3.with_overrides(n_ranks=n_ranks)
        serial = make_runner(spec)
        serial_summary = serial.run()
        process = make_runner(spec.with_overrides(backend="process"))
        assert isinstance(process, DistributedRunner)
        assert isinstance(process.engine, ProcessLtsEngine)
        process_summary = process.run()

        np.testing.assert_array_equal(process.solver.dofs, serial.solver.dofs)
        assert_cross_rank_equal(process.solver.dofs, single_run.solver.dofs)
        assert np.abs(process.solver.dofs).max() > 0.0, "the run must move"
        assert (
            process_summary["element_updates"]
            == serial_summary["element_updates"]
            == single_run.solver.n_element_updates
        )
        for name in ("receiver_9", "epicentre"):
            t_single, v_single = single_run.receivers[name].seismogram()
            t_proc, v_proc = process.receivers[name].seismogram()
            np.testing.assert_array_equal(t_proc, t_single)
            assert_cross_rank_equal(v_proc, v_single)
        # measured traffic: process == serial, entry by entry, and == model
        assert process_summary["comm"]["per_pair"] == serial_summary["comm"]["per_pair"]
        model = process_summary["comm"]["model"]
        assert process_summary["comm"]["measured_bytes_per_cycle"] == model["total_bytes"]
        assert (
            process_summary["comm"]["measured_messages_per_cycle"] == model["n_messages"]
        )
        assert process_summary["backend"] == "process"
        json.dumps(process_summary)  # embeds without a custom encoder


class TestCheckpointAcrossBackends:
    def test_serial_checkpoint_resumes_under_process(self, tiny_loh3, serial_run, tmp_path):
        path = tmp_path / "serial.ckpt.npz"
        interrupted = make_runner(tiny_loh3.with_overrides(n_ranks=2))
        while interrupted.cycles_done < 2:
            interrupted.step_cycle()
        interrupted.save_checkpoint(path)
        del interrupted

        resumed = ScenarioRunner.resume(path, backend="process")
        assert isinstance(resumed.engine, ProcessLtsEngine)
        assert resumed.cycles_done == 2
        resumed.run()
        np.testing.assert_array_equal(resumed.solver.dofs, serial_run.solver.dofs)
        assert resumed.solver.n_element_updates == serial_run.solver.n_element_updates
        for name in ("receiver_9", "epicentre"):
            t_full, v_full = serial_run.receivers[name].seismogram()
            t_res, v_res = resumed.receivers[name].seismogram()
            np.testing.assert_array_equal(t_res, t_full)
            np.testing.assert_array_equal(v_res, v_full)

    def test_process_checkpoint_resumes_under_serial(self, tiny_loh3, serial_run, tmp_path):
        path = tmp_path / "process.ckpt.npz"
        interrupted = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, backend="process")
        )
        while interrupted.cycles_done < 2:
            interrupted.step_cycle()
        interrupted.save_checkpoint(path)
        interrupted.engine.close()
        del interrupted

        resumed = ScenarioRunner.resume(path, backend="serial")
        assert resumed.spec.solver.backend == "serial"
        resumed.run()
        np.testing.assert_array_equal(resumed.solver.dofs, serial_run.solver.dofs)


class TestEngineLifecycle:
    def test_close_serves_cached_state_and_respawns(self, tiny_loh3):
        runner = make_runner(tiny_loh3.with_overrides(n_ranks=2, backend="process"))
        engine = runner.engine
        runner.step_cycle()
        stats_before = engine.stats.as_dict()
        dofs_before = engine.dofs.copy()
        engine.close()
        assert not engine._alive
        # reads come from the cache
        np.testing.assert_array_equal(engine.dofs, dofs_before)
        assert engine.stats.as_dict() == stats_before
        # stepping respawns the workers and continues bit-identically
        runner.step_cycle()
        assert engine._alive
        reference = make_runner(tiny_loh3.with_overrides(n_ranks=2))
        reference.step_cycle()
        reference.step_cycle()
        np.testing.assert_array_equal(engine.dofs, reference.solver.dofs)
        # pre-close traffic survives the respawn
        assert engine.stats.n_messages == reference.engine.stats.n_messages
        engine.close()

    def test_worker_death_fails_loudly_instead_of_respawning_blank(self, tiny_loh3):
        runner = make_runner(tiny_loh3.with_overrides(n_ranks=2, backend="process"))
        engine = runner.engine
        runner.step_cycle()
        engine._procs[0].terminate()
        engine._procs[0].join()
        with pytest.raises(RuntimeError, match="worker"):
            runner.step_cycle()
        # the dynamic state died with the worker: no silent zero-state respawn
        with pytest.raises(RuntimeError, match="lost its workers"):
            runner.step_cycle()


class TestSpecAndCli:
    def test_backend_round_trips_through_json(self, tiny_loh3):
        spec = tiny_loh3.with_overrides(n_ranks=2, backend="process")
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.solver.backend == "process"

    def test_process_backend_requires_ranks(self, tiny_loh3):
        with pytest.raises(ValueError, match="n_ranks >= 2"):
            tiny_loh3.with_overrides(backend="process")

    def test_unknown_backend_rejected(self, tiny_loh3):
        with pytest.raises(ValueError, match="backend"):
            tiny_loh3.with_overrides(n_ranks=2, backend="threads")

    def test_cli_run_with_process_backend(self, tmp_path):
        out_dir = tmp_path / "out"
        code = cli_main(
            [
                "run",
                "loh3",
                "--set", "extent_m=4000.0",
                "--set", "characteristic_length=2000.0",
                "--set", "n_mechanisms=1",
                "--order", "2",
                "--clusters", "2",
                "--lambda", "1.0",
                "--cycles", "1",
                "--ranks", "2",
                "--backend", "process",
                "--output-dir", str(out_dir),
                "--quiet",
            ]
        )
        assert code == 0
        summary = json.loads((out_dir / "run_summary.json").read_text())
        assert summary["backend"] == "process"
        assert summary["n_ranks"] == 2
        assert summary["comm"]["n_messages"] > 0

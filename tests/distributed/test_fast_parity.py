"""Fast-kernel (tolerance-equal) parity across the distributed engines.

The fast backend's GEMM shapes follow the batch, so the distributed
boundary/interior split changes the reduction order: distributed fast runs
are NOT bit-identical to single-rank fast runs, only tolerance-equal -- the
same contract the verification harness pins (convergence order + golden
tolerances on 2-rank serial and process runs).
"""

import numpy as np
import pytest

from repro.scenarios import ScenarioRunner, get_scenario, make_runner

pytestmark = pytest.mark.distributed


@pytest.fixture(scope="module")
def tiny_loh3():
    return get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=3,
    )


@pytest.fixture(scope="module")
def single_rank_fast(tiny_loh3):
    runner = ScenarioRunner(tiny_loh3.with_overrides(kernels="fast"))
    runner.run()
    return runner


def _rel_err(a, b):
    scale = np.abs(np.asarray(b, dtype=np.float64)).max()
    return np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)).max() / scale


class TestFastDistributed:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_2rank_fast_matches_single_rank_within_tolerance(
        self, tiny_loh3, single_rank_fast, backend
    ):
        dist = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, kernels="fast", backend=backend)
        )
        summary = dist.run()
        assert summary["kernels"] == "fast"
        assert dist.solver.n_element_updates == single_rank_fast.solver.n_element_updates
        assert _rel_err(dist.solver.dofs, single_rank_fast.solver.dofs) <= 1e-11
        for receiver in single_rank_fast.receivers.receivers:
            ts, vs = receiver.seismogram()
            td, vd = dist.receivers[receiver.name].seismogram()
            assert np.array_equal(ts, td)
            assert _rel_err(vd, vs) <= 1e-11
        # the halo payload volume does not depend on the kernel backend
        model = summary["comm"]["model"]
        assert summary["comm"]["measured_bytes_per_cycle"] == model["total_bytes"]

    def test_fast_vs_ref_distributed_within_tolerance(self, tiny_loh3):
        """2-rank fast vs 2-rank ref: the kernels, not the halo exchange,
        are the only difference."""
        ref = make_runner(tiny_loh3.with_overrides(n_ranks=2, kernels="ref"))
        ref.run()
        fast = make_runner(tiny_loh3.with_overrides(n_ranks=2, kernels="fast"))
        fast.run()
        assert _rel_err(fast.solver.dofs, ref.solver.dofs) <= 1e-11

    @pytest.mark.slow
    def test_process_workers_rebuild_fast_backend_by_name(self, tiny_loh3):
        """Serial and process engines must run the same (fast) kernels:
        their results agree far below the fast-vs-ref deviation."""
        spec = tiny_loh3.with_overrides(n_ranks=2, kernels="fast")
        serial = make_runner(spec)
        serial.run()
        process = make_runner(spec.with_overrides(backend="process"))
        process.run()
        # identical schedule + identical batched GEMM shapes per rank:
        # the engines differ only in transport, so this stays bitwise
        assert np.array_equal(process.solver.dofs, serial.solver.dofs)

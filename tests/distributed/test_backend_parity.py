"""Kernel-backend parity and precision across the distributed engines.

Asserts the PR's distributed acceptance criteria:

* a 2-rank run under the optimized kernels (f64) is bit-identical to the
  single-rank reference run (DOFs, seismograms, update counts) on both the
  serial and the process execution backend,
* an f32 distributed run ships f32 halo payloads -- measured traffic equals
  the machine model evaluated at 4 bytes per value -- and stays within the
  documented tolerance of the f64 run.
"""

import numpy as np
import pytest

from repro.scenarios import ScenarioRunner, get_scenario, make_runner

pytestmark = pytest.mark.distributed


@pytest.fixture(scope="module")
def tiny_loh3():
    return get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=3,
    )


@pytest.fixture(scope="module")
def single_rank_ref(tiny_loh3):
    # explicitly the reference kernels, so the opt-vs-ref comparison stays
    # meaningful when the suite itself runs under REPRO_KERNELS=opt
    runner = ScenarioRunner(tiny_loh3.with_overrides(kernels="ref"))
    runner.run()
    return runner


class TestOptKernelsDistributed:
    def test_2rank_opt_bit_identical_to_single_rank_ref(self, tiny_loh3, single_rank_ref):
        dist = make_runner(tiny_loh3.with_overrides(n_ranks=2, kernels="opt"))
        summary = dist.run()
        assert summary["kernels"] == "opt"
        assert np.array_equal(dist.solver.dofs, single_rank_ref.solver.dofs)
        assert dist.solver.n_element_updates == single_rank_ref.solver.n_element_updates
        for receiver in single_rank_ref.receivers.receivers:
            ts, vs = receiver.seismogram()
            td, vd = dist.receivers[receiver.name].seismogram()
            assert np.array_equal(ts, td) and np.array_equal(vs, vd)
        model = summary["comm"]["model"]
        assert summary["comm"]["measured_bytes_per_cycle"] == model["total_bytes"]

    def test_2rank_opt_process_backend_bit_identical(self, tiny_loh3, single_rank_ref):
        dist = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, kernels="opt", backend="process")
        )
        dist.run()
        assert np.array_equal(dist.solver.dofs, single_rank_ref.solver.dofs)
        assert dist.solver.n_element_updates == single_rank_ref.solver.n_element_updates


class TestF32Distributed:
    def test_f32_payloads_halve_the_measured_traffic(self, tiny_loh3):
        f64 = make_runner(tiny_loh3.with_overrides(n_ranks=2))
        s64 = f64.run()
        f32 = make_runner(tiny_loh3.with_overrides(n_ranks=2, precision="f32"))
        s32 = f32.run()
        assert f32.solver.dofs.dtype == np.float32
        # measured == model at the run's value size, and f32 is half of f64
        assert s32["comm"]["measured_bytes_per_cycle"] == s32["comm"]["model"]["total_bytes"]
        assert s64["comm"]["measured_bytes_per_cycle"] == s64["comm"]["model"]["total_bytes"]
        assert (
            s32["comm"]["model"]["total_bytes"] * 2
            == s64["comm"]["model"]["total_bytes"]
        )
        assert s32["comm"]["measured_messages_per_cycle"] == s64[
            "comm"
        ]["measured_messages_per_cycle"]

    def test_f32_distributed_matches_f32_single_rank_bitwise(self, tiny_loh3):
        """Under the reference kernels the contractions are batch-shape
        independent, so f32 distributed runs stay bit-identical too."""
        spec = tiny_loh3.with_overrides(precision="f32", kernels="ref")
        single = ScenarioRunner(spec)
        single.run()
        dist = make_runner(spec.with_overrides(n_ranks=2))
        dist.run()
        assert dist.solver.dofs.dtype == np.float32
        assert np.array_equal(dist.solver.dofs, single.solver.dofs)

    def test_f32_process_backend_bit_identical_to_serial(self, tiny_loh3):
        """The process workers must keep f32 payloads/state in f32: serial
        and process backends stay bit-identical under the reference kernels,
        and the measured traffic equals the 4-byte model on both."""
        spec = tiny_loh3.with_overrides(n_ranks=2, precision="f32", kernels="ref")
        serial = make_runner(spec)
        s_serial = serial.run()
        process = make_runner(spec.with_overrides(backend="process"))
        s_process = process.run()
        assert process.solver.dofs.dtype == np.float32
        assert np.array_equal(process.solver.dofs, serial.solver.dofs)
        for key in ("measured_bytes_per_cycle", "measured_messages_per_cycle"):
            assert s_process["comm"][key] == s_serial["comm"][key]
        assert (
            s_process["comm"]["measured_bytes_per_cycle"]
            == s_process["comm"]["model"]["total_bytes"]
        )

    def test_f32_opt_distributed_matches_single_rank_within_tolerance(self, tiny_loh3):
        """The optimized f32 pipeline dispatches planned contractions to
        BLAS, whose blocking depends on the batch shape -- the distributed
        boundary/interior split therefore changes the reduction order and
        bit-identity degrades to a tight tolerance (f64 opt and all ref runs
        stay bitwise)."""
        spec = tiny_loh3.with_overrides(precision="f32", kernels="opt")
        single = ScenarioRunner(spec)
        single.run()
        dist = make_runner(spec.with_overrides(n_ranks=2))
        dist.run()
        scale = np.abs(single.solver.dofs).max()
        err = np.abs(
            dist.solver.dofs.astype(np.float64) - single.solver.dofs.astype(np.float64)
        ).max()
        assert err <= 1e-4 * scale

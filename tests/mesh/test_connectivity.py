"""Unit tests for face-neighbour connectivity."""

import numpy as np
import pytest

from repro.basis.reference_element import FACE_VERTEX_IDS
from repro.mesh.connectivity import build_face_connectivity, element_face_vertices
from repro.mesh.generation import box_mesh, two_tet_mesh


class TestElementFaceVertices:
    def test_single_element_faces(self):
        elements = np.array([[10, 11, 12, 13]])
        faces = element_face_vertices(elements)
        assert faces.shape == (1, 4, 3)
        for i, local in enumerate(FACE_VERTEX_IDS):
            np.testing.assert_array_equal(faces[0, i], [10 + l for l in local])


class TestBuildFaceConnectivity:
    def test_two_tets_share_exactly_one_face(self):
        mesh = two_tet_mesh()
        neighbors, neighbor_faces = build_face_connectivity(mesh.elements)
        # element 0 and 1 share the face {1, 2, 3}
        assert np.sum(neighbors[0] == 1) == 1
        assert np.sum(neighbors[1] == 0) == 1
        shared_face_0 = int(np.where(neighbors[0] == 1)[0][0])
        shared_face_1 = int(np.where(neighbors[1] == 0)[0][0])
        assert neighbor_faces[0, shared_face_0] == shared_face_1
        assert neighbor_faces[1, shared_face_1] == shared_face_0

    def test_symmetry_on_box_mesh(self):
        mesh = box_mesh(np.linspace(0, 1, 3), np.linspace(0, 1, 3), np.linspace(0, 1, 3))
        neighbors = mesh.neighbors
        neighbor_faces = mesh.neighbor_faces
        for k in range(mesh.n_elements):
            for f in range(4):
                n = neighbors[k, f]
                if n < 0:
                    continue
                nf = neighbor_faces[k, f]
                assert neighbors[n, nf] == k
                assert neighbor_faces[n, nf] == f

    def test_shared_faces_have_identical_vertex_sets(self):
        mesh = box_mesh(np.linspace(0, 1, 3), np.linspace(0, 1, 3), np.linspace(0, 1, 3))
        faces = element_face_vertices(mesh.elements)
        for k in range(mesh.n_elements):
            for f in range(4):
                n = mesh.neighbors[k, f]
                if n < 0:
                    continue
                nf = mesh.neighbor_faces[k, f]
                assert set(faces[k, f]) == set(faces[n, nf])

    def test_interior_face_count_of_box(self):
        # 2x2x2 cells -> 8 cubes -> 48 tets; total faces 48*4 = 192.
        mesh = box_mesh(np.linspace(0, 1, 3), np.linspace(0, 1, 3), np.linspace(0, 1, 3))
        n_boundary = int(np.sum(mesh.neighbors < 0))
        n_interior_pairs = (mesh.n_elements * 4 - n_boundary) // 2
        # Every cube face on the box surface contributes 2 boundary triangles.
        assert n_boundary == 6 * 4 * 2
        assert n_interior_pairs == (192 - 48) // 2

    def test_non_manifold_raises(self):
        # three tets sharing the same face {0,1,2}
        vertices = np.array(
            [
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, -1.0],
                [1.0, 1.0, 2.0],
            ]
        )
        elements = np.array([[0, 1, 2, 3], [0, 1, 2, 4], [0, 1, 2, 5]])
        with pytest.raises(ValueError, match="non-manifold"):
            build_face_connectivity(elements)

"""Unit tests for element geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.generation import box_mesh, single_tet_mesh
from repro.mesh.geometry import (
    cfl_time_steps,
    compute_geometry,
    map_physical_to_reference,
    map_reference_to_physical,
)


class TestReferenceLikeTet:
    def test_volume_and_jacobian(self):
        mesh = single_tet_mesh(scale=2.0)
        geo = mesh.geometry
        np.testing.assert_allclose(geo.volumes, [8.0 / 6.0])
        np.testing.assert_allclose(geo.determinants, [8.0])
        np.testing.assert_allclose(geo.jacobians[0], 2.0 * np.eye(3))

    def test_face_normals_are_outward_unit(self):
        mesh = single_tet_mesh()
        geo = mesh.geometry
        norms = np.linalg.norm(geo.face_normals[0], axis=1)
        np.testing.assert_allclose(norms, 1.0)
        centroid = mesh.vertices[mesh.elements[0]].mean(axis=0)
        for i in range(4):
            outward = geo.face_centroids[0, i] - centroid
            assert np.dot(outward, geo.face_normals[0, i]) > 0

    def test_face_areas(self):
        mesh = single_tet_mesh()
        geo = mesh.geometry
        np.testing.assert_allclose(sorted(geo.face_areas[0]), [0.5, 0.5, 0.5, np.sqrt(3) / 2])

    def test_insphere_radius(self):
        mesh = single_tet_mesh()
        geo = mesh.geometry
        expected = 3.0 * (1.0 / 6.0) / (1.5 + np.sqrt(3) / 2)
        np.testing.assert_allclose(geo.insphere_radii, [expected])


class TestBoxMeshGeometry:
    def test_volumes_fill_the_box(self):
        mesh = box_mesh(np.linspace(0, 2, 4), np.linspace(0, 1, 3), np.linspace(0, 1.5, 3))
        np.testing.assert_allclose(mesh.volumes.sum(), 2.0 * 1.0 * 1.5, rtol=1e-12)

    def test_orientation_always_positive(self):
        mesh = box_mesh(np.linspace(0, 1, 4), np.linspace(0, 1, 4), np.linspace(0, 1, 4), jitter=0.2)
        assert np.all(mesh.geometry.determinants > 0)

    def test_negative_orientation_gets_fixed(self):
        from repro.mesh.tet_mesh import TetMesh

        vertices = np.array(
            [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
        )
        # swap two vertices to flip orientation
        mesh = TetMesh(vertices=vertices, elements=np.array([[0, 1, 3, 2]]))
        assert mesh.geometry.determinants[0] > 0


class TestCoordinateMaps:
    def test_roundtrip(self):
        mesh = box_mesh(np.linspace(0, 1, 3), np.linspace(0, 1, 3), np.linspace(0, 1, 3), jitter=0.1)
        xi = np.array([[0.1, 0.2, 0.3], [0.25, 0.25, 0.25]])
        phys = map_reference_to_physical(mesh.vertices, mesh.elements, np.array([5]), xi)
        back = map_physical_to_reference(mesh.vertices, mesh.elements, 5, phys[0])
        np.testing.assert_allclose(back, xi, atol=1e-12)

    def test_vertices_map_to_corners(self):
        mesh = single_tet_mesh(scale=3.0)
        xi = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        phys = map_reference_to_physical(mesh.vertices, mesh.elements, np.array([0]), xi)
        np.testing.assert_allclose(phys[0], mesh.vertices)


class TestCflTimeSteps:
    def test_scaling_with_mesh_size(self):
        """Halving the element size must halve the CFL time step."""
        coarse = single_tet_mesh(scale=1.0)
        fine = single_tet_mesh(scale=0.5)
        dt_coarse = cfl_time_steps(coarse.insphere_radii, np.array([1000.0]), order=4)
        dt_fine = cfl_time_steps(fine.insphere_radii, np.array([1000.0]), order=4)
        np.testing.assert_allclose(dt_fine, 0.5 * dt_coarse)

    def test_faster_waves_reduce_time_step(self):
        mesh = single_tet_mesh()
        dt_slow = cfl_time_steps(mesh.insphere_radii, np.array([1000.0]), order=4)
        dt_fast = cfl_time_steps(mesh.insphere_radii, np.array([4000.0]), order=4)
        np.testing.assert_allclose(dt_fast * 4.0, dt_slow)

    def test_invalid_inputs_raise(self):
        mesh = single_tet_mesh()
        with pytest.raises(ValueError):
            cfl_time_steps(mesh.insphere_radii, np.array([-1.0]), order=4)
        with pytest.raises(ValueError):
            cfl_time_steps(mesh.insphere_radii, np.array([1.0]), order=0)

    @given(scale=st.floats(min_value=0.1, max_value=10.0), order=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_positive(self, scale, order):
        mesh = single_tet_mesh(scale=scale)
        dt = cfl_time_steps(mesh.insphere_radii, np.array([2500.0]), order=order)
        assert np.all(dt > 0)


class TestDegenerateMesh:
    def test_degenerate_element_raises(self):
        vertices = np.array(
            [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [3.0, 0.0, 0.0]]
        )
        from repro.mesh.tet_mesh import TetMesh

        with pytest.raises(ValueError):
            TetMesh(vertices=vertices, elements=np.array([[0, 1, 2, 3]])).geometry

"""Unit tests for mesh reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.generation import box_mesh
from repro.mesh.reorder import cluster_ranges, reorder_elements


class TestReorderElements:
    def test_sorted_by_partition_then_cluster(self):
        partitions = np.array([1, 0, 1, 0, 0])
        clusters = np.array([0, 2, 1, 0, 1])
        result = reorder_elements(partitions, clusters)
        new_partitions = partitions[result.permutation]
        new_clusters = clusters[result.permutation]
        assert np.all(np.diff(new_partitions) >= 0)
        for p in np.unique(new_partitions):
            mask = new_partitions == p
            assert np.all(np.diff(new_clusters[mask]) >= 0)

    def test_communication_role_groups_send_elements_last(self):
        partitions = np.zeros(6, dtype=int)
        clusters = np.zeros(6, dtype=int)
        comm = np.array([0, 1, 0, 1, 0, 0])
        result = reorder_elements(partitions, clusters, comm)
        reordered_comm = comm[result.permutation]
        assert np.all(np.diff(reordered_comm) >= 0)

    def test_inverse_is_consistent(self):
        partitions = np.array([2, 0, 1, 1, 2, 0])
        clusters = np.array([0, 1, 0, 1, 1, 0])
        result = reorder_elements(partitions, clusters)
        np.testing.assert_array_equal(result.permutation[result.inverse], np.arange(6))
        np.testing.assert_array_equal(result.inverse[result.permutation], np.arange(6))

    def test_remap_element_ids_keeps_boundary_marker(self):
        partitions = np.array([1, 0, 0])
        clusters = np.array([0, 0, 0])
        result = reorder_elements(partitions, clusters)
        ids = np.array([0, -1, 2])
        remapped = result.remap_element_ids(ids)
        assert remapped[1] == -1
        assert remapped[0] == result.inverse[0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            reorder_elements(np.zeros(3), np.zeros(4))

    @given(n=st.integers(min_value=1, max_value=40), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_permutation_is_bijection(self, n, seed):
        rng = np.random.default_rng(seed)
        partitions = rng.integers(0, 4, size=n)
        clusters = rng.integers(0, 3, size=n)
        result = reorder_elements(partitions, clusters)
        assert sorted(result.permutation.tolist()) == list(range(n))


class TestPermutedMesh:
    def test_permuted_mesh_preserves_geometry_multiset(self):
        mesh = box_mesh(np.linspace(0, 1, 3), np.linspace(0, 1, 3), np.linspace(0, 1, 3))
        rng = np.random.default_rng(0)
        perm = rng.permutation(mesh.n_elements)
        permuted = mesh.permuted(perm)
        np.testing.assert_allclose(
            np.sort(permuted.volumes), np.sort(mesh.volumes), rtol=1e-12
        )
        np.testing.assert_allclose(permuted.volumes, mesh.volumes[perm], rtol=1e-12)

    def test_invalid_permutation_raises(self):
        mesh = box_mesh(np.linspace(0, 1, 3), np.linspace(0, 1, 3), np.linspace(0, 1, 3))
        with pytest.raises(ValueError):
            mesh.permuted(np.zeros(mesh.n_elements, dtype=int))


class TestClusterRanges:
    def test_ranges_cover_all_elements(self):
        clusters = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2])
        ranges = cluster_ranges(clusters, 3)
        assert ranges == [(0, 3), (3, 5), (5, 9)]

    def test_empty_cluster_gets_empty_range(self):
        clusters = np.array([0, 0, 2, 2])
        ranges = cluster_ranges(clusters, 3)
        assert ranges[1] == (2, 2)

    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            cluster_ranges(np.array([1, 0, 2]), 3)

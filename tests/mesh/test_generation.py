"""Unit tests for mesh generation and refinement rules."""

import numpy as np
import pytest

from repro.mesh.generation import box_mesh, graded_axis, layered_box_mesh
from repro.mesh.refinement import (
    characteristic_lengths,
    edge_length_profile_from_velocity,
    elements_per_wavelength_rule,
)
from repro.mesh.tet_mesh import BOUNDARY_ABSORBING, BOUNDARY_FREE_SURFACE


class TestBoxMesh:
    def test_element_count(self):
        mesh = box_mesh(np.linspace(0, 1, 4), np.linspace(0, 1, 3), np.linspace(0, 1, 5))
        assert mesh.n_elements == 3 * 2 * 4 * 6

    def test_invalid_axis_raises(self):
        with pytest.raises(ValueError):
            box_mesh([0.0, 0.0, 1.0], [0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            box_mesh([0.0], [0.0, 1.0], [0.0, 1.0])

    def test_free_surface_tags_on_top_only(self):
        mesh = box_mesh(np.linspace(0, 1, 3), np.linspace(0, 1, 3), np.linspace(-1, 0, 3))
        boundary = mesh.is_boundary_face
        fs = mesh.boundary_tags == BOUNDARY_FREE_SURFACE
        assert np.all(boundary[fs])
        # every free-surface face centroid is on z = 0
        centroids = mesh.geometry.face_centroids[fs]
        np.testing.assert_allclose(centroids[:, 2], 0.0, atol=1e-12)
        # and the other boundary faces are absorbing
        other = boundary & ~fs
        assert np.all(mesh.boundary_tags[other] == BOUNDARY_ABSORBING)

    def test_jitter_keeps_mesh_valid_and_conforming(self):
        mesh = box_mesh(
            np.linspace(0, 1, 4), np.linspace(0, 1, 4), np.linspace(0, 1, 4), jitter=0.25, seed=3
        )
        assert np.all(mesh.geometry.determinants > 0)
        # conformity: the neighbour relation is symmetric (checked inside property)
        assert mesh.neighbors.shape == (mesh.n_elements, 4)
        np.testing.assert_allclose(mesh.volumes.sum(), 1.0, rtol=1e-10)

    def test_topography_shifts_top_surface(self):
        def topo(x, y):
            return 0.1 * np.sin(np.pi * x)

        mesh = box_mesh(
            np.linspace(0, 1, 5), np.linspace(0, 1, 3), np.linspace(-1, 0, 3), topography=topo
        )
        assert mesh.vertices[:, 2].max() > 0.05
        # bottom stays flat
        assert mesh.vertices[:, 2].min() == pytest.approx(-1.0)


class TestGradedAxis:
    def test_uniform_target(self):
        coords = graded_axis(0.0, 10.0, lambda z: 1.0)
        assert coords[0] == 0.0 and coords[-1] == 10.0
        assert np.all(np.diff(coords) > 0)
        np.testing.assert_allclose(np.diff(coords), 1.0, atol=0.5)

    def test_fine_to_coarse(self):
        coords = graded_axis(0.0, 10.0, lambda z: 0.2 if z < 2.0 else 1.0)
        spacings = np.diff(coords)
        fine = spacings[coords[:-1] < 1.8]
        coarse = spacings[coords[:-1] > 2.5]
        assert fine.mean() < 0.3
        assert coarse.mean() > 0.8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            graded_axis(1.0, 0.0, lambda z: 0.1)
        with pytest.raises(ValueError):
            graded_axis(0.0, 1.0, lambda z: -1.0)
        with pytest.raises(ValueError):
            graded_axis(0.0, 1e9, lambda z: 1.0, max_cells=10)


class TestLayeredBoxMesh:
    def test_layer_refinement_produces_smaller_time_steps_in_layer(self):
        mesh = layered_box_mesh(
            extent=(0, 4000, 0, 4000, -4000, 0),
            edge_length_of_depth=lambda z: 500.0 if z > -1000.0 else 1000.0,
            horizontal_edge_length=1000.0,
        )
        centroid_z = mesh.centroids[:, 2]
        layer = centroid_z > -1000.0
        assert layer.any() and (~layer).any()
        assert mesh.insphere_radii[layer].mean() < mesh.insphere_radii[~layer].mean()


class TestUniformAxisSnap:
    def test_non_dividing_edge_length_has_no_sliver(self):
        # 333.3 does not divide 2000: the old arange-plus-endpoint axis left a
        # ~0.2 m sliver cell that dominated the CFL step of the whole mesh
        mesh = layered_box_mesh(
            extent=(0, 2000, 0, 2000, -2000, 0),
            edge_length_of_depth=lambda z: 500.0,
            horizontal_edge_length=333.3,
        )
        x = np.unique(mesh.vertices[:, 0])
        widths = np.diff(x)
        assert x[0] == 0.0 and x[-1] == 2000.0
        np.testing.assert_allclose(widths, widths[0], rtol=1e-12)
        # the snapped spacing stays within half a cell of the request
        assert widths.min() > 0.5 * 333.3
        # and the time-step spread is bounded by the grading, not a sliver
        radii = mesh.insphere_radii
        assert radii.min() > 0.05 * radii.max()

    def test_dividing_edge_length_reproduces_arange_grid(self):
        mesh = layered_box_mesh(
            extent=(0, 2000, 0, 2000, -1000, 0),
            edge_length_of_depth=lambda z: 500.0,
            horizontal_edge_length=500.0,
        )
        x = np.unique(mesh.vertices[:, 0])
        old = np.arange(0.0, 2000.0 + 250.0, 500.0)
        np.testing.assert_array_equal(x, old)


class TestRefinementRules:
    def test_elements_per_wavelength_rule(self):
        rule = elements_per_wavelength_rule(2000.0, max_frequency=2.0, elements_per_wavelength=2.0, order=5)
        # wavelength 1000 m, 2 elements per wavelength, order factor 4 -> 2000 m
        assert rule(0.0) == pytest.approx(2000.0)

    def test_rule_with_velocity_function(self):
        rule = elements_per_wavelength_rule(
            lambda z: 2000.0 if z > -1000 else 3464.0,
            max_frequency=2.0,
            elements_per_wavelength=2.0,
            order=5,
        )
        assert rule(-500.0) < rule(-2000.0)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            elements_per_wavelength_rule(2000.0, max_frequency=0.0, elements_per_wavelength=2.0, order=5)
        with pytest.raises(ValueError):
            elements_per_wavelength_rule(2000.0, max_frequency=1.0, elements_per_wavelength=2.0, order=1)
        rule = elements_per_wavelength_rule(-5.0, max_frequency=1.0, elements_per_wavelength=2.0, order=4)
        with pytest.raises(ValueError):
            rule(0.0)

    def test_profile_from_samples(self):
        rule = edge_length_profile_from_velocity(
            depths=np.array([-10000.0, -1000.0]),
            shear_velocities=np.array([3464.0, 2000.0]),
            max_frequency=5.0,
            elements_per_wavelength=2.0,
            order=4,
        )
        assert rule(-500.0) < rule(-5000.0)

    def test_characteristic_lengths(self):
        # a regular tetrahedron with edge a has volume a^3/(6 sqrt 2)
        a = 2.0
        vol = a**3 / (6.0 * np.sqrt(2.0))
        np.testing.assert_allclose(characteristic_lengths(np.array([vol])), [a])

"""Shared fixtures for the core (LTS) tests."""

import numpy as np
import pytest

from repro.equations.material import ElasticMaterial, MaterialTable, ViscoelasticMaterial
from repro.kernels.discretization import Discretization
from repro.mesh.generation import box_mesh, layered_box_mesh


@pytest.fixture(scope="module")
def elastic_disc():
    coords = np.linspace(0.0, 2000.0, 3)
    mesh = box_mesh(coords, coords, coords, jitter=0.1, free_surface_top=False)
    table = MaterialTable.homogeneous(ElasticMaterial(2700.0, 6000.0, 3464.0), mesh.n_elements)
    return Discretization(mesh, table, order=3, flux="rusanov")


@pytest.fixture(scope="module")
def graded_disc():
    """A small graded mesh whose CFL time steps genuinely spread over ~4x,
    with a layered material (slow layer on top), order 3, viscoelastic."""
    mesh = layered_box_mesh(
        extent=(0.0, 4000.0, 0.0, 4000.0, -4000.0, 0.0),
        edge_length_of_depth=lambda z: 500.0 if z > -1000.0 else 2000.0,
        horizontal_edge_length=2000.0,
        jitter=0.15,
        seed=4,
    )
    layer = mesh.centroids[:, 2] > -1000.0
    table = MaterialTable(
        rho=np.where(layer, 2600.0, 2700.0),
        vp=np.where(layer, 4000.0, 6000.0),
        vs=np.where(layer, 2000.0, 3464.0),
        qp=np.where(layer, 120.0, 155.9),
        qs=np.where(layer, 40.0, 69.3),
    )
    return Discretization(
        mesh, table, order=3, n_mechanisms=3, frequency_band=(0.05, 5.0), flux="rusanov"
    )

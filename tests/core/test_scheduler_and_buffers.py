"""Unit tests for the LTS schedule and the B1/B2/B3 buffer algebra."""

import numpy as np
import pytest

from repro.core.buffers import LARGER, SAME, SMALLER, LtsBuffers
from repro.core.lts_scheduler import (
    clusters_correcting_after,
    clusters_predicting_at,
    micro_steps_per_cycle,
    schedule_cycle,
    updates_per_cycle,
)
from repro.core.legacy_lts import communication_volumes
from repro.kernels.ader import compute_time_derivatives, time_integrate


class TestScheduler:
    def test_micro_steps(self):
        assert micro_steps_per_cycle(1) == 1
        assert micro_steps_per_cycle(3) == 4
        assert micro_steps_per_cycle(5) == 16
        with pytest.raises(ValueError):
            micro_steps_per_cycle(0)

    def test_three_cluster_schedule_matches_figure_6(self):
        """Two clusters of Fig. 6 (steps dt, 2dt, 4dt): predictions at the
        start, k1 (cluster 0) corrects every micro step, k (cluster 1) every
        second, k4 (cluster 2) at the end of the cycle."""
        schedule = schedule_cycle(3)
        assert [e["predict"] for e in schedule] == [[0, 1, 2], [0], [0, 1], [0]]
        assert [e["correct"] for e in schedule] == [[0], [0, 1], [0], [0, 1, 2]]

    def test_every_cluster_predicts_exactly_as_often_as_it_corrects(self):
        for n_clusters in (1, 2, 4):
            schedule = schedule_cycle(n_clusters)
            for l in range(n_clusters):
                predicts = sum(l in e["predict"] for e in schedule)
                corrects = sum(l in e["correct"] for e in schedule)
                assert predicts == corrects == 2 ** (n_clusters - 1 - l)

    def test_updates_per_cycle(self):
        counts = np.array([100, 50, 10])
        # cluster 0 updates 4x, cluster 1 2x, cluster 2 1x
        assert updates_per_cycle(counts) == 100 * 4 + 50 * 2 + 10

    def test_prediction_and_correction_queries(self):
        assert clusters_predicting_at(0, 4) == [0, 1, 2, 3]
        assert clusters_predicting_at(2, 4) == [0, 1]
        assert clusters_correcting_after(3, 4) == [0, 1, 2]
        assert clusters_correcting_after(7, 4) == [0, 1, 2, 3]


class TestBufferAlgebra:
    def test_buffers_follow_eq_17(self, elastic_disc):
        """B1/B2 are the full/half interval integrals, B3 accumulates pairs."""
        disc = elastic_disc
        rng = np.random.default_rng(0)
        dofs = rng.normal(size=disc.allocate_dofs().shape)
        buffers = LtsBuffers(disc)
        elements = np.arange(disc.n_elements)
        dt = 0.01

        derivatives = compute_time_derivatives(disc, dofs, elements)
        elastic = [d[:, :9] for d in derivatives]
        buffers.fill(elements, derivatives, dt, step_index=0)
        np.testing.assert_allclose(buffers.b1[elements], time_integrate(elastic, 0, dt))
        np.testing.assert_allclose(buffers.b2[elements], time_integrate(elastic, 0, dt / 2))
        np.testing.assert_allclose(buffers.b3[elements], time_integrate(elastic, 0, dt))

        # second (odd) step: B3 accumulates, B1/B2 are overwritten
        dofs2 = rng.normal(size=dofs.shape)
        derivatives2 = compute_time_derivatives(disc, dofs2, elements)
        elastic2 = [d[:, :9] for d in derivatives2]
        buffers.fill(elements, derivatives2, dt, step_index=1)
        np.testing.assert_allclose(buffers.b1[elements], time_integrate(elastic2, 0, dt))
        np.testing.assert_allclose(
            buffers.b3[elements],
            time_integrate(elastic, 0, dt) + time_integrate(elastic2, 0, dt),
        )

    def test_neighbor_data_selection(self, elastic_disc):
        """The neighbour gather must pick B1 / B3 / B2 / B1-B2 by relation and parity."""
        disc = elastic_disc
        buffers = LtsBuffers(disc)
        rng = np.random.default_rng(1)
        buffers.b1 = rng.normal(size=buffers.b1.shape)
        buffers.b2 = rng.normal(size=buffers.b2.shape)
        buffers.b3 = rng.normal(size=buffers.b3.shape)

        elements = np.array([0])
        neighbors = np.array([[1, 2, 3, -1]])
        relations = np.array([[SAME, SMALLER, LARGER, -2]])

        even = buffers.neighbor_data(elements, neighbors, relations, step_index=0)
        np.testing.assert_array_equal(even[0, 0], buffers.b1[1])
        np.testing.assert_array_equal(even[0, 1], buffers.b3[2])
        np.testing.assert_array_equal(even[0, 2], buffers.b2[3])
        np.testing.assert_array_equal(even[0, 3], 0.0)

        odd = buffers.neighbor_data(elements, neighbors, relations, step_index=1)
        np.testing.assert_array_equal(odd[0, 2], buffers.b1[3] - buffers.b2[3])

    def test_views_are_read_only(self, elastic_disc):
        """In-place writes through the b1/b2/b3 views would silently stale
        the precomputed second-half row; mutation goes through fill() or
        whole-buffer assignment (the checkpoint/exchange path)."""
        buffers = LtsBuffers(elastic_disc)
        for name in ("b1", "b2", "b3"):
            with pytest.raises(ValueError):
                getattr(buffers, name)[0] = 1.0

    def test_bulk_assignment_refreshes_second_half(self, elastic_disc):
        """The restore path (``buffers.b1 = ...``) must re-establish the
        B1 - B2 invariant the odd-step LARGER gather reads."""
        buffers = LtsBuffers(elastic_disc)
        rng = np.random.default_rng(2)
        b1 = rng.normal(size=buffers.b1.shape)
        b2 = rng.normal(size=buffers.b2.shape)
        buffers.b1 = b1
        buffers.b2 = b2
        neighbors = np.array([[1, -1, -1, -1]])
        relations = np.array([[LARGER, -2, -2, -2]])
        odd = buffers.neighbor_data(np.array([0]), neighbors, relations, step_index=1)
        np.testing.assert_array_equal(odd[0, 0], b1[1] - b2[1])
        np.testing.assert_array_equal(odd[0, 1], 0.0)  # boundary ghost row


class TestCommunicationVolumes:
    def test_paper_numbers_for_order_five(self):
        """Sec. V: five elastic derivatives need 5*9*35 = 1,575 values; the
        buffer needs 9*35 = 315 and the face-local message 9*15 = 135."""
        volumes = communication_volumes(order=5, n_mechanisms=3)
        assert volumes.derivative_scheme_anelastic == 1575
        assert volumes.buffer_scheme == 315
        assert volumes.face_local_mpi == 135
        # elastic zero-block exploitation: 9 * (35 + 20 + 10 + 4 + 1) = 630
        assert volumes.derivative_scheme_elastic == 630

    def test_reductions(self):
        volumes = communication_volumes(order=5)
        assert volumes.reduction_vs_derivatives() == pytest.approx(5.0)
        assert volumes.reduction_face_local() == pytest.approx(35.0 / 15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            communication_volumes(0)
        with pytest.raises(ValueError):
            communication_volumes(4, -1)

"""Unit tests for the LTS clustering, lambda optimisation and speedup model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    assign_clusters,
    derive_clustering,
    normalize_clusters,
    optimize_lambda,
)
from repro.core.speedup import (
    ideal_speedup,
    load_fractions,
    normalization_loss,
    theoretical_speedup,
)


class TestAssignClusters:
    def test_paper_example_assignment(self):
        """An element with time step 3 lambda dt_min belongs to C2 (index 1)."""
        dts = np.array([1.0, 3.0, 10.0])
        ids = assign_clusters(dts, n_clusters=3, lam=1.0)
        np.testing.assert_array_equal(ids, [0, 1, 2])

    def test_lambda_shifts_boundaries(self):
        """The paper's lambda example: most elements in (3, 4) dt_min advance
        with 3 dt_min for lambda = 0.75 instead of 2 dt_min for lambda = 1."""
        dts = np.array([1.0] + [3.5] * 10)
        ids_1 = assign_clusters(dts, n_clusters=4, lam=1.0)
        ids_075 = assign_clusters(dts, n_clusters=4, lam=0.75)
        # lambda = 1: 3.5 in [2, 4) -> cluster 1 (steps of 2.0)
        assert np.all(ids_1[1:] == 1)
        # lambda = 0.75: 3.5 / 0.75 = 4.67 in [4, 8) -> cluster 2 (steps of 3.0)
        assert np.all(ids_075[1:] == 2)

    def test_open_ended_last_cluster(self):
        dts = np.array([1.0, 1000.0])
        ids = assign_clusters(dts, n_clusters=3, lam=1.0)
        assert ids[1] == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_clusters(np.array([1.0]), 0, 1.0)
        with pytest.raises(ValueError):
            assign_clusters(np.array([1.0]), 3, 0.4)
        with pytest.raises(ValueError):
            assign_clusters(np.array([-1.0]), 3, 1.0)

    @given(
        lam=st.floats(min_value=0.51, max_value=1.0),
        n_clusters=st.integers(min_value=1, max_value=6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_cluster_steps_respect_cfl(self, lam, n_clusters, seed):
        """Every element's clustered time step never exceeds its CFL step."""
        rng = np.random.default_rng(seed)
        dts = rng.uniform(1.0, 20.0, size=50)
        clustering = derive_clustering(dts, n_clusters, lam)
        assert np.all(clustering.element_time_steps() <= dts + 1e-12)


class TestNormalization:
    def test_chain_is_limited_to_one_level(self):
        # three elements in a chain with clusters 0 - 2 - 2: the middle one
        # must come down to 1
        ids = np.array([0, 2, 2])
        neighbors = np.array([[1, -1, -1, -1], [0, 2, -1, -1], [1, -1, -1, -1]])
        normalized = normalize_clusters(ids, neighbors)
        np.testing.assert_array_equal(normalized, [0, 1, 2])

    def test_cascading_normalization(self):
        # 0 - 3 - 3 - 3 chain: must become 0 - 1 - 2 - 3
        ids = np.array([0, 3, 3, 3])
        neighbors = np.array(
            [[1, -1, -1, -1], [0, 2, -1, -1], [1, 3, -1, -1], [2, -1, -1, -1]]
        )
        np.testing.assert_array_equal(normalize_clusters(ids, neighbors), [0, 1, 2, 3])

    def test_no_change_when_already_normalized(self):
        ids = np.array([1, 1, 2])
        neighbors = np.array([[1, -1, -1, -1], [0, 2, -1, -1], [1, -1, -1, -1]])
        np.testing.assert_array_equal(normalize_clusters(ids, neighbors), ids)

    def test_normalization_loss_is_small_for_realistic_distribution(self):
        """The paper reports < 1.5 % loss; verify on a graded mesh."""
        from repro.mesh.generation import layered_box_mesh
        from repro.mesh.geometry import cfl_time_steps

        mesh = layered_box_mesh(
            extent=(0, 8000, 0, 8000, -8000, 0),
            edge_length_of_depth=lambda z: 500.0 if z > -1000.0 else 1000.0,
            horizontal_edge_length=1000.0,
            jitter=0.2,
        )
        vp = np.where(mesh.centroids[:, 2] > -1000.0, 4000.0, 6000.0)
        dts = cfl_time_steps(mesh.insphere_radii, vp, order=5)
        raw = assign_clusters(dts, 3, 1.0)
        normalized = normalize_clusters(raw, mesh.neighbors)
        cluster_dts = dts.min() * 2.0 ** np.arange(3)
        loss = abs(normalization_loss(raw, normalized, cluster_dts))
        assert loss < 0.05


class TestSpeedupModel:
    def test_single_cluster_has_no_speedup(self):
        dts = np.ones(10)
        clustering = derive_clustering(dts, 1, 1.0)
        assert clustering.speedup() == pytest.approx(1.0)

    def test_two_cluster_speedup(self):
        # half the elements can take double steps -> cost 0.5*(1 + 0.5) = 0.75 -> 1.33x
        dts = np.array([1.0] * 50 + [2.0] * 50)
        clustering = derive_clustering(dts, 2, 1.0)
        assert clustering.speedup() == pytest.approx(1.0 / 0.75)

    def test_speedup_bounded_by_ideal(self):
        rng = np.random.default_rng(0)
        dts = rng.uniform(1.0, 30.0, size=500)
        clustering = derive_clustering(dts, 5, 1.0)
        assert 1.0 <= clustering.speedup() <= ideal_speedup(dts) + 1e-12

    def test_load_fractions_sum_to_one(self):
        dts = np.array([1.0, 2.0, 2.0, 4.0, 8.0])
        clustering = derive_clustering(dts, 4, 1.0)
        np.testing.assert_allclose(clustering.load_fractions().sum(), 1.0)
        assert clustering.counts.sum() == 5


class TestLambdaOptimization:
    def test_lambda_tuning_beats_lambda_one_for_clustered_distribution(self):
        """Distribution concentrated just below a power of two: tuning lambda
        improves the theoretical speedup, as in Fig. 4 (17.5 % improvement)."""
        rng = np.random.default_rng(1)
        dts = np.concatenate([np.array([1.0]), rng.uniform(3.0, 3.9, size=2000)])
        best = optimize_lambda(dts, 3)
        fixed = derive_clustering(dts, 3, 1.0)
        assert best.speedup() > 1.1 * fixed.speedup()
        assert best.lam < 1.0

    def test_lambda_never_hurts(self):
        rng = np.random.default_rng(2)
        dts = rng.uniform(1.0, 10.0, size=300)
        best = optimize_lambda(dts, 4)
        fixed = derive_clustering(dts, 4, 1.0)
        assert best.speedup() >= fixed.speedup() - 1e-12

    def test_invalid_increment(self):
        with pytest.raises(ValueError):
            optimize_lambda(np.ones(3), 2, increment=0.0)

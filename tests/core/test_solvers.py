"""Integration tests of the GTS and clustered LTS solvers.

The central correctness claims:

* with a single cluster the LTS solver reproduces the GTS solver bit-for-bit,
* with several clusters the LTS solution agrees with the GTS solution to
  discretisation accuracy (Fig. 9's message), and
* sources, receivers and fused runs work identically under both drivers.
"""

import numpy as np
import pytest

from repro.core.clustering import derive_clustering, optimize_lambda
from repro.core.gts_solver import GlobalTimeSteppingSolver
from repro.core.lts_solver import ClusteredLtsSolver
from repro.source.moment_tensor import MomentTensorSource
from repro.source.receivers import ReceiverSet
from repro.source.time_functions import RickerWavelet


def _gaussian_ic(length=2000.0, width=400.0):
    center = np.array([length / 2, length / 2, length / 2])

    def ic(points):
        out = np.zeros((len(points), 9))
        r2 = np.sum((points - center) ** 2, axis=1)
        out[:, 8] = np.exp(-r2 / (2 * width**2))
        return out

    return ic


class TestSingleClusterEquivalence:
    def test_lts_with_one_cluster_matches_gts_exactly(self, elastic_disc):
        disc = elastic_disc
        clustering = derive_clustering(disc.time_steps, 1, 1.0, disc.mesh.neighbors)
        gts = GlobalTimeSteppingSolver(disc, dt=clustering.cluster_time_steps[0])
        lts = ClusteredLtsSolver(disc, clustering)
        gts.set_initial_condition(_gaussian_ic())
        lts.set_initial_condition(_gaussian_ic())
        t_end = 5 * clustering.cluster_time_steps[0]
        gts.run(t_end)
        lts.run(t_end)
        np.testing.assert_array_equal(lts.dofs, gts.dofs)
        assert lts.n_element_updates == gts.n_element_updates

    def test_update_counters(self, elastic_disc):
        disc = elastic_disc
        clustering = derive_clustering(disc.time_steps, 1, 1.0)
        lts = ClusteredLtsSolver(disc, clustering)
        lts.set_initial_condition(_gaussian_ic())
        lts.step_cycle()
        assert lts.n_element_updates == disc.n_elements
        assert lts.updates_per_cycle() == disc.n_elements


class TestMultiClusterAccuracy:
    def test_lts_matches_gts_solution(self, graded_disc):
        """Multi-cluster LTS vs GTS at dt_min: both approximate the same PDE,
        so their difference must be small compared to the signal itself."""
        disc = graded_disc
        clustering = derive_clustering(disc.time_steps, 3, 1.0, disc.mesh.neighbors)
        assert clustering.n_clusters == 3
        assert clustering.counts.min() >= 0 and clustering.counts.sum() == disc.n_elements
        # the graded mesh must genuinely use more than one cluster
        assert np.count_nonzero(clustering.counts) >= 2

        def ic(points):
            out = np.zeros((len(points), 9))
            center = np.array([2000.0, 2000.0, -500.0])
            r2 = np.sum((points - center) ** 2, axis=1)
            out[:, 6] = np.exp(-r2 / (2 * 600.0**2))
            return out

        gts = GlobalTimeSteppingSolver(disc, dt=clustering.cluster_time_steps[0])
        lts = ClusteredLtsSolver(disc, clustering)
        gts.set_initial_condition(ic)
        lts.set_initial_condition(ic)

        t_end = 4 * clustering.cluster_time_steps[-1]
        gts.run(t_end)
        lts.run(t_end)

        # compare velocities where the signal lives
        signal = np.max(np.abs(gts.dofs[:, 6:9]))
        diff = np.max(np.abs(lts.dofs[:, 6:9] - gts.dofs[:, 6:9]))
        assert diff < 0.05 * signal
        # and LTS must have performed fewer element updates
        assert lts.n_element_updates < gts.n_element_updates

    def test_algorithmic_efficiency_matches_speedup_model(self, graded_disc):
        """The measured ratio of element updates (GTS / LTS) equals the
        theoretical speedup of the clustering when both run the same time."""
        disc = graded_disc
        clustering = optimize_lambda(disc.time_steps, 3, disc.mesh.neighbors, increment=0.05)
        lts = ClusteredLtsSolver(disc, clustering)
        n_cycles = 2
        macro = lts.macro_dt
        lts.set_initial_condition(_gaussian_ic(4000.0, 800.0))
        for _ in range(n_cycles):
            lts.step_cycle()

        gts_updates = disc.n_elements * (n_cycles * macro / clustering.dt_min)
        measured_speedup = gts_updates / lts.n_element_updates
        # the GTS reference uses dt_min while cluster 0 uses lambda*dt_min;
        # the speedup model accounts for exactly that
        np.testing.assert_allclose(measured_speedup, clustering.speedup(), rtol=1e-9)


class TestSourcesAndReceivers:
    def test_point_source_produces_motion_and_receivers_record(self, elastic_disc):
        disc = elastic_disc
        source = MomentTensorSource(
            location=np.array([1000.0, 1000.0, 1000.0]),
            moment_tensor=1e10 * np.eye(3),
            time_function=RickerWavelet(f0=40.0, t0=0.05),
        )
        receivers = ReceiverSet(disc, {"st1": np.array([1500.0, 1500.0, 1500.0])})
        solver = GlobalTimeSteppingSolver(disc, sources=[source], receivers=receivers)
        solver.run(0.15)
        times, values = receivers["st1"].seismogram()
        assert len(times) > 10
        assert np.max(np.abs(values)) > 0.0

    def test_lts_and_gts_seismograms_agree(self, graded_disc):
        disc = graded_disc
        source = MomentTensorSource(
            location=np.array([2000.0, 2000.0, -1500.0]),
            moment_tensor=1e12 * np.eye(3),
            time_function=RickerWavelet(f0=5.0, t0=0.15),
        )
        station = {"st": np.array([2600.0, 2600.0, -200.0])}
        clustering = derive_clustering(disc.time_steps, 3, 1.0, disc.mesh.neighbors)

        rec_gts = ReceiverSet(disc, station)
        gts = GlobalTimeSteppingSolver(
            disc, dt=clustering.cluster_time_steps[0], sources=[source], receivers=rec_gts
        )
        rec_lts = ReceiverSet(disc, station)
        lts = ClusteredLtsSolver(disc, clustering, sources=[source], receivers=rec_lts)

        # long enough for the direct wave (travel time ~0.3 s) to reach the station
        t_end = 0.6
        gts.run(t_end)
        lts.run(t_end)

        t_g, v_g = rec_gts["st"].seismogram()
        t_l, v_l = rec_lts["st"].seismogram()
        assert len(t_g) > 0 and len(t_l) > 0
        assert np.max(np.abs(v_g)) > 0.0, "the source signal must reach the station"
        # compare on a common time axis using the misfit measure of the paper
        from repro.source.misfit import seismogram_misfit
        from repro.source.receivers import resample_seismogram

        common = np.linspace(0, min(t_g[-1], t_l[-1]), 200)
        ref = resample_seismogram(t_g, v_g, common)
        sol = resample_seismogram(t_l, v_l, common)
        assert seismogram_misfit(sol, ref) < 0.05


class TestFusedRuns:
    def test_fused_lts_matches_single_runs(self, elastic_disc):
        disc = elastic_disc
        clustering = derive_clustering(disc.time_steps, 2, 1.0, disc.mesh.neighbors)
        lts_fused = ClusteredLtsSolver(disc, clustering, n_fused=2)
        lts_single = ClusteredLtsSolver(disc, clustering)
        lts_fused.set_initial_condition(_gaussian_ic())
        lts_single.set_initial_condition(_gaussian_ic())
        lts_fused.step_cycle()
        lts_single.step_cycle()
        np.testing.assert_allclose(lts_fused.dofs[..., 0], lts_single.dofs, rtol=1e-12, atol=1e-18)
        np.testing.assert_allclose(lts_fused.dofs[..., 1], lts_single.dofs, rtol=1e-12, atol=1e-18)


class TestValidation:
    def test_mismatched_clustering_raises(self, elastic_disc, graded_disc):
        clustering = derive_clustering(graded_disc.time_steps, 2, 1.0)
        with pytest.raises(ValueError):
            ClusteredLtsSolver(elastic_disc, clustering)

    def test_unnormalized_clustering_raises(self, graded_disc):
        disc = graded_disc
        from repro.core.clustering import Clustering, assign_clusters

        raw = assign_clusters(disc.time_steps, 4, 1.0)
        # only fails if the raw assignment actually violates the +-1 rule
        violation = False
        for k in range(disc.n_elements):
            for n in disc.mesh.neighbors[k]:
                if n >= 0 and abs(raw[k] - raw[n]) > 1:
                    violation = True
        clustering = Clustering(
            cluster_ids=raw,
            cluster_time_steps=disc.time_steps.min() * 2.0 ** np.arange(4),
            lam=1.0,
            dt_min=float(disc.time_steps.min()),
        )
        if violation:
            with pytest.raises(ValueError):
                ClusteredLtsSolver(disc, clustering)
        else:
            ClusteredLtsSolver(disc, clustering)

    def test_negative_time_raises(self, elastic_disc):
        solver = GlobalTimeSteppingSolver(elastic_disc)
        with pytest.raises(ValueError):
            solver.run(-1.0)

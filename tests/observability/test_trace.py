"""Unit tests for the Chrome-trace exporter and its validator."""

import json

import pytest

from repro.observability import (
    Telemetry,
    build_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _lanes():
    lanes = []
    for rank in range(2):
        lane = Telemetry(enabled=True, trace=True, rank=rank, epoch=0.0)
        with lane.region("predict"):
            pass
        with lane.region("correct"):
            with lane.region("recv_wait"):
                pass
        lanes.append((lane.lane, lane.rank, lane.drain_events()))
    return lanes


class TestBuildChromeTrace:
    def test_payload_shape(self):
        payload = build_chrome_trace(_lanes())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in metadata} == {"rank 0", "rank 1"}
        assert len(slices) == 2 * 3  # predict, correct, correct/recv_wait per rank

    def test_slices_show_leaf_name_and_keep_full_path(self):
        payload = build_chrome_trace(_lanes())
        nested = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["args"]["path"] == "correct/recv_wait"
        ]
        assert nested and all(e["name"] == "recv_wait" for e in nested)
        assert all(e["cat"] == "correct" for e in nested)

    def test_dotted_region_category_is_first_segment(self):
        lane = Telemetry(enabled=True, trace=True, epoch=0.0)
        with lane.region("kernel.ck"):
            pass
        payload = build_chrome_trace([(lane.lane, 0, lane.drain_events())])
        (event,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert event["name"] == "kernel.ck" and event["cat"] == "kernel"

    def test_write_is_valid_json_on_disk(self, tmp_path):
        path = write_chrome_trace(tmp_path / "traces" / "run.json", _lanes())
        payload = json.loads(path.read_text())
        by_lane = validate_chrome_trace(payload, expect_lanes=2)
        assert by_lane == {"rank 0": 3, "rank 1": 3}


class TestValidateChromeTrace:
    def test_accepts_well_formed(self):
        assert validate_chrome_trace(build_chrome_trace(_lanes()))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="missing or empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_negative_duration(self):
        payload = build_chrome_trace(_lanes())
        next(e for e in payload["traceEvents"] if e["ph"] == "X")["dur"] = -1.0
        with pytest.raises(ValueError, match="negative dur"):
            validate_chrome_trace(payload)

    def test_rejects_non_numeric_timestamp(self):
        payload = build_chrome_trace(_lanes())
        next(e for e in payload["traceEvents"] if e["ph"] == "X")["ts"] = "soon"
        with pytest.raises(ValueError, match="non-numeric ts"):
            validate_chrome_trace(payload)

    def test_rejects_unnamed_lane(self):
        payload = build_chrome_trace(_lanes())
        payload["traceEvents"] = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        with pytest.raises(ValueError, match="without thread_name"):
            validate_chrome_trace(payload)

    def test_rejects_too_few_lanes(self):
        with pytest.raises(ValueError, match="at least 4"):
            validate_chrome_trace(build_chrome_trace(_lanes()), expect_lanes=4)

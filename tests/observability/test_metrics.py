"""Unit tests for the metrics registry and cross-rank merging."""

import pytest

from repro.observability import Histogram, MetricsRegistry, merge_metrics


class TestHistogram:
    def test_empty_histogram_is_all_zero(self):
        assert Histogram().as_dict() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_observe_tracks_moments(self):
        h = Histogram()
        for value in (1.0, 3.0, 2.0):
            h.observe(value)
        snap = h.as_dict()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(6.0)
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("updates")
        registry.inc("updates", 9)
        registry.inc("bytes", 1024)
        snap = registry.as_dict()
        assert snap["counters"] == {"updates": 10, "bytes": 1024}
        # integer counters stay exact integers through the snapshot
        assert isinstance(snap["counters"]["updates"], int)

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.gauge("queue_depth", 3)
        registry.gauge("queue_depth", 1)
        assert registry.as_dict()["gauges"] == {"queue_depth": 1.0}

    def test_histograms_created_on_first_observe(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.25)
        registry.observe("latency", 0.75)
        snap = registry.as_dict()["histograms"]["latency"]
        assert snap["count"] == 2 and snap["mean"] == pytest.approx(0.5)


class TestMergeMetrics:
    def test_counters_sum_across_ranks(self):
        ranks = []
        for updates in (10, 20, 30):
            registry = MetricsRegistry()
            registry.inc("updates", updates)
            ranks.append(registry.as_dict())
        merged = merge_metrics(ranks)
        assert merged["counters"]["updates"] == 60

    def test_gauges_keep_maximum(self):
        snapshots = []
        for peak in (5.0, 9.0, 2.0):
            registry = MetricsRegistry()
            registry.gauge("peak_mb", peak)
            snapshots.append(registry.as_dict())
        assert merge_metrics(snapshots)["gauges"]["peak_mb"] == 9.0

    def test_histograms_merge_moments(self):
        a = MetricsRegistry()
        a.observe("wait", 1.0)
        a.observe("wait", 3.0)
        b = MetricsRegistry()
        b.observe("wait", 5.0)
        merged = merge_metrics([a.as_dict(), b.as_dict()])["histograms"]["wait"]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(9.0)
        assert merged["min"] == 1.0 and merged["max"] == 5.0
        assert merged["mean"] == pytest.approx(3.0)

    def test_disjoint_names_union(self):
        a = MetricsRegistry()
        a.inc("only_a", 1)
        b = MetricsRegistry()
        b.inc("only_b", 2)
        merged = merge_metrics([a.as_dict(), b.as_dict()])
        assert merged["counters"] == {"only_a": 1, "only_b": 2}

    def test_merge_of_nothing_is_empty(self):
        assert merge_metrics([]) == {"counters": {}, "gauges": {}, "histograms": {}}

"""Unit tests for the metrics registry and cross-rank merging."""

import pytest

from repro.observability import Histogram, MetricsRegistry, merge_metrics


class TestHistogram:
    def test_empty_histogram_is_all_zero(self):
        assert Histogram().as_dict() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_observe_tracks_moments(self):
        h = Histogram()
        for value in (1.0, 3.0, 2.0):
            h.observe(value)
        snap = h.as_dict()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(6.0)
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("updates")
        registry.inc("updates", 9)
        registry.inc("bytes", 1024)
        snap = registry.as_dict()
        assert snap["counters"] == {"updates": 10, "bytes": 1024}
        # integer counters stay exact integers through the snapshot
        assert isinstance(snap["counters"]["updates"], int)

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.gauge("queue_depth", 3)
        registry.gauge("queue_depth", 1)
        assert registry.as_dict()["gauges"] == {"queue_depth": 1.0}

    def test_histograms_created_on_first_observe(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.25)
        registry.observe("latency", 0.75)
        snap = registry.as_dict()["histograms"]["latency"]
        assert snap["count"] == 2 and snap["mean"] == pytest.approx(0.5)


class TestMergeMetrics:
    def test_counters_sum_across_ranks(self):
        ranks = []
        for updates in (10, 20, 30):
            registry = MetricsRegistry()
            registry.inc("updates", updates)
            ranks.append(registry.as_dict())
        merged = merge_metrics(ranks)
        assert merged["counters"]["updates"] == 60

    def test_gauges_keep_maximum(self):
        snapshots = []
        for peak in (5.0, 9.0, 2.0):
            registry = MetricsRegistry()
            registry.gauge("peak_mb", peak)
            snapshots.append(registry.as_dict())
        assert merge_metrics(snapshots)["gauges"]["peak_mb"] == 9.0

    def test_histograms_merge_moments(self):
        a = MetricsRegistry()
        a.observe("wait", 1.0)
        a.observe("wait", 3.0)
        b = MetricsRegistry()
        b.observe("wait", 5.0)
        merged = merge_metrics([a.as_dict(), b.as_dict()])["histograms"]["wait"]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(9.0)
        assert merged["min"] == 1.0 and merged["max"] == 5.0
        assert merged["mean"] == pytest.approx(3.0)

    def test_disjoint_names_union(self):
        a = MetricsRegistry()
        a.inc("only_a", 1)
        b = MetricsRegistry()
        b.inc("only_b", 2)
        merged = merge_metrics([a.as_dict(), b.as_dict()])
        assert merged["counters"] == {"only_a": 1, "only_b": 2}

    def test_merge_of_nothing_is_empty(self):
        assert merge_metrics([]) == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMergeEdgeCases:
    """The snapshots the process backend actually ships: empty first mirrors
    of a respawned worker, zero-count histogram placeholders, and repeated
    merges of cumulative snapshots (``_telemetry_base`` chains)."""

    def test_empty_snapshots_are_neutral(self):
        full = MetricsRegistry()
        full.inc("updates", 7)
        full.observe("wait", 2.0)
        merged = merge_metrics([{}, full.as_dict(), {}])
        assert merged["counters"]["updates"] == 7
        assert merged["histograms"]["wait"]["count"] == 1

    def test_zero_count_histogram_does_not_clamp_range(self):
        # Histogram().as_dict() carries 0.0 min/max placeholders; a merge with
        # a real histogram must ignore them instead of widening min to 0.0
        zero = {"histograms": {"wait": Histogram().as_dict()}}
        full = MetricsRegistry()
        full.observe("wait", 2.0)
        full.observe("wait", 4.0)
        for snapshots in ([zero, full.as_dict()], [full.as_dict(), zero]):
            merged = merge_metrics(snapshots)["histograms"]["wait"]
            assert merged["count"] == 2
            assert merged["min"] == 2.0 and merged["max"] == 4.0
            assert merged["mean"] == pytest.approx(3.0)

    def test_all_zero_count_histograms_stay_placeholder(self):
        zero = {"histograms": {"wait": Histogram().as_dict()}}
        merged = merge_metrics([zero, zero])["histograms"]["wait"]
        assert merged == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_negative_observations_survive_zero_count_merge(self):
        # max(placeholder 0.0, real max) would also corrupt all-negative data
        zero = {"histograms": {"delta": Histogram().as_dict()}}
        full = MetricsRegistry()
        full.observe("delta", -3.0)
        merged = merge_metrics([zero, full.as_dict()])["histograms"]["delta"]
        assert merged["min"] == -3.0 and merged["max"] == -3.0

    def test_gauges_max_not_sum_across_respawn_mirrors(self):
        # gauges are levels, not flows: merging a worker generation's mirror
        # with the base must not double the value the way counters add up
        registry = MetricsRegistry()
        registry.gauge("peak_mb", 120.0)
        registry.inc("updates", 5)
        snap = registry.as_dict()
        merged = merge_metrics([snap, snap])
        assert merged["gauges"]["peak_mb"] == 120.0
        assert merged["counters"]["updates"] == 10

    def test_histogram_chain_merge_matches_single_registry(self):
        # base <- gen1 <- gen2 chained pairwise (how _telemetry_base grows
        # across process-worker respawns) must equal one flat registry
        observations = ([1.0, 5.0], [2.0], [0.5, 3.5, 4.0])
        generations = []
        flat = MetricsRegistry()
        for values in observations:
            registry = MetricsRegistry()
            for value in values:
                registry.observe("wait", value)
                flat.observe("wait", value)
            generations.append(registry.as_dict())
        base = {"histograms": {}}
        for generation in generations:
            base = {"histograms": merge_metrics([base, generation])["histograms"]}
        chained = base["histograms"]["wait"]
        expected = flat.as_dict()["histograms"]["wait"]
        assert chained["count"] == expected["count"]
        assert chained["sum"] == pytest.approx(expected["sum"])
        assert chained["min"] == expected["min"]
        assert chained["max"] == expected["max"]
        assert chained["mean"] == pytest.approx(expected["mean"])

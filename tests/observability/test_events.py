"""Unit tests for the JSONL run ledger, its validator and the heartbeat."""

import io
import json

import pytest

from repro.observability import (
    Heartbeat,
    RunLedger,
    host_block,
    peak_rss_mb,
    provenance_block,
    read_ledger,
    spec_content_hash,
    validate_run_ledger,
)
from repro.observability.events import LEDGER_FORMAT_VERSION
from repro.scenarios.registry import get_scenario


@pytest.fixture(scope="module")
def spec():
    return get_scenario("loh3")


def _cycle(index, updates_per_cycle=100):
    return {
        "cycle": index,
        "t": 0.05 * index,
        "wall_s": 0.1 * index,
        "cycle_wall_s": 0.1,
        "element_updates": updates_per_cycle * index,
        "updates_per_s": updates_per_cycle / 0.1,
        "peak_rss_mb": 80.0,
    }


def _write_segment(ledger, spec, cycles, resumed_at=0, final=False):
    ledger.header(
        spec, total_cycles=resumed_at + cycles, macro_dt=0.05,
        resumed_at_cycle=resumed_at,
    )
    for index in range(resumed_at + 1, resumed_at + cycles + 1):
        ledger.cycle(_cycle(index))
    if final:
        ledger.final(
            {
                "cycles": resumed_at + cycles,
                "t": 0.05 * (resumed_at + cycles),
                "wall_s": 0.1 * (resumed_at + cycles),
                "element_updates": 100 * (resumed_at + cycles),
            }
        )


class TestProvenance:
    def test_spec_hash_is_content_addressed(self, spec):
        digest = spec_content_hash(spec)
        assert len(digest) == 64
        # a JSON round-trip preserves content, so the hash is stable
        from repro.scenarios.spec import ScenarioSpec

        assert spec_content_hash(ScenarioSpec.from_json(spec.to_json())) == digest
        # any content change moves it
        assert spec_content_hash(spec.with_overrides(order=spec.order + 1)) != digest

    def test_provenance_block_shape(self, spec):
        block = provenance_block(spec)
        assert block["repro_version"]
        assert block["spec_sha256"] == spec_content_hash(spec)
        assert "git_sha" in block  # None outside a git checkout is fine

    def test_host_block_names_the_platform(self):
        block = host_block()
        assert block["cpu_count"] >= 1
        assert block["python"] and block["numpy"] and block["platform"]

    def test_peak_rss_is_positive(self):
        assert peak_rss_mb() > 0.0


class TestLedgerRoundTrip:
    def test_complete_ledger_validates(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            _write_segment(ledger, spec, cycles=3, final=True)
        records = read_ledger(path)
        info = validate_run_ledger(records, expect_complete=True)
        assert info == {
            "segments": 1,
            "cycles": 3,
            "complete": True,
            "last_cycle": records[-2],
        }
        header = records[0]
        assert header["format_version"] == LEDGER_FORMAT_VERSION
        assert header["provenance"]["spec_sha256"] == spec_content_hash(spec)
        assert header["run"]["scenario"] == spec.name

    def test_every_record_is_flushed(self, spec, tmp_path):
        # crash durability: records must be on disk *before* close
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(path)
        _write_segment(ledger, spec, cycles=2)
        assert len(read_ledger(path)) == 3
        ledger.close()

    def test_resumed_segment_appends_with_new_header(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            _write_segment(ledger, spec, cycles=2)
        with RunLedger(path) as ledger:  # the resumed runner re-opens append
            _write_segment(ledger, spec, cycles=2, resumed_at=2, final=True)
        info = validate_run_ledger(read_ledger(path), expect_complete=True)
        assert info["segments"] == 2
        assert info["cycles"] == 4
        assert info["last_cycle"]["cycle"] == 4

    def test_torn_tail_is_tolerated(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            _write_segment(ledger, spec, cycles=3)
        # a SIGKILL mid-write leaves a truncated final line
        text = path.read_text()
        path.write_text(text[: len(text) - 17])
        records = read_ledger(path)
        info = validate_run_ledger(records)
        assert info["cycles"] == 2 and not info["complete"]

    def test_mid_file_corruption_raises(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            _write_segment(ledger, spec, cycles=3)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # not the tail: real corruption
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt ledger line 2"):
            read_ledger(path)


class TestValidator:
    def test_empty_ledger_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_run_ledger([])

    def test_must_start_with_header(self):
        with pytest.raises(ValueError, match="header"):
            validate_run_ledger([{"kind": "cycle", **_cycle(1)}])

    def test_incomplete_rejected_when_completion_expected(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            _write_segment(ledger, spec, cycles=2)
        with pytest.raises(ValueError, match="final"):
            validate_run_ledger(read_ledger(path), expect_complete=True)

    def test_non_monotone_cycle_index_rejected(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.header(spec, total_cycles=2, macro_dt=0.05)
            ledger.cycle(_cycle(2))
            ledger.cycle(_cycle(1))
        with pytest.raises(ValueError, match="did not advance"):
            validate_run_ledger(read_ledger(path))

    def test_non_finite_field_rejected(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.header(spec, total_cycles=1, macro_dt=0.05)
            bad = _cycle(1)
            bad["wall_s"] = None
            ledger.cycle(bad)
        with pytest.raises(ValueError, match="wall_s"):
            validate_run_ledger(read_ledger(path))

    def test_decreasing_update_count_rejected(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.header(spec, total_cycles=2, macro_dt=0.05)
            ledger.cycle(_cycle(1))
            shrunk = _cycle(2)
            shrunk["element_updates"] = 1
            ledger.cycle(shrunk)
        with pytest.raises(ValueError, match="decreased"):
            validate_run_ledger(read_ledger(path))

    def test_unknown_kind_rejected(self, spec, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.header(spec, total_cycles=1, macro_dt=0.05)
            ledger.write({"kind": "mystery"})
        with pytest.raises(ValueError, match="mystery"):
            validate_run_ledger(read_ledger(path))


class TestHeartbeat:
    def test_emits_progress_lines_with_eta(self):
        stream = io.StringIO()
        beat = Heartbeat("loh3", total_cycles=3, stream=stream, min_interval_s=0.0)
        for index in range(1, 4):
            beat.emit(_cycle(index))
        beat.close()
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert "cycle 1/3" in lines[0] and "ETA" in lines[0]
        assert "cycle 3/3" in lines[-1]

    def test_throttles_but_always_emits_final_cycle(self):
        stream = io.StringIO()
        beat = Heartbeat("loh3", total_cycles=50, stream=stream, min_interval_s=3600)
        for index in range(1, 51):
            beat.emit(_cycle(index))
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2  # the first emission plus the forced final one
        assert "cycle 50/50" in lines[-1]


class TestRunnerIntegration:
    def test_run_writes_ledger_and_stamps_summary(self, tmp_path):
        from repro.scenarios.runner import make_runner

        path = tmp_path / "run.jsonl"
        spec = get_scenario(
            "loh3",
            extent_m=4000.0,
            characteristic_length=2000.0,
            order=2,
            n_mechanisms=1,
            n_clusters=2,
            lam=1.0,
            n_cycles=2,
        ).with_overrides(events=str(path))
        assert spec.output.telemetry  # events implies telemetry
        summary = make_runner(spec).run()
        assert summary["provenance"]["spec_sha256"] == spec_content_hash(spec)
        assert summary["events"] == str(path)
        records = read_ledger(path)
        info = validate_run_ledger(records, expect_complete=True)
        assert info["cycles"] == 2
        assert info["last_cycle"]["element_updates"] == summary["element_updates"]
        assert json.loads(path.read_text().splitlines()[0])["run"]["total_cycles"] == 2

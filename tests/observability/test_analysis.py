"""Unit tests for the derived analytics behind ``repro report``.

All blocks are exercised on synthetic run summaries, so the expected
numbers are exact; the end-to-end path over real runs lives in
``tests/scenarios/test_events_and_report.py``.
"""

import json

import pytest

from repro.observability import (
    RunLedger,
    analyze_run,
    build_report,
    load_run,
    render_report,
)
from repro.observability.analysis import (
    comparison_block,
    imbalance_block,
    kernel_stage_block,
    ledger_block,
    overlap_block,
    speedup_block,
)


def _lane(name, regions=None, counters=None):
    return {
        "lane": name,
        "regions": {
            path: {"count": 1, "total_s": total} for path, total in (regions or {}).items()
        },
        "counters": counters or {},
    }


def _summary(lanes, **extra):
    base = {
        "scenario": "loh3",
        "solver": "lts",
        "n_elements": 100,
        "order": 2,
        "n_clusters": 2,
        "lambda": 0.8,
        "cycles": 4,
        "element_updates": 600,
        "theoretical_speedup": 1.5,
        "t_end": 2.0,
        "wall_s": 8.0,
        "telemetry": {"lanes": lanes, "regions": {}, "derived": {}},
    }
    base.update(extra)
    return base


class TestOverlapBlock:
    def test_efficiency_is_interior_over_window(self):
        summary = _summary(
            [
                _lane("rank 0", {"predict.interior": 3.0, "correct/recv_wait": 1.0}),
                _lane("rank 1", {"predict.interior": 2.0, "correct/recv_wait": 2.0}),
            ]
        )
        block = overlap_block(summary)
        by_lane = {r["lane"]: r for r in block["ranks"]}
        assert by_lane["rank 0"]["efficiency"] == pytest.approx(0.75)
        assert by_lane["rank 1"]["efficiency"] == pytest.approx(0.5)
        assert block["interior_s"] == pytest.approx(5.0)
        assert block["exposed_wait_s"] == pytest.approx(3.0)
        assert block["efficiency"] == pytest.approx(5.0 / 8.0)

    def test_lane_with_no_data_is_skipped(self):
        summary = _summary(
            [
                _lane("rank 0", {"predict.interior": 1.0}),
                _lane("rank 1", {"predict": 2.0}),  # no interior, no wait
            ]
        )
        block = overlap_block(summary)
        assert [r["lane"] for r in block["ranks"]] == ["rank 0"]
        assert block["ranks"][0]["efficiency"] == 1.0  # never blocked

    def test_none_without_rank_lanes(self):
        assert overlap_block(_summary([_lane("main", {"predict.interior": 1.0})])) is None
        assert overlap_block(_summary([])) is None


class TestImbalanceBlock:
    def test_max_over_mean_of_busy_and_updates(self):
        summary = _summary(
            [
                _lane("rank 0", {"predict": 3.0, "correct": 1.0}, {"updates/cluster0": 300}),
                _lane("rank 1", {"predict": 1.0, "correct": 1.0}, {"updates/cluster0": 100}),
            ]
        )
        block = imbalance_block(summary)
        assert block["busy_imbalance"] == pytest.approx(4.0 / 3.0)
        assert block["update_imbalance"] == pytest.approx(1.5)
        assert block["busiest"] == "rank 0"

    def test_single_lane_is_vacuous(self):
        summary = _summary([_lane("rank 0", {"predict": 1.0}, {"updates/cluster0": 10})])
        assert imbalance_block(summary) is None

    def test_non_busy_regions_do_not_count(self):
        summary = _summary(
            [
                _lane("rank 0", {"predict": 1.0, "kernel.volume": 9.0}),
                _lane("rank 1", {"predict": 1.0}),
            ]
        )
        assert imbalance_block(summary)["busy_imbalance"] == pytest.approx(1.0)


class TestSpeedupBlock:
    def test_model_and_update_ratio(self):
        block = speedup_block(_summary([]))
        # GTS at the macro cadence: 100 elements * 2^(2-1) updates per cycle
        # against the run's measured 600 / 4 cycles
        assert block["update_ratio"] == pytest.approx(200.0 / 150.0)
        assert block["model_vs_gts_at_lambda_dt"] == pytest.approx(1.5 / 0.8)
        assert block["measured"] is None

    def test_measured_against_comparable_gts_reference(self):
        lts = _summary([])
        gts = _summary([], solver="gts", wall_s=24.0)
        block = speedup_block(lts, gts)
        # both simulate 2 s: 12 wall-per-sim-s GTS over 4 LTS
        assert block["measured"] == pytest.approx(3.0)
        assert block["attained_vs_model"] == pytest.approx(3.0 / (1.5 / 0.8))

    def test_incomparable_gts_reference_is_ignored(self):
        block = speedup_block(_summary([]), _summary([], solver="gts", n_elements=999))
        assert block["measured"] is None

    def test_none_for_gts_runs(self):
        assert speedup_block(_summary([], solver="gts")) is None


class TestKernelStageBlock:
    def test_gflops_from_flop_model_and_region_seconds(self):
        summary = _summary([])
        summary["telemetry"] = {
            "lanes": [],
            "regions": {
                "predict/kernel.ck": {"count": 1, "total_s": 2.0},
                "predict/kernel.integrate": {"count": 1, "total_s": 1.0},
                "correct/kernel.volume": {"count": 1, "total_s": 4.0},
            },
            "derived": {
                "flops_per_stage": {"time_kernel": 1_000_000, "volume_kernel": 2_000_000}
            },
        }
        block = kernel_stage_block(summary)
        # time stage: 600 updates * 1 MFLOP over the ck+integrate 3 s
        assert block["time"]["gflop"] == pytest.approx(0.6)
        assert block["time"]["gflop_per_s"] == pytest.approx(0.2)
        assert block["volume"]["gflop_per_s"] == pytest.approx(0.3)
        assert "surface_local" not in block  # no timed region -> no rate

    def test_none_without_flop_stamp(self):
        assert kernel_stage_block(_summary([])) is None


class TestLedgerBlock:
    def _records(self, spec, tmp_path, waits=False):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.header(spec, total_cycles=2, macro_dt=0.5)
            for cycle, wall in ((1, 0.2), (2, 0.4)):
                record = {
                    "cycle": cycle, "t": 0.5 * cycle, "wall_s": 0.2 + 0.4 * (cycle - 1),
                    "cycle_wall_s": wall, "element_updates": 150 * cycle,
                    "updates_per_s": 150 / wall, "peak_rss_mb": 50.0 + cycle,
                    "comm_bytes": 1000 * cycle,
                }
                if waits:
                    record["recv_wait_s"] = {"rank 0": 0.01 * cycle}
                ledger.cycle(record)
        from repro.observability import read_ledger

        return read_ledger(path)

    def test_cycle_statistics(self, tmp_path):
        from repro.scenarios.registry import get_scenario

        block = ledger_block(self._records(get_scenario("loh3"), tmp_path, waits=True))
        assert block["cycles"] == 2 and not block["complete"]
        assert block["cycle_wall_s"] == {
            "mean": pytest.approx(0.3), "min": pytest.approx(0.2), "max": pytest.approx(0.4),
        }
        assert block["updates_per_s"]["last"] == pytest.approx(150 / 0.4)
        assert block["recv_wait_s"]["rank 0"] == pytest.approx(0.03)
        assert block["comm_bytes"] == 2000
        assert block["peak_rss_mb"] == pytest.approx(52.0)

    def test_empty_input_is_none(self):
        assert ledger_block([]) is None


class TestComparisonAndReport:
    def test_comparison_speedup_vs_first(self):
        runs = [
            {"label": "ref", "path": "ref", "summary": _summary([], wall_s=8.0)},
            {"label": "opt", "path": "opt", "summary": _summary([], wall_s=4.0)},
            {"label": "other", "path": "other",
             "summary": _summary([], wall_s=2.0, scenario="la_habra")},
        ]
        block = comparison_block(runs)
        assert block["baseline"] == "ref"
        rows = {row["label"]: row for row in block["rows"]}
        assert rows["opt"]["speedup_vs_first"] == pytest.approx(2.0)
        assert rows["other"]["speedup_vs_first"] is None
        assert not rows["other"]["comparable"]

    def test_single_run_has_no_comparison(self):
        assert comparison_block([{"label": "a", "path": "a", "summary": _summary([])}]) is None

    def test_analyze_run_collects_blocks_and_provenance(self):
        summary = _summary(
            [_lane("rank 0", {"predict.interior": 1.0, "correct/recv_wait": 1.0})],
            provenance={"git_sha": "abc", "repro_version": "1", "spec_sha256": "f" * 64},
        )
        entry = analyze_run({"label": "x", "path": "x", "summary": summary, "ledger": None})
        assert entry["provenance"]["spec_sha256"] == "f" * 64
        assert entry["blocks"]["overlap"]["efficiency"] == pytest.approx(0.5)
        assert entry["blocks"]["imbalance"] is None
        assert entry["blocks"]["lts_speedup"]["theoretical_model"] == 1.5
        assert entry["blocks"]["ledger"] is None

    def test_build_report_uses_first_gts_run_as_reference(self, tmp_path):
        for name, summary in (
            ("lts_out", _summary([])),
            ("gts_out", _summary([], solver="gts", wall_s=24.0)),
        ):
            directory = tmp_path / name
            directory.mkdir()
            (directory / "run_summary.json").write_text(json.dumps(summary))
        report = build_report([tmp_path / "lts_out", tmp_path / "gts_out"])
        lts_entry = report["runs"][0]
        assert lts_entry["blocks"]["lts_speedup"]["measured"] == pytest.approx(3.0)
        assert report["comparison"]["baseline"] == "lts_out"
        text = render_report(report)
        assert "measured wall-clock speedup" in text
        assert "== comparison (baseline: lts_out) ==" in text

    def test_render_mentions_partial_ledgers(self, tmp_path):
        from repro.scenarios.registry import get_scenario

        records = TestLedgerBlock()._records(get_scenario("loh3"), tmp_path)
        entry = analyze_run({"label": "x", "path": "x", "summary": None, "ledger": records})
        text = render_report({"runs": [entry], "comparison": None})
        assert "PARTIAL (run did not finish)" in text


class TestLoadRun:
    def test_directory_with_summary_and_sibling_ledger(self, tmp_path):
        from repro.scenarios.registry import get_scenario

        directory = tmp_path / "out"
        directory.mkdir()
        (directory / "run_summary.json").write_text(json.dumps(_summary([])))
        with RunLedger(directory / "events.jsonl") as ledger:
            ledger.header(get_scenario("loh3"), total_cycles=1, macro_dt=0.5)
        run = load_run(directory)
        assert run["label"] == "out"
        assert run["summary"]["scenario"] == "loh3"
        assert run["ledger"][0]["kind"] == "header"

    def test_bare_ledger_is_summary_less(self, tmp_path):
        from repro.scenarios.registry import get_scenario

        path = tmp_path / "events.jsonl"
        with RunLedger(path) as ledger:
            ledger.header(get_scenario("loh3"), total_cycles=1, macro_dt=0.5)
        run = load_run(path)
        assert run["summary"] is None and run["label"] == "events"
        assert run["ledger"][0]["kind"] == "header"

    def test_missing_summary_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path)

"""Unit tests for the hierarchical region timers."""

import pickle
import time

import pytest

from repro.observability import NULL_TELEMETRY, Telemetry, TelemetryConfig, merge_snapshots
from repro.observability.timers import _NULL_REGION


class TestRegionTimers:
    def test_single_region_aggregates_count_and_total(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.region("predict"):
                pass
        regions = telemetry.regions()
        assert regions["predict"]["count"] == 3
        assert regions["predict"]["total_s"] >= 0.0

    def test_nesting_joins_paths_with_slash(self):
        telemetry = Telemetry()
        with telemetry.region("correct"):
            with telemetry.region("recv_wait"):
                pass
            with telemetry.region("recv_wait"):
                pass
        regions = telemetry.regions()
        assert set(regions) == {"correct", "correct/recv_wait"}
        assert regions["correct/recv_wait"]["count"] == 2
        assert regions["correct"]["count"] == 1
        # the parent region covers its children
        assert regions["correct"]["total_s"] >= regions["correct/recv_wait"]["total_s"]

    def test_nesting_unwinds_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.region("outer"):
                with telemetry.region("inner"):
                    raise RuntimeError("boom")
        # the stack unwound: a fresh region is top-level again
        with telemetry.region("after"):
            pass
        assert "after" in telemetry.regions()
        assert "outer/after" not in telemetry.regions()

    def test_region_measures_elapsed_time(self):
        telemetry = Telemetry()
        with telemetry.region("sleep"):
            time.sleep(0.01)
        assert telemetry.regions()["sleep"]["total_s"] >= 0.009

    def test_disabled_lane_returns_shared_null_region(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.region("predict") is _NULL_REGION
        assert telemetry.region("other") is _NULL_REGION
        with telemetry.region("predict"):
            pass
        assert telemetry.regions() == {}
        assert telemetry.snapshot()["counters"] == {}

    def test_null_telemetry_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.inc("updates", 5)
        assert NULL_TELEMETRY.metrics.counters == {}

    def test_guarded_metric_shorthands(self):
        telemetry = Telemetry()
        telemetry.inc("updates", 4)
        telemetry.inc("updates")
        telemetry.gauge("clusters", 3)
        telemetry.observe("latency", 0.5)
        snap = telemetry.snapshot()
        assert snap["counters"]["updates"] == 5
        assert snap["gauges"]["clusters"] == 3.0
        assert snap["histograms"]["latency"]["count"] == 1


class TestTraceEvents:
    def test_events_recorded_only_when_tracing(self):
        plain = Telemetry(enabled=True, trace=False)
        with plain.region("predict"):
            pass
        assert plain.drain_events() == []

        tracing = Telemetry(enabled=True, trace=True)
        with tracing.region("predict"):
            pass
        events = tracing.drain_events()
        assert len(events) == 1
        path, start_us, dur_us = events[0]
        assert path == "predict"
        assert start_us >= 0.0 and dur_us >= 0.0
        # draining is destructive
        assert tracing.drain_events() == []

    def test_shared_epoch_aligns_lanes(self):
        epoch = time.perf_counter()
        config = TelemetryConfig(enabled=True, trace=True)
        lane0 = config.build(rank=0, epoch=epoch)
        lane1 = config.build(rank=1, epoch=epoch)
        with lane0.region("a"):
            pass
        with lane1.region("b"):
            pass
        (_, start0, _), = lane0.drain_events()
        (_, start1, _), = lane1.drain_events()
        assert start1 >= start0 >= 0.0


class TestConfigAndMerge:
    def test_config_is_picklable_and_builds_lanes(self):
        config = pickle.loads(pickle.dumps(TelemetryConfig(enabled=True, trace=True)))
        lane = config.build(rank=2)
        assert lane.enabled and lane.trace_enabled
        assert lane.rank == 2 and lane.lane == "rank 2"

    def test_disabled_config_builds_disabled_lane(self):
        lane = TelemetryConfig().build(rank=0)
        assert not lane.enabled and not lane.trace_enabled

    def test_merge_snapshots_sums_regions_and_counters(self):
        lanes = [Telemetry(rank=r) for r in range(3)]
        for lane in lanes:
            with lane.region("predict"):
                pass
            lane.inc("updates", 10)
        merged = merge_snapshots([lane.snapshot() for lane in lanes])
        assert merged["regions"]["predict"]["count"] == 3
        assert merged["counters"]["updates"] == 30

    def test_merge_skips_empty_snapshots(self):
        lane = Telemetry()
        lane.inc("updates", 2)
        merged = merge_snapshots([{}, lane.snapshot(), {}])
        assert merged["counters"]["updates"] == 2
        assert merged["regions"] == {}

    def test_merge_disjoint_lanes_unions_regions_and_counters(self):
        # rank lanes touch disjoint region paths (e.g. only one rank waits);
        # the merge must union them without cross-contamination
        a = Telemetry(rank=0)
        with a.region("predict"):
            pass
        a.inc("updates/cluster0", 4)
        b = Telemetry(rank=1)
        with b.region("correct"):
            with b.region("recv_wait"):
                pass
        b.inc("updates/cluster1", 6)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert set(merged["regions"]) == {"predict", "correct", "correct/recv_wait"}
        assert merged["regions"]["predict"]["count"] == 1
        assert merged["counters"] == {"updates/cluster0": 4, "updates/cluster1": 6}

    def test_merge_of_cumulative_mirror_with_empty_base_is_identity(self):
        # the process backend merges _telemetry_base (initially {}) with each
        # worker mirror every respawn; an empty base must be a no-op
        lane = Telemetry()
        with lane.region("predict"):
            pass
        lane.observe("cycle_s", 0.25)
        snap = lane.snapshot()
        merged = merge_snapshots([{}, snap])
        assert merged["regions"] == snap["regions"]
        assert merged["histograms"]["cycle_s"]["count"] == 1

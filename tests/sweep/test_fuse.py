"""Fused sweep collapse: grouping rules, demux byte-identity, manifest rows.

``repro sweep --fuse`` may only change *how* members run, never *what* they
produce: the per-member seismogram CSVs of a fused sweep must be
byte-identical to the unfused sweep's (ref/f64), the manifest must stay
per-member (with the grouping recorded on each row), and resume must keep
working when the pending subset regroups differently than the original run.
"""

import json
import shutil

import numpy as np
import pytest

from repro.scenarios import FusedSourceSpec, get_scenario
from repro.sweep import (
    SweepAxis,
    SweepSpec,
    can_fuse,
    collapse_members,
    fusable_signature,
    manifest_state,
    plan_fused_groups,
    read_manifest,
    run_sweep,
    validate_manifest,
)

T0_VALUES = [0.30, 0.40, 0.45, 0.50]


def fusable_sweep(**overrides):
    """Four members differing only in the wavelet onset: one fused group."""
    options = dict(
        order=2, n_clusters=2, lam=0.8, n_cycles=2, kernels="ref", precision="f64"
    )
    options.update(overrides)
    base = get_scenario(
        "loh3", extent_m=4000.0, characteristic_length=2000.0, n_mechanisms=1
    ).with_overrides(**options)
    return SweepSpec(
        base=base,
        axes=[SweepAxis(path="source.time_function.params.t0", values=T0_VALUES)],
        name="fusable-onset-sweep",
    )


class TestGroupingRules:
    def test_can_fuse_rejects_already_fused_members(self):
        spec = fusable_sweep().base
        assert can_fuse(spec)
        assert not can_fuse(spec.with_overrides(n_fused=2))

    def test_signature_ignores_fusable_axes_only(self):
        members = fusable_sweep().expand()
        signatures = {fusable_signature(m.spec) for m in members}
        assert len(signatures) == 1  # t0 is a fusable axis
        other = fusable_sweep(n_cycles=3).expand()[0]
        assert fusable_signature(other.spec) not in signatures

    def test_collapse_reconstructs_each_member_source(self):
        members = fusable_sweep().expand()
        collapsed = collapse_members(members)
        assert collapsed.solver.n_fused == 4
        assert len(collapsed.source.fused) == 4
        for f, member in enumerate(members):
            assert collapsed.source.slot(f) == member.spec.source

    def test_plan_groups_by_signature_and_min_width(self):
        members = fusable_sweep().expand()
        groups, singles = plan_fused_groups(members)
        assert len(groups) == 1 and not singles
        assert groups[0].group_id == "fused-0000"
        assert groups[0].width == 4
        assert [m.member_id for m in groups[0].members] == [
            "0000", "0001", "0002", "0003",
        ]
        # a lone pending member falls below min_width: runs standalone
        groups, singles = plan_fused_groups(members[:1])
        assert not groups and len(singles) == 1
        # already-fused members never regroup
        fused_member = members[0]
        fused_spec = collapse_members(members)
        object.__setattr__(fused_member, "spec", fused_spec)
        groups, singles = plan_fused_groups([fused_member] + list(members[1:]))
        assert all(m.spec.solver.n_fused == 0 for g in groups for m in g.members)
        assert fused_member in singles

    def test_mixed_axes_group_per_location(self):
        base = fusable_sweep().base
        sweep = SweepSpec(
            base=base,
            axes=[
                SweepAxis(
                    path="source.location",
                    values=[[2000.0, 2000.0, -2000.0], [1500.0, 1500.0, -1500.0]],
                ),
                SweepAxis(path="source.time_function.params.t0", values=[0.3, 0.5]),
            ],
        )
        groups, singles = plan_fused_groups(sweep.expand())
        assert [g.width for g in groups] == [2, 2] and not singles
        # groups collapse across t0 (fusable) but never across location
        for group in groups:
            locations = {m.spec.source.location for m in group.members}
            assert len(locations) == 1


@pytest.fixture(scope="module")
def fused_and_unfused(tmp_path_factory):
    """The same 4-member sweep run fused and unfused, for comparisons."""
    sweep = fusable_sweep()
    fused_dir = tmp_path_factory.mktemp("fused")
    unfused_dir = tmp_path_factory.mktemp("unfused")
    fused_tally = run_sweep(sweep, fused_dir, workers=0, fuse=True)
    unfused_tally = run_sweep(sweep, unfused_dir, workers=0)
    return sweep, fused_dir, fused_tally, unfused_dir, unfused_tally


class TestFusedSweepEndToEnd:
    def test_tally_reports_grouping(self, fused_and_unfused):
        _, _, tally, _, unfused_tally = fused_and_unfused
        assert tally["done"] == 4 and tally["failed"] == 0
        assert tally["fused_groups"] == 1
        assert tally["fused_members"] == 4
        assert unfused_tally["done"] == 4
        assert not unfused_tally.get("fused_groups")

    def test_demuxed_artifacts_byte_identical_to_unfused(self, fused_and_unfused):
        """The headline --fuse guarantee (ref/f64)."""
        sweep, fused_dir, _, unfused_dir, _ = fused_and_unfused
        for member in sweep.expand():
            fused_member_dir = fused_dir / "members" / member.member_id
            unfused_member_dir = unfused_dir / "members" / member.member_id
            csvs = sorted(p.name for p in unfused_member_dir.glob("*.csv"))
            assert csvs
            for name in csvs:
                assert (fused_member_dir / name).read_bytes() == (
                    unfused_member_dir / name
                ).read_bytes(), (member.member_id, name)

    def test_member_summaries_annotated_with_slot(self, fused_and_unfused):
        sweep, fused_dir, _, unfused_dir, _ = fused_and_unfused
        for member in sweep.expand():
            fused_summary = json.loads(
                (fused_dir / "members" / member.member_id / "run_summary.json").read_text()
            )
            demux = fused_summary["fused_demux"]
            assert demux["member"] == member.member_id
            assert demux["group"] == "fused-0000"
            assert demux["slot"] == member.index
            assert demux["width"] == 4
            assert demux["source"]["time_function"]["params"]["t0"] == pytest.approx(
                T0_VALUES[member.index]
            )
            unfused_summary = json.loads(
                (unfused_dir / "members" / member.member_id / "run_summary.json").read_text()
            )
            for key in ("t_end", "element_updates", "n_clusters", "n_elements"):
                assert fused_summary[key] == unfused_summary[key], key

    def test_group_artifacts_carry_the_fused_run(self, fused_and_unfused):
        _, fused_dir, _, _, _ = fused_and_unfused
        group_dir = fused_dir / "fused" / "fused-0000"
        summary = json.loads((group_dir / "run_summary.json").read_text())
        assert summary["n_fused"] == 4
        assert len(summary["fused_sources"]) == 4
        csvs = sorted(group_dir.glob("*.csv"))
        assert csvs
        header = csvs[0].read_text().splitlines()[0]
        assert header.startswith("time,vx_0,vx_1,vx_2,vx_3")

    def test_manifest_rows_stay_per_member_with_grouping(self, fused_and_unfused):
        _, fused_dir, _, _, _ = fused_and_unfused
        manifest = fused_dir / "manifest.jsonl"
        report = validate_manifest(manifest)
        assert report["complete"]
        assert report["members"] == {"done": 4}
        records = read_manifest(manifest)
        done = [r for r in records
                if r.get("record") == "member" and r["status"] == "done"]
        assert len(done) == 4
        for row in done:
            assert row["fused_group"] == "fused-0000"
            assert row["fused_width"] == 4
            assert row["fused_slot"] == int(row["member"])

    def test_resume_reruns_only_unfinished_member(self, fused_and_unfused, tmp_path):
        """Drop 0002's done row: the resumed pending set (width 1) falls
        below the fuse threshold and re-runs standalone -- whose artefacts
        must still be byte-identical to the unfused sweep's."""
        sweep, fused_dir, _, unfused_dir, _ = fused_and_unfused
        clone = tmp_path / "clone"
        shutil.copytree(fused_dir, clone)
        manifest = clone / "manifest.jsonl"
        kept = [
            line for line in manifest.read_text().splitlines()
            if not (
                '"member": "0002"' in line and '"status": "done"' in line
                or '"record": "final"' in line
            )
        ]
        manifest.write_text("\n".join(kept) + "\n")
        shutil.rmtree(clone / "members" / "0002")

        tally = run_sweep(sweep, clone, workers=0, resume=True, fuse=True)
        assert tally["skipped"] == 3
        assert tally["done"] == 1
        assert not tally.get("fused_groups")  # a single never fuses
        state = manifest_state(read_manifest(manifest))
        assert {m: r["status"] for m, r in state.items()} == {
            m: "done" for m in ("0000", "0001", "0002", "0003")
        }
        for name in sorted(p.name for p in (unfused_dir / "members" / "0002").glob("*.csv")):
            assert (clone / "members" / "0002" / name).read_bytes() == (
                unfused_dir / "members" / "0002" / name
            ).read_bytes()

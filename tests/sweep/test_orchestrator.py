"""End-to-end tests of the sweep service: manifest, cache proof, crashes.

The headline guarantees are tested for real: a 4-member shared-mesh sweep
pays preprocessing exactly once (the manifest's hit/miss counters prove
it), member results are bit-identical to a standalone ``repro run`` of the
same expanded spec, a worker SIGKILLed mid-member is retried and the sweep
still completes, and a sweep whose *parent* is SIGKILLed mid-flight leaves
a partial manifest that resumes without re-running finished members.
"""

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.observability import build_report, expand_report_paths, render_report
from repro.scenarios import get_scenario
from repro.scenarios.cli import main as cli_main
from repro.scenarios.outputs import write_outputs
from repro.scenarios.runner import make_runner
from repro.sweep import (
    SweepAxis,
    SweepSpec,
    manifest_member_paths,
    manifest_state,
    read_manifest,
    run_sweep,
    validate_manifest,
)
from repro.sweep.orchestrator import KILL_ENV, preprocessing_signature

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

LOCATIONS = [
    [0.0, 0.0, -1000.0],
    [500.0, 0.0, -1000.0],
    [0.0, 500.0, -1000.0],
    [250.0, 250.0, -500.0],
]


def tiny_sweep(n=4, **overrides):
    base = get_scenario(
        "loh3", extent_m=4000.0, characteristic_length=2000.0, n_mechanisms=1
    ).with_overrides(order=2, n_clusters=2, lam=0.8, n_cycles=2, **overrides)
    return SweepSpec(
        base=base,
        axes=[SweepAxis(path="source.location", values=LOCATIONS[:n])],
        name="tiny-source-sweep",
    )


@pytest.fixture(scope="module")
def inline_sweep(tmp_path_factory):
    """One 4-member inline sweep shared (read-only) by the fast tests."""
    out_dir = tmp_path_factory.mktemp("sweep")
    sweep = tiny_sweep()
    tally = run_sweep(sweep, out_dir, workers=0)
    return sweep, out_dir, tally


class TestInlineSweep:
    def test_tally(self, inline_sweep):
        _, _, tally = inline_sweep
        assert tally["n_members"] == 4
        assert tally["done"] == 4
        assert tally["failed"] == 0
        assert tally["skipped"] == 0

    def test_manifest_validates_complete(self, inline_sweep):
        _, out_dir, _ = inline_sweep
        report = validate_manifest(out_dir / "manifest.jsonl")
        assert report["complete"]
        assert report["members"] == {"done": 4}
        assert report["records"] == {"header": 1, "prewarm": 1, "member": 8,
                                     "final": 1}

    def test_preprocessing_paid_exactly_once(self, inline_sweep):
        """The manifest counters prove the shared mesh was built once."""
        sweep, out_dir, tally = inline_sweep
        assert tally["prewarmed"] == 1  # all 4 members share one signature
        signatures = {preprocessing_signature(m.spec) for m in sweep.expand()}
        assert len(signatures) == 1

        records = read_manifest(out_dir / "manifest.jsonl")
        prewarms = [r for r in records if r["record"] == "prewarm"]
        assert len(prewarms) == 1
        assert any(c["misses"] > 0 for c in prewarms[0]["cache"].values())

        done = [r for r in records
                if r["record"] == "member" and r["status"] == "done"]
        assert len(done) == 4
        for row in done:
            # every member ran against a warm cache: pure hits, zero misses
            assert row["cache"], row["member"]
            for stage, counters in row["cache"].items():
                assert counters["misses"] == 0, (row["member"], stage)
                assert counters["hits"] > 0, (row["member"], stage)

    def test_member_artifacts_on_disk(self, inline_sweep):
        _, out_dir, _ = inline_sweep
        for member_id in ("0000", "0001", "0002", "0003"):
            member_dir = out_dir / "members" / member_id
            assert (member_dir / "run_summary.json").exists()
            assert (member_dir / "run.jsonl").exists()  # events on by default

    def test_member_bit_identical_to_standalone_run(self, inline_sweep, tmp_path):
        sweep, out_dir, _ = inline_sweep
        member = sweep.expand()[1]
        runner = make_runner(member.spec)
        summary = runner.run()
        write_outputs(runner, tmp_path, summary=summary)

        member_dir = out_dir / "members" / member.member_id
        sweep_summary = json.loads((member_dir / "run_summary.json").read_text())
        for key in ("t_end", "element_updates", "lambda", "n_clusters",
                    "n_elements"):
            assert sweep_summary[key] == summary[key], key
        csvs = sorted(p.name for p in tmp_path.glob("*.csv"))
        assert csvs
        for name in csvs:
            assert (member_dir / name).read_bytes() == (tmp_path / name).read_bytes()

    def test_resume_of_complete_sweep_skips_everything(self, inline_sweep, tmp_path):
        sweep, out_dir, _ = inline_sweep
        clone = tmp_path / "clone"
        shutil.copytree(out_dir, clone)
        tally = run_sweep(sweep, clone, workers=0, resume=True)
        assert tally["skipped"] == 4
        assert tally["done"] == 0
        assert tally["prewarmed"] == 0

    def test_resume_refuses_a_different_sweep(self, inline_sweep, tmp_path):
        _, out_dir, _ = inline_sweep
        clone = tmp_path / "clone"
        shutil.copytree(out_dir, clone)
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(tiny_sweep(n=3), clone, workers=0, resume=True)

    def test_resume_requeues_only_unfinished_members(self, inline_sweep, tmp_path):
        """Drop 0003's ``done`` row (leaving it in-flight ``started``): a
        resume must re-run 0003 and nothing else."""
        sweep, out_dir, _ = inline_sweep
        clone = tmp_path / "clone"
        shutil.copytree(out_dir, clone)
        manifest = clone / "manifest.jsonl"
        kept = [
            line for line in manifest.read_text().splitlines()
            if not (
                '"member": "0003"' in line and '"status": "done"' in line
                or '"record": "final"' in line
            )
        ]
        manifest.write_text("\n".join(kept) + "\n")
        shutil.rmtree(clone / "members" / "0003")
        untouched = (clone / "members" / "0000" / "run.jsonl").read_bytes()

        tally = run_sweep(sweep, clone, workers=0, resume=True)
        assert tally["skipped"] == 3
        assert tally["done"] == 1
        assert tally["prewarmed"] == 0  # the copied cache is already warm
        state = manifest_state(read_manifest(manifest))
        assert {m: r["status"] for m, r in state.items()} == {
            m: "done" for m in ("0000", "0001", "0002", "0003")
        }
        reran = [r for r in read_manifest(manifest)
                 if r.get("record") == "member" and r.get("status") == "started"
                 and r.get("attempt") == 1]
        # 4 original starts + exactly one new one (0003)
        assert len(reran) == 5
        assert (clone / "members" / "0003" / "run_summary.json").exists()
        assert (clone / "members" / "0000" / "run.jsonl").read_bytes() == untouched


class TestReportIntegration:
    def test_expand_report_paths(self, inline_sweep):
        _, out_dir, _ = inline_sweep
        manifest = out_dir / "manifest.jsonl"
        expected = manifest_member_paths(manifest)
        assert len(expected) == 4
        assert expand_report_paths([str(manifest)]) == expected
        assert expand_report_paths([str(out_dir)]) == expected  # via manifest
        from_dir = expand_report_paths([str(out_dir / "members")])
        assert sorted(Path(p).resolve() for p in from_dir) == sorted(
            Path(p).resolve() for p in expected
        )

    def test_report_renders_comparison_table(self, inline_sweep):
        _, out_dir, _ = inline_sweep
        report = build_report(expand_report_paths([str(out_dir / "manifest.jsonl")]))
        assert len(report["runs"]) == 4
        text = render_report(report)
        assert "== comparison" in text

    def test_report_cli_accepts_manifest_and_dir(self, inline_sweep, capsys):
        _, out_dir, _ = inline_sweep
        assert cli_main(["report", str(out_dir / "manifest.jsonl")]) == 0
        manifest_out = capsys.readouterr().out
        assert "== comparison" in manifest_out
        assert cli_main(["report", str(out_dir / "members")]) == 0
        assert "== comparison" in capsys.readouterr().out


class TestPoolAndCrashes:
    def test_pool_sweep_with_worker_crash_retry(self, tmp_path, monkeypatch):
        """A worker SIGKILLed right after claiming member 0001 (once, via
        the flag file) must be detected, the member re-queued, and the
        sweep must still complete with pure-hit cache counters."""
        flag = tmp_path / "killed.flag"
        monkeypatch.setenv(KILL_ENV, f"0001:{flag}")
        sweep = tiny_sweep()
        tally = run_sweep(sweep, tmp_path / "out", workers=2)
        assert flag.exists()  # the kill really fired
        assert tally["done"] == 4
        assert tally["failed"] == 0

        records = read_manifest(tmp_path / "out" / "manifest.jsonl")
        by_status = {}
        for record in records:
            if record.get("record") == "member" and record["member"] == "0001":
                by_status.setdefault(record["status"], []).append(record)
        assert "requeued" in by_status
        assert by_status["done"][-1]["attempt"] == 2
        state = manifest_state(records)
        assert all(state[m]["status"] == "done"
                   for m in ("0000", "0001", "0002", "0003"))

    def test_parent_sigkill_then_resume(self, tmp_path):
        """Kill the whole sweep process -- no atexit, no finally -- while
        member 0002 is in flight; the partial manifest must validate, and a
        resumed sweep must re-run only the unfinished members."""
        out_dir = tmp_path / "out"
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(tiny_sweep().to_json())
        argv = [sys.executable, "-m", "repro", "sweep", "--spec", str(spec_path),
                "--out", str(out_dir), "--workers", "0", "--quiet"]
        env = dict(os.environ, PYTHONPATH=REPO_SRC)

        proc = subprocess.run(
            argv, env={**env, KILL_ENV: "0002"},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, timeout=300,
        )
        assert proc.returncode != 0  # died by SIGKILL mid-sweep

        manifest = out_dir / "manifest.jsonl"
        partial = validate_manifest(manifest)
        assert not partial["complete"]
        assert partial["members"] == {"done": 2, "started": 1}
        n_rows_before = len(read_manifest(manifest))
        done_summaries = {
            m: (out_dir / "members" / m / "run_summary.json").read_bytes()
            for m in ("0000", "0001")
        }

        resumed = subprocess.run(
            argv + ["--resume", "--json"], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        tally = json.loads(resumed.stdout)
        assert tally["skipped"] == 2
        assert tally["done"] == 2
        assert tally["prewarmed"] == 0  # cache survived the kill too

        final = validate_manifest(manifest)
        assert final["complete"]
        assert final["members"] == {"done": 4}
        records = read_manifest(manifest)
        # resume appended: its own header + 0002/0003 rows + final
        assert len(records) > n_rows_before
        headers = [r for r in records if r.get("record") == "header"]
        assert [h["resumed"] for h in headers] == [False, True]
        for member_id, payload in done_summaries.items():
            path = out_dir / "members" / member_id / "run_summary.json"
            assert path.read_bytes() == payload  # finished members untouched

"""SweepSpec: axis expansion, validation and the JSON round trip."""

import pytest

from repro.scenarios import get_scenario
from repro.sweep import SweepAxis, SweepSpec


def tiny_base():
    return get_scenario(
        "loh3", extent_m=4000.0, characteristic_length=2000.0, n_mechanisms=1
    ).with_overrides(order=2, n_clusters=2, lam=0.8, n_cycles=2)


def source_axis(n=2):
    locations = [[0.0, 0.0, -1000.0], [500.0, 0.0, -1000.0],
                 [0.0, 500.0, -1000.0], [250.0, 250.0, -500.0]][:n]
    return SweepAxis(path="source.location", values=locations)


class TestExpansion:
    def test_member_count_is_the_axis_product(self):
        sweep = SweepSpec(
            base=tiny_base(),
            axes=[source_axis(3), SweepAxis(path="clustering.lam", values=[0.8, 1.0])],
        )
        assert sweep.n_members == 6
        assert len(sweep.expand()) == 6

    def test_last_axis_varies_fastest(self):
        sweep = SweepSpec(
            base=tiny_base(),
            axes=[source_axis(2), SweepAxis(path="clustering.lam", values=[0.8, 1.0])],
        )
        lams = [m.overrides["clustering.lam"] for m in sweep.expand()]
        assert lams == [0.8, 1.0, 0.8, 1.0]

    def test_member_ids_are_zero_padded_and_ordered(self):
        members = SweepSpec(base=tiny_base(), axes=[source_axis(4)]).expand()
        assert [m.member_id for m in members] == ["0000", "0001", "0002", "0003"]
        assert [m.index for m in members] == [0, 1, 2, 3]

    def test_overrides_land_in_the_member_spec(self):
        members = SweepSpec(base=tiny_base(), axes=[source_axis(2)]).expand()
        assert members[1].spec.source.location == (500.0, 0.0, -1000.0)
        assert members[0].spec.source.location == (0.0, 0.0, -1000.0)

    def test_default_name_derives_from_base(self):
        sweep = SweepSpec(base=tiny_base(), axes=[source_axis(2)])
        assert sweep.name.endswith("-sweep")


class TestValidation:
    def test_needs_at_least_one_axis(self):
        with pytest.raises(ValueError, match="axis"):
            SweepSpec(base=tiny_base(), axes=[])

    def test_axis_values_must_be_non_empty(self):
        with pytest.raises(ValueError, match="value"):
            SweepAxis(path="clustering.lam", values=[])

    def test_duplicate_axis_paths_rejected(self):
        with pytest.raises(ValueError, match="[Dd]uplicate"):
            SweepSpec(
                base=tiny_base(),
                axes=[
                    SweepAxis(path="clustering.lam", values=[0.8]),
                    SweepAxis(path="clustering.lam", values=[1.0]),
                ],
            )

    def test_unknown_override_path_rejected(self):
        with pytest.raises(ValueError, match="no_such_knob"):
            SweepSpec(
                base=tiny_base(),
                axes=[SweepAxis(path="clustering.no_such_knob", values=[1, 2])],
            )

    def test_unknown_block_rejected(self):
        with pytest.raises(ValueError, match="wibble"):
            SweepSpec(base=tiny_base(), axes=[SweepAxis(path="wibble.x", values=[1])])

    def test_invalid_member_value_names_the_member(self):
        with pytest.raises(ValueError, match="member"):
            SweepSpec(
                base=tiny_base(),
                axes=[SweepAxis(path="order", values=[2, -3])],
            )

    def test_free_form_params_paths_may_introduce_keys(self):
        sweep = SweepSpec(
            base=tiny_base(),
            axes=[SweepAxis(path="source.time_function.params.frequency",
                            values=[1.0, 2.0])],
        )
        members = sweep.expand()
        assert members[1].spec.source.time_function.params["frequency"] == 2.0


class TestRoundTrip:
    def test_json_round_trip_preserves_expansion(self):
        sweep = SweepSpec(
            base=tiny_base(),
            axes=[source_axis(2), SweepAxis(path="solver.precision",
                                            values=["f64", "f32"])],
            name="tiny-matrix",
        )
        rebuilt = SweepSpec.from_json(sweep.to_json())
        assert rebuilt.to_dict() == sweep.to_dict()
        assert rebuilt.name == "tiny-matrix"
        originals, clones = sweep.expand(), rebuilt.expand()
        assert [m.member_id for m in clones] == [m.member_id for m in originals]
        assert [m.spec.to_dict() for m in clones] == [
            m.spec.to_dict() for m in originals
        ]

    def test_format_version_is_checked(self):
        data = SweepSpec(base=tiny_base(), axes=[source_axis(2)]).to_dict()
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format"):
            SweepSpec.from_dict(data)

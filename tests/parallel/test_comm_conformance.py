"""One behavioural contract, three communicators.

The distributed steppers only ever see the communicator interface --
``send``/``flush``/``recv``/``pending``/``stats``/``all_delivered`` -- so
every implementation (in-process simulated, multiprocessing queues,
shared-memory rings) must satisfy the same observable semantics: FIFO order
per ``(src, tag)`` channel, statically-counted receives, excess-message
detection through ``all_delivered``, and send-side byte accounting that
matches the payloads exactly.  This suite runs the contract against all
three, wired up in-process (the engine tests cover the cross-process path).
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.parallel.communicator import SimulatedCommunicator, pair_key
from repro.parallel.process_comm import ProcessCommunicator
from repro.parallel.shm_comm import ShmCommunicator, ShmRing, create_ring_segment

N_RANKS = 2
KINDS = ("simulated", "process", "shm")


class _Fabric:
    """All ranks' endpoints of one communicator kind, plus their cleanup."""

    def __init__(self, kind: str, timeout: float = 10.0, capacity: int = 1 << 16):
        self.kind = kind
        self._segments = []
        if kind == "simulated":
            shared = SimulatedCommunicator(N_RANKS)
            self.comms = [shared] * N_RANKS
            return
        ctx = multiprocessing.get_context()
        inbound = [ctx.Queue() for _ in range(N_RANKS)]
        outbound = [
            {dst: inbound[dst] for dst in range(N_RANKS) if dst != rank}
            for rank in range(N_RANKS)
        ]
        if kind == "process":
            self.comms = [
                ProcessCommunicator(
                    rank, N_RANKS, inbound[rank], outbound[rank], timeout=timeout
                )
                for rank in range(N_RANKS)
            ]
            return
        names = {}
        for src in range(N_RANKS):
            for dst in range(N_RANKS):
                if src == dst:
                    continue
                name = f"repro-test-{id(self)}-{src}to{dst}"
                self._segments.append(create_ring_segment(name, capacity))
                names[(src, dst)] = name
        self.comms = [
            ShmCommunicator(
                rank,
                N_RANKS,
                inbound[rank],
                outbound[rank],
                tx={d: ShmRing.attach(names[(rank, d)]) for d in range(N_RANKS) if d != rank},
                rx={s: ShmRing.attach(names[(s, rank)]) for s in range(N_RANKS) if s != rank},
                timeout=timeout,
            )
            for rank in range(N_RANKS)
        ]

    def flush(self, rank: int) -> None:
        flush = getattr(self.comms[rank], "flush", None)
        if flush is not None:
            flush()

    def wait_pending(self, src: int, dst: int, tag: int, count: int) -> int:
        """Poll until ``pending`` reports at least ``count`` arrivals (the
        async transports ship through a feeder thread)."""
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            n = self.comms[dst].pending(src, dst, tag)
            if n >= count:
                return n
            time.sleep(0.005)
        return self.comms[dst].pending(src, dst, tag)

    def close(self) -> None:
        for comm in self.comms:
            close = getattr(comm, "close", None)
            if close is not None:
                close()
        for shm in self._segments:
            shm.close()
            shm.unlink()


@pytest.fixture(params=KINDS)
def fabric(request):
    fab = _Fabric(request.param)
    yield fab
    fab.close()


class TestConformance:
    def test_roundtrip_preserves_payload_and_dtype(self, fabric):
        payload = np.arange(12, dtype=np.float64).reshape(3, 4) * np.pi
        fabric.comms[0].send(payload, src=0, dst=1, tag=5)
        fabric.flush(0)
        received = fabric.comms[1].recv(src=0, dst=1, tag=5)
        np.testing.assert_array_equal(received, payload)
        assert received.dtype == payload.dtype and received.shape == payload.shape

    def test_fifo_per_channel_across_interleaved_tags(self, fabric):
        send, flush = fabric.comms[0].send, lambda: fabric.flush(0)
        send(np.full(2, 1.0), src=0, dst=1, tag=7)
        send(np.full(2, 9.0), src=0, dst=1, tag=8)
        flush()
        send(np.full(2, 2.0), src=0, dst=1, tag=7)
        flush()
        recv = fabric.comms[1].recv
        assert recv(0, 1, tag=7)[0] == 1.0
        assert recv(0, 1, tag=8)[0] == 9.0
        assert recv(0, 1, tag=7)[0] == 2.0

    def test_static_count_recv_consumes_exactly_what_was_sent(self, fabric):
        # the steppers consume a statically known message count per
        # correction; the channel must deliver exactly that many
        n_messages = 5
        for i in range(n_messages):
            fabric.comms[0].send(np.full(3, float(i)), src=0, dst=1, tag=0)
        fabric.flush(0)
        values = [fabric.comms[1].recv(0, 1, tag=0)[0] for _ in range(n_messages)]
        assert values == [float(i) for i in range(n_messages)]
        assert fabric.comms[1].all_delivered()

    def test_all_delivered_flags_excess_messages(self, fabric):
        fabric.comms[0].send(np.ones(4), src=0, dst=1, tag=0)
        fabric.flush(0)
        assert fabric.wait_pending(0, 1, 0, 1) == 1
        assert not fabric.comms[1].all_delivered()
        fabric.comms[1].recv(0, 1, tag=0)
        assert fabric.comms[1].all_delivered()

    def test_bidirectional_exchange(self, fabric):
        fabric.comms[0].send(np.full(2, 10.0), src=0, dst=1, tag=1)
        fabric.comms[1].send(np.full(2, 20.0), src=1, dst=0, tag=1)
        fabric.flush(0)
        fabric.flush(1)
        assert fabric.comms[1].recv(0, 1, tag=1)[0] == 10.0
        assert fabric.comms[0].recv(1, 0, tag=1)[0] == 20.0

    def test_stats_match_sent_payload_bytes_exactly(self, fabric):
        # the byte-accounting contract: measured traffic is the sum of the
        # logical payloads' nbytes, per directed pair -- the same quantity
        # exchange_volumes_per_cycle models
        payloads_01 = [np.zeros((9, 2)), np.zeros((9, 2)), np.zeros(7)]
        payloads_10 = [np.zeros((4, 3), dtype=np.float32)]
        for p in payloads_01:
            fabric.comms[0].send(p, src=0, dst=1, tag=0)
        for p in payloads_10:
            fabric.comms[1].send(p, src=1, dst=0, tag=0)
        fabric.flush(0)
        fabric.flush(1)
        for _ in payloads_01:
            fabric.comms[1].recv(0, 1, tag=0)
        for _ in payloads_10:
            fabric.comms[0].recv(1, 0, tag=0)
        if fabric.kind == "simulated":
            stats = fabric.comms[0].stats
            per_pair = stats.per_pair
        else:
            per_pair = {}
            for comm in fabric.comms:
                for pair, entry in comm.stats.per_pair.items():
                    per_pair[pair] = entry
        expected_01 = sum(p.nbytes for p in payloads_01)
        expected_10 = sum(p.nbytes for p in payloads_10)
        assert per_pair[pair_key(0, 1)] == {
            "messages": len(payloads_01),
            "bytes": expected_01,
        }
        assert per_pair[pair_key(1, 0)] == {
            "messages": len(payloads_10),
            "bytes": expected_10,
        }

    def test_mixed_shapes_to_one_destination_in_one_flush(self, fabric):
        # mixed-width fused groups stage differently shaped payloads for one
        # destination within one micro step
        send = fabric.comms[0].send
        send(np.full((9, 2), 1.0), src=0, dst=1, tag=0)
        send(np.full((9, 4), 2.0), src=0, dst=1, tag=1)
        send(np.full((9, 2), 3.0), src=0, dst=1, tag=0)
        fabric.flush(0)
        recv = fabric.comms[1].recv
        first = recv(0, 1, tag=0)
        wide = recv(0, 1, tag=1)
        second = recv(0, 1, tag=0)
        assert first.shape == (9, 2) and first[0, 0] == 1.0
        assert wide.shape == (9, 4) and wide[0, 0] == 2.0
        assert second.shape == (9, 2) and second[0, 0] == 3.0
        assert fabric.comms[1].all_delivered()

    def test_rank_validation(self, fabric):
        with pytest.raises(ValueError):
            fabric.comms[0].send(np.zeros(1), src=0, dst=N_RANKS + 3)
